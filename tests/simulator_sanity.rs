//! Cross-checks between the fast cycle-level simulators and the exact
//! functional engine, plus the paper-shape sanity properties every
//! simulated layer must satisfy.

use sparten::core::{AcceleratorConfig, BalanceMode, ClusterConfig, SparTenEngine};
use sparten::nn::generate::workload;
use sparten::nn::ConvShape;
use sparten::sim::sparten::{simulate_sparten, Sparsity};
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};

fn sim_config(units: usize, clusters: usize) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.accel = AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: units,
            chunk_size: 64,
            bisection_limit: 4,
        },
        num_clusters: clusters,
    };
    cfg
}

/// The fast simulator's useful-MAC total must equal the exact engine's
/// work trace, and its compute makespan must equal the engine's barrier
/// time plus the per-chunk broadcast overhead.
#[test]
fn simulator_work_matches_engine_trace_exactly() {
    let shape = ConvShape::new(40, 7, 7, 3, 12, 1, 1);
    let w = workload(&shape, 0.45, 0.4, 55);
    let cfg = sim_config(4, 1); // single cluster for exact comparison
    let model = MaskModel::new(&w, 64);
    let engine = SparTenEngine::new(cfg.accel);

    for mode in [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH] {
        let run = engine.run_layer(&w, mode, false);
        let sim = simulate_sparten(&w, &model, &cfg, Sparsity::TwoSided, mode);
        assert_eq!(
            sim.breakdown.nonzero,
            run.trace.total_macs(),
            "{mode:?}: useful MACs disagree"
        );
        // Per-chunk broadcast overhead: one cycle per (position, group,
        // chunk) processed by the cluster.
        let positions = (shape.out_height() * shape.out_width()) as u64;
        let groups = run.balance.groups.len() as u64;
        let chunks = model.chunks_per_window() as u64;
        let overhead = positions * groups * chunks;
        assert_eq!(
            sim.compute_cycles,
            run.trace.makespan() + overhead,
            "{mode:?}: makespan disagrees"
        );
    }
}

#[test]
fn accounting_identity_across_schemes_and_shapes() {
    let shapes = [
        ConvShape::new(16, 6, 6, 3, 8, 1, 1),
        ConvShape::new(96, 5, 5, 1, 20, 1, 0),
        ConvShape::new(24, 11, 11, 5, 6, 2, 2),
    ];
    for (i, shape) in shapes.iter().enumerate() {
        let w = workload(shape, 0.4, 0.35, 60 + i as u64);
        let cfg = sim_config(4, 3);
        let model = MaskModel::new(&w, 64);
        for scheme in Scheme::all() {
            let r = simulate_layer(&w, &model, &cfg, scheme);
            assert!(
                r.accounting_holds(),
                "shape {i}, {}: {} + {} + {} + {} != {} * {}",
                r.scheme,
                r.breakdown.nonzero,
                r.breakdown.zero,
                r.breakdown.intra,
                r.breakdown.inter,
                r.compute_cycles,
                r.total_units
            );
        }
    }
}

#[test]
fn denser_workloads_take_longer() {
    let shape = ConvShape::new(64, 8, 8, 3, 16, 1, 1);
    let cfg = sim_config(8, 2);
    let mut last = 0u64;
    for (i, density) in [0.15, 0.35, 0.6, 0.9].iter().enumerate() {
        let w = workload(&shape, *density, *density, 70 + i as u64);
        let model = MaskModel::new(&w, 64);
        let r = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH);
        assert!(
            r.compute_cycles > last,
            "density {density}: {} !> {last}",
            r.compute_cycles
        );
        last = r.compute_cycles;
    }
}

#[test]
fn dense_simulator_is_density_independent() {
    let shape = ConvShape::new(64, 8, 8, 3, 16, 1, 1);
    let cfg = sim_config(8, 2);
    let sparse = workload(&shape, 0.2, 0.2, 71);
    let dense = workload(&shape, 0.9, 0.9, 72);
    let rs = simulate_layer(&sparse, &MaskModel::new(&sparse, 64), &cfg, Scheme::Dense);
    let rd = simulate_layer(&dense, &MaskModel::new(&dense, 64), &cfg, Scheme::Dense);
    assert_eq!(rs.compute_cycles, rd.compute_cycles);
}

#[test]
fn scnn_stride_pathology() {
    // At stride 4 SCNN computes ~16x the needed products; SparTen doesn't.
    let unit = ConvShape::new(32, 16, 16, 3, 8, 1, 1);
    let strided = ConvShape::new(32, 16, 16, 3, 8, 4, 1);
    let cfg = sim_config(8, 2);
    for (shape, min_waste_ratio) in [(unit, 0.0), (strided, 5.0)] {
        let w = workload(&shape, 0.4, 0.4, 80);
        let model = MaskModel::new(&w, 64);
        let scnn = simulate_layer(&w, &model, &cfg, Scheme::Scnn);
        let waste = scnn.breakdown.zero as f64 / scnn.breakdown.nonzero.max(1) as f64;
        assert!(
            waste >= min_waste_ratio,
            "stride {}: waste ratio {waste}",
            shape.stride
        );
        let sparten = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH);
        assert_eq!(sparten.breakdown.zero, 0);
    }
}

#[test]
fn gb_ordering_holds_at_table3_densities() {
    // SparTen ≥ GB-S ≥ no-GB ≥ One-sided in performance on a layer shaped
    // like AlexNet Layer3 (scaled down).
    let shape = ConvShape::new(96, 8, 8, 3, 32, 1, 1);
    let w = workload(&shape, 0.20, 0.37, 90);
    let cfg = sim_config(8, 2);
    let model = MaskModel::new(&w, 64);
    let cycles = |s| simulate_layer(&w, &model, &cfg, s).cycles();
    let one = cycles(Scheme::OneSided);
    let no_gb = cycles(Scheme::SpartenNoGb);
    let gbs = cycles(Scheme::SpartenGbS);
    let gbh = cycles(Scheme::SpartenGbH);
    assert!(no_gb < one, "no-GB {no_gb} !< one-sided {one}");
    assert!(gbs <= no_gb, "GB-S {gbs} !<= no-GB {no_gb}");
    assert!(gbh <= gbs, "GB-H {gbh} !<= GB-S {gbs}");
}

#[test]
fn fpga_memory_bound_reduces_sparse_speedup() {
    // §5.5: compute shrinks quadratically with sparsity but traffic only
    // linearly, so thin memory clips the sparsest layers' speedups.
    let shape = ConvShape::new(128, 12, 12, 3, 32, 1, 1);
    let w = workload(&shape, 0.13, 0.32, 95);
    let model = MaskModel::new(&w, 128);

    let asic = SimConfig::large();
    let mut fpga = SimConfig::fpga();
    fpga.memory.bytes_per_cycle = 0.25; // scaled to the tiny layer

    let speedup = |cfg: &SimConfig| {
        let d = simulate_layer(&w, &model, cfg, Scheme::Dense);
        let s = simulate_layer(&w, &model, cfg, Scheme::SpartenGbH);
        s.speedup_over(&d)
    };
    let asic_speedup = speedup(&asic);
    let fpga_speedup = speedup(&fpga);
    assert!(
        fpga_speedup < asic_speedup,
        "fpga {fpga_speedup} !< asic {asic_speedup}"
    );
}

#[test]
fn collocation_pathology_on_16_filters() {
    // GoogLeNet 5x5red: 16 filters on 16 units — collocation idles half
    // the units, so no-GB beats GB-S there (§5.1).
    let shape = ConvShape::new(128, 6, 6, 1, 16, 1, 0);
    let w = workload(&shape, 0.58, 0.35, 96);
    let mut cfg = SimConfig::small();
    cfg.accel.num_clusters = 2;
    let model = MaskModel::new(&w, 128);
    let no_gb = simulate_layer(&w, &model, &cfg, Scheme::SpartenNoGb);
    let gbs = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbS);
    assert!(
        no_gb.cycles() < gbs.cycles(),
        "no-GB {} !< GB-S {}",
        no_gb.cycles(),
        gbs.cycles()
    );
}

/// Golden snapshot: cycle counts and energy for every scheme on one
/// AlexNet conv layer (Table 3 Layer4, seed 2019, large ASIC config).
///
/// These values pin the full simulation pipeline bit-for-bit — the PRNG,
/// workload generation, every scheme's cycle model, and the 45 nm energy
/// model. The experiment cache keys on this determinism, so if the test
/// fails after an intentional change, bump the harness cache format
/// version (see `crates/harness/src/cache.rs`) and update the snapshot
/// from the test's failure output.
#[test]
fn golden_values_alexnet_layer4() {
    use sparten::energy::EnergyModel;
    use sparten::nn::alexnet;

    let spec = &alexnet().layers[4];
    assert_eq!(spec.name, "Layer4");
    let w = spec.workload(2019);
    let cfg = SimConfig::large();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let energy = EnergyModel::nm45();

    let mut got = String::new();
    for scheme in Scheme::all() {
        let r = simulate_layer(&w, &model, &cfg, scheme);
        let buffer = if scheme == Scheme::Dense { 8 } else { 992 };
        let e = energy.layer_energy(&r, buffer);
        got.push_str(&format!(
            "{} compute={} memory={} cycles={} energy_uj={:.6}\n",
            r.scheme,
            r.compute_cycles,
            r.memory_cycles,
            r.cycles(),
            e.total_pj() / 1e6,
        ));
    }

    let expected = "\
Dense compute=110592 memory=1928 cycles=110592 energy_uj=133.973452
One-sided compute=28264 memory=1246 cycles=28264 energy_uj=154.361150
SparTen-no-GB compute=18589 memory=955 cycles=18589 energy_uj=83.280926
SparTen-GB-S compute=13886 memory=955 cycles=13886 energy_uj=83.280926
SparTen compute=13462 memory=955 cycles=13462 energy_uj=83.903928
SCNN compute=57527 memory=1071 cycles=57527 energy_uj=90.513620
SCNN-one-sided compute=147456 memory=1328 cycles=147456 energy_uj=179.685550
SCNN-dense compute=147456 memory=1928 cycles=147456 energy_uj=596.522688
";
    assert_eq!(got, expected, "golden snapshot drifted; actual:\n{got}");
}
