//! Extension-feature integration: MLPs on the SparTen engine (§7 future
//! work), the dense-image formatter (§3.1 special case), output-region
//! memory management, batch simulation, and the collocation ablation.

use sparten::core::balance::BalanceMode;
use sparten::core::{AcceleratorConfig, ClusterConfig, OutputMemory, SparTenEngine};
use sparten::nn::generate::{workload, workload_batch};
use sparten::nn::{ConvShape, FcLayer, Mlp};
use sparten::sim::sparten::{simulate_sparten, Sparsity};
use sparten::sim::{simulate_spec_batch, MaskModel, Scheme, SimConfig};
use sparten::tensor::{FormattedImage, Tensor3};

fn engine_config(units: usize, clusters: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: units,
            chunk_size: 64,
            bisection_limit: 4,
        },
        num_clusters: clusters,
    }
}

#[test]
fn mlp_runs_on_sparten_layer_by_layer() {
    // A 3-layer sparse MLP: each FC layer maps to a 1x1 conv over a 1x1
    // plane; the engine's output (with ReLU between layers) must match the
    // dense reference forward pass.
    let mlp = Mlp::new(vec![
        FcLayer::random(96, 48, 0.4, 1),
        FcLayer::random(48, 24, 0.4, 2),
        FcLayer::random(24, 8, 0.5, 3),
    ]);
    let x: Vec<f32> = (0..96)
        .map(|i| {
            if i % 3 == 0 {
                (i % 7) as f32 - 3.0
            } else {
                0.0
            }
        })
        .collect();
    let expect = mlp.forward(&x);

    let engine = SparTenEngine::new(engine_config(8, 1));
    let mut act = x;
    let last = mlp.layers().len() - 1;
    for (i, layer) in mlp.layers().iter().enumerate() {
        let w = layer.to_workload(&act);
        let run = engine.run_layer(&w, BalanceMode::GbH, i != last);
        let out = run.logical_output();
        act = (0..layer.out_features())
            .map(|f| out.get(f, 0, 0))
            .collect();
    }
    for (a, b) in act.iter().zip(&expect) {
        assert!((a - b).abs() < 1e-2, "engine {a} vs reference {b}");
    }
}

#[test]
fn fc_layer_has_no_zero_compute_on_sparten() {
    // The §2.1.1 point: FC layers multiply each filter cell by exactly one
    // input cell — SCNN's Cartesian product breaks, SparTen just works.
    let fc = FcLayer::random(512, 64, 0.35, 4);
    let x: Vec<f32> = (0..512)
        .map(|i| {
            if i % 4 == 0 {
                1.0 + (i % 5) as f32
            } else {
                0.0
            }
        })
        .collect();
    let w = fc.to_workload(&x);
    let cfg = SimConfig::small();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let r = simulate_sparten(&w, &model, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
    assert_eq!(r.breakdown.zero, 0);
    assert!(r.accounting_holds());
    assert!(r.breakdown.nonzero > 0);
}

#[test]
fn formatted_image_feeds_the_first_layer() {
    // Format a dense 3-channel image per §3.1 and verify the chunks carry
    // exactly the fibers the first conv layer consumes.
    let mut img = Tensor3::zeros(3, 6, 6);
    for (i, v) in img.as_mut_slice().iter_mut().enumerate() {
        *v = ((i * 37) % 11) as f32 - 2.0;
    }
    let f = FormattedImage::from_dense(&img, 64);
    assert_eq!(f.directory().len(), 36);
    for p in 0..36 {
        let (x, y) = (p % 6, p / 6);
        let chunk = f.chunk(p);
        assert_eq!(&chunk.to_dense()[..3], img.fiber(x, y));
    }
    // Masks cost 64 bits per position; values stay unpadded.
    assert_eq!(f.storage_bits(8), 36 * 64 + 108 * 8);
}

#[test]
fn output_memory_handles_a_real_run() {
    let shape = ConvShape::new(24, 10, 10, 3, 16, 1, 1);
    let w = workload(&shape, 0.5, 0.4, 5);
    let cfg = engine_config(8, 4);
    let engine = SparTenEngine::new(cfg);
    let run = engine.run_layer(&w, BalanceMode::GbS, true);

    let mut mem = OutputMemory::for_layer(&cfg, &shape, 0.6, 0.10, 0.9);
    let report = mem.commit_run(&run);
    let actual: u64 = run.trace.clusters.iter().map(|c| c.output_nnz).sum();
    assert_eq!(report.values_written as u64, actual);
    // Over-provisioned at 60% density: no synchronous emergencies.
    assert_eq!(report.emergency_extents, 0);
}

#[test]
fn batch_of_16_filters_stay_stationary() {
    let shape = ConvShape::new(48, 6, 6, 3, 8, 1, 1);
    let batch = workload_batch(&shape, 0.3, 0.35, 9, 16);
    assert_eq!(batch.len(), 16);
    // Same filters across the batch, different inputs.
    for w in &batch[1..] {
        assert_eq!(w.filters, batch[0].filters);
        assert_ne!(w.input, batch[0].input);
    }
}

#[test]
fn batch_simulation_runs_a_table3_layer() {
    let net = sparten::nn::googlenet();
    let spec = net.layer("Inc5a_5x5").expect("layer exists");
    let cfg = SimConfig::small();
    let b = simulate_spec_batch(spec, &cfg, Scheme::SpartenGbH, 11, 4);
    assert_eq!(b.images.len(), 4);
    for r in &b.images {
        assert!(r.accounting_holds());
    }
    assert!(b.cycle_spread() < 0.3, "spread {}", b.cycle_spread());
}

#[test]
fn multilayer_pipeline_with_saved_workload() {
    // Save layer 1's workload to disk, load it back, run it as the first
    // stage of a SparseNetwork — serialization, the pipeline runner, and
    // the engine compose.
    use sparten::core::{SparseNetwork, Stage};
    use sparten::nn::{load_workload, save_workload};
    let c1 = ConvShape::new(8, 8, 8, 3, 12, 1, 1);
    let w1 = workload(&c1, 0.5, 0.4, 71);
    let mut path = std::env::temp_dir();
    path.push(format!("sparten-ext-{}.sptn", std::process::id()));
    save_workload(&w1, &path).expect("save");
    let loaded = load_workload(&path).expect("load");
    std::fs::remove_file(&path).ok();

    let c2 = ConvShape::new(12, 8, 8, 3, 6, 1, 1);
    let w2 = workload(&c2, 0.5, 0.4, 72);
    let net = SparseNetwork::new(vec![
        Stage::Conv {
            filters: loaded.filters.clone(),
            shape: c1,
            mode: BalanceMode::GbH,
            relu: true,
        },
        Stage::Conv {
            filters: w2.filters.clone(),
            shape: c2,
            mode: BalanceMode::GbS,
            relu: true,
        },
    ]);
    let engine = SparTenEngine::new(engine_config(4, 2));
    let (got, stats) = net.run(&engine, &loaded.input);
    let reference = net.reference(&loaded.input);
    assert_eq!(stats.conv_stages, 2);
    for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
        assert!((a - b).abs() < 1e-2);
    }
}

#[test]
fn controller_protocol_reproduces_engine_output() {
    use sparten::core::run_via_commands;
    let shape = ConvShape::new(16, 5, 5, 3, 8, 1, 1);
    let w = workload(&shape, 0.5, 0.4, 73);
    let cfg = engine_config(4, 1);
    let (produced, _, stats) = run_via_commands(&w, &cfg, BalanceMode::GbS, true);
    let engine = SparTenEngine::new(cfg);
    let run = engine.run_layer(&w, BalanceMode::GbS, true);
    assert_eq!(produced.nnz(), run.produced.nnz());
    for (a, b) in produced.as_slice().iter().zip(run.produced.as_slice()) {
        assert!((a - b).abs() < 1e-3);
    }
    // The controller's pointer increments equal the stored non-zeros.
    assert_eq!(stats.output_values, produced.nnz());
}

#[test]
fn quantized_workload_runs_on_the_engine_within_error_bounds() {
    use sparten::nn::{conv2d, Filter, QuantTensor};
    let shape = ConvShape::new(12, 6, 6, 3, 8, 1, 1);
    let w = workload(&shape, 0.5, 0.5, 74);
    // Quantize+dequantize both operands, run on the engine, compare to the
    // float reference within the accumulated quantization bound.
    let qi = QuantTensor::quantize(&w.input).dequantize();
    let qf: Vec<Filter> = w
        .filters
        .iter()
        .map(|f| Filter::new(QuantTensor::quantize(f.weights()).dequantize()))
        .collect();
    let qw = sparten::nn::Workload {
        input: qi,
        filters: qf,
        shape,
    };
    let engine = SparTenEngine::new(engine_config(4, 2));
    let run = engine.run_layer(&qw, BalanceMode::GbH, false);
    let reference = conv2d(&w.input, &w.filters, &shape);
    let max_ref = reference
        .as_slice()
        .iter()
        .fold(0.0f32, |a, &v| a.max(v.abs()));
    for (a, b) in run.logical_output().as_slice().iter().zip(reference.as_slice()) {
        assert!(
            (a - b).abs() < 0.08 * max_ref.max(1.0),
            "quantized engine {a} vs float reference {b}"
        );
    }
    // Quantization preserves sparsity structure → identical MAC counts.
    let float_run = engine.run_layer(&w, BalanceMode::GbH, false);
    assert_eq!(run.trace.total_macs(), float_run.trace.total_macs());
}

#[test]
fn collocation_ablation_direction() {
    // On a filter set with strong density spread, GB-S with collocation
    // beats GB-S without it (§5.1's "worse performance in most benchmarks").
    let shape = ConvShape::new(96, 8, 8, 3, 64, 1, 1);
    let w = workload(&shape, 0.3, 0.35, 13);
    let mut cfg = SimConfig::small();
    cfg.accel.num_clusters = 2;
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let with = simulate_sparten(&w, &model, &cfg, Sparsity::TwoSided, BalanceMode::GbS);
    let without = simulate_sparten(
        &w,
        &model,
        &cfg,
        Sparsity::TwoSided,
        BalanceMode::GbSNoColloc,
    );
    assert!(
        with.cycles() < without.cycles(),
        "colloc {} !< no-colloc {}",
        with.cycles(),
        without.cycles()
    );
}
