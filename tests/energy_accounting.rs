//! Energy-model and area-model accounting: the Figure 13 orderings and the
//! Table 4 component inventory.

use sparten::core::ClusterConfig;
use sparten::energy::{cluster_asic_estimate, EnergyModel};
use sparten::nn::generate::workload;
use sparten::nn::ConvShape;
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig, SimResult};

fn layer_results() -> Vec<(Scheme, SimResult)> {
    // AlexNet Layer3-like densities, scaled down.
    let shape = ConvShape::new(96, 10, 10, 3, 32, 1, 1);
    let w = workload(&shape, 0.20, 0.37, 123);
    let cfg = SimConfig::small();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    Scheme::all()
        .into_iter()
        .map(|s| (s, simulate_layer(&w, &model, &cfg, s)))
        .collect()
}

#[test]
fn all_energy_components_are_finite_and_non_negative() {
    let model = EnergyModel::nm45();
    for (scheme, r) in layer_results() {
        let buffer = if scheme == Scheme::Dense { 8 } else { 992 };
        let e = model.layer_energy(&r, buffer);
        for v in [
            e.compute_nonzero_pj,
            e.compute_zero_pj,
            e.memory_nonzero_pj,
            e.memory_zero_pj,
        ] {
            assert!(v.is_finite() && v >= 0.0, "{scheme:?}: component {v}");
        }
        assert!(e.total_pj() > 0.0);
    }
}

#[test]
fn figure13_orderings() {
    let model = EnergyModel::nm45();
    let rs = layer_results();
    let energy = |scheme: Scheme| {
        let (_, r) = rs
            .iter()
            .find(|(s, _)| *s == scheme)
            .expect("scheme present");
        let buffer = if scheme == Scheme::Dense { 8 } else { 992 };
        model.layer_energy(r, buffer)
    };
    let dense = energy(Scheme::Dense);
    let one = energy(Scheme::OneSided);
    let sparten = energy(Scheme::SpartenGbH);
    // Dense-naive = Dense counts at sparse buffering.
    let (_, dense_r) = rs.iter().find(|(s, _)| *s == Scheme::Dense).unwrap();
    let naive = model.layer_energy(dense_r, 992);

    // §5.3's chain: Dense-naive > One-sided > SparTen in compute energy;
    // Dense itself is the cheapest compute.
    assert!(naive.compute_pj() > one.compute_pj());
    assert!(one.compute_pj() > sparten.compute_pj());
    // Dense's lean buffers keep its per-MAC energy far below the sparse
    // datapaths'; whether its total lands above or below SparTen depends
    // on the layer's density product, so only bound the ratio.
    let ratio = sparten.compute_pj() / dense.compute_pj();
    assert!((0.3..6.0).contains(&ratio), "SparTen/Dense compute {ratio}");
    // Memory: Dense > One-sided ≥ SparTen; the SparTen variants tie.
    assert!(dense.memory_pj() > one.memory_pj());
    assert!(one.memory_pj() >= sparten.memory_pj());
    let gbs = energy(Scheme::SpartenGbS);
    assert!((gbs.memory_pj() - sparten.memory_pj()).abs() / sparten.memory_pj() < 1e-9);
}

#[test]
fn zero_components_vanish_only_for_two_sided() {
    let model = EnergyModel::nm45();
    for (scheme, r) in layer_results() {
        let e = model.layer_energy(&r, 992);
        match scheme {
            Scheme::SpartenNoGb | Scheme::SpartenGbS | Scheme::SpartenGbH => {
                assert_eq!(e.compute_zero_pj, 0.0, "{scheme:?}");
                assert_eq!(e.memory_zero_pj, 0.0, "{scheme:?}");
            }
            Scheme::Dense | Scheme::OneSided => {
                assert!(e.compute_zero_pj > 0.0, "{scheme:?}");
                assert!(e.memory_zero_pj > 0.0, "{scheme:?}");
            }
            // SCNN's Cartesian product always has some discarded work.
            _ => assert!(e.compute_zero_pj >= 0.0),
        }
    }
}

#[test]
fn table4_inventory_is_complete_and_consistent() {
    let est = cluster_asic_estimate(&ClusterConfig::paper());
    let names: Vec<&str> = est.components.iter().map(|c| c.name).collect();
    assert_eq!(
        names,
        vec![
            "Buffers",
            "Prefix-sum",
            "Priority Encoder",
            "MACs",
            "Permute Network",
            "Other"
        ]
    );
    let sum_area: f64 = est.components.iter().map(|c| c.area_mm2).sum();
    assert!((sum_area - est.total_area_mm2()).abs() < 1e-12);
    assert_eq!(est.clock_mhz, 800.0);
}

#[test]
fn area_scales_with_chunk_size() {
    // Doubling the chunk doubles the prefix-sum hardware (and then some).
    let base = cluster_asic_estimate(&ClusterConfig::paper());
    let big = cluster_asic_estimate(&ClusterConfig {
        compute_units: 32,
        chunk_size: 256,
        bisection_limit: 4,
    });
    let prefix = |e: &sparten::energy::AsicEstimate| {
        e.components
            .iter()
            .find(|c| c.name == "Prefix-sum")
            .expect("row")
            .area_mm2
    };
    assert!(prefix(&big) > 1.9 * prefix(&base));
}

#[test]
fn memory_energy_independent_of_balance_mode() {
    let model = EnergyModel::nm45();
    let rs = layer_results();
    let mem = |scheme: Scheme| {
        let (_, r) = rs.iter().find(|(s, _)| *s == scheme).unwrap();
        model.layer_energy(r, 992).memory_pj()
    };
    let a = mem(Scheme::SpartenNoGb);
    let b = mem(Scheme::SpartenGbS);
    let c = mem(Scheme::SpartenGbH);
    assert!((a - b).abs() < 1e-9 && (b - c).abs() < 1e-9);
}
