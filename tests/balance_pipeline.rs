//! Greedy-balancing pipeline properties: permutation invariants, static
//! unshuffling across engine-executed layers, and GB-H's dynamic routing
//! through the permutation network.

use sparten::arch::PermutationNetwork;
use sparten::core::balance::{unshuffle_next_layer, BalanceMode, LayerBalance};
use sparten::core::{AcceleratorConfig, ClusterConfig, SparTenEngine};
use sparten::nn::generate::{random_filters, workload};
use sparten::nn::{ConvShape, Rng64};

const CASES: usize = if cfg!(feature = "exhaustive-tests") { 64 } else { 16 };

fn filters(n: usize, seed: u64) -> Vec<sparten::nn::Filter> {
    let shape = ConvShape::new(32, 6, 6, 3, n, 1, 1);
    random_filters(&shape, 0.35, 0.6, seed)
}

fn engine(units: usize, clusters: usize) -> SparTenEngine {
    SparTenEngine::new(AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: units,
            chunk_size: 64,
            bisection_limit: 4,
        },
        num_clusters: clusters,
    })
}

#[test]
fn gbs_then_unshuffled_next_layer_equals_plain_two_layer_network() {
    // Full two-layer pipeline through the engine on both paths.
    let l1 = ConvShape::new(24, 8, 8, 3, 16, 1, 1);
    let w1 = workload(&l1, 0.5, 0.4, 10);
    let eng = engine(4, 2);

    let balance = LayerBalance::new(&w1.filters, 4, 64, BalanceMode::GbS);
    let l2 = ConvShape::new(16, 8, 8, 3, 6, 1, 1);
    let l2_filters = random_filters(&l2, 0.5, 0.4, 11);

    // Plain path: unbalanced layer 1, original layer 2.
    let run_plain = eng.run_layer(&w1, BalanceMode::None, true);
    let mut w2_plain = workload(&l2, 0.5, 0.4, 12);
    w2_plain.input = run_plain.logical_output();
    w2_plain.filters = l2_filters.clone();
    let out_plain = eng
        .run_layer(&w2_plain, BalanceMode::None, true)
        .logical_output();

    // GB path: GB-S layer 1 (produced order!), unshuffled layer 2.
    let run_gb = eng.run_layer(&w1, BalanceMode::GbS, true);
    let mut unshuffled = l2_filters;
    unshuffle_next_layer(&mut unshuffled, &balance.produced_channels);
    let mut w2_gb = workload(&l2, 0.5, 0.4, 13);
    w2_gb.input = run_gb.produced.clone();
    w2_gb.filters = unshuffled;
    let out_gb = eng
        .run_layer(&w2_gb, BalanceMode::GbH, true)
        .logical_output();

    for (a, b) in out_plain.as_slice().iter().zip(out_gb.as_slice()) {
        assert!((a - b).abs() < 1e-2, "plain {a} vs GB {b}");
    }
}

#[test]
fn gbh_and_gbs_produce_identical_tensors() {
    // GB-H only changes *which unit computes what*; after network routing
    // the produced tensor must equal GB-S's (same whole-filter order).
    let shape = ConvShape::new(32, 7, 7, 3, 16, 1, 1);
    let w = workload(&shape, 0.45, 0.4, 20);
    let eng = engine(4, 2);
    let gbs = eng.run_layer(&w, BalanceMode::GbS, false);
    let gbh = eng.run_layer(&w, BalanceMode::GbH, false);
    assert_eq!(gbs.balance.produced_channels, gbh.balance.produced_channels);
    for (a, b) in gbs.produced.as_slice().iter().zip(gbh.produced.as_slice()) {
        assert!((a - b).abs() < 1e-3);
    }
}

#[test]
fn gbh_routing_fits_the_thinned_network() {
    // Every per-chunk GB-H mapping must route on the real butterfly with
    // the paper's bisection limit of 4, in a bounded number of waves.
    let fs = filters(64, 30);
    let b = LayerBalance::new(&fs, 32, 64, BalanceMode::GbH);
    let net = PermutationNetwork::new(64, 4);
    for g in &b.groups {
        for c in 0..g.per_chunk_cu.len() {
            let mapping = g.chunk_routing(c);
            let stats = net.route(&mapping);
            assert_eq!(stats.routed, mapping.len());
            // 64 values, ≥4 per wave across the bisection, plus conflicts:
            // generous bound that still catches pathological schedules.
            assert!(stats.waves <= 64, "waves {}", stats.waves);
        }
    }
}

#[test]
fn balance_preserves_engine_mac_count() {
    // Balancing moves work around; it must never change total useful MACs.
    let shape = ConvShape::new(48, 6, 6, 3, 24, 1, 1);
    let w = workload(&shape, 0.4, 0.35, 40);
    let eng = engine(8, 2);
    let macs: Vec<u64> = [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH]
        .iter()
        .map(|&m| eng.run_layer(&w, m, false).trace.total_macs())
        .collect();
    assert_eq!(macs[0], macs[1]);
    assert_eq!(macs[1], macs[2]);
}

#[test]
fn produced_channels_is_always_a_permutation() {
    let mut rng = Rng64::seed_from_u64(0xba1a_0001);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 80);
        let units = rng.gen_range_usize(1, 9);
        let mode_pick = rng.gen_range_usize(0, 3);
        let seed = rng.gen_range_usize(0, 500) as u64;
        let fs = filters(n, seed);
        let mode = [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH][mode_pick];
        let b = LayerBalance::new(&fs, units, 64, mode);
        let mut seen = vec![false; n];
        assert_eq!(b.produced_channels.len(), n);
        for &f in &b.produced_channels {
            assert!(!seen[f], "duplicate {f}");
            seen[f] = true;
        }
        // position_of_channel must be the inverse map.
        let inv = b.position_of_channel();
        for (p, &f) in b.produced_channels.iter().enumerate() {
            assert_eq!(inv[f], p);
        }
    }
}

#[test]
fn gbh_chunk_routing_is_bijective() {
    let mut rng = Rng64::seed_from_u64(0xba1a_0002);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(2, 66);
        let units = rng.gen_range_usize(2, 9);
        let seed = rng.gen_range_usize(0, 500) as u64;
        let fs = filters(n, seed);
        let b = LayerBalance::new(&fs, units, 64, BalanceMode::GbH);
        for g in &b.groups {
            let m = g.num_filters();
            for c in 0..g.per_chunk_cu.len() {
                let mapping = g.chunk_routing(c);
                assert_eq!(mapping.len(), m);
                let mut dsts: Vec<usize> = mapping.iter().map(|&(_, d)| d).collect();
                dsts.sort_unstable();
                assert_eq!(dsts, (0..m).collect::<Vec<_>>());
            }
        }
    }
}

#[test]
fn unshuffle_is_inverse_of_shuffle() {
    let mut rng = Rng64::seed_from_u64(0xba1a_0003);
    for _ in 0..CASES {
        let n = rng.gen_range_usize(1, 48);
        let seed = rng.gen_range_usize(0, 500) as u64;
        let fs = filters(n, seed);
        let b = LayerBalance::new(&fs, 4, 64, BalanceMode::GbS);
        // A next-layer filter whose channel z holds the constant z.
        let next_shape = ConvShape::new(n, 4, 4, 1, 1, 1, 0);
        let mut next = random_filters(&next_shape, 1.0, 0.0, seed + 1);
        for z in 0..n {
            next[0].weights_mut().set(z, 0, 0, z as f32);
        }
        let mut unshuffled = next.clone();
        unshuffle_next_layer(&mut unshuffled, &b.produced_channels);
        // Channel p of the unshuffled filter must hold produced_channels[p].
        for (p, &logical) in b.produced_channels.iter().enumerate() {
            assert_eq!(unshuffled[0].weights().get(p, 0, 0), logical as f32);
        }
    }
}
