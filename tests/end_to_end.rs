//! End-to-end numerical correctness: the functional SparTen engine must
//! reproduce the dense reference convolution exactly (within f32 rounding)
//! for every balance mode, stride, kernel size, and cluster configuration —
//! including multi-layer pipelines with ReLU.

use sparten::core::{AcceleratorConfig, BalanceMode, ClusterConfig, SparTenEngine};
use sparten::nn::generate::workload;
use sparten::nn::{conv2d, max_pool, ConvShape, Rng64};

fn config(units: usize, clusters: usize, chunk: usize) -> AcceleratorConfig {
    AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: units,
            chunk_size: chunk,
            bisection_limit: 4,
        },
        num_clusters: clusters,
    }
}

fn check(shape: ConvShape, mode: BalanceMode, cfg: AcceleratorConfig, seed: u64) {
    let w = workload(&shape, 0.45, 0.4, seed);
    let engine = SparTenEngine::new(cfg);
    let run = engine.run_layer(&w, mode, false);
    let reference = conv2d(&w.input, &w.filters, &shape);
    let got = run.logical_output();
    for (i, (a, b)) in got.as_slice().iter().zip(reference.as_slice()).enumerate() {
        assert!(
            (a - b).abs() < 1e-2,
            "mode {mode:?}, cell {i}: engine {a} vs reference {b}"
        );
    }
}

#[test]
fn all_modes_match_reference_on_a_mid_size_layer() {
    let shape = ConvShape::new(40, 9, 9, 3, 20, 1, 1);
    for mode in [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH] {
        check(shape, mode, config(8, 3, 64), 100);
    }
}

#[test]
fn strides_two_three_four_match_reference() {
    for (stride, seed) in [(2, 200), (3, 300), (4, 400)] {
        let shape = ConvShape::new(24, 13, 13, 3, 10, stride, 1);
        check(shape, BalanceMode::GbH, config(4, 2, 64), seed);
    }
}

#[test]
fn kernel_sizes_match_reference() {
    for (k, pad, seed) in [(1usize, 0usize, 1u64), (5, 2, 2), (7, 3, 3)] {
        let shape = ConvShape::new(16, 11, 11, k, 6, 1, pad);
        check(shape, BalanceMode::GbS, config(4, 2, 64), seed);
    }
}

#[test]
fn shallow_channels_with_heavy_padding_match_reference() {
    // The VGG Layer0 pathology: 3 channels padded to a 64-wide chunk.
    let shape = ConvShape::new(3, 10, 10, 3, 8, 1, 1);
    check(shape, BalanceMode::GbH, config(4, 2, 64), 500);
}

#[test]
fn more_clusters_than_positions_still_correct() {
    let shape = ConvShape::new(8, 3, 3, 1, 4, 1, 0);
    check(shape, BalanceMode::None, config(4, 16, 64), 600);
}

#[test]
fn fully_connected_as_one_by_one_conv() {
    // The paper's claim that SparTen handles non-convolutional layers: an
    // FC layer is a 1x1 convolution over a 1x1 plane.
    let shape = ConvShape::new(256, 1, 1, 1, 32, 1, 0);
    check(shape, BalanceMode::GbH, config(8, 1, 128), 700);
}

#[test]
fn two_layer_pipeline_with_relu_and_pool() {
    // conv → ReLU → maxpool → conv, engine vs reference at every stage.
    let l1 = ConvShape::new(12, 12, 12, 3, 16, 1, 1);
    let w1 = workload(&l1, 0.5, 0.4, 800);
    let engine = SparTenEngine::new(config(8, 2, 64));

    let run1 = engine.run_layer(&w1, BalanceMode::GbS, true);
    let mut ref1 = conv2d(&w1.input, &w1.filters, &l1);
    ref1.relu();
    let eng1 = run1.logical_output();
    for (a, b) in eng1.as_slice().iter().zip(ref1.as_slice()) {
        assert!((a - b).abs() < 1e-2);
    }

    let pooled = max_pool(&eng1, 2, 2);
    let l2 = ConvShape::new(16, pooled.height(), pooled.width(), 3, 8, 1, 1);
    let mut w2 = workload(&l2, 0.5, 0.4, 801);
    w2.input = pooled.clone();
    let run2 = engine.run_layer(&w2, BalanceMode::GbH, true);
    let mut ref2 = conv2d(&pooled, &w2.filters, &l2);
    ref2.relu();
    for (a, b) in run2.logical_output().as_slice().iter().zip(ref2.as_slice()) {
        assert!((a - b).abs() < 1e-2);
    }
}

#[test]
fn relu_output_is_sparser_than_raw() {
    let shape = ConvShape::new(24, 8, 8, 3, 16, 1, 1);
    let w = workload(&shape, 0.6, 0.5, 900);
    let engine = SparTenEngine::new(config(8, 2, 64));
    let raw = engine.run_layer(&w, BalanceMode::None, false);
    let relu = engine.run_layer(&w, BalanceMode::None, true);
    assert!(relu.produced.nnz() < raw.produced.nnz());
    // ReLU turns roughly half the outputs to zero on symmetric values.
    let density = relu.produced.density();
    assert!((0.2..0.8).contains(&density), "density {density}");
}

#[test]
fn engine_matches_reference_on_random_shapes() {
    // Deterministic property sweep (see exhaustive-tests feature).
    const CASES: usize = if cfg!(feature = "exhaustive-tests") { 48 } else { 12 };
    let mut rng = Rng64::seed_from_u64(0xe2e0_0001);
    for _ in 0..CASES {
        let d = rng.gen_range_usize(1, 24);
        let hw = rng.gen_range_usize(3, 9);
        let k = rng.gen_range_usize(1, 4);
        let n = rng.gen_range_usize(1, 12);
        let stride = rng.gen_range_usize(1, 3);
        let mode_pick = rng.gen_range_usize(0, 3);
        let seed = rng.gen_range_usize(0, 1000) as u64;
        if hw < k {
            continue;
        }
        let pad = k / 2;
        let shape = ConvShape::new(d, hw, hw, k, n, stride, pad);
        let mode = [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH][mode_pick];
        let w = workload(&shape, 0.5, 0.45, seed);
        let engine = SparTenEngine::new(config(4, 2, 64));
        let run = engine.run_layer(&w, mode, false);
        let reference = conv2d(&w.input, &w.filters, &shape);
        let got = run.logical_output();
        for (a, b) in got.as_slice().iter().zip(reference.as_slice()) {
            assert!((a - b).abs() < 1e-2, "engine {a} vs reference {b}");
        }
    }
}
