//! The paper's qualitative claims, verified on scaled-down workloads:
//! representation-size crossover (§3.1), the inner join vs CSR cost
//! structure, buffering arithmetic (§3.2–3.3), and the speedup orderings
//! of §5.

use sparten::core::ClusterConfig;
use sparten::nn::generate::workload;
use sparten::nn::ConvShape;
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};
use sparten::tensor::size::{crossover_density, smaller_format, SmallerFormat};
use sparten::tensor::{IndexVector, RleVector, SparseVector};

#[test]
fn bitmask_beats_pointers_at_cnn_densities() {
    // §3.1: at f ≈ 1/3..1/2 over millions of values the bit mask is
    // smaller; at HPC's 0.1% the pointer format wins.
    for f in [1.0 / 3.0, 0.5] {
        assert_eq!(smaller_format(4_000_000, f, 8), SmallerFormat::BitMask);
    }
    assert_eq!(smaller_format(4_000_000, 0.001, 8), SmallerFormat::Pointer);
    // The crossover for n with log2(n)=20 is exactly 5%.
    assert!((crossover_density(1 << 20) - 0.05).abs() < 1e-12);
}

#[test]
fn concrete_encodings_agree_with_the_formulas() {
    // Encode the same vector three ways and compare real sizes.
    let n = 2048usize;
    let dense: Vec<f32> = (0..n).map(|i| if i % 3 == 0 { 1.0 } else { 0.0 }).collect();
    let bitmask = SparseVector::from_dense(&dense, n);
    let pointer = IndexVector::from_dense(&dense);
    let rle = RleVector::from_dense(&dense, 4);
    // At 33% density the bit mask is the smallest of the three.
    assert!(bitmask.storage_bits(8) < pointer.storage_bits(8));
    assert!(bitmask.storage_bits(8) < rle.storage_bits(8));
}

#[test]
fn rle_pays_for_long_zero_runs() {
    // §3.1: short run fields force redundant padding-zero entries (and
    // redundant zero compute) on long runs.
    let mut dense = vec![0.0f32; 1000];
    for i in (0..1000).step_by(100) {
        dense[i] = 1.0;
    }
    let rle = RleVector::from_dense(&dense, 4); // 4-bit runs, cap 15
    assert!(rle.padding_zeros() > 0);
    assert!(rle.one_sided_work() > rle.nnz());
    assert_eq!(rle.to_dense(), dense);
}

#[test]
fn inner_join_work_is_symmetric_and_minimal() {
    // The bit-mask join touches exactly the both-non-zero pairs; the CSR
    // merge join compares at least that many pointers.
    let a: Vec<f32> = (0..512)
        .map(|i| if i % 2 == 0 { 1.0 } else { 0.0 })
        .collect();
    let b: Vec<f32> = (0..512)
        .map(|i| if i % 3 == 0 { 2.0 } else { 0.0 })
        .collect();
    let va = SparseVector::from_dense(&a, 128);
    let vb = SparseVector::from_dense(&b, 128);
    let matches = va.join_work(&vb);
    assert_eq!(matches, vb.join_work(&va));
    let ia = IndexVector::from_dense(&a);
    let ib = IndexVector::from_dense(&b);
    assert!(ia.join_comparisons(&ib) >= matches);
    assert_eq!(va.dot(&vb), ia.dot(&ib));
}

#[test]
fn buffering_arithmetic_matches_section3() {
    let c = ClusterConfig::paper();
    assert_eq!(c.buffer_bytes_plain(), 20 * 1024); // §3.2: 20 KB
    assert_eq!(c.buffer_bytes_collocated(), 31 * 1024); // §3.3: 31 KB
                                                        // Per-multiplier: 640 B plain, 992 B collocated, both under SCNN's
                                                        // 1.625 KB (Table 2).
    assert!(c.buffer_bytes_collocated() / 32 < 1664);
}

#[test]
fn speedup_ordering_on_table3_densities() {
    // A layer at AlexNet Layer2 densities, scaled: the §5.1 ordering
    // Dense < One-sided < SparTen-no-GB ≤ GB-S ≤ GB-H must hold.
    let shape = ConvShape::new(192, 9, 9, 3, 48, 1, 1);
    let w = workload(&shape, 0.24, 0.35, 2019);
    let cfg = SimConfig::small();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let cycles: Vec<u64> = [
        Scheme::Dense,
        Scheme::OneSided,
        Scheme::SpartenNoGb,
        Scheme::SpartenGbS,
        Scheme::SpartenGbH,
    ]
    .iter()
    .map(|&s| simulate_layer(&w, &model, &cfg, s).cycles())
    .collect();
    assert!(cycles[0] > cycles[1], "Dense !> One-sided");
    assert!(cycles[1] > cycles[2], "One-sided !> no-GB");
    assert!(cycles[2] >= cycles[3], "no-GB !>= GB-S");
    assert!(cycles[3] >= cycles[4], "GB-S !>= GB-H");
}

#[test]
fn quadratic_compute_vs_linear_memory_reduction() {
    // §1/§5.5: compute shrinks with the density *product*, traffic only
    // linearly — compare a dense-ish and a sparse workload.
    let shape = ConvShape::new(64, 10, 10, 3, 16, 1, 1);
    let cfg = SimConfig::small();
    let runs: Vec<_> = [(0.8, 0.8, 1u64), (0.2, 0.2, 2u64)]
        .iter()
        .map(|&(di, df, seed)| {
            let w = workload(&shape, di, df, seed);
            let model = MaskModel::new(&w, 128);
            simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH)
        })
        .collect();
    let compute_ratio = runs[0].compute_cycles as f64 / runs[1].compute_cycles as f64;
    let traffic_ratio = runs[0].traffic.input_bytes / runs[1].traffic.input_bytes;
    assert!(
        compute_ratio > 2.0 * traffic_ratio,
        "compute {compute_ratio} vs traffic {traffic_ratio}"
    );
}

#[test]
fn sparten_handles_what_scnn_cannot() {
    // Any stride and fully-connected shapes run on SparTen with zero
    // wasted compute; SCNN wastes most of its products at stride 4.
    let fc = ConvShape::new(512, 1, 1, 1, 64, 1, 0);
    let strided = ConvShape::new(16, 21, 21, 11, 8, 4, 2);
    let cfg = SimConfig::small();
    for (shape, seed) in [(fc, 3u64), (strided, 4u64)] {
        let w = workload(&shape, 0.4, 0.4, seed);
        let model = MaskModel::new(&w, 128);
        let r = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH);
        assert_eq!(r.breakdown.zero, 0, "{shape:?}");
        assert!(r.accounting_holds());
    }
    let w = workload(&strided, 0.4, 0.4, 5);
    let model = MaskModel::new(&w, 128);
    let scnn = simulate_layer(&w, &model, &cfg, Scheme::Scnn);
    assert!(scnn.breakdown.zero > scnn.breakdown.nonzero);
}
