//! Cross-crate hardware invariants: the circuit models, the pipeline
//! timing, the permutation networks, and the area model must all tell one
//! consistent story about the same hardware.

use sparten::arch::{
    BenesNetwork, BrentKung, InnerJoinSequencer, JoinPipeline, KoggeStone, OutputCompactor,
    PermutationNetwork, PrefixCircuit, PriorityEncoder, Ripple, Sklansky,
};
use sparten::core::ClusterConfig;
use sparten::energy::cluster_asic_estimate;
use sparten::tensor::{SparseChunk, SparseMap};

#[test]
fn every_prefix_circuit_computes_the_same_function() {
    let circuits: [&dyn PrefixCircuit; 4] = [&Ripple, &Sklansky, &KoggeStone, &BrentKung];
    for width in [1usize, 5, 64, 128, 200] {
        let bools: Vec<bool> = (0..width).map(|i| (i * 13 + 7) % 3 == 0).collect();
        let m = SparseMap::from_bools(&bools);
        let reference = sparten::arch::prefix::reference_prefix_sums(&m);
        for c in circuits {
            assert_eq!(
                c.prefix_sums(&m),
                reference,
                "{} at width {width}",
                c.name()
            );
        }
    }
}

#[test]
fn depth_area_tradeoff_is_a_real_pareto_front() {
    // At the 128-bit chunk width: ripple is smallest+slowest, Sklansky and
    // Kogge-Stone are fastest, Brent-Kung sits between — no circuit
    // dominates on both axes.
    let stats = [
        Ripple.stats(128),
        BrentKung.stats(128),
        Sklansky.stats(128),
        KoggeStone.stats(128),
    ];
    assert!(stats[0].adders < stats[1].adders);
    assert!(stats[1].adders < stats[2].adders);
    assert!(stats[2].adders < stats[3].adders);
    assert!(stats[0].depth > stats[1].depth);
    assert!(stats[1].depth > stats[2].depth);
    assert_eq!(stats[2].depth, stats[3].depth);
}

#[test]
fn pipeline_critical_path_uses_the_deepest_circuit() {
    for chunk in [64usize, 128, 256] {
        let p = JoinPipeline::new(chunk);
        let enc = PriorityEncoder::new(chunk).depth();
        let prefix = Sklansky.stats(chunk).depth;
        assert_eq!(p.critical_stage_depth(), enc.max(prefix));
    }
}

#[test]
fn sequencer_cycles_match_pipeline_model() {
    // The join sequencer retires exactly one match per step; the pipeline
    // model's chunk cycles are that count plus fill.
    let a = SparseChunk::from_dense(&(0..128).map(|i| (i % 3) as f32).collect::<Vec<_>>());
    let b = SparseChunk::from_dense(&(0..128).map(|i| (i % 2) as f32).collect::<Vec<_>>());
    let matches = InnerJoinSequencer::new(&a, &b).count();
    let p = JoinPipeline::new(128);
    assert_eq!(p.chunk_cycles(matches), matches + p.stages());
}

#[test]
fn thinned_butterfly_is_cheaper_than_benes_and_slower_on_worst_case() {
    let butterfly = PermutationNetwork::new(64, 4);
    let benes = BenesNetwork::new(64);
    assert!(butterfly.switch_count() < benes.switch_count());
    // Worst case (full reversal): the thinned network takes multiple waves,
    // the Beneš one — that is the bandwidth it pays area for.
    let reversal: Vec<(usize, usize)> = (0..64).map(|i| (i, 63 - i)).collect();
    assert!(butterfly.route(&reversal).waves > 1);
    let perm: Vec<usize> = (0..64).rev().collect();
    assert_eq!(benes.route_permutation(&perm), 1);
}

#[test]
fn area_model_counts_match_circuit_structures() {
    // The Table 4 estimate must be built from the same structural counts
    // the circuit models report.
    let cluster = ClusterConfig::paper();
    let est = cluster_asic_estimate(&cluster);
    let prefix_row = est
        .components
        .iter()
        .find(|c| c.name == "Prefix-sum")
        .expect("row exists");
    // 2 circuits per CU × 32 CUs × Sklansky adders at 128 bits.
    let adders = 2 * 32 * Sklansky.stats(128).adders;
    let per_adder_um2 = prefix_row.area_mm2 * 1e6 / adders as f64;
    assert!(
        (14.0..16.0).contains(&per_adder_um2),
        "per-adder area {per_adder_um2} µm² out of the calibrated band"
    );

    let encoder_row = est
        .components
        .iter()
        .find(|c| c.name == "Priority Encoder")
        .expect("row exists");
    let nodes = 32 * PriorityEncoder::new(128).nodes();
    let per_node = encoder_row.area_mm2 * 1e6 / nodes as f64;
    assert!((14.0..17.0).contains(&per_node), "per-node area {per_node}");
}

#[test]
fn compactor_and_sequencer_compose_into_a_round_trip() {
    // A chunk joined against an all-ones chunk, written out through the
    // compactor, must reproduce the original chunk's packed values.
    let dense: Vec<f32> = (0..32)
        .map(|i| if i % 3 == 0 { (i + 1) as f32 } else { 0.0 })
        .collect();
    let chunk = SparseChunk::from_dense(&dense);
    let ones = SparseChunk::from_dense(&[1.0; 32]);
    let mut outputs = vec![0.0f32; 32];
    for step in InnerJoinSequencer::new(&chunk, &ones) {
        outputs[step.position] = step.product;
    }
    let compacted = OutputCompactor::new(32).compact(&outputs);
    assert_eq!(compacted, chunk);
}
