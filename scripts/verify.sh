#!/usr/bin/env sh
# Offline tier-1 verification: build, test, and a small parallel smoke run
# of the orchestration harness (cold cache, 2 workers, then warm re-run).
# No network access required; the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== harness smoke run (cold, 2 jobs) =="
SMOKE_CACHE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE"' EXIT
cargo run -q --release -p sparten-harness -- \
  run --filter fig7 --jobs 2 --cache-dir "$SMOKE_CACHE" --no-artifacts

echo "== harness smoke run (warm, 2 jobs) =="
cargo run -q --release -p sparten-harness -- \
  run --filter fig7 --jobs 2 --cache-dir "$SMOKE_CACHE" --no-artifacts

echo "== harness telemetry smoke (Chrome trace + report) =="
SMOKE_TEL="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE" "$SMOKE_TEL"' EXIT
cargo run -q --release -p sparten-harness -- \
  run --filter fig10_alexnet --jobs 2 --cache-dir "$SMOKE_CACHE" \
  --no-artifacts --telemetry-dir "$SMOKE_TEL"
test -s "$SMOKE_TEL/fig10_alexnet_breakdown.json"
cargo run -q --release -p sparten-harness -- report --telemetry-dir "$SMOKE_TEL"

echo "== fault-campaign smoke (seeded, zero silently-wrong) =="
# The faults command exits non-zero on any silently-wrong or crashed
# trial; grep the coverage footer as a belt-and-braces assertion.
cargo run -q --release -p sparten-harness -- faults --seed 1 --quick \
  | tee /dev/stderr | grep -q "0 silently-wrong, 0 crashed"

echo "verify: OK"
