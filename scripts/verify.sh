#!/usr/bin/env sh
# Offline tier-1 verification: build, test, and a small parallel smoke run
# of the orchestration harness (cold cache, 2 workers, then warm re-run).
# No network access required; the workspace has no external dependencies.
set -eu

cd "$(dirname "$0")/.."

echo "== cargo build --release =="
cargo build --workspace --release

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace -- -D warnings

echo "== cargo test =="
cargo test --workspace -q

echo "== harness smoke run (cold, 2 jobs) =="
SMOKE_CACHE="$(mktemp -d)"
SMOKE_JOURNAL="$(mktemp -d)"
SMOKE_EVENTS="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE" "$SMOKE_JOURNAL" "$SMOKE_EVENTS"' EXIT
cargo run -q --release -p sparten-harness -- \
  run --filter fig7 --jobs 2 --cache-dir "$SMOKE_CACHE" \
  --journal-dir "$SMOKE_JOURNAL" --no-artifacts --events-dir "$SMOKE_EVENTS"
# The run wrote a structured event log that the reader parses end-to-end
# (the events subcommand exits non-zero on any malformed JSONL line).
test -n "$(find "$SMOKE_EVENTS" -name '*.jsonl')"
cargo run -q --release -p sparten-harness -- events \
  --events-dir "$SMOKE_EVENTS" | grep -q '"kind":"run.done"'

echo "== harness smoke run (warm, 2 jobs) =="
cargo run -q --release -p sparten-harness -- \
  run --filter fig7 --jobs 2 --cache-dir "$SMOKE_CACHE" \
  --journal-dir "$SMOKE_JOURNAL" --no-artifacts --events-dir "$SMOKE_EVENTS"

echo "== harness telemetry smoke (Chrome trace + report) =="
SMOKE_TEL="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE" "$SMOKE_JOURNAL" "$SMOKE_EVENTS" "$SMOKE_TEL"' EXIT
cargo run -q --release -p sparten-harness -- \
  run --filter fig10_alexnet --jobs 2 --cache-dir "$SMOKE_CACHE" \
  --journal-dir "$SMOKE_JOURNAL" --no-artifacts --telemetry-dir "$SMOKE_TEL" \
  --events-dir "$SMOKE_EVENTS"
test -s "$SMOKE_TEL/fig10_alexnet_breakdown.json"
cargo run -q --release -p sparten-harness -- report --telemetry-dir "$SMOKE_TEL"
# The machine-readable form carries the same jobs plus p50/p95/p99.
cargo run -q --release -p sparten-harness -- report --telemetry-dir "$SMOKE_TEL" \
  --json | grep -q '"histograms"'

echo "== interrupted-run smoke (crash -> resume -> byte-identical, fsck clean) =="
SMOKE_CRASH="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE" "$SMOKE_JOURNAL" "$SMOKE_EVENTS" "$SMOKE_TEL" "$SMOKE_CRASH"' EXIT
HARNESS_BIN="$PWD/target/release/sparten-harness"
mkdir -p "$SMOKE_CRASH/interrupted" "$SMOKE_CRASH/clean"
# Crash at the worst legal instant (point journaled, not yet cached):
# the run must exit non-zero and leave a dangling journal behind.
( cd "$SMOKE_CRASH/interrupted" && \
  ! "$HARNESS_BIN" run --filter fig7_alexnet_speedup --jobs 2 \
      --abort-after 2 >/dev/null 2>&1 )
# fsck sees the crashed tree as defective (the resumable journal).
( cd "$SMOKE_CRASH/interrupted" && ! "$HARNESS_BIN" fsck >/dev/null )
# Resume replays the two journaled points and finishes the run.
( cd "$SMOKE_CRASH/interrupted" && \
  "$HARNESS_BIN" run --filter fig7_alexnet_speedup --jobs 2 --resume \
    > resume.out )
grep -q "resumed: 2 completed point(s)" "$SMOKE_CRASH/interrupted/resume.out"
# The recovered artifacts are byte-identical to an uninterrupted run's.
( cd "$SMOKE_CRASH/clean" && \
  "$HARNESS_BIN" run --filter fig7_alexnet_speedup --jobs 2 >/dev/null )
# Event logs are diagnostics, not results: per-run timings differ.
diff -r -x cache -x journal -x events \
  "$SMOKE_CRASH/interrupted/results" "$SMOKE_CRASH/clean/results"
# Both trees audit clean afterwards.
( cd "$SMOKE_CRASH/interrupted" && "$HARNESS_BIN" fsck >/dev/null )
( cd "$SMOKE_CRASH/clean" && "$HARNESS_BIN" fsck >/dev/null )

echo "== dse smoke (quick sweep: determinism, frontier, crash -> resume) =="
SMOKE_DSE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE" "$SMOKE_JOURNAL" "$SMOKE_EVENTS" "$SMOKE_TEL" "$SMOKE_CRASH" "$SMOKE_DSE"' EXIT
mkdir -p "$SMOKE_DSE/a" "$SMOKE_DSE/b" "$SMOKE_DSE/crash"
# Two cold sweeps of the 16,200-config quick grid must agree byte for byte.
( cd "$SMOKE_DSE/a" && "$HARNESS_BIN" dse --quick --jobs 2 >/dev/null )
( cd "$SMOKE_DSE/b" && "$HARNESS_BIN" dse --quick --jobs 2 >/dev/null )
diff "$SMOKE_DSE/a/results/dse/dse-quick_frontier.json" \
     "$SMOKE_DSE/b/results/dse/dse-quick_frontier.json"
diff "$SMOKE_DSE/a/results/dse/dse-quick_points.json" \
     "$SMOKE_DSE/b/results/dse/dse-quick_points.json"
# The Pareto frontier is non-empty and carries both objectives.
grep -q '"throughput_macs_per_cycle"' "$SMOKE_DSE/a/results/dse/dse-quick_frontier.json"
grep -q '"energy_per_mac_pj"' "$SMOKE_DSE/a/results/dse/dse-quick_frontier.json"
# Kill the sweep after 10 computed batches, resume it, and demand the
# recovered artifacts match an uninterrupted run's exactly.
( cd "$SMOKE_DSE/crash" && \
  ! "$HARNESS_BIN" dse --quick --jobs 2 --abort-after 10 >/dev/null 2>&1 )
( cd "$SMOKE_DSE/crash" && \
  "$HARNESS_BIN" dse --quick --jobs 2 --resume > resume.out )
grep -q "resumed: 10 completed point(s)" "$SMOKE_DSE/crash/resume.out"
diff -r -x cache -x journal -x events \
  "$SMOKE_DSE/crash/results" "$SMOKE_DSE/a/results"

echo "== analytical-model oracle (release: full golden catalog) =="
cargo test -q --release -p sparten-model

echo "== bench smoke (quick registry, pinned schema, kernel speedups) =="
# Write to a scratch path so the smoke never clobbers the committed
# BENCH_sim.json baseline; --check-schema parses the artifact back.
SMOKE_BENCH="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE" "$SMOKE_JOURNAL" "$SMOKE_EVENTS" "$SMOKE_TEL" "$SMOKE_CRASH" "$SMOKE_DSE" "$SMOKE_BENCH"' EXIT
cargo run -q --release -p sparten-harness -- bench --quick --check-schema \
  --out "$SMOKE_BENCH/BENCH_sim.json"
test -s "$SMOKE_BENCH/BENCH_sim.json"

echo "== unknown-flag handling (exit 2 + subcommand usage) =="
# A bad flag after a valid subcommand must name the flag, print that
# subcommand's usage, and exit 2 (not 1, which is reserved for bad values).
set +e
"$PWD/target/release/sparten-harness" run --no-such-flag \
  > "$SMOKE_BENCH/badflag.out" 2>&1
BADFLAG_STATUS=$?
set -e
test "$BADFLAG_STATUS" -eq 2
grep -q -- "--no-such-flag" "$SMOKE_BENCH/badflag.out"
grep -q "sparten-harness run" "$SMOKE_BENCH/badflag.out"

echo "== serve smoke (ephemeral port, streamed run, metrics, SIGTERM drain) =="
SMOKE_SERVE="$(mktemp -d)"
trap 'rm -rf "$SMOKE_CACHE" "$SMOKE_JOURNAL" "$SMOKE_EVENTS" "$SMOKE_TEL" "$SMOKE_CRASH" "$SMOKE_DSE" "$SMOKE_BENCH" "$SMOKE_SERVE"' EXIT
"$PWD/target/release/sparten-harness" serve --addr 127.0.0.1:0 \
  --port-file "$SMOKE_SERVE/port" --jobs 2 \
  --cache-dir "$SMOKE_SERVE/cache" --journal-dir "$SMOKE_SERVE/journal" \
  --events-dir "$SMOKE_SERVE/events" \
  --no-artifacts > "$SMOKE_SERVE/serve.out" 2>&1 &
SERVE_PID=$!
# The daemon writes its bound address atomically once the socket is live.
for _ in $(seq 1 100); do
  test -s "$SMOKE_SERVE/port" && break
  sleep 0.1
done
test -s "$SMOKE_SERVE/port"
SERVE_ADDR="$(cat "$SMOKE_SERVE/port")"
curl -sf "http://$SERVE_ADDR/healthz" | grep -q ok
# A submitted job streams NDJSON progress and ends with a done event.
curl -sf -X POST "http://$SERVE_ADDR/run?job=table1_design_goals" \
  | tee "$SMOKE_SERVE/run.ndjson" | grep -q '"event":"done"'
grep -q '"status":"ok"' "$SMOKE_SERVE/run.ndjson"
# A repeat of the same job is answered from the cache, off the executor.
curl -sf -X POST "http://$SERVE_ADDR/run?job=table1_design_goals" \
  | grep -q '"role":"cache"'
# Default /metrics stays the line-oriented text report.
curl -sf "http://$SERVE_ADDR/metrics" | grep -q "serve/exec.runs"
# Content negotiation: the Prometheus exposition is well-formed (promlint
# re-validates TYPE lines, sample syntax, and bucket monotonicity) and
# carries the build-info series.
curl -sf -H 'Accept: text/plain; version=0.0.4' "http://$SERVE_ADDR/metrics" \
  > "$SMOKE_SERVE/metrics.prom"
grep -q '^# TYPE ' "$SMOKE_SERVE/metrics.prom"
grep -q 'sparten_build_info{' "$SMOKE_SERVE/metrics.prom"
"$PWD/target/release/sparten-harness" promlint --file "$SMOKE_SERVE/metrics.prom"
# The trace export is one Chrome trace of every request's causal chain.
curl -sf "http://$SERVE_ADDR/trace" | grep -q '"traceEvents"'
# The accepted event named the request's trace id; remember it for the
# post-drain event-log check.
TRACE_HEX="$(grep -o '"trace":"[0-9a-f]*"' "$SMOKE_SERVE/run.ndjson" | head -1 | cut -d'"' -f4)"
test -n "$TRACE_HEX"
# SIGTERM drains: in-flight work finishes and the exit code is 75.
kill -TERM "$SERVE_PID"
set +e
wait "$SERVE_PID"
SERVE_STATUS=$?
set -e
test "$SERVE_STATUS" -eq 75
grep -q "drained" "$SMOKE_SERVE/serve.out"
# The drain seals every journal: no dangling .jsonl survives.
test -z "$(find "$SMOKE_SERVE/journal" -name '*.jsonl' 2>/dev/null)"
# The drain flushed the buffered event log, every line parses, and the
# executed run's events carry the trace id the client saw.
test -n "$(find "$SMOKE_SERVE/events" -name '*.jsonl')"
"$PWD/target/release/sparten-harness" events \
  --events-dir "$SMOKE_SERVE/events" > "$SMOKE_SERVE/events.out"
test -s "$SMOKE_SERVE/events.out"
"$PWD/target/release/sparten-harness" events \
  --events-dir "$SMOKE_SERVE/events" --trace "$TRACE_HEX" \
  | grep -q "\"trace\":\"$TRACE_HEX\""

echo "== fault-campaign smoke (seeded, zero silently-wrong) =="
# The faults command exits non-zero on any silently-wrong or crashed
# trial; grep the coverage footer as a belt-and-braces assertion.
cargo run -q --release -p sparten-harness -- faults --seed 1 --quick \
  | tee /dev/stderr | grep -q "0 silently-wrong, 0 crashed"

echo "== chaos-campaign smoke (hostile sockets, zero invariant violations) =="
# One seeded trial per adversary class (torn body, slow-loris,
# mid-stream disconnect, deadline storm, queue flood) against a real
# server; exits non-zero on any leaked permit, unsealed journal, stuck
# session, or hung thread.
cargo run -q --release -p sparten-harness -- chaos --seed 1 --quick \
  | tee /dev/stderr | grep -q "0 violated, 0 crashed"

echo "== disk-fault smoke (power-cut oracle, zero recovery violations) =="
# One seeded trial per filesystem lie (ENOSPC, short write, fsync
# failure, rename failure, bit rot): run on a fault-injecting VFS, cut
# the power at a seeded op-log prefix, recover with resume + fsck
# --repair, and byte-compare against a clean run. Exits non-zero on any
# recovery violation; the counters line proves faults were injected.
DISKCHAOS_OUT="$(cargo run -q --release -p sparten-harness -- diskchaos --seed 1 --quick)"
echo "$DISKCHAOS_OUT" | grep -q "0 violated, 0 crashed"
echo "$DISKCHAOS_OUT" | grep -q "disk.injected="
echo "$DISKCHAOS_OUT" | grep -q "disk.enospc="
echo "$DISKCHAOS_OUT" | grep -q "recovery.repaired="
echo "$DISKCHAOS_OUT"

echo "verify: OK"
