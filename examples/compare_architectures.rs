//! Compares all eight architectures of §5.1 on one GoogLeNet inception
//! layer and prints speedups, breakdowns, traffic, and energy.
//!
//! Run with: `cargo run --release -p sparten --example compare_architectures`

use sparten::energy::EnergyModel;
use sparten::nn::googlenet;
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};

fn main() {
    let net = googlenet();
    let layer = net.layer("Inc3a_3x3").expect("layer exists");
    let cfg = SimConfig::small();
    let w = layer.workload(2019);
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let energy = EnergyModel::nm45();

    println!(
        "GoogLeNet {} — {} dense MACs, {} true sparse MACs ({:.1}x reduction)\n",
        layer.name,
        layer.dense_macs(),
        model.total_sparse_macs(),
        layer.dense_macs() as f64 / model.total_sparse_macs() as f64
    );

    let dense = simulate_layer(&w, &model, &cfg, Scheme::Dense);
    println!(
        "{:<15} {:>10} {:>8} {:>10} {:>12} {:>12}",
        "scheme", "cycles", "speedup", "mem-bound", "DRAM KB", "energy (uJ)"
    );
    for scheme in Scheme::all() {
        let r = simulate_layer(&w, &model, &cfg, scheme);
        let buffer = if scheme == Scheme::Dense { 8 } else { 992 };
        let e = energy.layer_energy(&r, buffer);
        println!(
            "{:<15} {:>10} {:>7.2}x {:>10} {:>12.1} {:>12.2}",
            r.scheme,
            r.cycles(),
            r.speedup_over(&dense),
            r.is_memory_bound(),
            r.traffic.total_bytes() / 1024.0,
            e.total_pj() / 1e6,
        );
    }
}
