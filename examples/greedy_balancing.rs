//! Demonstrates greedy balancing end to end: the density imbalance of a
//! layer's filters, GB-S's whole-filter pairing with static next-layer
//! unshuffling, and GB-H's per-chunk pairing — including the proof that a
//! two-layer network computes identical results with and without GB-S.
//!
//! Run with: `cargo run --release -p sparten --example greedy_balancing`

use sparten::core::balance::{
    paired_chunk_densities, unshuffle_next_layer, BalanceMode, LayerBalance,
};
use sparten::core::{AcceleratorConfig, ClusterConfig, SparTenEngine};
use sparten::nn::generate::{random_filters, workload};
use sparten::nn::{conv2d, ConvShape, Filter};

fn main() {
    let shape = ConvShape::new(64, 10, 10, 3, 32, 1, 1);
    let w = workload(&shape, 0.4, 0.35, 3);

    // Filter density spread before balancing.
    let mut densities: Vec<f64> = w.filters.iter().map(Filter::density).collect();
    densities.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!(
        "filter densities: min {:.2}, median {:.2}, max {:.2}",
        densities[0],
        densities[densities.len() / 2],
        densities[densities.len() - 1]
    );

    // GB-H pairing flattens per-chunk density variation (Figure 14).
    let pairs = paired_chunk_densities(&w.filters, 128, 0);
    let (pmin, pmax) = pairs
        .iter()
        .fold((f64::MAX, f64::MIN), |(lo, hi), &d| (lo.min(d), hi.max(d)));
    println!("paired chunk-0 densities after GB-H: min {pmin:.2}, max {pmax:.2}");

    // Makespans with and without balancing on the functional engine.
    let engine = SparTenEngine::new(AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: 8,
            chunk_size: 128,
            bisection_limit: 4,
        },
        num_clusters: 2,
    });
    for mode in [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH] {
        let run = engine.run_layer(&w, mode, false);
        println!("{mode:?}: makespan {} cycles", run.trace.makespan());
    }

    // Two-layer equivalence: GB-S shuffles layer 1's output channels, and
    // statically unshuffling layer 2's weights makes the network's final
    // output identical to the unbalanced run.
    let balance = LayerBalance::new(&w.filters, 8, 128, BalanceMode::GbS);
    let l2_shape = ConvShape::new(32, shape.out_height(), shape.out_width(), 3, 8, 1, 1);
    let l2_filters = random_filters(&l2_shape, 0.5, 0.3, 9);

    // Path A: logical-order layer-1 output into the original layer 2.
    let run = engine.run_layer(&w, BalanceMode::GbS, true);
    let logical = run.logical_output();
    let out_a = conv2d(&logical, &l2_filters, &l2_shape);

    // Path B: produced-order output into the unshuffled layer 2.
    let mut unshuffled = l2_filters.clone();
    unshuffle_next_layer(&mut unshuffled, &balance.produced_channels);
    let out_b = conv2d(&run.produced, &unshuffled, &l2_shape);

    let max_err = out_a
        .as_slice()
        .iter()
        .zip(out_b.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("two-layer unshuffle equivalence: max |err| = {max_err:.2e}");
    assert!(max_err < 1e-3);
    println!("GB-S static unshuffling preserves the network's semantics.");
}
