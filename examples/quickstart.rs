//! Quickstart: sparse tensors, an inner join, and one simulated layer.
//!
//! Run with: `cargo run --release -p sparten --example quickstart`

use sparten::nn::alexnet;
use sparten::sim::{simulate_spec, Scheme, SimConfig};
use sparten::tensor::{SparseVector, CHUNK_SIZE};

fn main() {
    // 1. The bit-mask representation: build two sparse vectors and take
    //    their dot product — the inner join of the paper's §3.1.
    let a = SparseVector::from_dense(&[0.0, 2.0, 0.0, 3.0, 1.0, 0.0], CHUNK_SIZE);
    let b = SparseVector::from_dense(&[1.0, 4.0, 5.0, 0.0, 2.0, 9.0], CHUNK_SIZE);
    println!("inner join: a · b = {}", a.dot(&b));
    println!(
        "a: {} non-zeros in {} positions ({} bits with 8-bit values)",
        a.nnz(),
        a.logical_len(),
        a.storage_bits(8)
    );

    // 2. Simulate AlexNet Layer2 on Dense, One-sided, and SparTen, at the
    //    paper's Table 3 densities.
    let net = alexnet();
    let layer = net.layer("Layer2").expect("AlexNet has Layer2");
    let cfg = SimConfig::large();
    println!(
        "\nAlexNet {} ({}x{}x{} input @ {:.0}%, {} {}x{}x{} filters @ {:.0}%):",
        layer.name,
        layer.shape.in_height,
        layer.shape.in_width,
        layer.shape.in_channels,
        layer.input_density * 100.0,
        layer.shape.num_filters,
        layer.shape.kernel,
        layer.shape.kernel,
        layer.shape.in_channels,
        layer.filter_density * 100.0,
    );
    let dense = simulate_spec(layer, &cfg, Scheme::Dense, 1);
    for scheme in [Scheme::Dense, Scheme::OneSided, Scheme::SpartenGbH] {
        let r = simulate_spec(layer, &cfg, scheme, 1);
        println!(
            "  {:<14} {:>12} cycles   {:.2}x over Dense",
            r.scheme,
            r.cycles(),
            r.speedup_over(&dense)
        );
    }
}
