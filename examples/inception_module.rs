//! Runs a full GoogLeNet Inception 3a module: functional forward pass with
//! branch concatenation, then each branch's main convolution through the
//! cycle-level simulators with its *real* intermediate input.
//!
//! Run with: `cargo run --release -p sparten --example inception_module`

use sparten::nn::generate::random_tensor;
use sparten::nn::inception::inception_3a;
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};

fn main() {
    let module = inception_3a(2019);
    let input = random_tensor(192, 28, 28, 0.58, 7);
    println!(
        "Inception 3a: 192x28x28 input @ {:.0}% → {} output channels",
        input.density() * 100.0,
        module.out_channels()
    );

    let out = module.forward(&input);
    println!(
        "functional forward: output {}x{}x{}, density {:.1}% after ReLU\n",
        out.channels(),
        out.height(),
        out.width(),
        out.density() * 100.0
    );

    let cfg = SimConfig::small();
    println!(
        "{:<10} {:>12} {:>12} {:>9}",
        "branch", "dense cyc", "sparten cyc", "speedup"
    );
    let labels = ["1x1", "3x3", "5x5", "poolprj"];
    let mut total_dense = 0u64;
    let mut total_sparten = 0u64;
    for (label, w) in labels.iter().zip(module.branch_workloads(&input)) {
        let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let dense = simulate_layer(&w, &model, &cfg, Scheme::Dense);
        let sparten = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH);
        total_dense += dense.cycles();
        total_sparten += sparten.cycles();
        println!(
            "{:<10} {:>12} {:>12} {:>8.2}x",
            label,
            dense.cycles(),
            sparten.cycles(),
            sparten.speedup_over(&dense)
        );
    }
    println!(
        "{:<10} {:>12} {:>12} {:>8.2}x  (branches run back to back)",
        "module",
        total_dense,
        total_sparten,
        total_dense as f64 / total_sparten as f64
    );
}
