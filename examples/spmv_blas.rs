//! The accelerator's BLAS-like interface (§3.2): incremental vector
//! construction and sparse `C ← A·x + y` / `C ← A × B`, plus the inner-join
//! work the accelerator would execute versus a dense machine.
//!
//! Run with: `cargo run --release -p sparten --example spmv_blas`

use sparten::core::{SparseMatrix, VectorBuilder};
use sparten::tensor::CHUNK_SIZE;

fn main() {
    // Build a sparse 4x512 matrix (e.g. four linearized filters).
    let n = 512;
    let rows: Vec<Vec<f32>> = (0..4)
        .map(|r| {
            (0..n)
                .map(|i| {
                    if (i + r * 3) % 5 == 0 {
                        (i % 7 + 1) as f32
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    let a = SparseMatrix::from_rows(&rows, CHUNK_SIZE);

    // Assemble x incrementally from non-contiguous segments, as the CPU
    // does when linearizing a tensor window on the fly.
    let mut builder = VectorBuilder::new(CHUNK_SIZE);
    for seg in 0..4 {
        let segment: Vec<f32> = (0..n / 4)
            .map(|i| if i % 3 == 0 { (seg + 1) as f32 } else { 0.0 })
            .collect();
        builder.append(&segment);
    }
    let x = builder.finish();

    let y = vec![10.0; a.num_rows()];
    let c = a.spmv(&x, Some(&y));
    println!("C = A·x + y = {c:?}");
    println!(
        "inner-join MACs: {} (a dense machine would do {})",
        a.spmv_work(&x),
        a.num_rows() * n
    );

    // Matrix-matrix: B given as columns.
    let b_cols = vec![x.clone(), x];
    let cc = a.spmm(&b_cols);
    println!(
        "C = A × B: {} rows x {} cols, row 0 = {:?}",
        cc.len(),
        cc[0].len(),
        cc[0]
    );
}
