//! Runs a miniaturized AlexNet-style layer through the *functional* SparTen
//! engine and checks it against the dense reference convolution, then
//! prints the execution-time breakdown of the cycle-level simulators.
//!
//! Run with: `cargo run --release -p sparten --example alexnet_layer`

use sparten::core::{AcceleratorConfig, BalanceMode, SparTenEngine};
use sparten::nn::generate::workload;
use sparten::nn::{conv2d, ConvShape};
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};

fn main() {
    // AlexNet Layer2 shrunk to engine-friendly size: same densities,
    // 3x3x192 filters, smaller plane and filter count.
    let shape = ConvShape::new(192, 13, 13, 3, 64, 1, 1);
    let w = workload(&shape, 0.24, 0.35, 7);

    // Functional execution on the real datapath model (inner-join
    // sequencers, GB-H permutation routing, output compaction).
    let engine = SparTenEngine::new(AcceleratorConfig::small());
    let run = engine.run_layer(&w, BalanceMode::GbH, false);
    let reference = conv2d(&w.input, &w.filters, &shape);
    let got = run.logical_output();
    let max_err = got
        .as_slice()
        .iter()
        .zip(reference.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!(
        "functional engine vs dense reference: {} outputs, max |err| = {:.2e}",
        reference.len(),
        max_err
    );
    assert!(max_err < 1e-2, "engine must match the reference");
    println!(
        "engine trace: {} useful MACs, makespan {} cycles",
        run.trace.total_macs(),
        run.trace.makespan()
    );

    // Cycle-level simulation of the same layer across schemes.
    let cfg = SimConfig::small();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    println!("\nscheme          cycles     nonzero/zero/intra/inter (fraction of own slots)");
    for scheme in [
        Scheme::Dense,
        Scheme::OneSided,
        Scheme::SpartenNoGb,
        Scheme::SpartenGbS,
        Scheme::SpartenGbH,
        Scheme::Scnn,
    ] {
        let r = simulate_layer(&w, &model, &cfg, scheme);
        let f = r.breakdown_fractions();
        println!(
            "{:<14} {:>9}   {:.2}/{:.2}/{:.2}/{:.2}",
            r.scheme,
            r.cycles(),
            f[0],
            f[1],
            f[2],
            f[3]
        );
    }
}
