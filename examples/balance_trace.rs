//! Figure 6, live: traces one cluster's per-chunk unit occupancy without
//! balancing and with GB-H, and renders the useful/idle strips.
//!
//! Run with: `cargo run --release -p sparten --example balance_trace`

use sparten::core::balance::BalanceMode;
use sparten::nn::generate::workload;
use sparten::nn::ConvShape;
use sparten::sim::{trace_cluster, SimConfig};

fn main() {
    // A high-spread filter set on a small cluster makes imbalance visible.
    // No padding, so the traced first window has no all-zero border taps.
    let shape = ConvShape::new(128, 6, 6, 3, 8, 1, 0);
    let w = workload(&shape, 0.4, 0.35, 6);
    let mut cfg = SimConfig::small();
    cfg.accel.cluster.compute_units = 4;

    for mode in [BalanceMode::None, BalanceMode::GbH] {
        let log = trace_cluster(&w, &cfg, mode, 1);
        println!(
            "== {mode:?}: utilization {:.0}% ==",
            log.utilization() * 100.0
        );
        print!("{}", log.render(3, 40));
        println!();
    }
    println!("'#' = useful MAC cycles, '.' = idle at the chunk barrier (Figure 6).");
}
