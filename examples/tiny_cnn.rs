//! A complete tiny CNN — conv → ReLU → pool → conv → ReLU → pool → FC —
//! running every multiply on the SparTen functional engine, with GB-S's
//! static weight unshuffling carrying the shuffled channel order from each
//! conv layer into the next. The whole pipeline is verified against the
//! dense reference.
//!
//! Run with: `cargo run --release -p sparten --example tiny_cnn`

use sparten::core::balance::{unshuffle_next_layer, BalanceMode, LayerBalance};
use sparten::core::{AcceleratorConfig, BalanceMode as Mode, ClusterConfig, SparTenEngine};
use sparten::nn::generate::{random_filters, random_tensor, Workload};
use sparten::nn::{conv2d, max_pool, ConvShape, FcLayer};

fn main() {
    let units = 8;
    let engine = SparTenEngine::new(AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: units,
            chunk_size: 128,
            bisection_limit: 4,
        },
        num_clusters: 4,
    });

    // A 16x16 8-channel "image" with natural sparsity.
    let image = random_tensor(8, 16, 16, 0.6, 1);
    let c1 = ConvShape::new(8, 16, 16, 3, 16, 1, 1);
    let c1_filters = random_filters(&c1, 0.5, 0.4, 2);
    let c2 = ConvShape::new(16, 8, 8, 3, 32, 1, 1);
    let c2_filters = random_filters(&c2, 0.4, 0.4, 3);
    let fc = FcLayer::random(32 * 4 * 4, 10, 0.4, 4);

    // ---- Reference path (dense, logical channel order everywhere).
    let mut r1 = conv2d(&image, &c1_filters, &c1);
    r1.relu();
    let r1p = max_pool(&r1, 2, 2);
    let mut r2 = conv2d(&r1p, &c2_filters, &c2);
    r2.relu();
    let r2p = max_pool(&r2, 2, 2);
    let reference = fc.forward(r2p.as_slice(), false);

    // ---- Accelerator path: conv1 runs GB-S (shuffled output channels);
    // conv2's weights are statically unshuffled so it consumes the produced
    // order directly; conv2 itself runs GB-H, and the FC layer's weights
    // absorb conv2's shuffle the same way.
    let b1 = LayerBalance::new(&c1_filters, units, 128, BalanceMode::GbS);
    let run1 = engine.run_layer(
        &Workload {
            input: image.clone(),
            filters: c1_filters.clone(),
            shape: c1,
        },
        Mode::GbS,
        true,
    );
    let a1p = max_pool(&run1.produced, 2, 2); // pooling is channel-local

    let mut c2_unshuffled = c2_filters.clone();
    unshuffle_next_layer(&mut c2_unshuffled, &b1.produced_channels);
    let b2 = LayerBalance::new(&c2_unshuffled, units, 128, BalanceMode::GbH);
    let run2 = engine.run_layer(
        &Workload {
            input: a1p,
            filters: c2_unshuffled,
            shape: c2,
        },
        Mode::GbH,
        true,
    );
    let a2p = max_pool(&run2.produced, 2, 2);

    // The FC layer sees channels in conv2's produced order: permute its
    // input features accordingly (channel-major within each position, so
    // this is a per-channel gather — GB-S's unshuffle generalized to FC).
    let fc_as_conv = fc.to_workload(&vec![0.0; fc.in_features()]);
    let fc_rows: Vec<Vec<f32>> = (0..10)
        .map(|o| {
            let orig = fc_as_conv.filters[o].weights().as_slice();
            let mut w = vec![0.0f32; fc.in_features()];
            for (p, &logical) in b2.produced_channels.iter().enumerate() {
                for pos in 0..16 {
                    // Z-first layout: feature index = z + 32 · position.
                    w[p + 32 * pos] = orig[logical + 32 * pos];
                }
            }
            w
        })
        .collect();
    let fc_unshuffled = FcLayer::new(fc_rows);
    let got = {
        let w = fc_unshuffled.to_workload(a2p.as_slice());
        let run = engine.run_layer(&w, Mode::GbH, false);
        let out = run.logical_output();
        (0..10).map(|f| out.get(f, 0, 0)).collect::<Vec<f32>>()
    };

    let max_err = got
        .iter()
        .zip(&reference)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("class scores (engine):    {got:?}");
    println!("class scores (reference): {reference:?}");
    println!("max |err| = {max_err:.2e}");
    assert!(max_err < 1e-2, "pipeline must match the reference");
    println!(
        "\nengine MACs: conv1 {} + conv2 {} — every layer sparse, every shuffle absorbed statically",
        run1.trace.total_macs(),
        run2.trace.total_macs()
    );
}
