//! LSTM inference with the matrix-vector products executed on the SparTen
//! functional engine — the paper's §7 "non-convolutional DNNs" extension.
//!
//! Each step's two stacked projections (Wx·x and Wh·h) run as 1×1
//! convolutions on the accelerator model; the CPU finishes the gate math.
//! The whole sequence is checked against the dense reference.
//!
//! Run with: `cargo run --release -p sparten --example lstm_inference`

use sparten::core::{AcceleratorConfig, BalanceMode, SparTenEngine};
use sparten::nn::{LstmCell, LstmState};

fn project(engine: &SparTenEngine, layer: &sparten::nn::FcLayer, x: &[f32]) -> Vec<f32> {
    let w = layer.to_workload(x);
    let run = engine.run_layer(&w, BalanceMode::GbH, false);
    let out = run.logical_output();
    (0..layer.out_features())
        .map(|f| out.get(f, 0, 0))
        .collect()
}

fn main() {
    let input = 64;
    let hidden = 32;
    let cell = LstmCell::random(input, hidden, 0.35, 42);
    println!(
        "LSTM cell: {input} → {hidden}, weight density ≈ 35% \
         (Wx {}x{}, Wh {}x{})",
        cell.wx().out_features(),
        cell.wx().in_features(),
        cell.wh().out_features(),
        cell.wh().in_features(),
    );

    // A short input sequence with natural activation sparsity.
    let sequence: Vec<Vec<f32>> = (0..6)
        .map(|t| {
            (0..input)
                .map(|i| {
                    if (i + t) % 3 == 0 {
                        ((i as f32) - 32.0) / 16.0
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();

    let engine = SparTenEngine::new(AcceleratorConfig::small());
    let mut state = LstmState::zeros(hidden);
    let mut macs = 0u64;
    for (t, x) in sequence.iter().enumerate() {
        let px = project(&engine, cell.wx(), x);
        let ph = project(&engine, cell.wh(), &state.h);
        state = cell.step_from_projections(&px, &ph, &state);
        // Count the accelerator's useful work for this step.
        let wx_run = engine.run_layer(&cell.wx().to_workload(x), BalanceMode::GbH, false);
        let wh_run = engine.run_layer(&cell.wh().to_workload(&state.h), BalanceMode::GbH, false);
        macs += wx_run.trace.total_macs() + wh_run.trace.total_macs();
        println!("step {t}: h[0..4] = {:?}", &state.h[..4.min(state.h.len())]);
    }

    // Verify against the dense reference run of the same sequence.
    let reference = cell.run_sequence(&sequence);
    let max_err = state
        .h
        .iter()
        .zip(&reference.h)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("\nengine vs dense reference: max |err| = {max_err:.2e}");
    assert!(max_err < 1e-3);
    let dense_macs = 6 * (cell.wx().in_features() + hidden) * 4 * hidden;
    println!("accelerator useful MACs: {macs} (a dense engine would do {dense_macs})");
}
