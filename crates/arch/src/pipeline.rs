//! The compute unit's join pipeline: stage-level timing of one chunk.
//!
//! §5.3: "the sparse computation latency overheads do not hurt performance
//! due to simple pipelining". The datapath per match is AND-result update →
//! priority encode → prefix-sum offset lookup → operand fetch → multiply-
//! accumulate; with one pipeline register per stage the unit retires one
//! match per cycle after the pipe fills. This model computes a chunk's
//! cycle count from the circuit depths, quantifying (a) the fill/drain cost
//! the simulators fold into their one-cycle chunk overhead and (b) why the
//! 800 MHz clock (Table 4) is achievable: every stage is log-depth.

use crate::encoder::PriorityEncoder;
use crate::prefix::{PrefixCircuit, Sklansky};

/// Stage-level model of one compute unit's join pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinPipeline {
    chunk_size: usize,
    stages: usize,
}

impl JoinPipeline {
    /// A pipeline for `chunk_size`-wide SparseMaps with the paper's five
    /// stages (mask update, encode, offset, fetch, MAC).
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn new(chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        JoinPipeline {
            chunk_size,
            stages: 5,
        }
    }

    /// Number of pipeline stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Cycles to process a chunk with `matches` set bits in the AND-result:
    /// one cycle to load the masks and broadcast, the pipeline fill, then
    /// one match retired per cycle. An empty chunk costs only the load.
    pub fn chunk_cycles(&self, matches: usize) -> usize {
        if matches == 0 {
            1
        } else {
            1 + (self.stages - 1) + matches
        }
    }

    /// Effective per-chunk overhead beyond one cycle per match — what the
    /// cycle-level simulators approximate with their constant.
    pub fn overhead_cycles(&self, matches: usize) -> usize {
        self.chunk_cycles(matches) - matches
    }

    /// Amortized overhead per match for a typical chunk population — small
    /// once chunks carry more than a handful of matches.
    pub fn overhead_per_match(&self, matches: usize) -> f64 {
        if matches == 0 {
            f64::INFINITY
        } else {
            self.overhead_cycles(matches) as f64 / matches as f64
        }
    }

    /// The critical stage depth in gate levels: the deepest of the
    /// per-stage circuits (priority encoder vs prefix sum over the chunk).
    /// This bounds the clock period; both are logarithmic in chunk width,
    /// which is why SparTen clocks at 800 MHz (§5.6).
    pub fn critical_stage_depth(&self) -> usize {
        let encoder = PriorityEncoder::new(self.chunk_size).depth();
        let prefix = Sklansky.stats(self.chunk_size).depth;
        encoder.max(prefix)
    }

    /// With double buffering, consecutive chunks overlap their load stage:
    /// cycles for a sequence of chunk populations.
    pub fn sequence_cycles(&self, matches_per_chunk: &[usize]) -> usize {
        // The load of chunk i+1 overlaps the drain of chunk i, so each
        // chunk after the first costs max(matches, 1) plus nothing extra
        // until the pipe must refill on an empty chunk boundary.
        let mut total = 0usize;
        let mut first = true;
        for &m in matches_per_chunk {
            if first {
                total += self.chunk_cycles(m);
                first = false;
            } else {
                total += m.max(1);
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_chunk_costs_one_cycle() {
        let p = JoinPipeline::new(128);
        assert_eq!(p.chunk_cycles(0), 1);
    }

    #[test]
    fn full_pipe_retires_one_match_per_cycle() {
        let p = JoinPipeline::new(128);
        let c18 = p.chunk_cycles(18);
        let c19 = p.chunk_cycles(19);
        assert_eq!(c19 - c18, 1);
    }

    #[test]
    fn overhead_amortizes_at_paper_sparsity() {
        // 128-wide chunk at 7x compute sparsity ≈ 18 matches: the fill
        // overhead is well under the ~30% the simulators' constant implies.
        let p = JoinPipeline::new(128);
        assert!(p.overhead_per_match(18) < 0.35);
        assert!(
            p.overhead_per_match(2) > 1.0,
            "tiny chunks pay relatively more"
        );
    }

    #[test]
    fn critical_depth_is_logarithmic() {
        assert_eq!(JoinPipeline::new(128).critical_stage_depth(), 7);
        assert_eq!(JoinPipeline::new(256).critical_stage_depth(), 8);
    }

    #[test]
    fn double_buffering_hides_reload() {
        let p = JoinPipeline::new(128);
        let seq = [10usize, 12, 0, 9];
        let overlapped = p.sequence_cycles(&seq);
        let naive: usize = seq.iter().map(|&m| p.chunk_cycles(m)).sum();
        assert!(overlapped < naive, "{overlapped} !< {naive}");
        // Lower bound: the matches themselves.
        assert!(overlapped >= seq.iter().sum::<usize>());
    }
}
