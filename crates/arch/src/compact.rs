//! On-the-fly output compaction (§3.2, Figure 5).
//!
//! After a cluster's compute units produce their (dense, possibly zero)
//! output cells, the output collector (1) zero-detects each value with an
//! EXNOR gate to build the output SparseMap, and (2) compacts the values by
//! shifting each non-zero left by the number of zeros to its left — an
//! *inverted* prefix sum. The paper notes this need not be fast (one
//! compaction per ~hundreds of multiply-adds), so a simple shifter suffices.

use crate::prefix::{PrefixCircuit, Sklansky};
use sparten_tensor::{SparseChunk, SparseMap};

/// Structural model of the output collector's compaction stage.
///
/// # Example
///
/// ```
/// use sparten_arch::OutputCompactor;
///
/// let compactor = OutputCompactor::new(8);
/// let out = compactor.compact(&[0.0, 5.0, 0.0, 0.0, 7.0, 1.0, 0.0, 2.0]);
/// assert_eq!(out.values(), &[5.0, 7.0, 1.0, 2.0]);
/// assert_eq!(out.mask().iter_ones().collect::<Vec<_>>(), vec![1, 4, 5, 7]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OutputCompactor {
    width: usize,
}

impl OutputCompactor {
    /// A compactor over `width` output cells (one per compute unit in a
    /// cluster, e.g. 32).
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "compactor width must be positive");
        OutputCompactor { width }
    }

    /// Compactor width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Zero-detects `values` and compacts the non-zeros, returning the
    /// resulting sparse chunk. Evaluated structurally: the shift distance of
    /// each value is the inverted (zero-counting) prefix sum, exactly as in
    /// Figure 5.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != self.width()`.
    pub fn compact(&self, values: &[f32]) -> SparseChunk {
        assert_eq!(values.len(), self.width, "value count mismatch");
        // EXNOR zero-detection builds the SparseMap.
        let mask = SparseMap::from_values(values);
        // Inverted prefix sum: count zeros at or before each position; the
        // shift distance of a non-zero at i is zeros strictly before i.
        let inverted = {
            let mut inv_bits = vec![false; self.width];
            for (i, bit) in inv_bits.iter_mut().enumerate() {
                *bit = !mask.get(i);
            }
            let inv_mask = SparseMap::from_bools(&inv_bits);
            Sklansky.prefix_sums(&inv_mask)
        };
        let mut packed = vec![0.0f32; mask.count_ones()];
        for (i, &v) in values.iter().enumerate() {
            if v != 0.0 {
                // Inclusive zero count at a non-zero position equals the
                // zeros strictly before it — the shift distance.
                let dst = i - inverted[i] as usize;
                packed[dst] = v;
            }
        }
        SparseChunk::from_parts(mask, packed)
    }

    /// Shift distance of each position (zeros strictly to its left) — useful
    /// for testing the shifter structure itself.
    pub fn shift_distances(&self, values: &[f32]) -> Vec<usize> {
        assert_eq!(values.len(), self.width, "value count mismatch");
        let mut zeros = 0usize;
        values
            .iter()
            .map(|&v| {
                let d = zeros;
                if v == 0.0 {
                    zeros += 1;
                }
                d
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compaction_preserves_order_and_values() {
        let c = OutputCompactor::new(6);
        let out = c.compact(&[0.0, 1.0, 0.0, 2.0, 3.0, 0.0]);
        assert_eq!(out.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(out.to_dense(), vec![0.0, 1.0, 0.0, 2.0, 3.0, 0.0]);
    }

    #[test]
    fn figure5_worked_example() {
        // Figure 5: the sixth value has two zeros to its left and shifts two.
        let c = OutputCompactor::new(8);
        let vals = [1.0, 0.0, 2.0, 3.0, 0.0, 4.0, 5.0, 0.0];
        assert_eq!(c.shift_distances(&vals)[5], 2);
        let out = c.compact(&vals);
        assert_eq!(out.values()[3], 4.0); // shifted from slot 5 to slot 3
    }

    #[test]
    fn all_zero_output() {
        let c = OutputCompactor::new(4);
        let out = c.compact(&[0.0; 4]);
        assert_eq!(out.nnz(), 0);
        assert_eq!(out.mask().count_ones(), 0);
    }

    #[test]
    fn all_nonzero_output_is_identity() {
        let c = OutputCompactor::new(4);
        let vals = [1.0, 2.0, 3.0, 4.0];
        let out = c.compact(&vals);
        assert_eq!(out.values(), &vals);
        assert_eq!(c.shift_distances(&vals), vec![0, 0, 0, 0]);
    }

    #[test]
    fn compact_equals_from_dense() {
        // The compactor must agree with the software conversion everywhere.
        let c = OutputCompactor::new(32);
        for seed in 0..20usize {
            let vals: Vec<f32> = (0..32)
                .map(|i| {
                    if (i * 7 + seed * 13) % 3 == 0 {
                        0.0
                    } else {
                        (i + seed) as f32
                    }
                })
                .collect();
            assert_eq!(c.compact(&vals), SparseChunk::from_dense(&vals));
        }
    }

    #[test]
    #[should_panic(expected = "value count mismatch")]
    fn wrong_width_panics() {
        OutputCompactor::new(4).compact(&[1.0; 5]);
    }
}
