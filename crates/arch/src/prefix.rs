//! Parallel prefix-sum circuits over SparseMap bits.
//!
//! During the inner join, a prefix-sum circuit counts the 1s in each operand
//! SparseMap above the currently matched position, yielding the offset of the
//! corresponding packed value (§3.1, Figure 3). The paper notes that prefix
//! sums have "well-studied, efficient implementations with carry
//! lookahead-like logarithmic delays in the SparseMap bit width instead of
//! ripple carry-like linear delays".
//!
//! Three structural circuit models are provided — [`Ripple`] (linear depth),
//! [`Sklansky`] (minimum depth, high fan-out), and [`KoggeStone`] (minimum
//! depth, bounded fan-out, more wiring) — each computing the *inclusive*
//! prefix population count of a bit vector and reporting delay (adder levels)
//! and operator (adder-node) counts. All are verified against the functional
//! reference.

use sparten_tensor::SparseMap;

/// Delay and cost accounting for one prefix-circuit evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PrefixStats {
    /// Circuit depth in adder levels (the critical path).
    pub depth: usize,
    /// Number of adder nodes in the circuit.
    pub adders: usize,
}

/// A parallel prefix-sum circuit computing inclusive prefix popcounts.
///
/// Implementors are structural models: [`PrefixCircuit::prefix_sums`]
/// evaluates the actual node graph, and [`PrefixCircuit::stats`] reports its
/// depth and size for the area/energy model.
pub trait PrefixCircuit {
    /// Inclusive prefix popcount: `out[i] = number of 1s in bits[0..=i]`.
    fn prefix_sums(&self, bits: &SparseMap) -> Vec<u32>;

    /// Depth and adder count for a circuit over `width` bits.
    fn stats(&self, width: usize) -> PrefixStats;

    /// Circuit name for reports.
    fn name(&self) -> &'static str;
}

/// Functional reference: a sequential scan (what the hardware must equal).
pub fn reference_prefix_sums(bits: &SparseMap) -> Vec<u32> {
    let mut out = Vec::with_capacity(bits.len());
    let mut acc = 0u32;
    for i in 0..bits.len() {
        acc += u32::from(bits.get(i));
        out.push(acc);
    }
    out
}

/// Ripple (serial) prefix circuit: linear depth, `n−1` adders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Ripple;

impl PrefixCircuit for Ripple {
    fn prefix_sums(&self, bits: &SparseMap) -> Vec<u32> {
        // The ripple circuit *is* the sequential scan.
        reference_prefix_sums(bits)
    }

    fn stats(&self, width: usize) -> PrefixStats {
        PrefixStats {
            depth: width.saturating_sub(1),
            adders: width.saturating_sub(1),
        }
    }

    fn name(&self) -> &'static str {
        "ripple"
    }
}

/// Sklansky (divide-and-conquer) prefix circuit: depth ⌈log2 n⌉, minimal
/// node count among minimum-depth networks, but fan-out up to n/2.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Sklansky;

impl PrefixCircuit for Sklansky {
    fn prefix_sums(&self, bits: &SparseMap) -> Vec<u32> {
        let n = bits.len();
        let mut vals: Vec<u32> = (0..n).map(|i| u32::from(bits.get(i))).collect();
        // Structural evaluation: at level l (span s = 2^l), every position i
        // whose bit ⌊i/s⌋ is odd adds the value at the end of the previous
        // block: i' = (i/s)*s - 1.
        let mut span = 1usize;
        while span < n {
            let prev: Vec<u32> = vals.clone();
            for (i, v) in vals.iter_mut().enumerate() {
                if (i / span) % 2 == 1 {
                    let src = (i / span) * span - 1;
                    *v = prev[i] + prev[src];
                }
            }
            span *= 2;
        }
        vals
    }

    fn stats(&self, width: usize) -> PrefixStats {
        if width <= 1 {
            return PrefixStats {
                depth: 0,
                adders: 0,
            };
        }
        let depth = usize::BITS as usize - (width - 1).leading_zeros() as usize;
        // Adders per level: number of positions in odd-indexed span blocks.
        let mut adders = 0usize;
        let mut span = 1usize;
        while span < width {
            adders += (0..width).filter(|i| (i / span) % 2 == 1).count();
            span *= 2;
        }
        PrefixStats { depth, adders }
    }

    fn name(&self) -> &'static str {
        "sklansky"
    }
}

/// Kogge-Stone prefix circuit: depth ⌈log2 n⌉, fan-out 2, ~n·log2 n adders.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KoggeStone;

impl PrefixCircuit for KoggeStone {
    fn prefix_sums(&self, bits: &SparseMap) -> Vec<u32> {
        let n = bits.len();
        let mut vals: Vec<u32> = (0..n).map(|i| u32::from(bits.get(i))).collect();
        let mut dist = 1usize;
        while dist < n {
            let prev = vals.clone();
            for i in dist..n {
                vals[i] = prev[i] + prev[i - dist];
            }
            dist *= 2;
        }
        vals
    }

    fn stats(&self, width: usize) -> PrefixStats {
        if width <= 1 {
            return PrefixStats {
                depth: 0,
                adders: 0,
            };
        }
        let depth = usize::BITS as usize - (width - 1).leading_zeros() as usize;
        let mut adders = 0usize;
        let mut dist = 1usize;
        while dist < width {
            adders += width - dist;
            dist *= 2;
        }
        PrefixStats { depth, adders }
    }

    fn name(&self) -> &'static str {
        "kogge-stone"
    }
}

/// Brent-Kung prefix circuit: depth `2·log2 n − 2`, only `2n − log2 n − 2`
/// adders and fan-out 2 — the area-minimal end of the prefix design space
/// (the paper's Table 4 prefix-sum area motivates caring).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BrentKung;

impl PrefixCircuit for BrentKung {
    fn prefix_sums(&self, bits: &SparseMap) -> Vec<u32> {
        let n = bits.len();
        let mut vals: Vec<u32> = (0..n).map(|i| u32::from(bits.get(i))).collect();
        // Up-sweep (reduce): combine pairs at increasing spans.
        let mut span = 1usize;
        while span < n {
            let step = span * 2;
            let mut i = step - 1;
            while i < n {
                vals[i] += vals[i - span];
                i += step;
            }
            span = step;
        }
        // Down-sweep: fill in the intermediate prefixes.
        span /= 2;
        while span >= 1 {
            let step = span * 2;
            let mut i = step + span - 1;
            while i < n {
                vals[i] += vals[i - span];
                i += step;
            }
            if span == 1 {
                break;
            }
            span /= 2;
        }
        vals
    }

    fn stats(&self, width: usize) -> PrefixStats {
        if width <= 1 {
            return PrefixStats {
                depth: 0,
                adders: 0,
            };
        }
        let log = usize::BITS as usize - (width - 1).leading_zeros() as usize;
        // Count the actual node placements of the two sweeps.
        let mut adders = 0usize;
        let mut span = 1usize;
        while span < width {
            let step = span * 2;
            adders += (0..width).skip(step - 1).step_by(step).count();
            span = step;
        }
        span /= 2;
        while span >= 1 {
            let step = span * 2;
            adders += (0..width).skip(step + span - 1).step_by(step).count();
            if span == 1 {
                break;
            }
            span /= 2;
        }
        PrefixStats {
            depth: 2 * log - 1,
            adders,
        }
    }

    fn name(&self) -> &'static str {
        "brent-kung"
    }
}

/// Exclusive prefix count (number of 1s strictly before each position),
/// derived from any circuit's inclusive sums. This is the quantity the inner
/// join uses as a packed-value offset.
pub fn exclusive_from_inclusive(inclusive: &[u32], bits: &SparseMap) -> Vec<u32> {
    inclusive
        .iter()
        .enumerate()
        .map(|(i, &v)| v - u32::from(bits.get(i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mask_from_pattern(n: usize, f: impl Fn(usize) -> bool) -> SparseMap {
        let bools: Vec<bool> = (0..n).map(f).collect();
        SparseMap::from_bools(&bools)
    }

    fn check_circuit(c: &dyn PrefixCircuit, n: usize) {
        let patterns: Vec<SparseMap> = vec![
            SparseMap::zeros(n),
            SparseMap::ones(n),
            mask_from_pattern(n, |i| i % 2 == 0),
            mask_from_pattern(n, |i| i % 7 == 3),
            mask_from_pattern(n, |i| (i * 2654435761usize) % 5 < 2),
        ];
        for m in &patterns {
            assert_eq!(
                c.prefix_sums(m),
                reference_prefix_sums(m),
                "{} failed on width {n}",
                c.name()
            );
        }
    }

    #[test]
    fn ripple_matches_reference() {
        for n in [1, 2, 7, 64, 128, 130] {
            check_circuit(&Ripple, n);
        }
    }

    #[test]
    fn sklansky_matches_reference() {
        for n in [1, 2, 7, 64, 128, 130] {
            check_circuit(&Sklansky, n);
        }
    }

    #[test]
    fn kogge_stone_matches_reference() {
        for n in [1, 2, 7, 64, 128, 130] {
            check_circuit(&KoggeStone, n);
        }
    }

    #[test]
    fn brent_kung_matches_reference() {
        for n in [1, 2, 7, 64, 128, 130] {
            check_circuit(&BrentKung, n);
        }
    }

    #[test]
    fn brent_kung_trades_depth_for_area() {
        let bk = BrentKung.stats(128);
        let skl = Sklansky.stats(128);
        // Deeper than Sklansky but with fewer adders.
        assert!(bk.depth > skl.depth);
        assert!(
            bk.adders < skl.adders,
            "bk {} vs sklansky {}",
            bk.adders,
            skl.adders
        );
        // Canonical count for 2^k width: 2n − log2(n) − 2 = 247.
        assert_eq!(bk.adders, 2 * 128 - 7 - 2);
    }

    #[test]
    fn log_depth_beats_linear_depth() {
        // The paper's point: logarithmic vs ripple-carry linear delay at the
        // 128-bit SparseMap width.
        let ripple = Ripple.stats(128);
        let skl = Sklansky.stats(128);
        let ks = KoggeStone.stats(128);
        assert_eq!(ripple.depth, 127);
        assert_eq!(skl.depth, 7);
        assert_eq!(ks.depth, 7);
        // Kogge-Stone trades more adders for bounded fan-out.
        assert!(ks.adders > skl.adders);
        assert!(skl.adders < 128 * 7);
    }

    #[test]
    fn sklansky_adder_count_formula() {
        // Sklansky over 2^k bits uses (k/2)·2^k adders: 128 → 7·64 = 448.
        assert_eq!(Sklansky.stats(128).adders, 448);
    }

    #[test]
    fn kogge_stone_adder_count_formula() {
        // Σ (n − 2^i) for 2^i < n: 128·7 − 127 = 769.
        assert_eq!(KoggeStone.stats(128).adders, 128 * 7 - 127);
    }

    #[test]
    fn exclusive_prefix_matches_mask_prefix_count() {
        let m = mask_from_pattern(130, |i| i % 3 == 0);
        let inc = Sklansky.prefix_sums(&m);
        let exc = exclusive_from_inclusive(&inc, &m);
        for (i, &e) in exc.iter().enumerate() {
            assert_eq!(e as usize, m.prefix_count(i));
        }
    }

    #[test]
    fn width_one_is_free() {
        for s in [Ripple.stats(1), Sklansky.stats(1), KoggeStone.stats(1)] {
            assert_eq!(
                s,
                PrefixStats {
                    depth: 0,
                    adders: 0
                }
            );
        }
    }
}
