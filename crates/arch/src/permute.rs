//! The GB-H multi-stage permutation network (§3.3).
//!
//! GB-H sorts filters per chunk, so each chunk's partial sums emerge from
//! "shuffled" compute units and must be routed back to their logical output
//! positions within the cluster. Unlike SCNN's high-bandwidth crossbar, this
//! network routes a result only once per chunk of multiply-adds, so SparTen
//! deliberately *thins* it: "we limit bisection bandwidth to just four values
//! at a time ... using modest bandwidth (1/8th of full provisioning) is more
//! than adequate".
//!
//! The model is a log-depth butterfly: each source-destination pair has a
//! unique path; a greedy wave scheduler assigns each value to the earliest
//! wave in which its whole path is link-free and the bisection budget is not
//! exhausted. The wave count is the routing latency the simulator hides under
//! the next chunk's compute.

/// A butterfly permutation network over `size` endpoints with a thinned
/// bisection.
///
/// # Example
///
/// ```
/// use sparten_arch::PermutationNetwork;
///
/// let net = PermutationNetwork::new(8, 4);
/// // Identity routing never crosses the bisection and needs one wave.
/// let mapping: Vec<(usize, usize)> = (0..8).map(|i| (i, i)).collect();
/// assert_eq!(net.route(&mapping).waves, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PermutationNetwork {
    size: usize,
    stages: usize,
    bisection_limit: usize,
}

/// Routing outcome for one batch of values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RouteStats {
    /// Number of waves (cycles) until every value is delivered.
    pub waves: usize,
    /// Values routed.
    pub routed: usize,
    /// Values that crossed the network bisection.
    pub bisection_crossings: usize,
    /// Link-conflict deferrals (a value pushed to a later wave because a
    /// path link or the bisection budget was busy).
    pub deferrals: usize,
}

impl PermutationNetwork {
    /// Builds a network over at least `endpoints` positions (rounded up to a
    /// power of two) whose bisection passes at most `bisection_limit` values
    /// per wave.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints == 0` or `bisection_limit == 0`.
    pub fn new(endpoints: usize, bisection_limit: usize) -> Self {
        assert!(endpoints > 0, "need at least one endpoint");
        assert!(bisection_limit > 0, "bisection limit must be positive");
        let size = endpoints.next_power_of_two();
        let stages = size.trailing_zeros() as usize;
        PermutationNetwork {
            size,
            stages,
            bisection_limit,
        }
    }

    /// Number of endpoints (padded to a power of two).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of switching stages (log2 of the size).
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// The configured per-wave bisection budget.
    pub fn bisection_limit(&self) -> usize {
        self.bisection_limit
    }

    /// Number of 2×2 switches — `(size/2) · stages` — for the area model.
    pub fn switch_count(&self) -> usize {
        self.size / 2 * self.stages
    }

    /// The unique butterfly path of `(src, dst)` as the sequence of
    /// positions after each stage. Stage `s` (from the input side) fixes bit
    /// `stages − 1 − s` of the position to the destination's bit.
    fn path(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut pos = src;
        let mut out = Vec::with_capacity(self.stages);
        for s in 0..self.stages {
            let bit = self.stages - 1 - s;
            pos = (pos & !(1 << bit)) | (dst & (1 << bit));
            out.push(pos);
        }
        out
    }

    /// Whether routing `(src, dst)` crosses the bisection (the top-bit flip).
    fn crosses_bisection(&self, src: usize, dst: usize) -> bool {
        self.stages > 0 && (src >> (self.stages - 1)) != (dst >> (self.stages - 1))
    }

    /// Greedily schedules `mapping` (src → dst pairs) into waves and returns
    /// the routing statistics. Values are considered in the given order;
    /// each goes into the earliest wave where its entire path is link-free
    /// and, if it crosses the bisection, the wave's budget is not exhausted.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or two values share a
    /// destination.
    pub fn route(&self, mapping: &[(usize, usize)]) -> RouteStats {
        let mut seen_dst = vec![false; self.size];
        for &(s, d) in mapping {
            assert!(s < self.size && d < self.size, "endpoint out of range");
            assert!(!seen_dst[d], "duplicate destination {d}");
            seen_dst[d] = true;
        }
        // links[wave] maps (stage, position) → busy.
        let mut link_busy: Vec<Vec<bool>> = Vec::new();
        let mut bisection_used: Vec<usize> = Vec::new();
        let links_per_wave = self.stages.max(1) * self.size;
        let mut stats = RouteStats {
            waves: 0,
            routed: 0,
            bisection_crossings: 0,
            deferrals: 0,
        };
        for &(src, dst) in mapping {
            let path = self.path(src, dst);
            let crossing = self.crosses_bisection(src, dst);
            let mut wave = 0usize;
            loop {
                if wave == link_busy.len() {
                    link_busy.push(vec![false; links_per_wave]);
                    bisection_used.push(0);
                }
                let budget_ok = !crossing || bisection_used[wave] < self.bisection_limit;
                let links_ok = path
                    .iter()
                    .enumerate()
                    .all(|(s, &p)| !link_busy[wave][s * self.size + p]);
                if budget_ok && links_ok {
                    for (s, &p) in path.iter().enumerate() {
                        link_busy[wave][s * self.size + p] = true;
                    }
                    if crossing {
                        bisection_used[wave] += 1;
                        stats.bisection_crossings += 1;
                    }
                    break;
                }
                stats.deferrals += 1;
                wave += 1;
            }
            stats.routed += 1;
        }
        stats.waves = link_busy.len().max(usize::from(!mapping.is_empty()));
        stats
    }

    /// Applies the permutation functionally: `out[dst] = values[src]` for
    /// each `(src, dst)` pair; unmapped outputs are `None`.
    ///
    /// # Panics
    ///
    /// Panics as for [`PermutationNetwork::route`].
    pub fn apply<T: Clone>(&self, values: &[T], mapping: &[(usize, usize)]) -> Vec<Option<T>> {
        let mut out = vec![None; self.size];
        for &(src, dst) in mapping {
            assert!(src < values.len(), "source out of range");
            assert!(dst < self.size, "destination out of range");
            assert!(out[dst].is_none(), "duplicate destination {dst}");
            out[dst] = Some(values[src].clone());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_routes_in_one_wave() {
        let net = PermutationNetwork::new(32, 4);
        let mapping: Vec<_> = (0..32).map(|i| (i, i)).collect();
        let s = net.route(&mapping);
        assert_eq!(s.waves, 1);
        assert_eq!(s.routed, 32);
        assert_eq!(s.bisection_crossings, 0);
    }

    #[test]
    fn full_reversal_is_bisection_limited() {
        // Reversal sends every value across the bisection: 32 crossings at
        // 4 per wave → at least 8 waves.
        let net = PermutationNetwork::new(32, 4);
        let mapping: Vec<_> = (0..32).map(|i| (i, 31 - i)).collect();
        let s = net.route(&mapping);
        assert_eq!(s.bisection_crossings, 32);
        assert!(s.waves >= 8, "waves = {}", s.waves);
    }

    #[test]
    fn wider_bisection_routes_faster() {
        let mapping: Vec<_> = (0..32).map(|i| (i, 31 - i)).collect();
        let thin = PermutationNetwork::new(32, 4).route(&mapping);
        let fat = PermutationNetwork::new(32, 32).route(&mapping);
        assert!(fat.waves <= thin.waves);
    }

    #[test]
    fn apply_matches_mapping() {
        let net = PermutationNetwork::new(4, 4);
        let out = net.apply(&[10, 20, 30, 40], &[(0, 3), (1, 0), (2, 1), (3, 2)]);
        assert_eq!(out, vec![Some(20), Some(30), Some(40), Some(10)]);
    }

    #[test]
    fn route_and_apply_agree_on_random_permutations() {
        let net = PermutationNetwork::new(16, 2);
        for seed in 0..10usize {
            // A deterministic pseudo-random permutation.
            let mut perm: Vec<usize> = (0..16).collect();
            for i in (1..16).rev() {
                let j = (i * 2654435761 + seed * 40503) % (i + 1);
                perm.swap(i, j);
            }
            let mapping: Vec<_> = perm.iter().enumerate().map(|(s, &d)| (s, d)).collect();
            let stats = net.route(&mapping);
            assert_eq!(stats.routed, 16);
            let out = net.apply(&(0..16).collect::<Vec<_>>(), &mapping);
            for (src, &dst) in perm.iter().enumerate() {
                assert_eq!(out[dst], Some(src));
            }
            assert!(stats.waves >= 1);
        }
    }

    #[test]
    fn non_power_of_two_rounds_up() {
        let net = PermutationNetwork::new(33, 4);
        assert_eq!(net.size(), 64);
        assert_eq!(net.stages(), 6);
        assert_eq!(net.switch_count(), 32 * 6);
    }

    #[test]
    fn empty_mapping_takes_no_waves() {
        let net = PermutationNetwork::new(8, 4);
        assert_eq!(net.route(&[]).waves, 0);
    }

    #[test]
    #[should_panic(expected = "duplicate destination")]
    fn duplicate_destination_panics() {
        PermutationNetwork::new(4, 4).route(&[(0, 1), (2, 1)]);
    }
}
