#![warn(missing_docs)]

//! Bit-level hardware primitive models for the SparTen reproduction.
//!
//! The SparTen datapath (§3.1–3.3 of the paper) is built from a small set of
//! well-studied circuits:
//!
//! * **prefix sums** over the SparseMap give packed-value offsets — the paper
//!   notes carry-lookahead-like logarithmic-depth implementations
//!   ([`prefix`]: ripple, Sklansky, and Kogge-Stone variants with delay and
//!   gate-count accounting);
//! * a **priority encoder** walks the set bits of the ANDed masks
//!   ([`encoder`]);
//! * the **inner-join sequencer** combines them into the compute unit's
//!   per-cycle match stream ([`join`]);
//! * the **output compactor** re-sparsifies outputs on the fly with
//!   zero-detection and an inverted prefix sum (Figure 5; [`compact`]);
//! * the **multi-stage permutation network** unshuffles GB-H partial sums
//!   with deliberately thinned bisection bandwidth (§3.3; [`permute`]).
//!
//! Every circuit has a functional model (used by the simulators) and a
//! structural model (gate-by-gate evaluation) tested against each other.

pub mod benes;
pub mod compact;
pub mod encoder;
pub mod fast;
pub mod join;
pub mod permute;
pub mod pipeline;
pub mod prefix;

pub use benes::BenesNetwork;
pub use compact::OutputCompactor;
pub use encoder::PriorityEncoder;
pub use fast::{compact_values, fast_join, join_eval, try_fast_join, FastJoin};
pub use join::{InnerJoinSequencer, JoinStep};
pub use permute::{PermutationNetwork, RouteStats};
pub use pipeline::JoinPipeline;
pub use prefix::{BrentKung, KoggeStone, PrefixCircuit, PrefixStats, Ripple, Sklansky};
