//! Word-parallel fast-path kernels for the SparseMap hot loops.
//!
//! The structural circuit models in [`crate::prefix`], [`crate::encoder`],
//! and [`crate::compact`] evaluate one node per mask bit — exactly what the
//! hardware does, and exactly what the area/energy model needs — but they
//! are far too slow to sit inside the functional engine's inner loops at
//! AlexNet/VGG scale. This module provides software-speed equivalents that
//! operate on the mask's packed `u64` words:
//!
//! * [`exclusive_offsets`] / [`inclusive_prefix`] — prefix popcounts from
//!   running per-word `count_ones`, replacing a structural prefix network;
//! * [`FastJoin`] / [`fast_join`] — the inner join walked with
//!   `trailing_zeros` over the ANDed words, replacing the structural
//!   priority-encoder reduction tree per step;
//! * [`join_eval`] — the fused dot-product + MAC-count the engine uses;
//! * [`compact_values`] — single-pass output compaction.
//!
//! Every kernel is *defined* to be bit-identical to its structural
//! counterpart: [`fast_join`] yields the same [`JoinStep`] sequence and the
//! same f32 accumulator as [`crate::InnerJoinSequencer`] (same walk order,
//! same accumulation order), and the prefix kernels equal
//! [`crate::prefix::reference_prefix_sums`] and every structural circuit.
//! The structural models remain the hardware-faithful oracle; the
//! differential suite in `tests/differential_tests.rs` enforces the
//! equivalence on random, degenerate, and word-boundary masks.

use crate::join::JoinStep;
use sparten_tensor::{SparseChunk, SparseMap, TensorError};

/// Total popcount of a word slice.
#[inline]
pub fn popcount_words(words: &[u64]) -> u32 {
    words.iter().map(|w| w.count_ones()).sum()
}

/// Popcount of the pairwise AND of two word slices — the join work of two
/// masks, without materializing the joined mask.
///
/// # Panics
///
/// Panics if the slices differ in length.
#[inline]
pub fn and_popcount_words(a: &[u64], b: &[u64]) -> u32 {
    assert_eq!(a.len(), b.len(), "word slice length mismatch");
    a.iter().zip(b).map(|(x, y)| (x & y).count_ones()).sum()
}

/// Inclusive prefix popcount (`out[i]` = ones in `bits[0..=i]`), equal to
/// [`crate::prefix::PrefixCircuit::prefix_sums`] of every structural
/// circuit but computed by scanning words instead of evaluating adder
/// nodes.
pub fn inclusive_prefix(bits: &SparseMap) -> Vec<u32> {
    let mut out = Vec::with_capacity(bits.len());
    let mut acc = 0u32;
    for (wi, &word) in bits.as_words().iter().enumerate() {
        let n = (bits.len() - wi * 64).min(64);
        let mut w = word;
        for _ in 0..n {
            acc += (w & 1) as u32;
            out.push(acc);
            w >>= 1;
        }
    }
    out
}

/// Exclusive prefix popcount (`out[i]` = ones strictly before `i`) — the
/// packed-value offset of position `i` during the inner join. Equal to
/// [`crate::prefix::exclusive_from_inclusive`] applied to any structural
/// circuit's inclusive sums.
pub fn exclusive_offsets(bits: &SparseMap) -> Vec<u32> {
    let mut out = Vec::with_capacity(bits.len());
    let mut acc = 0u32;
    for (wi, &word) in bits.as_words().iter().enumerate() {
        let n = (bits.len() - wi * 64).min(64);
        let mut w = word;
        for _ in 0..n {
            out.push(acc);
            acc += (w & 1) as u32;
            w >>= 1;
        }
    }
    out
}

/// Word-parallel inner join: the fast path equivalent of
/// [`crate::InnerJoinSequencer`].
///
/// Yields the identical [`JoinStep`] sequence (same positions, offsets, and
/// products, walked top-to-bottom) and accumulates products in the same
/// order, so the final accumulator is bit-identical. Instead of a
/// structural priority-encoder reduction per step, it keeps the ANDed masks
/// as `u64` words and finds each match with `trailing_zeros`; instead of a
/// prefix network, each offset is a masked popcount on top of a running
/// per-word base count.
///
/// # Example
///
/// ```
/// use sparten_arch::fast::fast_join;
/// use sparten_tensor::SparseChunk;
///
/// let a = SparseChunk::from_dense(&[0.0, 2.0, 0.0, 3.0]);
/// let b = SparseChunk::from_dense(&[1.0, 4.0, 5.0, 3.0]);
/// let mut join = fast_join(&a, &b);
/// let steps: Vec<_> = join.by_ref().collect();
/// assert_eq!(steps.len(), 2);              // positions 1 and 3 match
/// assert_eq!(join.accumulator(), 2.0 * 4.0 + 3.0 * 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct FastJoin<'a> {
    a: &'a SparseChunk,
    b: &'a SparseChunk,
    /// ANDed mask words; consumed matches are cleared, and every word
    /// before `word` is fully consumed (zero).
    and_words: Vec<u64>,
    /// Current word index.
    word: usize,
    /// Popcount of `a`'s mask strictly before word `word`.
    base_a: u32,
    /// Popcount of `b`'s mask strictly before word `word`.
    base_b: u32,
    accumulator: f32,
    steps_taken: usize,
}

/// Sets up the word-parallel join of two chunks.
///
/// # Panics
///
/// Panics if the chunks differ in length or are zero-length (mirroring
/// [`crate::InnerJoinSequencer::new`]); use [`try_fast_join`] for the
/// fallible path.
pub fn fast_join<'a>(a: &'a SparseChunk, b: &'a SparseChunk) -> FastJoin<'a> {
    assert_eq!(a.len(), b.len(), "chunk length mismatch");
    assert!(!a.is_empty(), "inner join requires positive-width chunks");
    FastJoin::build(a, b)
}

/// Fallible [`fast_join`]: rejects zero-length and mismatched chunks with a
/// typed [`TensorError`] instead of a panic.
pub fn try_fast_join<'a>(
    a: &'a SparseChunk,
    b: &'a SparseChunk,
) -> Result<FastJoin<'a>, TensorError> {
    if a.len() != b.len() {
        return Err(TensorError::JoinWidthMismatch {
            a: a.len(),
            b: b.len(),
        });
    }
    if a.is_empty() {
        return Err(TensorError::EmptyChunk);
    }
    Ok(FastJoin::build(a, b))
}

impl<'a> FastJoin<'a> {
    fn build(a: &'a SparseChunk, b: &'a SparseChunk) -> Self {
        let and_words: Vec<u64> = a
            .mask()
            .as_words()
            .iter()
            .zip(b.mask().as_words())
            .map(|(x, y)| x & y)
            .collect();
        FastJoin {
            a,
            b,
            and_words,
            word: 0,
            base_a: 0,
            base_b: 0,
            accumulator: 0.0,
            steps_taken: 0,
        }
    }

    /// The running partial sum.
    pub fn accumulator(&self) -> f32 {
        self.accumulator
    }

    /// Multiply-accumulates performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Matches still pending.
    pub fn remaining(&self) -> usize {
        popcount_words(&self.and_words[self.word.min(self.and_words.len())..]) as usize
    }

    /// Runs the join to completion and returns the dot product.
    pub fn run(mut self) -> f32 {
        for _ in self.by_ref() {}
        self.accumulator
    }
}

impl Iterator for FastJoin<'_> {
    type Item = JoinStep;

    fn next(&mut self) -> Option<JoinStep> {
        // Skip fully-consumed words, accumulating each operand's popcount
        // so in-word offsets stay exclusive prefix counts.
        while self.word < self.and_words.len() && self.and_words[self.word] == 0 {
            self.base_a += self.a.mask().word(self.word).count_ones();
            self.base_b += self.b.mask().word(self.word).count_ones();
            self.word += 1;
        }
        if self.word >= self.and_words.len() {
            return None;
        }
        let w = self.and_words[self.word];
        let bit = w.trailing_zeros();
        self.and_words[self.word] = w & (w - 1); // clear the consumed match
        let below = (1u64 << bit) - 1;
        let offset_a = (self.base_a + (self.a.mask().word(self.word) & below).count_ones()) as usize;
        let offset_b = (self.base_b + (self.b.mask().word(self.word) & below).count_ones()) as usize;
        let product = self.a.values()[offset_a] * self.b.values()[offset_b];
        self.accumulator += product;
        self.steps_taken += 1;
        Some(JoinStep {
            position: self.word * 64 + bit as usize,
            offset_a,
            offset_b,
            product,
        })
    }
}

/// Fused inner-join evaluation: the chunk dot product and the MAC count in
/// one pass over the ANDed words. The accumulation order is ascending
/// position — identical to [`SparseChunk::dot`], [`fast_join`], and
/// [`crate::InnerJoinSequencer`] — so the returned f32 is bit-identical to
/// all three.
///
/// # Panics
///
/// Panics if the chunks differ in length.
pub fn join_eval(a: &SparseChunk, b: &SparseChunk) -> (f32, usize) {
    assert_eq!(a.len(), b.len(), "chunk length mismatch");
    let a_words = a.mask().as_words();
    let b_words = b.mask().as_words();
    let (av, bv) = (a.values(), b.values());
    let mut acc = 0.0f32;
    let mut macs = 0usize;
    let (mut base_a, mut base_b) = (0u32, 0u32);
    for (&aw, &bw) in a_words.iter().zip(b_words) {
        let mut joined = aw & bw;
        macs += joined.count_ones() as usize;
        while joined != 0 {
            let bit = joined.trailing_zeros();
            joined &= joined - 1;
            let below = (1u64 << bit) - 1;
            let ia = (base_a + (aw & below).count_ones()) as usize;
            let ib = (base_b + (bw & below).count_ones()) as usize;
            acc += av[ia] * bv[ib];
        }
        base_a += aw.count_ones();
        base_b += bw.count_ones();
    }
    (acc, macs)
}

/// Single-pass output compaction: zero-detects `values`, builds the mask
/// words directly, and packs the non-zeros in position order. Produces the
/// identical [`SparseChunk`] as [`crate::OutputCompactor::compact`] (whose
/// structural shifter is the oracle) without evaluating a prefix network.
///
/// # Panics
///
/// Panics if a non-zero value is NaN or infinite (the chunk invariant).
pub fn compact_values(values: &[f32]) -> SparseChunk {
    let mut words = vec![0u64; values.len().div_ceil(64)];
    let mut packed = Vec::new();
    for (i, &v) in values.iter().enumerate() {
        if v != 0.0 {
            words[i / 64] |= 1 << (i % 64);
            packed.push(v);
        }
    }
    let mask = SparseMap::try_from_words(words, values.len())
        .expect("mask built in-bounds by construction");
    SparseChunk::from_parts(mask, packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compact::OutputCompactor;
    use crate::join::InnerJoinSequencer;
    use sparten_tensor::Rng64;

    fn random_chunk(rng: &mut Rng64, len: usize, density: f64) -> SparseChunk {
        let dense: Vec<f32> = (0..len)
            .map(|_| {
                if rng.gen_bool(density) {
                    rng.gen_range_f64(-2.0, 2.0) as f32
                } else {
                    0.0
                }
            })
            .collect();
        SparseChunk::from_dense(&dense)
    }

    #[test]
    fn fast_join_matches_sequencer_on_example() {
        let a = SparseChunk::from_dense(&[0.0, 1.0, 2.0, 0.0, 4.0, 0.0, 6.0, 7.0]);
        let b = SparseChunk::from_dense(&[1.0, 0.0, 3.0, 0.0, 5.0, 5.0, 0.0, 2.0]);
        let fast: Vec<JoinStep> = fast_join(&a, &b).collect();
        let slow: Vec<JoinStep> = InnerJoinSequencer::new(&a, &b).collect();
        assert_eq!(fast, slow);
    }

    #[test]
    fn fast_join_tracks_progress_counters() {
        let a = SparseChunk::from_dense(&[1.0, 1.0, 0.0, 1.0, 0.0]);
        let b = SparseChunk::from_dense(&[1.0, 0.0, 1.0, 1.0, 0.0]);
        let mut join = fast_join(&a, &b);
        assert_eq!(join.remaining(), 2);
        let n = join.by_ref().count();
        assert_eq!(n, a.join_work(&b));
        assert_eq!(join.steps_taken(), n);
        assert_eq!(join.remaining(), 0);
    }

    #[test]
    fn join_eval_matches_dot_and_join_work() {
        let mut rng = Rng64::seed_from_u64(11);
        for _ in 0..50 {
            let len = rng.gen_range_usize(1, 200);
            let a = random_chunk(&mut rng, len, 0.4);
            let b = random_chunk(&mut rng, len, 0.4);
            let (dot, macs) = join_eval(&a, &b);
            assert_eq!(dot.to_bits(), a.dot(&b).to_bits());
            assert_eq!(macs, a.join_work(&b));
        }
    }

    #[test]
    fn try_fast_join_rejects_zero_length() {
        let empty = SparseChunk::from_dense(&[]);
        assert_eq!(
            try_fast_join(&empty, &empty).err(),
            Some(TensorError::EmptyChunk)
        );
    }

    #[test]
    fn try_fast_join_rejects_width_mismatch() {
        let a = SparseChunk::from_dense(&[1.0]);
        let b = SparseChunk::from_dense(&[1.0, 2.0]);
        assert_eq!(
            try_fast_join(&a, &b).err(),
            Some(TensorError::JoinWidthMismatch { a: 1, b: 2 })
        );
    }

    #[test]
    fn compact_matches_structural_compactor() {
        let mut rng = Rng64::seed_from_u64(5);
        for _ in 0..30 {
            let len = rng.gen_range_usize(1, 130);
            let vals: Vec<f32> = (0..len)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        rng.gen_range_f64(-1.0, 1.0) as f32
                    } else {
                        0.0
                    }
                })
                .collect();
            assert_eq!(compact_values(&vals), OutputCompactor::new(len).compact(&vals));
        }
        assert_eq!(compact_values(&[]).nnz(), 0);
    }

    #[test]
    fn word_popcounts_match_mask_counts() {
        let mut rng = Rng64::seed_from_u64(9);
        let a = random_chunk(&mut rng, 150, 0.5);
        let b = random_chunk(&mut rng, 150, 0.5);
        assert_eq!(
            popcount_words(a.mask().as_words()) as usize,
            a.mask().count_ones()
        );
        assert_eq!(
            and_popcount_words(a.mask().as_words(), b.mask().as_words()) as usize,
            a.join_work(&b)
        );
    }
}
