//! Priority encoder: finds the next set bit of the ANDed SparseMaps.
//!
//! §3.1: "To identify the next matching pair, we need the next topmost set
//! bit in the AND-result. This bit is identified by a priority encoder
//! (priority decreases from top to bottom)" with logarithmic delay. The
//! structural model here is a binary reduction tree of valid/index pairs;
//! its depth and gate counts feed the area model.

use sparten_tensor::SparseMap;

/// A structural priority-encoder model over `width` bits.
///
/// Position 0 is the highest priority ("topmost" in the paper's Figure 3).
///
/// # Example
///
/// ```
/// use sparten_arch::PriorityEncoder;
/// use sparten_tensor::SparseMap;
///
/// let enc = PriorityEncoder::new(8);
/// let m = SparseMap::from_bools(&[false, false, true, false, true, false, false, false]);
/// assert_eq!(enc.first_one(&m), Some(2));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PriorityEncoder {
    width: usize,
}

impl PriorityEncoder {
    /// Creates an encoder over `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "encoder width must be positive");
        PriorityEncoder { width }
    }

    /// Encoder input width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Structural evaluation: reduces (valid, index) pairs in a binary tree,
    /// preferring the lower index — identical in result to scanning for the
    /// first set bit, but evaluated as the log-depth tree the hardware uses.
    ///
    /// # Panics
    ///
    /// Panics if `mask.len() != self.width()`.
    pub fn first_one(&self, mask: &SparseMap) -> Option<usize> {
        assert_eq!(mask.len(), self.width, "mask width mismatch");
        // Leaf level: (valid, index).
        let mut level: Vec<(bool, usize)> = (0..self.width).map(|i| (mask.get(i), i)).collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                // Prefer the left (lower-index) input when it is valid or
                // when there is no right input.
                let merged = if pair.len() == 1 || pair[0].0 {
                    pair[0]
                } else {
                    pair[1]
                };
                next.push(merged);
            }
            level = next;
        }
        level[0].0.then_some(level[0].1)
    }

    /// Tree depth in mux levels — the circuit's critical path.
    pub fn depth(&self) -> usize {
        if self.width <= 1 {
            0
        } else {
            usize::BITS as usize - (self.width - 1).leading_zeros() as usize
        }
    }

    /// Number of 2-input merge nodes in the reduction tree.
    pub fn nodes(&self) -> usize {
        // A reduction over n leaves uses n−1 internal nodes (full pairs only;
        // odd leftovers pass through without a node).
        let mut n = self.width;
        let mut nodes = 0;
        while n > 1 {
            nodes += n / 2;
            n = n.div_ceil(2);
        }
        nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_topmost_set_bit() {
        let enc = PriorityEncoder::new(128);
        let mut m = SparseMap::zeros(128);
        m.set(100, true);
        m.set(37, true);
        m.set(99, true);
        assert_eq!(enc.first_one(&m), Some(37));
    }

    #[test]
    fn empty_mask_yields_none() {
        let enc = PriorityEncoder::new(64);
        assert_eq!(enc.first_one(&SparseMap::zeros(64)), None);
    }

    #[test]
    fn matches_functional_scan_on_many_patterns() {
        let enc = PriorityEncoder::new(130);
        for seed in 0..50usize {
            let bools: Vec<bool> = (0..130).map(|i| (i * 31 + seed * 17) % 7 == 0).collect();
            let m = SparseMap::from_bools(&bools);
            assert_eq!(enc.first_one(&m), m.next_one(0));
        }
    }

    #[test]
    fn log_depth() {
        assert_eq!(PriorityEncoder::new(128).depth(), 7);
        assert_eq!(PriorityEncoder::new(1).depth(), 0);
        assert_eq!(PriorityEncoder::new(130).depth(), 8);
    }

    #[test]
    fn node_count_is_linear() {
        assert_eq!(PriorityEncoder::new(128).nodes(), 127);
        assert_eq!(PriorityEncoder::new(2).nodes(), 1);
    }

    #[test]
    fn non_power_of_two_width_works() {
        let enc = PriorityEncoder::new(5);
        let m = SparseMap::from_bools(&[false, false, false, false, true]);
        assert_eq!(enc.first_one(&m), Some(4));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_panics() {
        PriorityEncoder::new(8).first_one(&SparseMap::zeros(9));
    }
}
