//! The inner-join sequencer: the compute unit's match-walking state machine.
//!
//! §3.1, Figure 3: the CU ANDs the two SparseMaps, then repeatedly (1) uses
//! the priority encoder to find the topmost set bit of the AND-result,
//! (2) uses prefix sums over each operand's own mask to get the packed-value
//! offsets, (3) multiplies and accumulates, and (4) clears the bit. This
//! module models that sequence step by step, emitting one [`JoinStep`] per
//! multiply-accumulate so the cycle-level simulators and the energy model can
//! count exactly what the hardware would do.

use crate::encoder::PriorityEncoder;
use crate::prefix::{PrefixCircuit, Sklansky};
use sparten_tensor::{SparseChunk, SparseMap, TensorError};

/// One multiply-accumulate step of an inner join.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JoinStep {
    /// Matched position within the chunk.
    pub position: usize,
    /// Offset of the first operand's packed value.
    pub offset_a: usize,
    /// Offset of the second operand's packed value.
    pub offset_b: usize,
    /// The product accumulated this step.
    pub product: f32,
}

/// Walks the matches of two sparse chunks exactly as the hardware does.
///
/// # Example
///
/// ```
/// use sparten_arch::InnerJoinSequencer;
/// use sparten_tensor::SparseChunk;
///
/// let a = SparseChunk::from_dense(&[0.0, 2.0, 0.0, 3.0]);
/// let b = SparseChunk::from_dense(&[1.0, 4.0, 5.0, 3.0]);
/// let mut seq = InnerJoinSequencer::new(&a, &b);
/// let steps: Vec<_> = seq.by_ref().collect();
/// assert_eq!(steps.len(), 2);              // positions 1 and 3 match
/// assert_eq!(seq.accumulator(), 2.0 * 4.0 + 3.0 * 3.0);
/// ```
#[derive(Debug, Clone)]
pub struct InnerJoinSequencer<'a> {
    a: &'a SparseChunk,
    b: &'a SparseChunk,
    /// The AND-result with already-consumed matches cleared.
    pending: SparseMap,
    encoder: PriorityEncoder,
    prefix_a: Vec<u32>,
    prefix_b: Vec<u32>,
    accumulator: f32,
    steps_taken: usize,
}

impl<'a> InnerJoinSequencer<'a> {
    /// Sets up the join of two chunks: ANDs the masks and evaluates the two
    /// prefix-sum circuits once per chunk (they depend only on the operand
    /// masks, not on join progress).
    ///
    /// # Panics
    ///
    /// Panics if the chunks differ in length or are zero-length; use
    /// [`InnerJoinSequencer::try_new`] for the fallible path.
    pub fn new(a: &'a SparseChunk, b: &'a SparseChunk) -> Self {
        assert_eq!(a.len(), b.len(), "chunk length mismatch");
        Self::build(a, b)
    }

    /// Fallible [`InnerJoinSequencer::new`]: rejects zero-length and
    /// mismatched chunks with a typed [`TensorError`] instead of a panic,
    /// matching the `try_*` plumbing of the tensor formats.
    pub fn try_new(a: &'a SparseChunk, b: &'a SparseChunk) -> Result<Self, TensorError> {
        if a.len() != b.len() {
            return Err(TensorError::JoinWidthMismatch {
                a: a.len(),
                b: b.len(),
            });
        }
        if a.is_empty() {
            return Err(TensorError::EmptyChunk);
        }
        Ok(Self::build(a, b))
    }

    fn build(a: &'a SparseChunk, b: &'a SparseChunk) -> Self {
        let circuit = Sklansky;
        let inc_a = circuit.prefix_sums(a.mask());
        let inc_b = circuit.prefix_sums(b.mask());
        // Convert to exclusive counts (values before the position).
        let prefix_a = crate::prefix::exclusive_from_inclusive(&inc_a, a.mask());
        let prefix_b = crate::prefix::exclusive_from_inclusive(&inc_b, b.mask());
        InnerJoinSequencer {
            pending: a.mask().and(b.mask()),
            encoder: PriorityEncoder::new(a.len()),
            a,
            b,
            prefix_a,
            prefix_b,
            accumulator: 0.0,
            steps_taken: 0,
        }
    }

    /// The running partial sum.
    pub fn accumulator(&self) -> f32 {
        self.accumulator
    }

    /// Multiply-accumulates performed so far.
    pub fn steps_taken(&self) -> usize {
        self.steps_taken
    }

    /// Matches still pending.
    pub fn remaining(&self) -> usize {
        self.pending.count_ones()
    }

    /// Runs the join to completion and returns the dot product.
    pub fn run(mut self) -> f32 {
        for _ in self.by_ref() {}
        self.accumulator
    }
}

impl Iterator for InnerJoinSequencer<'_> {
    type Item = JoinStep;

    fn next(&mut self) -> Option<JoinStep> {
        let position = self.encoder.first_one(&self.pending)?;
        self.pending.set(position, false); // clear the consumed match
        let offset_a = self.prefix_a[position] as usize;
        let offset_b = self.prefix_b[position] as usize;
        let product = self.a.values()[offset_a] * self.b.values()[offset_b];
        self.accumulator += product;
        self.steps_taken += 1;
        Some(JoinStep {
            position,
            offset_a,
            offset_b,
            product,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(v: &[f32]) -> SparseChunk {
        SparseChunk::from_dense(v)
    }

    #[test]
    fn sequencer_equals_chunk_dot() {
        let a = chunk(&[0.0, 1.0, 2.0, 0.0, 4.0, 0.0, 6.0, 7.0]);
        let b = chunk(&[1.0, 0.0, 3.0, 0.0, 5.0, 5.0, 0.0, 2.0]);
        let seq = InnerJoinSequencer::new(&a, &b);
        assert_eq!(seq.run(), a.dot(&b));
    }

    #[test]
    fn step_count_equals_join_work() {
        let a = chunk(&[1.0, 1.0, 0.0, 1.0, 0.0]);
        let b = chunk(&[1.0, 0.0, 1.0, 1.0, 0.0]);
        let mut seq = InnerJoinSequencer::new(&a, &b);
        let n = seq.by_ref().count();
        assert_eq!(n, a.join_work(&b));
        assert_eq!(seq.steps_taken(), n);
        assert_eq!(seq.remaining(), 0);
    }

    #[test]
    fn steps_walk_top_to_bottom() {
        let a = chunk(&[1.0, 0.0, 1.0, 1.0]);
        let b = chunk(&[1.0, 0.0, 1.0, 1.0]);
        let positions: Vec<usize> = InnerJoinSequencer::new(&a, &b)
            .map(|s| s.position)
            .collect();
        assert_eq!(positions, vec![0, 2, 3]);
    }

    #[test]
    fn offsets_index_packed_values() {
        let a = chunk(&[0.0, 2.0, 0.0, 3.0]); // packed [2, 3]
        let b = chunk(&[9.0, 4.0, 5.0, 6.0]); // packed [9, 4, 5, 6]
        let steps: Vec<JoinStep> = InnerJoinSequencer::new(&a, &b).collect();
        assert_eq!(steps[0].offset_a, 0);
        assert_eq!(steps[0].offset_b, 1); // b has one value before position 1
        assert_eq!(steps[1].offset_a, 1);
        assert_eq!(steps[1].offset_b, 3);
        assert_eq!(steps[0].product, 8.0);
        assert_eq!(steps[1].product, 18.0);
    }

    #[test]
    fn disjoint_chunks_produce_no_steps() {
        let a = chunk(&[1.0, 0.0]);
        let b = chunk(&[0.0, 1.0]);
        assert_eq!(InnerJoinSequencer::new(&a, &b).count(), 0);
    }

    #[test]
    fn try_new_rejects_zero_length_chunks() {
        // Regression: `new` used to be the only path and panicked inside
        // the priority encoder on zero-width chunks; the fallible
        // constructor must surface a typed error instead.
        let empty = SparseChunk::from_dense(&[]);
        assert_eq!(
            InnerJoinSequencer::try_new(&empty, &empty).err(),
            Some(TensorError::EmptyChunk)
        );
    }

    #[test]
    fn try_new_rejects_width_mismatch() {
        let a = chunk(&[1.0, 2.0]);
        let b = chunk(&[1.0, 2.0, 3.0]);
        assert_eq!(
            InnerJoinSequencer::try_new(&a, &b).err(),
            Some(TensorError::JoinWidthMismatch { a: 2, b: 3 })
        );
    }

    #[test]
    fn try_new_accepts_valid_chunks() {
        let a = chunk(&[1.0, 0.0, 2.0]);
        let b = chunk(&[3.0, 4.0, 5.0]);
        let seq = InnerJoinSequencer::try_new(&a, &b).expect("valid operands");
        assert_eq!(seq.run(), a.dot(&b));
    }

    #[test]
    fn dense_chunks_step_every_position() {
        let a = chunk(&[1.0; 16]);
        let b = chunk(&[2.0; 16]);
        let mut seq = InnerJoinSequencer::new(&a, &b);
        assert_eq!(seq.by_ref().count(), 16);
        assert_eq!(seq.accumulator(), 32.0);
    }
}
