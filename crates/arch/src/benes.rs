//! A Beneš network model — the fully-provisioned alternative §3.3 rejects.
//!
//! "Unlike high-bandwidth permutation networks (e.g. Beneš network, Clos
//! network), our low-bandwidth network needs significantly fewer resources."
//! A Beneš network is rearrangeably non-blocking: *any* permutation routes
//! in a single pass, but it costs `2·log2(n) − 1` stages of `n/2` switches
//! and full-width links throughout. This model provides the resource
//! comparison (and a correct one-pass route via the classic looping
//! algorithm) so the thinned-butterfly choice is quantified, not asserted.

use crate::permute::PermutationNetwork;

/// A Beneš network over `size` endpoints (rounded up to a power of two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenesNetwork {
    size: usize,
}

impl BenesNetwork {
    /// Builds a network over at least `endpoints` positions.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints == 0`.
    pub fn new(endpoints: usize) -> Self {
        assert!(endpoints > 0, "need at least one endpoint");
        BenesNetwork {
            size: endpoints.next_power_of_two().max(2),
        }
    }

    /// Endpoint count.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Switching stages: `2·log2(n) − 1`.
    pub fn stages(&self) -> usize {
        2 * (self.size.trailing_zeros() as usize) - 1
    }

    /// 2×2 switch count: `(n/2) · stages` — roughly double the butterfly's.
    pub fn switch_count(&self) -> usize {
        self.size / 2 * self.stages()
    }

    /// Routes a full permutation in one pass (the non-blocking guarantee):
    /// returns the number of waves (always 1) and verifies feasibility by
    /// running the looping algorithm on the outer stage recursively.
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..size`.
    pub fn route_permutation(&self, perm: &[usize]) -> usize {
        assert_eq!(perm.len(), self.size, "must map every endpoint");
        let mut seen = vec![false; self.size];
        for &d in perm {
            assert!(d < self.size && !seen[d], "not a permutation");
            seen[d] = true;
        }
        // The looping algorithm partitions the permutation into two
        // half-size sub-permutations (upper/lower middle subnetworks); its
        // success on every level is the non-blocking proof.
        assert!(loopable(perm), "Beneš looping must always succeed");
        1
    }

    /// Resource ratio versus SparTen's thinned butterfly at the same size:
    /// (Beneš switches × full-width links) / (butterfly switches), with the
    /// bisection thinning credited as a further `full/bisection` link-width
    /// saving on the butterfly side.
    pub fn resource_ratio_vs(&self, thin: &PermutationNetwork) -> f64 {
        let full_bisection = self.size / 2;
        let width_saving = full_bisection as f64 / thin.bisection_limit() as f64;
        (self.switch_count() as f64 / thin.switch_count() as f64) * width_saving
    }
}

/// Runs one level of the Beneš looping algorithm and recurses: returns
/// whether the permutation decomposes into two routable halves (it always
/// does; this is executable evidence, not an assumption).
fn loopable(perm: &[usize]) -> bool {
    let n = perm.len();
    if n <= 2 {
        return true;
    }
    // Pair i with i^1 at inputs and outputs; 2-color the constraint cycles.
    let mut inv = vec![0usize; n];
    for (s, &d) in perm.iter().enumerate() {
        inv[d] = s;
    }
    let mut color = vec![None::<bool>; n]; // per source: upper(false)/lower(true)
    for start in 0..n {
        if color[start].is_some() {
            continue;
        }
        let mut s = start;
        let mut c = false;
        loop {
            if color[s].is_some() {
                break;
            }
            color[s] = Some(c);
            // The input partner must take the other subnetwork…
            let partner_in = s ^ 1;
            if color[partner_in].is_some() {
                break;
            }
            color[partner_in] = Some(!c);
            // …and the output partner of that partner's destination forces
            // the next constraint.
            let partner_out = perm[partner_in] ^ 1;
            s = inv[partner_out];
            c = !color[partner_in].expect("just set");
            // Continue until the cycle closes.
            if s == start {
                break;
            }
        }
    }
    // Build the two half permutations and recurse.
    let mut upper = vec![usize::MAX; n / 2];
    let mut lower = vec![usize::MAX; n / 2];
    for (s, &d) in perm.iter().enumerate() {
        let half = if color[s] == Some(false) {
            &mut upper
        } else {
            &mut lower
        };
        half[s / 2] = d / 2;
    }
    is_permutation(&upper) && is_permutation(&lower) && loopable(&upper) && loopable(&lower)
}

fn is_permutation(v: &[usize]) -> bool {
    let mut seen = vec![false; v.len()];
    v.iter().all(|&d| {
        if d < seen.len() && !seen[d] {
            seen[d] = true;
            true
        } else {
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_and_switch_counts() {
        let b = BenesNetwork::new(64);
        assert_eq!(b.stages(), 11);
        assert_eq!(b.switch_count(), 32 * 11);
        // Butterfly over the same endpoints: 6 stages, 192 switches.
        let thin = PermutationNetwork::new(64, 4);
        assert!(b.switch_count() > thin.switch_count());
    }

    #[test]
    fn routes_any_permutation_in_one_pass() {
        let b = BenesNetwork::new(16);
        // Reversal, rotation, and a pseudo-random shuffle.
        let reversal: Vec<usize> = (0..16).rev().collect();
        let rotation: Vec<usize> = (0..16).map(|i| (i + 5) % 16).collect();
        let mut shuffled: Vec<usize> = (0..16).collect();
        for i in (1..16).rev() {
            shuffled.swap(i, (i * 7 + 3) % (i + 1));
        }
        for perm in [reversal, rotation, shuffled] {
            assert_eq!(b.route_permutation(&perm), 1);
        }
    }

    #[test]
    fn paper_resource_claim_holds() {
        // §3.3: the thinned network needs "significantly fewer resources"
        // — at 64 endpoints and bisection 4, well over an order of
        // magnitude counting link width.
        let b = BenesNetwork::new(64);
        let thin = PermutationNetwork::new(64, 4);
        assert!(b.resource_ratio_vs(&thin) > 10.0);
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn duplicate_destination_panics() {
        BenesNetwork::new(4).route_permutation(&[0, 0, 1, 2]);
    }
}
