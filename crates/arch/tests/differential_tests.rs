//! Differential oracle suite: the word-parallel fast path must be exactly
//! the structural circuits, everywhere.
//!
//! The fast kernels in `sparten_arch::fast` replace the structural prefix
//! networks, priority encoder, and compaction shifter inside the hot
//! loops, so any divergence — even one ulp of the accumulator or one
//! reordered `JoinStep` — would silently change golden artifacts. These
//! property tests drive both paths over seeded random masks and the
//! classic adversarial cases (all-zero, all-one, single-bit, word- and
//! chunk-boundary widths) and demand bit equality.
//!
//! Case counts are deliberately modest by default so `cargo test -q` stays
//! fast; the `exhaustive-tests` feature multiplies the sweep.

use sparten_arch::fast::{self, fast_join};
use sparten_arch::prefix::{
    exclusive_from_inclusive, reference_prefix_sums, KoggeStone, PrefixCircuit, Sklansky,
};
use sparten_arch::{InnerJoinSequencer, JoinStep, OutputCompactor};
use sparten_tensor::{Rng64, SparseChunk, SparseMap};

/// Random-case multiplier: 1 by default, larger under `exhaustive-tests`.
fn cases(default: usize, exhaustive: usize) -> usize {
    if cfg!(feature = "exhaustive-tests") {
        exhaustive
    } else {
        default
    }
}

fn random_mask(rng: &mut Rng64, len: usize, density: f64) -> SparseMap {
    let bools: Vec<bool> = (0..len).map(|_| rng.gen_bool(density)).collect();
    SparseMap::from_bools(&bools)
}

fn random_chunk(rng: &mut Rng64, len: usize, density: f64) -> SparseChunk {
    let dense: Vec<f32> = (0..len)
        .map(|_| {
            if rng.gen_bool(density) {
                // Avoid exact zero so mask and values stay in sync.
                let v = rng.gen_range_f64(0.25, 4.0) as f32;
                if rng.gen_bool(0.5) {
                    -v
                } else {
                    v
                }
            } else {
                0.0
            }
        })
        .collect();
    SparseChunk::from_dense(&dense)
}

/// Widths that stress word boundaries, including the paper's chunk n=128.
const WIDTHS: [usize; 8] = [1, 5, 63, 64, 65, 127, 128, 192];

/// Asserts the fast prefix kernels equal the reference scan and both
/// minimum-depth structural circuits on one mask.
fn assert_prefix_equivalence(mask: &SparseMap) {
    let reference = reference_prefix_sums(mask);
    let fast_inc = fast::inclusive_prefix(mask);
    assert_eq!(fast_inc, reference, "inclusive vs reference on {mask:?}");
    assert_eq!(
        fast_inc,
        Sklansky.prefix_sums(mask),
        "inclusive vs Sklansky on {mask:?}"
    );
    assert_eq!(
        fast_inc,
        KoggeStone.prefix_sums(mask),
        "inclusive vs Kogge-Stone on {mask:?}"
    );
    assert_eq!(
        fast::exclusive_offsets(mask),
        exclusive_from_inclusive(&reference, mask),
        "exclusive offsets on {mask:?}"
    );
}

/// Asserts the fast join is step-for-step and bit-for-bit the sequencer.
fn assert_join_equivalence(a: &SparseChunk, b: &SparseChunk) {
    let mut fast_it = fast_join(a, b);
    let mut slow_it = InnerJoinSequencer::new(a, b);
    let fast_steps: Vec<JoinStep> = fast_it.by_ref().collect();
    let slow_steps: Vec<JoinStep> = slow_it.by_ref().collect();
    assert_eq!(fast_steps, slow_steps, "step sequences diverge");
    assert_eq!(
        fast_it.accumulator().to_bits(),
        slow_it.accumulator().to_bits(),
        "accumulators diverge"
    );
    assert_eq!(fast_it.steps_taken(), slow_it.steps_taken());
    assert_eq!(fast_it.remaining(), 0);
    // The fused kernel must agree too.
    let (dot, macs) = fast::join_eval(a, b);
    assert_eq!(dot.to_bits(), slow_it.accumulator().to_bits());
    assert_eq!(macs, slow_steps.len());
}

#[test]
fn prefix_kernels_match_circuits_on_random_masks() {
    let mut rng = Rng64::seed_from_u64(2019);
    let rounds = cases(8, 200);
    for round in 0..rounds {
        for &n in &WIDTHS {
            let density = 0.05 + 0.9 * (round as f64 / rounds as f64);
            assert_prefix_equivalence(&random_mask(&mut rng, n, density));
        }
    }
}

#[test]
fn prefix_kernels_match_circuits_on_degenerate_masks() {
    for &n in &WIDTHS {
        assert_prefix_equivalence(&SparseMap::zeros(n));
        assert_prefix_equivalence(&SparseMap::ones(n));
        for pos in [0, n / 2, n - 1] {
            let mut single = SparseMap::zeros(n);
            single.set(pos, true);
            assert_prefix_equivalence(&single);
        }
    }
}

#[test]
fn fast_join_matches_sequencer_on_random_chunks() {
    let mut rng = Rng64::seed_from_u64(42);
    let rounds = cases(8, 150);
    for round in 0..rounds {
        for &n in &WIDTHS {
            let da = 0.1 + 0.8 * (round as f64 / rounds as f64);
            let db = 0.9 - 0.8 * (round as f64 / rounds as f64);
            let a = random_chunk(&mut rng, n, da);
            let b = random_chunk(&mut rng, n, db);
            assert_join_equivalence(&a, &b);
        }
    }
}

#[test]
fn fast_join_matches_sequencer_on_degenerate_chunks() {
    for &n in &WIDTHS {
        let zero = SparseChunk::from_dense(&vec![0.0f32; n]);
        let ones = SparseChunk::from_dense(&vec![1.5f32; n]);
        assert_join_equivalence(&zero, &zero);
        assert_join_equivalence(&ones, &ones);
        assert_join_equivalence(&zero, &ones);
        for pos in [0, n / 2, n - 1] {
            let mut dense = vec![0.0f32; n];
            dense[pos] = -2.5;
            let single = SparseChunk::from_dense(&dense);
            assert_join_equivalence(&single, &ones);
            assert_join_equivalence(&single, &single);
            assert_join_equivalence(&single, &zero);
        }
    }
}

#[test]
fn fast_join_matches_sequencer_at_chunk_boundary_128() {
    // The paper's chunk width: matches straddling the 63/64 word seam are
    // where a word-walking join is most likely to go wrong.
    let mut rng = Rng64::seed_from_u64(128);
    for _ in 0..cases(20, 400) {
        let mut da = vec![0.0f32; 128];
        let mut db = vec![0.0f32; 128];
        // Force activity around both word boundaries plus random fill.
        for pos in [62, 63, 64, 65, 126, 127] {
            if rng.gen_bool(0.7) {
                da[pos] = rng.gen_range_f64(0.5, 2.0) as f32;
            }
            if rng.gen_bool(0.7) {
                db[pos] = rng.gen_range_f64(0.5, 2.0) as f32;
            }
        }
        for i in 0..128 {
            if rng.gen_bool(0.3) {
                da[i] = rng.gen_range_f64(-2.0, -0.5) as f32;
            }
            if rng.gen_bool(0.3) {
                db[i] = rng.gen_range_f64(-2.0, -0.5) as f32;
            }
        }
        let a = SparseChunk::from_dense(&da);
        let b = SparseChunk::from_dense(&db);
        assert_join_equivalence(&a, &b);
        assert_prefix_equivalence(a.mask());
        assert_prefix_equivalence(b.mask());
    }
}

#[test]
fn fast_compaction_matches_structural_compactor() {
    let mut rng = Rng64::seed_from_u64(7);
    for _ in 0..cases(10, 200) {
        for &n in &WIDTHS {
            let dense: Vec<f32> = (0..n)
                .map(|_| {
                    if rng.gen_bool(0.5) {
                        rng.gen_range_f64(-3.0, 3.0) as f32
                    } else {
                        0.0
                    }
                })
                .collect();
            // gen_range may still draw an exact 0.0; from_values handles it
            // identically on both paths, so no filtering is needed.
            assert_eq!(
                fast::compact_values(&dense),
                OutputCompactor::new(n).compact(&dense),
                "compaction diverges at width {n}"
            );
        }
    }
}

#[test]
fn fallible_constructors_agree_on_rejections() {
    let empty = SparseChunk::from_dense(&[]);
    let one = SparseChunk::from_dense(&[1.0]);
    assert_eq!(
        InnerJoinSequencer::try_new(&empty, &empty).err(),
        fast::try_fast_join(&empty, &empty).err(),
    );
    assert_eq!(
        InnerJoinSequencer::try_new(&one, &empty).err(),
        fast::try_fast_join(&one, &empty).err(),
    );
    // And on acceptance, both run to the same dot product.
    let a = SparseChunk::from_dense(&[0.0, 2.0, 3.0]);
    let b = SparseChunk::from_dense(&[1.0, 4.0, 0.0]);
    let slow = InnerJoinSequencer::try_new(&a, &b).expect("valid").run();
    let fast_dot = fast::try_fast_join(&a, &b).expect("valid").run();
    assert_eq!(slow.to_bits(), fast_dot.to_bits());
}
