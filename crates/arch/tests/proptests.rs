//! Property-based tests over the circuit models: structural evaluations
//! must equal functional references on arbitrary inputs, and the join
//! sequencer must be an exact dot product.

use proptest::prelude::*;
use sparten_arch::{
    InnerJoinSequencer, KoggeStone, OutputCompactor, PermutationNetwork, PrefixCircuit,
    PriorityEncoder, Ripple, Sklansky,
};
use sparten_tensor::{SparseChunk, SparseMap};

fn sparse_values(len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            2 => Just(0.0f32),
            1 => (-50i32..50).prop_map(|v| v as f32 / 2.0),
        ],
        len..=len,
    )
}

proptest! {
    #[test]
    fn prefix_circuits_agree_with_reference(bits in prop::collection::vec(any::<bool>(), 1..260)) {
        let m = SparseMap::from_bools(&bits);
        let reference = sparten_arch::prefix::reference_prefix_sums(&m);
        prop_assert_eq!(Ripple.prefix_sums(&m), reference.clone());
        prop_assert_eq!(Sklansky.prefix_sums(&m), reference.clone());
        prop_assert_eq!(KoggeStone.prefix_sums(&m), reference);
    }

    #[test]
    fn encoder_finds_first_set_bit(bits in prop::collection::vec(any::<bool>(), 1..260)) {
        let m = SparseMap::from_bools(&bits);
        let enc = PriorityEncoder::new(bits.len());
        prop_assert_eq!(enc.first_one(&m), bits.iter().position(|&b| b));
    }

    #[test]
    fn sequencer_is_exact_dot_product(
        pair in (8usize..200).prop_flat_map(|n| (sparse_values(n), sparse_values(n))),
    ) {
        let (a, b) = pair;
        let ca = SparseChunk::from_dense(&a);
        let cb = SparseChunk::from_dense(&b);
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let mut seq = InnerJoinSequencer::new(&ca, &cb);
        let steps = seq.by_ref().count();
        prop_assert!((seq.accumulator() - expect).abs() < 1e-2);
        prop_assert_eq!(steps, ca.join_work(&cb));
    }

    #[test]
    fn sequencer_positions_strictly_increase(
        pair in (8usize..128).prop_flat_map(|n| (sparse_values(n), sparse_values(n))),
    ) {
        let (a, b) = pair;
        let ca = SparseChunk::from_dense(&a);
        let cb = SparseChunk::from_dense(&b);
        let positions: Vec<usize> = InnerJoinSequencer::new(&ca, &cb).map(|s| s.position).collect();
        prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn compactor_equals_software_conversion(values in sparse_values(64)) {
        let c = OutputCompactor::new(values.len());
        prop_assert_eq!(c.compact(&values), SparseChunk::from_dense(&values));
    }

    #[test]
    fn network_routes_arbitrary_permutations(
        perm_seed in any::<u64>(),
        log_size in 2u32..6,
        bisection in 1usize..8,
    ) {
        let size = 1usize << log_size;
        // Deterministic Fisher-Yates from the seed.
        let mut perm: Vec<usize> = (0..size).collect();
        let mut state = perm_seed | 1;
        for i in (1..size).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let mapping: Vec<(usize, usize)> = perm.iter().enumerate().map(|(s, &d)| (s, d)).collect();
        let net = PermutationNetwork::new(size, bisection);
        let stats = net.route(&mapping);
        prop_assert_eq!(stats.routed, size);
        // A full permutation can always route within size waves on a
        // butterfly with per-value greedy scheduling.
        prop_assert!(stats.waves <= size, "waves {}", stats.waves);
        // Functional application delivers every value to its destination.
        let values: Vec<usize> = (0..size).collect();
        let out = net.apply(&values, &mapping);
        for (src, &dst) in perm.iter().enumerate() {
            prop_assert_eq!(out[dst], Some(src));
        }
    }

    #[test]
    fn thinner_bisection_never_routes_faster(
        log_size in 2u32..6,
    ) {
        let size = 1usize << log_size;
        let mapping: Vec<(usize, usize)> = (0..size).map(|i| (i, size - 1 - i)).collect();
        let mut last_waves = usize::MAX;
        for bisection in [1usize, 2, 4, size] {
            let stats = PermutationNetwork::new(size, bisection).route(&mapping);
            prop_assert!(stats.waves <= last_waves);
            last_waves = stats.waves;
        }
    }
}
