//! Property-based tests over the CNN substrate: the two convolution
//! implementations agree on arbitrary shapes, pruning respects its target,
//! pooling matches brute force, and FC layers equal their conv mapping.

use proptest::prelude::*;
use sparten_nn::generate::{random_filters, random_tensor, workload};
use sparten_nn::pruning::prune_to_density;
use sparten_nn::{conv2d, conv2d_direct, max_pool, ConvShape, FcLayer};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn conv_implementations_agree(
        d in 1usize..16,
        hw in 3usize..10,
        k in 1usize..4,
        n in 1usize..8,
        stride in 1usize..3,
        pad in 0usize..2,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw + 2 * pad >= k);
        let shape = ConvShape::new(d, hw, hw, k, n, stride, pad);
        let w = workload(&shape, 0.5, 0.5, seed);
        let a = conv2d(&w.input, &w.filters, &shape);
        let b = conv2d_direct(&w.input, &w.filters, &shape);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3, "window {} vs direct {}", x, y);
        }
    }

    #[test]
    fn pruning_never_exceeds_target(
        target in 0.05f64..1.0,
        density in 0.2f64..1.0,
        seed in 0u64..1000,
    ) {
        let shape = ConvShape::new(8, 4, 4, 3, 8, 1, 1);
        let mut filters = random_filters(&shape, density, 0.0, seed);
        let report = prune_to_density(&mut filters, target);
        prop_assert!(report.density() <= target + 1e-9);
        // Survivors all exceed the threshold.
        for f in &filters {
            for &v in f.weights().as_slice() {
                prop_assert!(v == 0.0 || v.abs() > report.threshold);
            }
        }
    }

    #[test]
    fn pruning_is_idempotent(target in 0.1f64..0.9, seed in 0u64..1000) {
        let shape = ConvShape::new(8, 4, 4, 3, 8, 1, 1);
        let mut filters = random_filters(&shape, 1.0, 0.0, seed);
        prune_to_density(&mut filters, target);
        let snapshot = filters.clone();
        prune_to_density(&mut filters, target);
        prop_assert_eq!(filters, snapshot);
    }

    #[test]
    fn max_pool_matches_brute_force(
        d in 1usize..4,
        hw in 3usize..9,
        k in 1usize..4,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        prop_assume!(hw >= k);
        let input = random_tensor(d, hw, hw, 0.7, seed);
        let out = max_pool(&input, k, stride);
        for z in 0..d {
            for oy in 0..out.width() {
                for ox in 0..out.height() {
                    let mut m = f32::NEG_INFINITY;
                    for fy in 0..k {
                        for fx in 0..k {
                            m = m.max(input.get(z, ox * stride + fx, oy * stride + fy));
                        }
                    }
                    prop_assert_eq!(out.get(z, ox, oy), m);
                }
            }
        }
    }

    #[test]
    fn fc_equals_its_conv_mapping(
        inf in 2usize..64,
        outf in 1usize..16,
        seed in 0u64..1000,
    ) {
        let fc = FcLayer::random(inf, outf, 0.5, seed);
        let x: Vec<f32> = (0..inf).map(|i| if i % 2 == 0 { i as f32 / 3.0 } else { 0.0 }).collect();
        let w = fc.to_workload(&x);
        let out = conv2d(&w.input, &w.filters, &w.shape);
        let expect = fc.forward(&x, false);
        for (f, &e) in expect.iter().enumerate() {
            prop_assert!((out.get(f, 0, 0) - e).abs() < 1e-2);
        }
    }

    #[test]
    fn relu_output_is_non_negative_and_idempotent(
        d in 1usize..4,
        hw in 2usize..8,
        seed in 0u64..1000,
    ) {
        let mut t = random_tensor(d, hw, hw, 0.8, seed);
        t.relu();
        prop_assert!(t.as_slice().iter().all(|&v| v >= 0.0));
        let snapshot = t.clone();
        t.relu();
        prop_assert_eq!(t, snapshot);
    }

    #[test]
    fn workload_densities_track_targets(
        di in 0.1f64..0.9,
        df in 0.1f64..0.9,
        seed in 0u64..1000,
    ) {
        let shape = ConvShape::new(64, 10, 10, 3, 16, 1, 1);
        let w = workload(&shape, di, df, seed);
        prop_assert!((w.input_density() - di).abs() < 0.06);
        prop_assert!((w.filter_density() - df).abs() < 0.12);
    }
}
