//! Fully-connected layers and MLPs on SparTen (the paper's §7 extension).
//!
//! The paper leaves "extending SparTen to these other DNNs" (LSTMs, RNNs,
//! MLPs) as future work, but notes the architecture already applies because
//! the inner join assigns one output cell per compute unit — a
//! fully-connected layer is exactly a 1×1 convolution over a 1×1 spatial
//! plane. This module provides that mapping plus a dense reference, so the
//! claim can be exercised end to end (see the `mlp_on_sparten` integration
//! test and the FC path in `tests/end_to_end.rs`).

use crate::filter::Filter;
use crate::generate::Workload;
use crate::prng::Rng64;
use crate::shape::ConvShape;
use sparten_tensor::Tensor3;

/// A fully-connected layer: `out_features × in_features` weights.
#[derive(Debug, Clone, PartialEq)]
pub struct FcLayer {
    weights: Vec<Vec<f32>>,
    in_features: usize,
}

impl FcLayer {
    /// Wraps a weight matrix (one row per output feature).
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or ragged.
    pub fn new(weights: Vec<Vec<f32>>) -> Self {
        assert!(!weights.is_empty(), "need at least one output feature");
        let in_features = weights[0].len();
        assert!(in_features > 0, "need at least one input feature");
        for row in &weights {
            assert_eq!(row.len(), in_features, "ragged weight matrix");
        }
        FcLayer {
            weights,
            in_features,
        }
    }

    /// Generates a random sparse FC layer at the given weight density.
    ///
    /// # Panics
    ///
    /// Panics if `density` is not in `(0, 1]`.
    pub fn random(in_features: usize, out_features: usize, density: f64, seed: u64) -> Self {
        assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
        let mut rng = Rng64::seed_from_u64(seed ^ 0xfc1a_7e57);
        let weights = (0..out_features)
            .map(|_| {
                (0..in_features)
                    .map(|_| {
                        if rng.gen_bool(density) {
                            let mag = 0.25 + rng.gen_f32();
                            if rng.gen_bool(0.5) {
                                mag
                            } else {
                                -mag
                            }
                        } else {
                            0.0
                        }
                    })
                    .collect()
            })
            .collect();
        FcLayer::new(weights)
    }

    /// Input width.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output width.
    pub fn out_features(&self) -> usize {
        self.weights.len()
    }

    /// Fraction of non-zero weights.
    pub fn density(&self) -> f64 {
        let nnz: usize = self
            .weights
            .iter()
            .flat_map(|r| r.iter())
            .filter(|&&v| v != 0.0)
            .count();
        nnz as f64 / (self.in_features * self.out_features()) as f64
    }

    /// Dense reference forward pass with optional ReLU.
    pub fn forward(&self, x: &[f32], relu: bool) -> Vec<f32> {
        assert_eq!(x.len(), self.in_features, "input width mismatch");
        self.weights
            .iter()
            .map(|row| {
                let y: f32 = row.iter().zip(x).map(|(w, v)| w * v).sum();
                if relu {
                    y.max(0.0)
                } else {
                    y
                }
            })
            .collect()
    }

    /// The equivalent 1×1-convolution shape over a 1×1 plane.
    pub fn as_conv_shape(&self) -> ConvShape {
        ConvShape::new(self.in_features, 1, 1, 1, self.out_features(), 1, 0)
    }

    /// Packages an input activation vector into a [`Workload`] the
    /// accelerator engine and simulators can run directly.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.in_features()`.
    pub fn to_workload(&self, x: &[f32]) -> Workload {
        assert_eq!(x.len(), self.in_features, "input width mismatch");
        let input = Tensor3::from_vec(x.to_vec(), self.in_features, 1, 1);
        let filters = self
            .weights
            .iter()
            .map(|row| Filter::new(Tensor3::from_vec(row.clone(), self.in_features, 1, 1)))
            .collect();
        Workload {
            input,
            filters,
            shape: self.as_conv_shape(),
        }
    }
}

/// A multi-layer perceptron: FC layers with ReLU between them (not after
/// the last).
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    layers: Vec<FcLayer>,
}

impl Mlp {
    /// Builds an MLP from consecutive layers.
    ///
    /// # Panics
    ///
    /// Panics if widths do not chain or `layers` is empty.
    pub fn new(layers: Vec<FcLayer>) -> Self {
        assert!(!layers.is_empty(), "need at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(
                pair[0].out_features(),
                pair[1].in_features(),
                "layer widths must chain"
            );
        }
        Mlp { layers }
    }

    /// The layers in order.
    pub fn layers(&self) -> &[FcLayer] {
        &self.layers
    }

    /// Dense reference forward pass.
    pub fn forward(&self, x: &[f32]) -> Vec<f32> {
        let last = self.layers.len() - 1;
        let mut act = x.to_vec();
        for (i, layer) in self.layers.iter().enumerate() {
            act = layer.forward(&act, i != last);
        }
        act
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_matches_manual() {
        let fc = FcLayer::new(vec![vec![1.0, 2.0], vec![0.0, -3.0]]);
        assert_eq!(fc.forward(&[4.0, 5.0], false), vec![14.0, -15.0]);
        assert_eq!(fc.forward(&[4.0, 5.0], true), vec![14.0, 0.0]);
    }

    #[test]
    fn random_layer_hits_density() {
        let fc = FcLayer::random(512, 128, 0.3, 1);
        assert!((fc.density() - 0.3).abs() < 0.03, "got {}", fc.density());
    }

    #[test]
    fn conv_shape_is_one_by_one() {
        let fc = FcLayer::random(64, 16, 0.5, 2);
        let shape = fc.as_conv_shape();
        assert_eq!((shape.kernel, shape.in_height, shape.in_width), (1, 1, 1));
        assert_eq!(shape.num_filters, 16);
        assert_eq!(shape.dense_macs(), 64 * 16);
    }

    #[test]
    fn workload_reference_matches_fc_forward() {
        use crate::conv::conv2d;
        let fc = FcLayer::random(48, 12, 0.4, 3);
        let x: Vec<f32> = (0..48)
            .map(|i| if i % 3 == 0 { i as f32 } else { 0.0 })
            .collect();
        let w = fc.to_workload(&x);
        let out = conv2d(&w.input, &w.filters, &w.shape);
        let expect = fc.forward(&x, false);
        for (f, &e) in expect.iter().enumerate() {
            assert!((out.get(f, 0, 0) - e).abs() < 1e-3);
        }
    }

    #[test]
    fn mlp_chains_layers_with_relu() {
        let l1 = FcLayer::new(vec![vec![1.0], vec![-1.0]]);
        let l2 = FcLayer::new(vec![vec![1.0, 1.0]]);
        let mlp = Mlp::new(vec![l1, l2]);
        // x=2 → layer1 [2, -2] → relu [2, 0] → layer2 [2].
        assert_eq!(mlp.forward(&[2.0]), vec![2.0]);
    }

    #[test]
    #[should_panic(expected = "chain")]
    fn mismatched_widths_panic() {
        Mlp::new(vec![
            FcLayer::random(4, 3, 1.0, 0),
            FcLayer::random(5, 2, 1.0, 0),
        ]);
    }
}
