//! Magnitude pruning to per-layer density targets.
//!
//! The paper obtains its sparse networks by applying Han et al.'s pruning to
//! the filters "using per-layer sparsity information after retraining for
//! accuracy" (§4). Pruning zeroes the smallest-magnitude weights until the
//! target density is reached. Retraining is a training-side concern the
//! simulators never see, so here pruning is exact-threshold magnitude
//! pruning with a report of what was cut.

use crate::filter::Filter;

/// Result of pruning a set of filters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PruneReport {
    /// Weights before pruning (all, including existing zeros).
    pub total_weights: usize,
    /// Non-zero weights before pruning.
    pub nnz_before: usize,
    /// Non-zero weights after pruning.
    pub nnz_after: usize,
    /// The magnitude threshold applied (weights with |w| below it were cut).
    pub threshold: f32,
}

impl PruneReport {
    /// Achieved density after pruning.
    pub fn density(&self) -> f64 {
        if self.total_weights == 0 {
            0.0
        } else {
            self.nnz_after as f64 / self.total_weights as f64
        }
    }
}

/// Prunes `filters` in place so at most `target_density` of all weights
/// (across the whole layer, as in per-layer pruning) remain non-zero,
/// cutting the smallest magnitudes first.
///
/// # Panics
///
/// Panics if `target_density` is not in `[0, 1]`.
pub fn prune_to_density(filters: &mut [Filter], target_density: f64) -> PruneReport {
    assert!(
        (0.0..=1.0).contains(&target_density),
        "target density must be in [0, 1]"
    );
    let total_weights: usize = filters.iter().map(|f| f.weights().len()).sum();
    let mut magnitudes: Vec<f32> = filters
        .iter()
        .flat_map(|f| f.weights().as_slice().iter().copied())
        .filter(|v| *v != 0.0)
        .map(f32::abs)
        .collect();
    let nnz_before = magnitudes.len();
    let keep = ((total_weights as f64) * target_density).floor() as usize;
    let threshold = if keep >= nnz_before {
        0.0
    } else {
        // Keep the `keep` largest magnitudes: threshold is the (nnz-keep)-th
        // smallest magnitude, exclusive.
        magnitudes.sort_by(|a, b| a.partial_cmp(b).expect("weights are finite"));
        let cut = nnz_before - keep;
        magnitudes[cut - 1].max(0.0)
    };
    let mut nnz_after = 0usize;
    for f in filters.iter_mut() {
        for v in f.weights_mut().as_mut_slice() {
            if v.abs() <= threshold {
                *v = 0.0;
            }
            if *v != 0.0 {
                nnz_after += 1;
            }
        }
    }
    PruneReport {
        total_weights,
        nnz_before,
        nnz_after,
        threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_filters;
    use crate::shape::ConvShape;

    #[test]
    fn prune_hits_target_density() {
        let shape = ConvShape::new(32, 8, 8, 3, 16, 1, 1);
        let mut filters = random_filters(&shape, 1.0, 0.0, 5);
        let report = prune_to_density(&mut filters, 0.37);
        assert!(report.density() <= 0.37 + 1e-9);
        assert!(report.density() > 0.30, "over-pruned: {}", report.density());
    }

    #[test]
    fn prune_cuts_smallest_magnitudes() {
        let shape = ConvShape::new(2, 2, 2, 2, 1, 1, 0);
        let mut filters = random_filters(&shape, 1.0, 0.0, 1);
        // Force known magnitudes 1..8.
        for (i, v) in filters[0]
            .weights_mut()
            .as_mut_slice()
            .iter_mut()
            .enumerate()
        {
            *v = (i + 1) as f32;
        }
        prune_to_density(&mut filters, 0.5);
        let survivors: Vec<f32> = filters[0]
            .weights()
            .as_slice()
            .iter()
            .copied()
            .filter(|&v| v != 0.0)
            .collect();
        assert_eq!(survivors, vec![5.0, 6.0, 7.0, 8.0]);
    }

    #[test]
    fn pruning_to_one_is_identity() {
        let shape = ConvShape::new(4, 4, 4, 3, 4, 1, 1);
        let mut filters = random_filters(&shape, 0.5, 0.0, 2);
        let before: usize = filters.iter().map(Filter::nnz).sum();
        let report = prune_to_density(&mut filters, 1.0);
        assert_eq!(report.nnz_after, before);
        assert_eq!(report.threshold, 0.0);
    }

    #[test]
    fn pruning_to_zero_clears_everything() {
        let shape = ConvShape::new(4, 4, 4, 3, 4, 1, 1);
        let mut filters = random_filters(&shape, 0.8, 0.0, 3);
        let report = prune_to_density(&mut filters, 0.0);
        assert_eq!(report.nnz_after, 0);
        assert!(filters.iter().all(|f| f.nnz() == 0));
    }

    #[test]
    fn already_sparse_layer_needs_no_cut() {
        let shape = ConvShape::new(8, 4, 4, 3, 8, 1, 1);
        let mut filters = random_filters(&shape, 0.2, 0.0, 4);
        let before: usize = filters.iter().map(Filter::nnz).sum();
        let report = prune_to_density(&mut filters, 0.5);
        assert_eq!(report.nnz_after, before);
    }
}
