//! Reference convolutions: the numerical oracle for every accelerator model.
//!
//! Two independent implementations — a window-vector dot-product form
//! ([`conv2d`], matching how the accelerator linearizes work) and a
//! brute-force nested loop ([`conv2d_direct`]) — are tested against each
//! other, plus [`im2col`] lowering, ReLU, and max pooling.

use crate::filter::Filter;
use crate::shape::ConvShape;
use sparten_tensor::Tensor3;

/// 2-D convolution via linearized window vectors (the accelerator's view).
///
/// Returns an output tensor of shape `num_filters × out_h × out_w`.
///
/// # Panics
///
/// Panics if the input or filters disagree with `shape`.
///
/// # Example
///
/// ```
/// use sparten_nn::{conv2d, ConvShape, Filter};
/// use sparten_tensor::Tensor3;
///
/// let shape = ConvShape::new(1, 3, 3, 2, 1, 1, 0);
/// let input = Tensor3::from_vec(vec![1.0; 9], 1, 3, 3);
/// let filter = Filter::new(Tensor3::from_vec(vec![1.0; 4], 1, 2, 2));
/// let out = conv2d(&input, &[filter], &shape);
/// assert_eq!(out.get(0, 0, 0), 4.0);
/// ```
pub fn conv2d(input: &Tensor3, filters: &[Filter], shape: &ConvShape) -> Tensor3 {
    validate(input, filters, shape);
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let mut out = Tensor3::zeros(shape.num_filters, oh, ow);
    let linearized: Vec<Vec<f32>> = filters.iter().map(Filter::linearize).collect();
    for oy in 0..ow {
        for ox in 0..oh {
            let window =
                input.window_vector(ox, oy, shape.kernel, shape.kernel, shape.stride, shape.pad);
            for (f, lin) in linearized.iter().enumerate() {
                let dot: f32 = window.iter().zip(lin).map(|(a, b)| a * b).sum();
                out.set(f, ox, oy, dot);
            }
        }
    }
    out
}

/// Brute-force 2-D convolution with explicit nested loops — a second,
/// structurally different implementation used to cross-check [`conv2d`].
///
/// # Panics
///
/// Panics if the input or filters disagree with `shape`.
pub fn conv2d_direct(input: &Tensor3, filters: &[Filter], shape: &ConvShape) -> Tensor3 {
    validate(input, filters, shape);
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let mut out = Tensor3::zeros(shape.num_filters, oh, ow);
    for (f, filter) in filters.iter().enumerate() {
        let w = filter.weights();
        for oy in 0..ow {
            for ox in 0..oh {
                let mut acc = 0.0f32;
                for fy in 0..shape.kernel {
                    for fx in 0..shape.kernel {
                        let ix = (ox * shape.stride + fx) as isize - shape.pad as isize;
                        let iy = (oy * shape.stride + fy) as isize - shape.pad as isize;
                        if ix < 0
                            || iy < 0
                            || ix as usize >= shape.in_height
                            || iy as usize >= shape.in_width
                        {
                            continue;
                        }
                        for z in 0..shape.in_channels {
                            acc += input.get(z, ix as usize, iy as usize) * w.get(z, fx, fy);
                        }
                    }
                }
                out.set(f, ox, oy, acc);
            }
        }
    }
    out
}

/// im2col lowering: each output position becomes a row holding its
/// linearized window, so convolution is a matrix-matrix product. Returns a
/// `num_outputs × window_len` row-major matrix.
///
/// # Panics
///
/// Panics if the input disagrees with `shape`.
pub fn im2col(input: &Tensor3, shape: &ConvShape) -> Vec<Vec<f32>> {
    assert_eq!(input.channels(), shape.in_channels, "channel mismatch");
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let mut rows = Vec::with_capacity(oh * ow);
    for oy in 0..ow {
        for ox in 0..oh {
            rows.push(input.window_vector(
                ox,
                oy,
                shape.kernel,
                shape.kernel,
                shape.stride,
                shape.pad,
            ));
        }
    }
    rows
}

/// Max pooling with a `k × k` window and the given stride.
///
/// # Panics
///
/// Panics if the window does not fit the input.
pub fn max_pool(input: &Tensor3, k: usize, stride: usize) -> Tensor3 {
    assert!(k > 0 && stride > 0, "pool parameters must be positive");
    assert!(
        input.height() >= k && input.width() >= k,
        "pool window larger than input"
    );
    let oh = (input.height() - k) / stride + 1;
    let ow = (input.width() - k) / stride + 1;
    let mut out = Tensor3::zeros(input.channels(), oh, ow);
    for z in 0..input.channels() {
        for oy in 0..ow {
            for ox in 0..oh {
                let mut m = f32::NEG_INFINITY;
                for fy in 0..k {
                    for fx in 0..k {
                        m = m.max(input.get(z, ox * stride + fx, oy * stride + fy));
                    }
                }
                out.set(z, ox, oy, m);
            }
        }
    }
    out
}

fn validate(input: &Tensor3, filters: &[Filter], shape: &ConvShape) {
    assert_eq!(input.channels(), shape.in_channels, "channel mismatch");
    assert_eq!(input.height(), shape.in_height, "height mismatch");
    assert_eq!(input.width(), shape.in_width, "width mismatch");
    assert_eq!(filters.len(), shape.num_filters, "filter count mismatch");
    for f in filters {
        assert_eq!(f.kernel(), shape.kernel, "kernel size mismatch");
        assert_eq!(f.channels(), shape.in_channels, "filter channel mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_filters, random_tensor};

    fn close(a: &Tensor3, b: &Tensor3) -> bool {
        a.channels() == b.channels()
            && a.height() == b.height()
            && a.width() == b.width()
            && a.as_slice()
                .iter()
                .zip(b.as_slice())
                .all(|(x, y)| (x - y).abs() < 1e-3)
    }

    #[test]
    fn conv_implementations_agree_unit_stride() {
        let shape = ConvShape::new(4, 7, 7, 3, 5, 1, 1);
        let input = random_tensor(4, 7, 7, 0.5, 11);
        let filters = random_filters(&shape, 0.4, 0.0, 22);
        assert!(close(
            &conv2d(&input, &filters, &shape),
            &conv2d_direct(&input, &filters, &shape)
        ));
    }

    #[test]
    fn conv_implementations_agree_stride_two() {
        let shape = ConvShape::new(3, 9, 9, 3, 4, 2, 0);
        let input = random_tensor(3, 9, 9, 0.6, 33);
        let filters = random_filters(&shape, 0.5, 0.0, 44);
        assert!(close(
            &conv2d(&input, &filters, &shape),
            &conv2d_direct(&input, &filters, &shape)
        ));
    }

    #[test]
    fn conv_implementations_agree_stride_four_11x11() {
        // AlexNet Layer0 in miniature: non-unit stride, big kernel.
        let shape = ConvShape::new(3, 23, 23, 11, 2, 4, 2);
        let input = random_tensor(3, 23, 23, 1.0, 5);
        let filters = random_filters(&shape, 0.84, 0.0, 6);
        assert!(close(
            &conv2d(&input, &filters, &shape),
            &conv2d_direct(&input, &filters, &shape)
        ));
    }

    #[test]
    fn im2col_times_filter_equals_conv() {
        let shape = ConvShape::new(2, 5, 5, 3, 3, 1, 0);
        let input = random_tensor(2, 5, 5, 0.7, 7);
        let filters = random_filters(&shape, 0.6, 0.0, 8);
        let rows = im2col(&input, &shape);
        let reference = conv2d(&input, &filters, &shape);
        let (oh, _ow) = (shape.out_height(), shape.out_width());
        for (r, row) in rows.iter().enumerate() {
            let (oy, ox) = (r / oh, r % oh);
            for (f, filter) in filters.iter().enumerate() {
                let lin = filter.linearize();
                let dot: f32 = row.iter().zip(&lin).map(|(a, b)| a * b).sum();
                assert!((dot - reference.get(f, ox, oy)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn identity_one_by_one_conv() {
        let shape = ConvShape::new(1, 3, 3, 1, 1, 1, 0);
        let input = random_tensor(1, 3, 3, 1.0, 9);
        let mut w = Tensor3::zeros(1, 1, 1);
        w.set(0, 0, 0, 1.0);
        let out = conv2d(&input, &[Filter::new(w)], &shape);
        assert!(close(&out, &input));
    }

    #[test]
    fn max_pool_3x3_stride2() {
        let mut input = Tensor3::zeros(1, 5, 5);
        input.set(0, 2, 2, 9.0);
        input.set(0, 0, 0, 1.0);
        let out = max_pool(&input, 3, 2);
        assert_eq!((out.height(), out.width()), (2, 2));
        assert_eq!(out.get(0, 0, 0), 9.0); // window [0..3)² contains the 9
        assert_eq!(out.get(0, 1, 1), 9.0);
    }

    #[test]
    fn relu_then_conv_pipeline() {
        let shape = ConvShape::new(1, 3, 3, 1, 1, 1, 0);
        let mut input = Tensor3::from_vec(
            vec![-1.0, 2.0, -3.0, 4.0, -5.0, 6.0, -7.0, 8.0, -9.0],
            1,
            3,
            3,
        );
        input.relu();
        let mut w = Tensor3::zeros(1, 1, 1);
        w.set(0, 0, 0, 2.0);
        let out = conv2d(&input, &[Filter::new(w)], &shape);
        // Z-first layout: cell (x=1, y=0) holds the original 2.0 → ×2 = 4.
        assert_eq!(out.get(0, 1, 0), 4.0);
        assert_eq!(out.get(0, 0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "filter count mismatch")]
    fn wrong_filter_count_panics() {
        let shape = ConvShape::new(1, 3, 3, 1, 2, 1, 0);
        let input = Tensor3::zeros(1, 3, 3);
        conv2d(&input, &[], &shape);
    }
}
