#![warn(missing_docs)]

//! CNN substrate for the SparTen reproduction.
//!
//! SparTen is evaluated on pruned AlexNet, GoogLeNet, and VGGNet layers
//! (Table 3 of the paper). This crate provides everything those experiments
//! need from the neural-network side:
//!
//! * [`shape`] — layer shape algebra (output dimensions, dense MAC counts);
//! * [`filter`] — filters with the Z-first linearization that matches the
//!   accelerator's on-the-fly window vectors;
//! * [`conv`] — reference convolutions (direct and im2col) for any stride
//!   and padding, plus ReLU and max-pooling, used as the numerical oracle;
//! * [`pruning`] — magnitude pruning to per-layer density targets (the Han
//!   et al. scheme the paper applies; retraining is a no-op here because the
//!   simulators only see sparsity structure);
//! * [`generate`] — deterministic synthetic sparse tensors at target
//!   densities, with per-filter density spread to drive load imbalance;
//! * [`networks`] — the paper's Table 3 benchmark layers.

pub mod conv;
pub mod fc;
pub mod filter;
pub mod generate;
pub mod inception;
pub mod io;
pub mod lstm;
pub mod networks;
pub mod pruning;
pub mod quant;
pub mod shape;
pub mod stats;
pub mod structured;

pub use conv::{conv2d, conv2d_direct, im2col, max_pool};
pub use sparten_tensor::{prng, Rng64};
pub use fc::{FcLayer, Mlp};
pub use filter::Filter;
pub use generate::{random_filters, random_tensor, workload, Workload};
pub use inception::{inception_3a, InceptionModule};
pub use io::{load_workload, save_workload};
pub use lstm::{LstmCell, LstmState};
pub use networks::{alexnet, all_networks, googlenet, vggnet, LayerSpec, Network};
pub use pruning::{prune_to_density, PruneReport};
pub use quant::QuantTensor;
pub use shape::ConvShape;
pub use stats::{reduction_factors, DensityHistogram, Summary};
pub use structured::{prune_coarse, CoarsePruneReport};
