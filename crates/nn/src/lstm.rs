//! LSTM cells on sparse matrix-vector products (the paper's §7 extension).
//!
//! §7: "SparTen is broadly applicable to ... non-convolutional deep neural
//! networks (DNNs) such as long short-term memory (LSTMs), recurrent neural
//! networks (RNNs), and multi-level perceptrons (MLP)" — left to future
//! work in the paper, implemented here. An LSTM step is eight
//! matrix-vector products (four gates × {input, hidden}), each of which is
//! exactly the accelerator's SpMV primitive; the elementwise gate math is
//! CPU-side. The dense reference here is checked against the SparTen
//! functional engine in the `extensions` integration test.

use crate::fc::FcLayer;

/// Logistic sigmoid.
pub fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// One LSTM cell with sparse weights.
///
/// Gate order within the stacked matrices is `[input, forget, cell, output]`.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCell {
    /// Input projection: `4·hidden × input` weights.
    wx: FcLayer,
    /// Recurrent projection: `4·hidden × hidden` weights.
    wh: FcLayer,
    /// Gate biases, length `4·hidden`.
    bias: Vec<f32>,
    hidden: usize,
}

/// The `(h, c)` state pair of an LSTM cell.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state.
    pub h: Vec<f32>,
    /// Cell state.
    pub c: Vec<f32>,
}

impl LstmState {
    /// The zero state for `hidden` units.
    pub fn zeros(hidden: usize) -> Self {
        LstmState {
            h: vec![0.0; hidden],
            c: vec![0.0; hidden],
        }
    }
}

impl LstmCell {
    /// Builds a cell from stacked gate projections.
    ///
    /// # Panics
    ///
    /// Panics if shapes are inconsistent (`wx`/`wh` must both have
    /// `4·hidden` outputs, `wh` must take `hidden` inputs, `bias` must have
    /// `4·hidden` entries).
    pub fn new(wx: FcLayer, wh: FcLayer, bias: Vec<f32>) -> Self {
        let hidden = wh.in_features();
        assert_eq!(wx.out_features(), 4 * hidden, "wx must stack four gates");
        assert_eq!(wh.out_features(), 4 * hidden, "wh must stack four gates");
        assert_eq!(bias.len(), 4 * hidden, "bias must cover four gates");
        LstmCell {
            wx,
            wh,
            bias,
            hidden,
        }
    }

    /// Generates a random sparse cell.
    pub fn random(input: usize, hidden: usize, density: f64, seed: u64) -> Self {
        let wx = FcLayer::random(input, 4 * hidden, density, seed);
        let wh = FcLayer::random(hidden, 4 * hidden, density, seed.wrapping_add(1));
        let bias = (0..4 * hidden)
            .map(|i| ((i % 7) as f32 - 3.0) / 10.0)
            .collect();
        LstmCell::new(wx, wh, bias)
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input(&self) -> usize {
        self.wx.in_features()
    }

    /// The stacked input projection (run this on the accelerator).
    pub fn wx(&self) -> &FcLayer {
        &self.wx
    }

    /// The stacked recurrent projection (run this on the accelerator).
    pub fn wh(&self) -> &FcLayer {
        &self.wh
    }

    /// Completes one step given externally computed projections
    /// `px = Wx·x` and `ph = Wh·h` (e.g. from the SparTen engine):
    /// the CPU-side gate math of the split execution model.
    ///
    /// # Panics
    ///
    /// Panics if the projections or state have the wrong width.
    pub fn step_from_projections(&self, px: &[f32], ph: &[f32], state: &LstmState) -> LstmState {
        assert_eq!(px.len(), 4 * self.hidden, "px width mismatch");
        assert_eq!(ph.len(), 4 * self.hidden, "ph width mismatch");
        assert_eq!(state.c.len(), self.hidden, "state width mismatch");
        let h = self.hidden;
        let gate = |g: usize, j: usize| px[g * h + j] + ph[g * h + j] + self.bias[g * h + j];
        let mut next = LstmState::zeros(h);
        for j in 0..h {
            let i = sigmoid(gate(0, j));
            let f = sigmoid(gate(1, j));
            let g = gate(2, j).tanh();
            let o = sigmoid(gate(3, j));
            next.c[j] = f * state.c[j] + i * g;
            next.h[j] = o * next.c[j].tanh();
        }
        next
    }

    /// Dense reference step: computes both projections on the CPU.
    pub fn step(&self, x: &[f32], state: &LstmState) -> LstmState {
        let px = self.wx.forward(x, false);
        let ph = self.wh.forward(&state.h, false);
        self.step_from_projections(&px, &ph, state)
    }

    /// Runs a sequence through the cell, returning the final state.
    pub fn run_sequence(&self, inputs: &[Vec<f32>]) -> LstmState {
        let mut state = LstmState::zeros(self.hidden);
        for x in inputs {
            state = self.step(x, &state);
        }
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_shape() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(10.0) > 0.99);
        assert!(sigmoid(-10.0) < 0.01);
    }

    #[test]
    fn zero_input_zero_state_is_bias_driven() {
        let cell = LstmCell::random(8, 4, 0.5, 1);
        let s = cell.step(&[0.0; 8], &LstmState::zeros(4));
        // With zero projections the gates reduce to biases — finite values.
        assert!(s.h.iter().all(|v| v.is_finite()));
        assert!(s.c.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn forget_gate_saturation_preserves_cell_state() {
        // A cell whose weights are zero and forget bias is huge keeps c.
        let wx = FcLayer::new(vec![vec![0.0; 2]; 8]);
        let wh = FcLayer::new(vec![vec![0.0; 2]; 8]);
        let mut bias = vec![-100.0; 8]; // all gates closed...
        bias[2..4].fill(100.0); // ...except forget wide open
        let cell = LstmCell::new(wx, wh, bias);
        let state = LstmState {
            h: vec![0.3, -0.2],
            c: vec![1.5, -0.7],
        };
        let next = cell.step(&[0.0, 0.0], &state);
        for (a, b) in next.c.iter().zip(&state.c) {
            assert!((a - b).abs() < 1e-3, "cell state must persist: {a} vs {b}");
        }
    }

    #[test]
    fn step_from_projections_matches_step() {
        let cell = LstmCell::random(12, 6, 0.4, 2);
        let x: Vec<f32> = (0..12).map(|i| (i as f32 - 6.0) / 5.0).collect();
        let state = LstmState {
            h: (0..6).map(|i| (i as f32) / 10.0).collect(),
            c: (0..6).map(|i| (i as f32) / 7.0 - 0.4).collect(),
        };
        let px = cell.wx().forward(&x, false);
        let ph = cell.wh().forward(&state.h, false);
        let a = cell.step(&x, &state);
        let b = cell.step_from_projections(&px, &ph, &state);
        assert_eq!(a, b);
    }

    #[test]
    fn sequence_state_stays_bounded() {
        // tanh/sigmoid keep h in (-1, 1) regardless of sequence length.
        let cell = LstmCell::random(8, 4, 0.5, 3);
        let seq: Vec<Vec<f32>> = (0..50)
            .map(|t| (0..8).map(|i| ((t * i) % 9) as f32 - 4.0).collect())
            .collect();
        let s = cell.run_sequence(&seq);
        assert!(s.h.iter().all(|v| v.abs() < 1.0));
    }

    #[test]
    #[should_panic(expected = "four gates")]
    fn mismatched_gate_stack_panics() {
        let wx = FcLayer::random(4, 8, 1.0, 0);
        let wh = FcLayer::random(3, 8, 1.0, 0); // hidden 3 → needs 12 outputs
        LstmCell::new(wx, wh, vec![0.0; 8]);
    }
}
