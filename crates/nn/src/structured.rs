//! Coarse-grain (structured) pruning — the Cambricon-S / Scalpel approach
//! the paper contrasts with in §6.
//!
//! Cambricon-S "clamps to zeros the values in contiguous positions in a
//! group of filters", forcing every filter in a group to share one sparsity
//! mask so the hardware stays regular. The price is accuracy: positions
//! that matter to one filter get clamped because they are weak in the rest
//! of the group, and strong group positions keep weights that unstructured
//! magnitude pruning would have cut. This module implements group-shared
//! pruning and *measures* that collateral damage, giving Table 1's
//! "maintains accuracy: No" an observable.

use crate::filter::Filter;
use crate::pruning::prune_to_density;

/// Outcome of coarse-grain pruning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoarsePruneReport {
    /// Total weight positions across the layer.
    pub total_weights: usize,
    /// Non-zero weights after coarse pruning.
    pub nnz_after: usize,
    /// Weights that unstructured magnitude pruning (to the same density)
    /// would have *kept* but the shared mask clamped — the accuracy-relevant
    /// collateral.
    pub clamped_keepers: usize,
    /// Weights the shared mask kept that unstructured pruning would have
    /// cut (wasted capacity).
    pub kept_prunees: usize,
}

impl CoarsePruneReport {
    /// Achieved density.
    pub fn density(&self) -> f64 {
        if self.total_weights == 0 {
            0.0
        } else {
            self.nnz_after as f64 / self.total_weights as f64
        }
    }

    /// Fraction of the would-be-kept weights that the structure clamped —
    /// a proxy for the accuracy damage unstructured pruning avoids.
    pub fn collateral_fraction(&self) -> f64 {
        let keepers = self.nnz_after + self.clamped_keepers - self.kept_prunees;
        if keepers == 0 {
            0.0
        } else {
            self.clamped_keepers as f64 / keepers as f64
        }
    }
}

/// Prunes `filters` so every group of `group_size` consecutive filters
/// shares one mask, keeping the positions with the largest group L1 norms
/// until the target density is met. Returns the collateral report.
///
/// # Panics
///
/// Panics if `group_size == 0`, `filters` is empty, or `target_density` is
/// not in `[0, 1]`.
pub fn prune_coarse(
    filters: &mut [Filter],
    group_size: usize,
    target_density: f64,
) -> CoarsePruneReport {
    assert!(group_size > 0, "group size must be positive");
    assert!(!filters.is_empty(), "need at least one filter");
    assert!(
        (0.0..=1.0).contains(&target_density),
        "target density must be in [0, 1]"
    );
    // What unstructured pruning would have kept, for the collateral count.
    let mut unstructured = filters.to_vec();
    prune_to_density(&mut unstructured, target_density);

    let weights_per_filter = filters[0].weights().len();
    let total_weights = weights_per_filter * filters.len();
    let mut nnz_after = 0usize;
    let mut clamped_keepers = 0usize;
    let mut kept_prunees = 0usize;

    let mut start = 0;
    while start < filters.len() {
        let end = (start + group_size).min(filters.len());
        // Group L1 norm per position.
        let mut norms: Vec<(f32, usize)> = (0..weights_per_filter)
            .map(|p| {
                let l1: f32 = filters[start..end]
                    .iter()
                    .map(|f| f.weights().as_slice()[p].abs())
                    .sum();
                (l1, p)
            })
            .collect();
        norms.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite").then(a.1.cmp(&b.1)));
        let keep = ((weights_per_filter as f64) * target_density).floor() as usize;
        let mut keep_mask = vec![false; weights_per_filter];
        for &(l1, p) in norms.iter().take(keep) {
            // Never keep all-zero positions.
            if l1 > 0.0 {
                keep_mask[p] = true;
            }
        }
        for (fi, f) in filters[start..end].iter_mut().enumerate() {
            let unstructured_kept = unstructured[start + fi].weights().as_slice();
            for (p, keep) in keep_mask.iter().enumerate() {
                let w = &mut f.weights_mut().as_mut_slice()[p];
                let would_keep = unstructured_kept[p] != 0.0;
                if *keep {
                    if *w != 0.0 {
                        nnz_after += 1;
                        if !would_keep {
                            kept_prunees += 1;
                        }
                    }
                } else {
                    if *w != 0.0 && would_keep {
                        clamped_keepers += 1;
                    }
                    *w = 0.0;
                }
            }
        }
        start = end;
    }
    CoarsePruneReport {
        total_weights,
        nnz_after,
        clamped_keepers,
        kept_prunees,
    }
}

/// The size of each group's *common mask*: the union of non-zero positions
/// across the group's filters. After coarse pruning this is at most the
/// per-filter keep budget — the regularity Cambricon-S's hardware relies on
/// (one mask shared by the whole group). Unstructured pruning typically
/// unions to far more positions.
pub fn group_mask_sizes(filters: &[Filter], group_size: usize) -> Vec<usize> {
    filters
        .chunks(group_size)
        .map(|group| {
            let weights = group[0].weights().len();
            (0..weights)
                .filter(|&p| group.iter().any(|f| f.weights().as_slice()[p] != 0.0))
                .count()
        })
        .collect()
}

/// Whether every group's common mask fits the per-filter keep budget for
/// `target_density` — i.e. the layer is coarse-grain regular.
pub fn groups_share_masks(filters: &[Filter], group_size: usize, target_density: f64) -> bool {
    let weights = filters[0].weights().len();
    let budget = ((weights as f64) * target_density).floor() as usize;
    group_mask_sizes(filters, group_size)
        .iter()
        .all(|&size| size <= budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_filters;
    use crate::shape::ConvShape;

    fn dense_filters(n: usize, seed: u64) -> Vec<Filter> {
        let shape = ConvShape::new(16, 4, 4, 3, n, 1, 1);
        random_filters(&shape, 1.0, 0.0, seed)
    }

    #[test]
    fn coarse_pruning_hits_density() {
        let mut fs = dense_filters(32, 1);
        let report = prune_coarse(&mut fs, 8, 0.35);
        assert!(report.density() <= 0.35 + 1e-9);
        assert!(report.density() > 0.30, "got {}", report.density());
    }

    #[test]
    fn groups_end_up_sharing_masks() {
        let mut fs = dense_filters(32, 2);
        prune_coarse(&mut fs, 8, 0.4);
        assert!(groups_share_masks(&fs, 8, 0.4));
        // Different groups pick different positions, so the layer-wide
        // union exceeds the budget.
        assert!(!groups_share_masks(&fs, 32, 0.4));
        // Unstructured pruning to the same density is irregular.
        let mut unstructured = dense_filters(32, 2);
        prune_to_density(&mut unstructured, 0.4);
        assert!(!groups_share_masks(&unstructured, 8, 0.4));
    }

    #[test]
    fn structure_costs_collateral_at_small_groups_too() {
        // Even modest grouping clamps weights magnitude pruning would keep.
        let mut fs = dense_filters(32, 3);
        let report = prune_coarse(&mut fs, 8, 0.35);
        assert!(report.clamped_keepers > 0);
        assert!(report.collateral_fraction() > 0.0);
    }

    #[test]
    fn bigger_groups_cause_more_collateral() {
        let mut small = dense_filters(64, 4);
        let mut large = dense_filters(64, 4);
        let rs = prune_coarse(&mut small, 4, 0.35);
        let rl = prune_coarse(&mut large, 32, 0.35);
        assert!(
            rl.collateral_fraction() > rs.collateral_fraction(),
            "group 32: {} !> group 4: {}",
            rl.collateral_fraction(),
            rs.collateral_fraction()
        );
    }

    #[test]
    fn group_of_one_is_least_collateral() {
        // With singleton groups the shared-mask constraint is per filter;
        // it still differs from global magnitude pruning (per-filter budget
        // vs layer-wide), but collateral should be small.
        let mut fs = dense_filters(16, 5);
        let report = prune_coarse(&mut fs, 1, 0.5);
        assert!(report.collateral_fraction() < 0.35, "{report:?}");
    }

    #[test]
    fn sparse_input_filters_work() {
        let shape = ConvShape::new(8, 4, 4, 3, 16, 1, 1);
        let mut fs = random_filters(&shape, 0.5, 0.4, 6);
        let report = prune_coarse(&mut fs, 4, 0.3);
        assert!(report.density() <= 0.3 + 1e-9);
        assert!(groups_share_masks(&fs, 4, 0.3));
    }
}
