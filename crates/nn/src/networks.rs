//! The paper's benchmark networks (Table 3).
//!
//! Each [`LayerSpec`] carries the layer shape plus the measured input and
//! filter densities of the pruned network. The specs reproduce Table 3
//! verbatim: AlexNet's five convolution layers, twelve GoogLeNet inception
//! sublayers (Inception 3a and 5a), and VGGNet's thirteen convolution
//! layers. Stride and padding follow the original network definitions
//! (AlexNet Layer0 is the stride-4 layer on which SCNN's Cartesian product
//! breaks down).

use crate::generate::{self, Workload};
use crate::shape::ConvShape;

/// One benchmark layer: shape plus Table 3 densities.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerSpec {
    /// Layer name as printed in Table 3 (e.g. `"Layer2"`, `"Inc3a_3x3"`).
    pub name: &'static str,
    /// Convolution shape.
    pub shape: ConvShape,
    /// Input feature-map density (fraction of non-zeros).
    pub input_density: f64,
    /// Filter density after pruning.
    pub filter_density: f64,
}

impl LayerSpec {
    /// Generates this layer's deterministic synthetic workload.
    pub fn workload(&self, seed: u64) -> Workload {
        generate::workload(&self.shape, self.input_density, self.filter_density, seed)
    }

    /// Dense MAC count of the layer.
    pub fn dense_macs(&self) -> usize {
        self.shape.dense_macs()
    }

    /// Expected sparse (both-operands-non-zero) MAC count — density product
    /// times the dense MACs, the quadratic reduction of §1.
    pub fn expected_sparse_macs(&self) -> f64 {
        self.dense_macs() as f64 * self.input_density * self.filter_density
    }
}

/// A named benchmark network: an ordered list of layer specs.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Network name ("AlexNet", "GoogLeNet", "VGGNet").
    pub name: &'static str,
    /// The evaluated layers in Table 3 order.
    pub layers: Vec<LayerSpec>,
}

impl Network {
    /// Looks up a layer by its Table 3 name.
    pub fn layer(&self, name: &str) -> Option<&LayerSpec> {
        self.layers.iter().find(|l| l.name == name)
    }
}

#[allow(clippy::too_many_arguments)] // mirrors Table 3's column order
fn spec(
    name: &'static str,
    (d, h, w): (usize, usize, usize),
    input_density: f64,
    kernel: usize,
    num_filters: usize,
    filter_density: f64,
    stride: usize,
    pad: usize,
) -> LayerSpec {
    LayerSpec {
        name,
        shape: ConvShape::new(d, h, w, kernel, num_filters, stride, pad),
        input_density,
        filter_density,
    }
}

/// AlexNet's five convolution layers (Table 3). Layer0 is the dense-input,
/// stride-4, 11×11 layer; the rest are unit-stride.
pub fn alexnet() -> Network {
    Network {
        name: "AlexNet",
        layers: vec![
            spec("Layer0", (3, 224, 224), 1.00, 11, 64, 0.84, 4, 2),
            spec("Layer1", (64, 55, 55), 0.38, 5, 192, 0.38, 1, 2),
            spec("Layer2", (192, 27, 27), 0.24, 3, 384, 0.35, 1, 1),
            spec("Layer3", (384, 13, 13), 0.20, 3, 256, 0.37, 1, 1),
            spec("Layer4", (256, 13, 13), 0.24, 3, 256, 0.37, 1, 1),
        ],
    }
}

/// GoogLeNet's Inception 3a and 5a sublayers (Table 3). All unit stride;
/// k×k sublayers use same-padding.
pub fn googlenet() -> Network {
    Network {
        name: "GoogLeNet",
        layers: vec![
            spec("Inc3a_1x1", (192, 28, 28), 0.58, 1, 64, 0.38, 1, 0),
            spec("Inc3a_3x3red", (192, 28, 28), 0.58, 1, 96, 0.41, 1, 0),
            spec("Inc3a_3x3", (96, 28, 28), 0.68, 3, 128, 0.43, 1, 1),
            spec("Inc3a_5x5red", (192, 28, 28), 0.58, 1, 16, 0.35, 1, 0),
            spec("Inc3a_5x5", (16, 28, 28), 0.85, 5, 32, 0.33, 1, 2),
            spec("Inc3a_poolprj", (192, 28, 28), 0.58, 1, 32, 0.47, 1, 0),
            spec("Inc5a_1x1", (832, 7, 7), 0.31, 1, 384, 0.37, 1, 0),
            spec("Inc5a_3x3red", (832, 7, 7), 0.31, 1, 192, 0.38, 1, 0),
            spec("Inc5a_3x3", (192, 7, 7), 0.42, 3, 384, 0.39, 1, 1),
            spec("Inc5a_5x5red", (832, 7, 7), 0.31, 1, 48, 0.35, 1, 0),
            spec("Inc5a_5x5", (48, 7, 7), 0.69, 5, 128, 0.38, 1, 2),
            spec("Inc5a_poolprj", (832, 7, 7), 0.31, 1, 128, 0.36, 1, 0),
        ],
    }
}

/// VGGNet's thirteen 3×3 convolution layers (Table 3), all unit-stride with
/// same-padding. Layer0 has the dense 3-channel image input whose shallow
/// depth hurts SparTen (§5.1).
pub fn vggnet() -> Network {
    Network {
        name: "VGGNet",
        layers: vec![
            spec("Layer0", (3, 224, 224), 1.00, 3, 64, 0.58, 1, 1),
            spec("Layer1", (64, 224, 224), 0.57, 3, 64, 0.21, 1, 1),
            spec("Layer2", (64, 224, 224), 0.49, 3, 128, 0.34, 1, 1),
            spec("Layer3", (128, 112, 112), 0.52, 3, 128, 0.36, 1, 1),
            spec("Layer4", (128, 112, 112), 0.36, 3, 256, 0.53, 1, 1),
            spec("Layer5", (256, 56, 56), 0.39, 3, 256, 0.24, 1, 1),
            spec("Layer6", (256, 56, 56), 0.49, 3, 256, 0.42, 1, 1),
            spec("Layer7", (256, 56, 56), 0.16, 3, 512, 0.32, 1, 1),
            spec("Layer8", (512, 28, 28), 0.27, 3, 512, 0.27, 1, 1),
            spec("Layer9", (512, 28, 28), 0.30, 3, 512, 0.34, 1, 1),
            spec("Layer10", (512, 28, 28), 0.13, 3, 512, 0.32, 1, 1),
            spec("Layer11", (512, 14, 14), 0.22, 3, 512, 0.29, 1, 1),
            spec("Layer12", (512, 14, 14), 0.28, 3, 512, 0.36, 1, 1),
        ],
    }
}

/// All three benchmark networks in paper order.
pub fn all_networks() -> Vec<Network> {
    vec![alexnet(), googlenet(), vggnet()]
}

/// ResNet-style downsampling layers (§1/§2.1.1: "this approach is not
/// applicable to non-unit-stride convolutions in CNNs (e.g., ResNets)").
/// Not part of Table 3 — used by the stride study to show SparTen handling
/// what SCNN's Cartesian product cannot.
pub fn resnet_samples() -> Network {
    Network {
        name: "ResNet-samples",
        layers: vec![
            // conv1: 7x7/2 on the dense image.
            spec("Conv1_7x7s2", (3, 224, 224), 1.00, 7, 64, 0.70, 2, 3),
            // A conv3_1-style 3x3/2 downsampling block entry.
            spec("Conv3_3x3s2", (128, 28, 28), 0.35, 3, 256, 0.35, 2, 1),
            // A conv4_1-style 1x1/2 projection shortcut.
            spec("Conv4_1x1s2", (256, 14, 14), 0.30, 1, 512, 0.35, 2, 0),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_layer_counts() {
        assert_eq!(alexnet().layers.len(), 5);
        assert_eq!(googlenet().layers.len(), 12);
        assert_eq!(vggnet().layers.len(), 13);
    }

    #[test]
    fn alexnet_layer0_is_stride4() {
        let net = alexnet();
        let l0 = net.layer("Layer0").expect("Layer0 exists");
        assert_eq!(l0.shape.stride, 4);
        assert_eq!(l0.shape.kernel, 11);
        assert_eq!(l0.input_density, 1.0);
    }

    #[test]
    fn googlenet_has_one_by_one_layers() {
        let net = googlenet();
        let l = net.layer("Inc5a_1x1").expect("layer exists");
        assert_eq!(l.shape.kernel, 1);
        assert_eq!(l.shape.in_channels, 832);
        assert_eq!(l.shape.num_filters, 384);
    }

    #[test]
    fn googlenet_5x5red_filter_counts_are_non_multiples_of_32() {
        // §5.1: 16 and 48 filters interact poorly with collocation.
        let net = googlenet();
        assert_eq!(net.layer("Inc3a_5x5red").unwrap().shape.num_filters, 16);
        assert_eq!(net.layer("Inc5a_5x5red").unwrap().shape.num_filters, 48);
    }

    #[test]
    fn vggnet_shapes_chain_spatially() {
        // Successive VGG blocks halve spatial dims (pooling between blocks).
        let net = vggnet();
        assert_eq!(net.layers[3].shape.in_height, 112);
        assert_eq!(net.layers[7].shape.in_height, 56);
        assert_eq!(net.layers[12].shape.in_height, 14);
    }

    #[test]
    fn densities_are_fractions() {
        for net in all_networks() {
            for l in &net.layers {
                assert!(
                    l.input_density > 0.0 && l.input_density <= 1.0,
                    "{}",
                    l.name
                );
                assert!(
                    l.filter_density > 0.0 && l.filter_density <= 1.0,
                    "{}",
                    l.name
                );
            }
        }
    }

    #[test]
    fn expected_sparse_macs_is_quadratic_reduction() {
        let net = alexnet();
        let l2 = net.layer("Layer2").unwrap();
        let ratio = l2.dense_macs() as f64 / l2.expected_sparse_macs();
        // 1/(0.24·0.35) ≈ 11.9× compute reduction.
        assert!((ratio - 1.0 / (0.24 * 0.35)).abs() < 1e-6);
    }

    #[test]
    fn workloads_match_spec_densities() {
        let net = googlenet();
        let l = net.layer("Inc3a_3x3").unwrap();
        let w = l.workload(1);
        assert!((w.input_density() - l.input_density).abs() < 0.03);
        assert!((w.filter_density() - l.filter_density).abs() < 0.05);
    }
}
