//! 8-bit quantization — the value format the SparTen hardware computes in.
//!
//! The paper's datapath uses 8-bit values (§3.2's buffering arithmetic and
//! Table 4's MACs are 8-bit). This module provides symmetric per-tensor
//! linear quantization to `i8` with an exact-zero guarantee (a zero value
//! quantizes to zero, so sparsity structure is preserved bit-for-bit),
//! dequantization, and error bounds. The bit-serial baseline model
//! (`sparten-sim`) also uses the quantized magnitudes for Booth encoding.

use sparten_tensor::Tensor3;

/// A symmetrically quantized tensor: `value ≈ scale · q` with `q ∈ i8`.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantTensor {
    values: Vec<i8>,
    scale: f32,
    channels: usize,
    height: usize,
    width: usize,
}

impl QuantTensor {
    /// Quantizes a tensor symmetrically to 8 bits. Exact zeros stay zero.
    ///
    /// The scale maps the maximum magnitude to 127; an all-zero tensor gets
    /// scale 1.
    pub fn quantize(t: &Tensor3) -> Self {
        let max = t.as_slice().iter().fold(0.0f32, |acc, &v| acc.max(v.abs()));
        let scale = if max == 0.0 { 1.0 } else { max / 127.0 };
        let values = t
            .as_slice()
            .iter()
            .map(|&v| {
                if v == 0.0 {
                    0
                } else {
                    let q = (v / scale).round().clamp(-127.0, 127.0) as i8;
                    // Preserve the sparsity structure: a non-zero value must
                    // not collapse to zero (round away from zero instead).
                    if q == 0 {
                        if v > 0.0 {
                            1
                        } else {
                            -1
                        }
                    } else {
                        q
                    }
                }
            })
            .collect();
        QuantTensor {
            values,
            scale,
            channels: t.channels(),
            height: t.height(),
            width: t.width(),
        }
    }

    /// Builds a quantized tensor from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the shape or `scale ≤ 0`.
    pub fn from_parts(
        values: Vec<i8>,
        scale: f32,
        channels: usize,
        height: usize,
        width: usize,
    ) -> Self {
        assert_eq!(values.len(), channels * height * width, "shape mismatch");
        assert!(scale > 0.0, "scale must be positive");
        QuantTensor {
            values,
            scale,
            channels,
            height,
            width,
        }
    }

    /// The quantized values (Z-first, like [`Tensor3`]).
    pub fn values(&self) -> &[i8] {
        &self.values
    }

    /// The quantization scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Dequantizes back to floats.
    pub fn dequantize(&self) -> Tensor3 {
        Tensor3::from_vec(
            self.values.iter().map(|&q| q as f32 * self.scale).collect(),
            self.channels,
            self.height,
            self.width,
        )
    }

    /// Number of non-zero quantized values.
    pub fn nnz(&self) -> usize {
        self.values.iter().filter(|&&q| q != 0).count()
    }

    /// Worst-case absolute quantization error: half a step, except for
    /// small values forced away from zero (at most one step).
    pub fn error_bound(&self) -> f32 {
        self.scale
    }
}

/// Integer convolution: the datapath the 8-bit hardware actually runs.
///
/// Inputs and weights are `i8`; products accumulate in `i32` (wide
/// accumulators, no overflow for realistic window sizes); the result is
/// rescaled by the two quantization scales. This is the exact arithmetic
/// an 8-bit MAC array performs, so float-vs-int drift bounds the
/// quantization noise the accelerator introduces.
///
/// Returns the output in float after rescaling.
///
/// # Panics
///
/// Panics if shapes disagree with `shape` or any filter's scale differs
/// (per-tensor weight quantization shares one scale).
pub fn conv2d_quantized(
    input: &QuantTensor,
    filters: &[QuantTensor],
    weight_scale: f32,
    shape: &crate::shape::ConvShape,
) -> Tensor3 {
    assert_eq!(filters.len(), shape.num_filters, "filter count mismatch");
    let d = shape.in_channels;
    let k = shape.kernel;
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let mut out = Tensor3::zeros(shape.num_filters, oh, ow);
    let rescale = input.scale() * weight_scale;
    for (f, filter) in filters.iter().enumerate() {
        assert_eq!(filter.values().len(), d * k * k, "filter shape mismatch");
        for oy in 0..ow {
            for ox in 0..oh {
                let mut acc: i32 = 0;
                for fy in 0..k {
                    for fx in 0..k {
                        let ix = (ox * shape.stride + fx) as isize - shape.pad as isize;
                        let iy = (oy * shape.stride + fy) as isize - shape.pad as isize;
                        if ix < 0
                            || iy < 0
                            || ix as usize >= shape.in_height
                            || iy as usize >= shape.in_width
                        {
                            continue;
                        }
                        let ibase = d * (ix as usize + shape.in_height * iy as usize);
                        let fbase = d * (fx + shape.kernel * fy);
                        for z in 0..d {
                            acc += input.values()[ibase + z] as i32
                                * filter.values()[fbase + z] as i32;
                        }
                    }
                }
                out.set(f, ox, oy, acc as f32 * rescale);
            }
        }
    }
    out
}

/// Maximum absolute dequantization error against the original tensor.
pub fn quantization_error(original: &Tensor3, quant: &QuantTensor) -> f32 {
    original
        .as_slice()
        .iter()
        .zip(quant.dequantize().as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_tensor;

    #[test]
    fn roundtrip_error_is_bounded() {
        let t = random_tensor(8, 6, 6, 0.5, 1);
        let q = QuantTensor::quantize(&t);
        assert!(quantization_error(&t, &q) <= q.error_bound() + 1e-6);
    }

    #[test]
    fn sparsity_structure_is_preserved() {
        let t = random_tensor(16, 5, 5, 0.3, 2);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.nnz(), t.nnz());
        for (&orig, &quant) in t.as_slice().iter().zip(q.values()) {
            assert_eq!(orig == 0.0, quant == 0, "zero structure must match");
        }
    }

    #[test]
    fn all_zero_tensor_quantizes_cleanly() {
        let t = Tensor3::zeros(2, 2, 2);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.nnz(), 0);
        assert_eq!(q.dequantize(), t);
    }

    #[test]
    fn max_magnitude_maps_to_127() {
        let t = Tensor3::from_vec(vec![0.0, -2.54, 1.27, 0.635], 1, 2, 2);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.values().iter().map(|q| q.abs()).max(), Some(127));
        assert!((q.scale() - 0.02).abs() < 1e-6);
    }

    #[test]
    fn tiny_values_do_not_collapse_to_zero() {
        let t = Tensor3::from_vec(vec![100.0, 0.001, -0.001, 0.0], 1, 2, 2);
        let q = QuantTensor::quantize(&t);
        assert_eq!(q.nnz(), 3);
    }

    #[test]
    fn integer_conv_matches_dequantized_float_conv_exactly() {
        use crate::conv::conv2d;
        use crate::filter::Filter;
        use crate::generate::workload;
        use crate::shape::ConvShape;
        let shape = ConvShape::new(6, 7, 7, 3, 4, 1, 1);
        let w = workload(&shape, 0.5, 0.5, 17);
        let qi = QuantTensor::quantize(&w.input);

        // One shared weight scale across all filters (per-tensor weights).
        let wmax = w
            .filters
            .iter()
            .flat_map(|f| f.weights().as_slice())
            .fold(0.0f32, |a, &v| a.max(v.abs()));
        let wscale = wmax / 127.0;
        let per = 6 * 9;
        let qfilters: Vec<QuantTensor> = w
            .filters
            .iter()
            .map(|f| {
                let mut vals = Vec::with_capacity(per);
                for fy in 0..3 {
                    for fx in 0..3 {
                        for &v in f.weights().fiber(fx, fy) {
                            vals.push((v / wscale).round().clamp(-127.0, 127.0) as i8);
                        }
                    }
                }
                QuantTensor::from_parts(vals, wscale, per, 1, 1)
            })
            .collect();

        // The float reference on the *dequantized* grid values.
        let deq_input = qi.dequantize();
        let deq_filters: Vec<Filter> = qfilters
            .iter()
            .map(|qf| {
                let mut t = Tensor3::zeros(6, 3, 3);
                for fy in 0..3 {
                    for fx in 0..3 {
                        for z in 0..6 {
                            let idx = 6 * (fx + 3 * fy) + z;
                            t.set(z, fx, fy, qf.values()[idx] as f32 * wscale);
                        }
                    }
                }
                Filter::new(t)
            })
            .collect();
        let float_ref = conv2d(&deq_input, &deq_filters, &shape);
        let int_out = conv2d_quantized(&qi, &qfilters, wscale, &shape);
        // Same grid values → only float summation rounding differs.
        let max_ref = float_ref
            .as_slice()
            .iter()
            .fold(0.0f32, |a, &v| a.max(v.abs()));
        for (a, b) in int_out.as_slice().iter().zip(float_ref.as_slice()) {
            assert!(
                (a - b).abs() <= 1e-3 * max_ref.max(1.0),
                "int {a} vs float {b}"
            );
        }
    }

    #[test]
    fn quantized_conv_tracks_float_conv() {
        use crate::conv::conv2d;
        use crate::filter::Filter;
        use crate::generate::workload;
        use crate::shape::ConvShape;
        let shape = ConvShape::new(8, 6, 6, 3, 4, 1, 1);
        let w = workload(&shape, 0.5, 0.5, 3);
        let reference = conv2d(&w.input, &w.filters, &shape);
        let qi = QuantTensor::quantize(&w.input).dequantize();
        let qf: Vec<Filter> = w
            .filters
            .iter()
            .map(|f| Filter::new(QuantTensor::quantize(f.weights()).dequantize()))
            .collect();
        let quantized = conv2d(&qi, &qf, &shape);
        // Error per output ≤ window_len · (per-value error · max operand),
        // loosely bounded here against the observed range.
        let max_ref = reference
            .as_slice()
            .iter()
            .fold(0.0f32, |a, &v| a.max(v.abs()));
        for (a, b) in reference.as_slice().iter().zip(quantized.as_slice()) {
            assert!((a - b).abs() < 0.1 * max_ref.max(1.0), "{a} vs {b}");
        }
    }
}
