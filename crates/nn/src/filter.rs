//! Filters and their Z-first linearization.
//!
//! A filter is a `channels × k × k` tensor. The accelerator computes one
//! output cell as the dot product of a linearized input window with the
//! linearized filter; the two linearizations must agree. Both follow the
//! paper's Z-first order (channels fastest), iterating spatial taps in the
//! same (fx-within-fy) order as [`sparten_tensor::Tensor3::window_vector`].

use sparten_tensor::{SparseVector, Tensor3};

/// One convolution filter: a `channels × k × k` weight tensor.
///
/// # Example
///
/// ```
/// use sparten_nn::Filter;
/// use sparten_tensor::Tensor3;
///
/// let f = Filter::new(Tensor3::zeros(3, 2, 2));
/// assert_eq!(f.linearize().len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Filter {
    weights: Tensor3,
}

impl Filter {
    /// Wraps a weight tensor as a filter.
    ///
    /// # Panics
    ///
    /// Panics if the filter is not spatially square.
    pub fn new(weights: Tensor3) -> Self {
        assert_eq!(
            weights.height(),
            weights.width(),
            "filters must be spatially square"
        );
        Filter { weights }
    }

    /// The underlying weight tensor.
    pub fn weights(&self) -> &Tensor3 {
        &self.weights
    }

    /// Mutable access to the weights (used by pruning).
    pub fn weights_mut(&mut self) -> &mut Tensor3 {
        &mut self.weights
    }

    /// Kernel size k.
    pub fn kernel(&self) -> usize {
        self.weights.height()
    }

    /// Channel count d.
    pub fn channels(&self) -> usize {
        self.weights.channels()
    }

    /// Number of non-zero weights.
    pub fn nnz(&self) -> usize {
        self.weights.nnz()
    }

    /// Fraction of non-zero weights (whole-filter density — GB-S's sort key).
    pub fn density(&self) -> f64 {
        self.weights.density()
    }

    /// Linearizes the filter Z-first in window order: for each spatial tap
    /// `(fy, fx)` (fy outer), the channel fiber. This matches
    /// [`Tensor3::window_vector`] so `window · linearize` is the convolution
    /// at that output position.
    pub fn linearize(&self) -> Vec<f32> {
        let k = self.kernel();
        let mut out = Vec::with_capacity(self.channels() * k * k);
        for fy in 0..k {
            for fx in 0..k {
                out.extend_from_slice(self.weights.fiber(fx, fy));
            }
        }
        out
    }

    /// The chunked sparse representation of the linearized filter.
    pub fn to_sparse(&self, chunk_size: usize) -> SparseVector {
        SparseVector::from_dense(&self.linearize(), chunk_size)
    }

    /// Per-chunk densities of the linearized filter — GB-H's sort key.
    pub fn chunk_densities(&self, chunk_size: usize) -> Vec<f64> {
        self.to_sparse(chunk_size).chunk_densities()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linearize_matches_window_order() {
        // A 2-channel 2x2 filter; compare dot(window, linearized filter)
        // against the brute-force convolution sum at one output position.
        let mut w = Tensor3::zeros(2, 2, 2);
        let mut v = 1.0;
        for y in 0..2 {
            for x in 0..2 {
                for z in 0..2 {
                    w.set(z, x, y, v);
                    v += 1.0;
                }
            }
        }
        let f = Filter::new(w.clone());

        let mut input = Tensor3::zeros(2, 3, 3);
        let mut v = 0.5;
        for y in 0..3 {
            for x in 0..3 {
                for z in 0..2 {
                    input.set(z, x, y, v);
                    v += 0.25;
                }
            }
        }
        let window = input.window_vector(1, 1, 2, 2, 1, 0);
        let lin = f.linearize();
        let dot: f32 = window.iter().zip(&lin).map(|(a, b)| a * b).sum();

        let mut brute = 0.0f32;
        for fy in 0..2 {
            for fx in 0..2 {
                for z in 0..2 {
                    brute += input.get(z, 1 + fx, 1 + fy) * w.get(z, fx, fy);
                }
            }
        }
        assert!((dot - brute).abs() < 1e-5);
    }

    #[test]
    fn density_counts_nonzeros() {
        let mut w = Tensor3::zeros(1, 2, 2);
        w.set(0, 0, 0, 1.0);
        let f = Filter::new(w);
        assert_eq!(f.nnz(), 1);
        assert_eq!(f.density(), 0.25);
    }

    #[test]
    fn to_sparse_roundtrips() {
        let mut w = Tensor3::zeros(3, 2, 2);
        w.set(1, 0, 1, 4.0);
        w.set(2, 1, 0, -1.0);
        let f = Filter::new(w);
        assert_eq!(f.to_sparse(8).to_dense(), f.linearize());
    }

    #[test]
    fn chunk_densities_length() {
        let f = Filter::new(Tensor3::zeros(16, 3, 3)); // 144 weights
        assert_eq!(f.chunk_densities(128).len(), 2);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_filter_panics() {
        Filter::new(Tensor3::zeros(1, 2, 3));
    }
}
