//! Deterministic synthetic sparse workload generation.
//!
//! The paper's evaluation uses pruned networks whose per-layer input and
//! filter densities are given in Table 3. The simulators are sensitive to
//! (a) the density level and (b) its *variation* across filters and chunks —
//! the driver of the load imbalance greedy balancing fixes (Figure 14 shows
//! chunk densities spread from under 10 % to over 40 % around a ~24 %
//! median). This module generates tensors with exactly those properties from
//! an explicit seed.

use crate::filter::Filter;
use crate::prng::Rng64;
use crate::shape::ConvShape;
use sparten_tensor::Tensor3;

/// A complete layer workload: one input tensor and the layer's filters.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The input feature map.
    pub input: Tensor3,
    /// The layer's filters.
    pub filters: Vec<Filter>,
    /// The layer shape.
    pub shape: ConvShape,
}

impl Workload {
    /// Measured input density.
    pub fn input_density(&self) -> f64 {
        self.input.density()
    }

    /// Measured mean filter density.
    pub fn filter_density(&self) -> f64 {
        if self.filters.is_empty() {
            return 0.0;
        }
        self.filters.iter().map(Filter::density).sum::<f64>() / self.filters.len() as f64
    }
}

/// Generates a `channels × height × width` tensor with approximately
/// `density` non-zero cells (per-cell Bernoulli), values in ±[0.25, 1.25).
///
/// # Panics
///
/// Panics if `density` is not in `[0, 1]`.
pub fn random_tensor(
    channels: usize,
    height: usize,
    width: usize,
    density: f64,
    seed: u64,
) -> Tensor3 {
    assert!((0.0..=1.0).contains(&density), "density must be in [0, 1]");
    let mut rng = Rng64::seed_from_u64(seed);
    let mut t = Tensor3::zeros(channels, height, width);
    for v in t.as_mut_slice() {
        if rng.gen_bool(density) {
            let mag = 0.25 + rng.gen_f32();
            *v = if rng.gen_bool(0.5) { mag } else { -mag };
        }
    }
    t
}

/// Generates the layer's filters with mean density `density` and a relative
/// per-filter spread: filter i's density is drawn uniformly from
/// `density · (1 ± spread)`, clamped to `[0.02, 1]`. A `spread` of 0 gives
/// uniform filters; the paper's networks behave like `spread ≈ 0.5`
/// (Figure 14's under-10 % to over-40 % range around a 24 % median).
///
/// # Panics
///
/// Panics if `density` is not in `(0, 1]` or `spread < 0`.
pub fn random_filters(shape: &ConvShape, density: f64, spread: f64, seed: u64) -> Vec<Filter> {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    assert!(spread >= 0.0, "spread must be non-negative");
    let mut rng = Rng64::seed_from_u64(seed ^ 0x5eed_f117);
    (0..shape.num_filters)
        .map(|_| {
            // Clamp the upper bound at 1.0 and mirror the lower bound so
            // the per-filter mean stays on target even near full density.
            let hi = (density * (1.0 + spread)).min(1.0);
            let lo = (2.0 * density - hi).max(0.02).min(hi);
            let d = if lo < hi { rng.gen_range_f64(lo, hi) } else { lo };
            let mut w = Tensor3::zeros(shape.in_channels, shape.kernel, shape.kernel);
            for v in w.as_mut_slice() {
                if rng.gen_bool(d) {
                    let mag = 0.25 + rng.gen_f32();
                    *v = if rng.gen_bool(0.5) { mag } else { -mag };
                }
            }
            Filter::new(w)
        })
        .collect()
}

/// Generates a full workload at the given input/filter densities with the
/// default filter-density spread of 0.5.
pub fn workload(shape: &ConvShape, input_density: f64, filter_density: f64, seed: u64) -> Workload {
    Workload {
        input: random_tensor(
            shape.in_channels,
            shape.in_height,
            shape.in_width,
            input_density,
            seed,
        ),
        filters: random_filters(shape, filter_density, 0.5, seed.wrapping_add(1)),
        shape: *shape,
    }
}

/// Generates a mini-batch of workloads sharing one filter set (filters are
/// stationary across the batch — §3.3's premise) with per-image inputs.
pub fn workload_batch(
    shape: &ConvShape,
    input_density: f64,
    filter_density: f64,
    seed: u64,
    batch: usize,
) -> Vec<Workload> {
    let filters = random_filters(shape, filter_density, 0.5, seed.wrapping_add(1));
    (0..batch)
        .map(|i| Workload {
            input: random_tensor(
                shape.in_channels,
                shape.in_height,
                shape.in_width,
                input_density,
                seed.wrapping_add(1000 + i as u64),
            ),
            filters: filters.clone(),
            shape: *shape,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_density_close_to_target() {
        let t = random_tensor(64, 28, 28, 0.4, 1);
        assert!((t.density() - 0.4).abs() < 0.03, "got {}", t.density());
    }

    #[test]
    fn generation_is_deterministic() {
        let a = random_tensor(8, 8, 8, 0.3, 42);
        let b = random_tensor(8, 8, 8, 0.3, 42);
        assert_eq!(a, b);
        let c = random_tensor(8, 8, 8, 0.3, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn spread_zero_gives_similar_filters() {
        let shape = ConvShape::new(64, 8, 8, 3, 32, 1, 1);
        let filters = random_filters(&shape, 0.4, 0.0, 7);
        for f in &filters {
            assert!((f.density() - 0.4).abs() < 0.1, "got {}", f.density());
        }
    }

    #[test]
    fn spread_creates_density_variation() {
        let shape = ConvShape::new(128, 8, 8, 3, 64, 1, 1);
        let filters = random_filters(&shape, 0.35, 0.5, 9);
        let densities: Vec<f64> = filters.iter().map(Filter::density).collect();
        let min = densities.iter().cloned().fold(f64::MAX, f64::min);
        let max = densities.iter().cloned().fold(f64::MIN, f64::max);
        assert!(max - min > 0.15, "spread too small: {min}..{max}");
        let mean = densities.iter().sum::<f64>() / densities.len() as f64;
        assert!((mean - 0.35).abs() < 0.05, "mean off target: {mean}");
    }

    #[test]
    fn workload_matches_table3_style_spec() {
        // AlexNet Layer2-like: 27x27x192 input at 24 %, 3x3x192 filters at 35 %.
        let shape = ConvShape::new(192, 27, 27, 3, 384, 1, 1);
        let w = workload(&shape, 0.24, 0.35, 3);
        assert!((w.input_density() - 0.24).abs() < 0.02);
        assert!((w.filter_density() - 0.35).abs() < 0.04);
        assert_eq!(w.filters.len(), 384);
    }

    #[test]
    fn dense_input_has_density_one() {
        let t = random_tensor(3, 16, 16, 1.0, 0);
        assert_eq!(t.density(), 1.0);
    }

    #[test]
    #[should_panic(expected = "density")]
    fn bad_density_panics() {
        random_tensor(1, 2, 2, 1.5, 0);
    }
}
