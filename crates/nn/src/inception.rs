//! GoogLeNet inception modules: branch composition for the Table 3 layers.
//!
//! Table 3 evaluates the six sublayers of Inception 3a and 5a
//! independently; this module composes them into a whole inception module
//! (1×1 / 3×3-reduce→3×3 / 5×5-reduce→5×5 / pool→1×1 branches concatenated
//! along the channel axis), so multi-layer examples and tests can run a
//! real GoogLeNet building block end to end.

use crate::conv::{conv2d, max_pool};
use crate::filter::Filter;
use crate::generate::{random_filters, Workload};
use crate::networks::LayerSpec;
use crate::shape::ConvShape;
use sparten_tensor::Tensor3;

/// One inception branch: an optional reduce convolution then the main one.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Optional 1×1 reduce stage.
    pub reduce: Option<(ConvShape, Vec<Filter>)>,
    /// The branch's main convolution.
    pub main: (ConvShape, Vec<Filter>),
}

impl Branch {
    fn forward(&self, input: &Tensor3) -> Tensor3 {
        let x = match &self.reduce {
            Some((shape, filters)) => {
                let mut t = conv2d(input, filters, shape);
                t.relu();
                t
            }
            None => input.clone(),
        };
        let (shape, filters) = &self.main;
        let mut out = conv2d(&x, filters, shape);
        out.relu();
        out
    }

    fn out_channels(&self) -> usize {
        self.main.0.num_filters
    }
}

/// A four-branch inception module.
#[derive(Debug, Clone)]
pub struct InceptionModule {
    branches: Vec<Branch>,
    pool_branch: usize,
}

impl InceptionModule {
    /// Builds an inception module from Table 3 layer specs: `b1` (1×1),
    /// `b3r`/`b3` (3×3 reduce + 3×3), `b5r`/`b5` (5×5 reduce + 5×5), and
    /// `bpool` (the pool-projection 1×1, preceded by a same-size 3×3/1 max
    /// pool). Filters are generated at the specs' densities from `seed`.
    pub fn from_specs(
        b1: &LayerSpec,
        b3r: &LayerSpec,
        b3: &LayerSpec,
        b5r: &LayerSpec,
        b5: &LayerSpec,
        bpool: &LayerSpec,
        seed: u64,
    ) -> Self {
        let gen = |spec: &LayerSpec, salt: u64| {
            (
                spec.shape,
                random_filters(&spec.shape, spec.filter_density, 0.5, seed ^ salt),
            )
        };
        InceptionModule {
            branches: vec![
                Branch {
                    reduce: None,
                    main: gen(b1, 1),
                },
                Branch {
                    reduce: Some(gen(b3r, 2)),
                    main: gen(b3, 3),
                },
                Branch {
                    reduce: Some(gen(b5r, 4)),
                    main: gen(b5, 5),
                },
                Branch {
                    reduce: None,
                    main: gen(bpool, 6),
                },
            ],
            pool_branch: 3,
        }
    }

    /// Output channel count: the sum of the branches'.
    pub fn out_channels(&self) -> usize {
        self.branches.iter().map(Branch::out_channels).sum()
    }

    /// The branches, in concatenation order.
    pub fn branches(&self) -> &[Branch] {
        &self.branches
    }

    /// Per-branch workloads for the accelerator (each branch's main conv,
    /// with its real intermediate input) — what the simulators consume.
    pub fn branch_workloads(&self, input: &Tensor3) -> Vec<Workload> {
        self.branches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                let x = if i == self.pool_branch {
                    padded_pool(input)
                } else {
                    match &b.reduce {
                        Some((shape, filters)) => {
                            let mut t = conv2d(input, filters, shape);
                            t.relu();
                            t
                        }
                        None => input.clone(),
                    }
                };
                Workload {
                    input: x,
                    filters: b.main.1.clone(),
                    shape: b.main.0,
                }
            })
            .collect()
    }

    /// Forward pass: run all branches and concatenate along channels.
    ///
    /// # Panics
    ///
    /// Panics if the branches disagree on spatial output size.
    pub fn forward(&self, input: &Tensor3) -> Tensor3 {
        let outputs: Vec<Tensor3> = self
            .branches
            .iter()
            .enumerate()
            .map(|(i, b)| {
                if i == self.pool_branch {
                    b.forward(&padded_pool(input))
                } else {
                    b.forward(input)
                }
            })
            .collect();
        let (h, w) = (outputs[0].height(), outputs[0].width());
        for o in &outputs {
            assert_eq!((o.height(), o.width()), (h, w), "branch size mismatch");
        }
        let mut out = Tensor3::zeros(self.out_channels(), h, w);
        let mut base = 0usize;
        for o in &outputs {
            for y in 0..w {
                for x in 0..h {
                    for z in 0..o.channels() {
                        out.set(base + z, x, y, o.get(z, x, y));
                    }
                }
            }
            base += o.channels();
        }
        out
    }
}

/// Same-size 3×3/1 max pooling (pad 1), as in GoogLeNet's pool branch.
fn padded_pool(input: &Tensor3) -> Tensor3 {
    let mut padded = Tensor3::zeros(input.channels(), input.height() + 2, input.width() + 2);
    for y in 0..input.width() {
        for x in 0..input.height() {
            for z in 0..input.channels() {
                padded.set(z, x + 1, y + 1, input.get(z, x, y));
            }
        }
    }
    max_pool(&padded, 3, 1)
}

/// Builds Inception 3a from the Table 3 specs.
pub fn inception_3a(seed: u64) -> InceptionModule {
    let net = crate::networks::googlenet();
    let layer = |n: &str| net.layer(n).expect("Table 3 layer exists").clone();
    InceptionModule::from_specs(
        &layer("Inc3a_1x1"),
        &layer("Inc3a_3x3red"),
        &layer("Inc3a_3x3"),
        &layer("Inc3a_5x5red"),
        &layer("Inc3a_5x5"),
        &layer("Inc3a_poolprj"),
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::random_tensor;

    #[test]
    fn inception_3a_output_channels() {
        // GoogLeNet 3a: 64 + 128 + 32 + 32 = 256 output channels.
        let m = inception_3a(1);
        assert_eq!(m.out_channels(), 256);
    }

    #[test]
    fn forward_concatenates_spatially_aligned_branches() {
        let m = inception_3a(2);
        // A reduced-size input with the right channel count.
        let input = random_tensor(192, 28, 28, 0.58, 3);
        let out = m.forward(&input);
        assert_eq!(out.channels(), 256);
        assert_eq!((out.height(), out.width()), (28, 28));
        // ReLU everywhere → non-negative.
        assert!(out.as_slice().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn branch_workloads_have_table3_shapes() {
        let m = inception_3a(4);
        let input = random_tensor(192, 28, 28, 0.58, 5);
        let ws = m.branch_workloads(&input);
        assert_eq!(ws.len(), 4);
        assert_eq!(ws[0].shape.kernel, 1);
        assert_eq!(ws[1].shape.kernel, 3);
        assert_eq!(ws[1].shape.in_channels, 96);
        assert_eq!(ws[2].shape.kernel, 5);
        assert_eq!(ws[2].shape.in_channels, 16);
        assert_eq!(ws[3].shape.num_filters, 32);
    }

    #[test]
    fn padded_pool_preserves_size() {
        let t = random_tensor(4, 7, 7, 0.6, 6);
        let p = padded_pool(&t);
        assert_eq!((p.height(), p.width()), (7, 7));
        // Pooling never decreases any cell below the original (ReLU'd
        // non-negative inputs): each output ≥ its own input cell.
        for y in 0..7 {
            for x in 0..7 {
                for z in 0..4 {
                    assert!(
                        p.get(z, x, y) >= t.get(z, x, y).max(0.0) - 1e-6 || t.get(z, x, y) < 0.0
                    );
                }
            }
        }
    }
}
