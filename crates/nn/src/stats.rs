//! Workload sparsity statistics: the quantities the paper's arguments turn
//! on, computable for any tensor or filter set.
//!
//! Figure 14 plots per-chunk filter densities; §3.3 quotes utilization
//! ranges driven by density *variance*; §1 claims quadratic compute and
//! linear data reduction. This module provides those statistics (summary
//! moments, histograms, per-chunk spreads, reduction factors) as reusable
//! API instead of ad-hoc arithmetic in each experiment.

use crate::filter::Filter;
use crate::generate::Workload;

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample minimum.
    pub min: f64,
    /// Sample maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
}

impl Summary {
    /// Computes the summary of a non-empty sample.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn of(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "summary of an empty sample");
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / n;
        Summary {
            min: values.iter().cloned().fold(f64::MAX, f64::min),
            max: values.iter().cloned().fold(f64::MIN, f64::max),
            mean,
            std_dev: var.sqrt(),
        }
    }

    /// Coefficient of variation (σ/μ) — the imbalance driver.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std_dev / self.mean
        }
    }

    /// Range (max − min).
    pub fn spread(&self) -> f64 {
        self.max - self.min
    }
}

/// A fixed-bin histogram over `[0, 1]` (densities).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DensityHistogram {
    counts: Vec<usize>,
}

impl DensityHistogram {
    /// Bins `values` (clamped to `[0, 1]`) into `bins` equal-width bins.
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn new(values: &[f64], bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0usize; bins];
        for &v in values {
            let idx = ((v.clamp(0.0, 1.0)) * bins as f64) as usize;
            counts[idx.min(bins - 1)] += 1;
        }
        DensityHistogram { counts }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Total samples.
    pub fn total(&self) -> usize {
        self.counts.iter().sum()
    }

    /// Renders as a one-line sparkline-style bar string.
    pub fn render(&self) -> String {
        const GLYPHS: [char; 8] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '█'];
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.counts
            .iter()
            .map(|&c| GLYPHS[(c * (GLYPHS.len() - 1)).div_ceil(max).min(GLYPHS.len() - 1)])
            .collect()
    }
}

/// Whole-filter density statistics of a filter set (GB-S's sort key).
pub fn filter_density_summary(filters: &[Filter]) -> Summary {
    let densities: Vec<f64> = filters.iter().map(Filter::density).collect();
    Summary::of(&densities)
}

/// Per-chunk density statistics across all filters for one chunk index
/// (GB-H's sort key; the Figure 14 sample).
pub fn chunk_density_summary(filters: &[Filter], chunk_size: usize, chunk: usize) -> Summary {
    let densities: Vec<f64> = filters
        .iter()
        .map(|f| f.chunk_densities(chunk_size)[chunk])
        .collect();
    Summary::of(&densities)
}

/// The §1 reduction factors of a workload: `(compute, data)` where compute
/// is the dense-to-sparse MAC ratio (quadratic in density) and data the
/// dense-to-sparse value-count ratio (linear).
pub fn reduction_factors(workload: &Workload) -> (f64, f64) {
    let di = workload.input_density().max(1e-12);
    let df = workload.filter_density().max(1e-12);
    let compute = 1.0 / (di * df);
    let total_cells = workload.shape.input_cells() + workload.shape.weight_cells();
    let nnz = workload.input.nnz() + workload.filters.iter().map(Filter::nnz).sum::<usize>();
    let data = total_cells as f64 / (nnz as f64).max(1.0);
    (compute, data)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{random_filters, workload};
    use crate::shape::ConvShape;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert_eq!(s.mean, 2.5);
        assert!((s.std_dev - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(s.spread(), 3.0);
    }

    #[test]
    fn cv_scales_with_variance_not_mean() {
        let tight = Summary::of(&[10.0, 10.1, 9.9]);
        let loose = Summary::of(&[10.0, 15.0, 5.0]);
        assert!(loose.cv() > 5.0 * tight.cv());
    }

    #[test]
    fn histogram_bins_and_renders() {
        let h = DensityHistogram::new(&[0.05, 0.15, 0.15, 0.95], 10);
        assert_eq!(h.total(), 4);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.render().chars().count(), 10);
    }

    #[test]
    fn filter_summaries_track_generation_parameters() {
        let shape = ConvShape::new(64, 8, 8, 3, 64, 1, 1);
        let spread = filter_density_summary(&random_filters(&shape, 0.35, 0.6, 1));
        let flat = filter_density_summary(&random_filters(&shape, 0.35, 0.0, 2));
        assert!((spread.mean - 0.35).abs() < 0.07);
        assert!(spread.cv() > 3.0 * flat.cv());
    }

    #[test]
    fn chunk_summary_matches_fig14_sample() {
        let shape = ConvShape::new(192, 8, 8, 3, 96, 1, 1);
        let fs = random_filters(&shape, 0.35, 0.5, 3);
        let s = chunk_density_summary(&fs, 128, 0);
        assert!(s.spread() > 0.15, "spread {}", s.spread());
        assert!((s.mean - 0.35).abs() < 0.05);
    }

    #[test]
    fn reduction_factors_are_quadratic_vs_linear() {
        let shape = ConvShape::new(64, 10, 10, 3, 16, 1, 1);
        let w = workload(&shape, 0.25, 0.25, 4);
        let (compute, data) = reduction_factors(&w);
        // Compute ≈ 1/(0.25²) = 16; data ≈ 1/0.25 = 4.
        assert!((compute - 16.0).abs() < 3.0, "compute {compute}");
        assert!((data - 4.0).abs() < 1.0, "data {data}");
        assert!(compute > 2.5 * data);
    }
}
