//! Workload serialization: share the exact tensors an experiment ran on.
//!
//! The harness generates workloads deterministically from seeds, but
//! cross-machine reproduction (or importing real pruned models) needs the
//! tensors themselves. This module defines a small, self-describing binary
//! format (`SPTN` magic, version, shape header, little-endian `f32` data)
//! for [`Tensor3`] and whole [`Workload`]s, with no third-party
//! dependencies.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::filter::Filter;
use crate::generate::Workload;
use crate::shape::ConvShape;
use sparten_tensor::Tensor3;

const MAGIC: &[u8; 4] = b"SPTN";
const VERSION: u32 = 1;

fn write_u32(w: &mut impl Write, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32(r: &mut impl Read) -> io::Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_tensor(w: &mut impl Write, t: &Tensor3) -> io::Result<()> {
    write_u32(w, t.channels() as u32)?;
    write_u32(w, t.height() as u32)?;
    write_u32(w, t.width() as u32)?;
    for &v in t.as_slice() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

fn read_tensor(r: &mut impl Read) -> io::Result<Tensor3> {
    let d = read_u32(r)? as usize;
    let h = read_u32(r)? as usize;
    let wd = read_u32(r)? as usize;
    let mut data = vec![0f32; d * h * wd];
    for v in &mut data {
        let mut b = [0u8; 4];
        r.read_exact(&mut b)?;
        *v = f32::from_le_bytes(b);
    }
    Ok(Tensor3::from_vec(data, d, h, wd))
}

fn bad_data(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

/// Saves a workload (shape, input tensor, filters) to `path`.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn save_workload(workload: &Workload, path: impl AsRef<Path>) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    let s = &workload.shape;
    for v in [
        s.in_channels,
        s.in_height,
        s.in_width,
        s.kernel,
        s.num_filters,
        s.stride,
        s.pad,
    ] {
        write_u32(&mut w, v as u32)?;
    }
    write_tensor(&mut w, &workload.input)?;
    write_u32(&mut w, workload.filters.len() as u32)?;
    for f in &workload.filters {
        write_tensor(&mut w, f.weights())?;
    }
    w.flush()
}

/// Loads a workload previously written by [`save_workload`].
///
/// # Errors
///
/// Returns an error on I/O failure, a bad magic/version, or a payload that
/// is inconsistent with its own shape header.
pub fn load_workload(path: impl AsRef<Path>) -> io::Result<Workload> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(bad_data("not a SparTen workload file"));
    }
    if read_u32(&mut r)? != VERSION {
        return Err(bad_data("unsupported workload format version"));
    }
    let dims: Vec<usize> = (0..7)
        .map(|_| read_u32(&mut r).map(|v| v as usize))
        .collect::<io::Result<_>>()?;
    let shape = ConvShape::new(
        dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6],
    );
    let input = read_tensor(&mut r)?;
    if (input.channels(), input.height(), input.width())
        != (shape.in_channels, shape.in_height, shape.in_width)
    {
        return Err(bad_data("input tensor disagrees with the shape header"));
    }
    let n = read_u32(&mut r)? as usize;
    if n != shape.num_filters {
        return Err(bad_data("filter count disagrees with the shape header"));
    }
    let mut filters = Vec::with_capacity(n);
    for _ in 0..n {
        let t = read_tensor(&mut r)?;
        if (t.channels(), t.height(), t.width()) != (shape.in_channels, shape.kernel, shape.kernel)
        {
            return Err(bad_data("filter tensor disagrees with the shape header"));
        }
        filters.push(Filter::new(t));
    }
    Ok(Workload {
        input,
        filters,
        shape,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::workload;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "sparten-io-test-{}-{name}.sptn",
            std::process::id()
        ));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let shape = ConvShape::new(12, 7, 7, 3, 9, 2, 1);
        let w = workload(&shape, 0.4, 0.35, 99);
        let path = temp_path("roundtrip");
        save_workload(&w, &path).expect("save");
        let back = load_workload(&path).expect("load");
        std::fs::remove_file(&path).ok();
        assert_eq!(back.shape, w.shape);
        assert_eq!(back.input, w.input);
        assert_eq!(back.filters, w.filters);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("badmagic");
        std::fs::write(&path, b"NOPE0000").expect("write");
        let err = load_workload(&path).expect_err("must fail");
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn truncated_file_is_rejected() {
        let shape = ConvShape::new(4, 4, 4, 1, 2, 1, 0);
        let w = workload(&shape, 0.5, 0.5, 1);
        let path = temp_path("trunc");
        save_workload(&w, &path).expect("save");
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(load_workload(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn loaded_workload_simulates_identically() {
        let shape = ConvShape::new(16, 5, 5, 3, 6, 1, 1);
        let w = workload(&shape, 0.4, 0.4, 7);
        let path = temp_path("sim");
        save_workload(&w, &path).expect("save");
        let back = load_workload(&path).expect("load");
        std::fs::remove_file(&path).ok();
        use crate::conv::conv2d;
        let a = conv2d(&w.input, &w.filters, &shape);
        let b = conv2d(&back.input, &back.filters, &shape);
        assert_eq!(a, b);
    }
}
