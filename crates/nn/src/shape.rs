//! Convolution shape algebra.
//!
//! A layer is characterized by its input tensor (channels × height × width),
//! square filters (kernel × kernel × channels), the filter count, stride,
//! and zero padding — exactly the parameters of the paper's Table 3 plus the
//! stride/padding each network uses.

/// Shape of a 2-D convolution layer.
///
/// # Example
///
/// ```
/// use sparten_nn::ConvShape;
///
/// // AlexNet Layer0: 224×224×3 input, 11×11×3 filters, stride 4.
/// let s = ConvShape::new(3, 224, 224, 11, 64, 4, 2);
/// assert_eq!(s.out_height(), 55);
/// assert_eq!(s.dense_macs(), 55 * 55 * 11 * 11 * 3 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvShape {
    /// Input channel count (d, the Z axis).
    pub in_channels: usize,
    /// Input height (X).
    pub in_height: usize,
    /// Input width (Y).
    pub in_width: usize,
    /// Filter kernel size k (filters are k × k × d).
    pub kernel: usize,
    /// Number of filters (output channels).
    pub num_filters: usize,
    /// Convolution stride (≥ 1; SparTen handles any stride, SCNN only 1).
    pub stride: usize,
    /// Zero padding on each spatial border.
    pub pad: usize,
}

impl ConvShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero, the stride is zero, or the padded
    /// input is smaller than the kernel.
    pub fn new(
        in_channels: usize,
        in_height: usize,
        in_width: usize,
        kernel: usize,
        num_filters: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        assert!(
            in_channels > 0 && in_height > 0 && in_width > 0,
            "input dimensions must be positive"
        );
        assert!(
            kernel > 0 && num_filters > 0,
            "filter dimensions must be positive"
        );
        assert!(stride > 0, "stride must be positive");
        assert!(
            in_height + 2 * pad >= kernel && in_width + 2 * pad >= kernel,
            "kernel larger than padded input"
        );
        ConvShape {
            in_channels,
            in_height,
            in_width,
            kernel,
            num_filters,
            stride,
            pad,
        }
    }

    /// Output height: `(h + 2·pad − k)/stride + 1`.
    pub fn out_height(&self) -> usize {
        (self.in_height + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Output width.
    pub fn out_width(&self) -> usize {
        (self.in_width + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Number of output cells: `out_h · out_w · num_filters`.
    pub fn num_outputs(&self) -> usize {
        self.out_height() * self.out_width() * self.num_filters
    }

    /// Length of one linearized filter / window vector: `k² · d`.
    pub fn window_len(&self) -> usize {
        self.kernel * self.kernel * self.in_channels
    }

    /// Dense multiply-accumulate count: `out_h · out_w · k² · d · n`
    /// (the paper's §2 formula, boundary effects folded in via `out_*`).
    pub fn dense_macs(&self) -> usize {
        self.num_outputs() * self.kernel * self.kernel * self.in_channels
    }

    /// Number of input cells.
    pub fn input_cells(&self) -> usize {
        self.in_channels * self.in_height * self.in_width
    }

    /// Number of weights across all filters.
    pub fn weight_cells(&self) -> usize {
        self.window_len() * self.num_filters
    }

    /// Per-filter reuse count of an input cell (`k² · n` in the dense case).
    pub fn input_reuse(&self) -> usize {
        self.kernel * self.kernel * self.num_filters
    }

    /// Reuse count of a filter weight (`out_h · out_w`).
    pub fn filter_reuse(&self) -> usize {
        self.out_height() * self.out_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_layer0_dims() {
        let s = ConvShape::new(3, 224, 224, 11, 64, 4, 2);
        assert_eq!((s.out_height(), s.out_width()), (55, 55));
    }

    #[test]
    fn unit_stride_same_padding() {
        let s = ConvShape::new(64, 56, 56, 3, 128, 1, 1);
        assert_eq!((s.out_height(), s.out_width()), (56, 56));
    }

    #[test]
    fn one_by_one_filter() {
        let s = ConvShape::new(192, 28, 28, 1, 64, 1, 0);
        assert_eq!((s.out_height(), s.out_width()), (28, 28));
        assert_eq!(s.window_len(), 192);
    }

    #[test]
    fn mac_count_formula() {
        let s = ConvShape::new(2, 5, 5, 3, 4, 1, 0);
        // out 3x3, k²d = 18, n = 4 → 3·3·18·4.
        assert_eq!(s.dense_macs(), 9 * 18 * 4);
    }

    #[test]
    fn reuse_counts() {
        let s = ConvShape::new(2, 5, 5, 3, 4, 1, 0);
        assert_eq!(s.input_reuse(), 9 * 4);
        assert_eq!(s.filter_reuse(), 9);
    }

    #[test]
    fn stride_two_halves_output() {
        let s = ConvShape::new(3, 8, 8, 2, 1, 2, 0);
        assert_eq!((s.out_height(), s.out_width()), (4, 4));
    }

    #[test]
    #[should_panic(expected = "stride")]
    fn zero_stride_panics() {
        ConvShape::new(1, 4, 4, 2, 1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn oversized_kernel_panics() {
        ConvShape::new(1, 2, 2, 5, 1, 1, 0);
    }
}
