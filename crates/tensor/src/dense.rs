//! Dense 3-D tensors in the paper's Z-first (Z, X, Y) memory order.
//!
//! §3.1: "All the data is stored in the axes order of Z, X and Y. The Z-first
//! format ensures that the SparseMaps for an input map tensor or filter are
//! contiguous for a compute unit access." Here Z is the channel axis, X the
//! height and Y the width, matching the paper's Figure 1.

use crate::vector::SparseVector;

/// A dense tensor of shape `channels × height × width`, stored Z-first:
/// `index(z, x, y) = z + channels·(x + height·y)`.
///
/// # Example
///
/// ```
/// use sparten_tensor::Tensor3;
///
/// let mut t = Tensor3::zeros(3, 2, 2);
/// t.set(1, 0, 1, 5.0);
/// assert_eq!(t.get(1, 0, 1), 5.0);
/// assert_eq!(t.len(), 12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor3 {
    data: Vec<f32>,
    channels: usize,
    height: usize,
    width: usize,
}

impl Tensor3 {
    /// An all-zero tensor of the given shape.
    pub fn zeros(channels: usize, height: usize, width: usize) -> Self {
        Tensor3 {
            data: vec![0.0; channels * height * width],
            channels,
            height,
            width,
        }
    }

    /// Wraps an existing Z-first buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != channels * height * width`.
    pub fn from_vec(data: Vec<f32>, channels: usize, height: usize, width: usize) -> Self {
        assert_eq!(
            data.len(),
            channels * height * width,
            "buffer length must match shape"
        );
        Tensor3 {
            data,
            channels,
            height,
            width,
        }
    }

    /// Number of channels (the Z axis).
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height (the X axis in the paper's convention).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width (the Y axis).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Total number of cells.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero cells.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    fn index(&self, z: usize, x: usize, y: usize) -> usize {
        debug_assert!(z < self.channels && x < self.height && y < self.width);
        z + self.channels * (x + self.height * y)
    }

    /// Reads cell `(z, x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any coordinate is out of range.
    pub fn get(&self, z: usize, x: usize, y: usize) -> f32 {
        self.data[self.index(z, x, y)]
    }

    /// Writes cell `(z, x, y)`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if any coordinate is out of range.
    pub fn set(&mut self, z: usize, x: usize, y: usize, value: f32) {
        let i = self.index(z, x, y);
        self.data[i] = value;
    }

    /// The raw Z-first buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the raw Z-first buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// The contiguous channel fiber at spatial position `(x, y)` — exactly
    /// what a SparTen chunk captures.
    pub fn fiber(&self, x: usize, y: usize) -> &[f32] {
        let start = self.index(0, x, y);
        &self.data[start..start + self.channels]
    }

    /// Number of non-zero cells.
    pub fn nnz(&self) -> usize {
        self.data.iter().filter(|&&v| v != 0.0).count()
    }

    /// Fraction of non-zero cells.
    pub fn density(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.data.len() as f64
        }
    }

    /// Applies ReLU in place (negative values become zero) — the source of
    /// natural feature-map sparsity (§1).
    pub fn relu(&mut self) {
        for v in &mut self.data {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Linearizes the window of a `kh × kw` filter anchored at output
    /// position `(ox, oy)` with the given stride into a Z-first vector of
    /// length `channels · kh · kw`. Out-of-bounds taps (implicit zero
    /// padding of `pad` cells) contribute zeros.
    ///
    /// This is the on-the-fly vector construction of §3.2: the dot product
    /// of this window vector with a linearized filter is one output cell.
    pub fn window_vector(
        &self,
        ox: usize,
        oy: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.channels * kh * kw);
        for fy in 0..kw {
            for fx in 0..kh {
                let ix = (ox * stride + fx) as isize - pad as isize;
                let iy = (oy * stride + fy) as isize - pad as isize;
                if ix >= 0 && iy >= 0 && (ix as usize) < self.height && (iy as usize) < self.width {
                    out.extend_from_slice(self.fiber(ix as usize, iy as usize));
                } else {
                    out.extend(std::iter::repeat_n(0.0, self.channels));
                }
            }
        }
        out
    }

    /// Linearizes the whole tensor (Z-first) into a chunked sparse vector.
    pub fn to_sparse(&self, chunk_size: usize) -> SparseVector {
        SparseVector::from_dense(&self.data, chunk_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_first_layout_is_channel_contiguous() {
        let mut t = Tensor3::zeros(2, 2, 2);
        t.set(0, 0, 0, 1.0);
        t.set(1, 0, 0, 2.0);
        t.set(0, 1, 0, 3.0);
        assert_eq!(&t.as_slice()[..3], &[1.0, 2.0, 3.0]);
        assert_eq!(t.fiber(0, 0), &[1.0, 2.0]);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor3::zeros(3, 4, 5);
        t.set(2, 3, 4, 9.0);
        assert_eq!(t.get(2, 3, 4), 9.0);
        assert_eq!(t.get(0, 0, 0), 0.0);
    }

    #[test]
    fn relu_zeroes_negatives() {
        let mut t = Tensor3::from_vec(vec![-1.0, 2.0, -3.0, 4.0], 1, 2, 2);
        t.relu();
        assert_eq!(t.as_slice(), &[0.0, 2.0, 0.0, 4.0]);
        assert_eq!(t.nnz(), 2);
        assert_eq!(t.density(), 0.5);
    }

    #[test]
    fn window_vector_unit_stride_no_pad() {
        // 1 channel, 3x3 input, values 1..9 column-major in (x,y).
        let mut t = Tensor3::zeros(1, 3, 3);
        let mut v = 1.0;
        for y in 0..3 {
            for x in 0..3 {
                t.set(0, x, y, v);
                v += 1.0;
            }
        }
        // 2x2 window at output (0,0), stride 1: cells (0,0),(1,0),(0,1),(1,1).
        let w = t.window_vector(0, 0, 2, 2, 1, 0);
        assert_eq!(w, vec![1.0, 2.0, 4.0, 5.0]);
        // Output (1,1): cells (1,1),(2,1),(1,2),(2,2).
        let w = t.window_vector(1, 1, 2, 2, 1, 0);
        assert_eq!(w, vec![5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn window_vector_stride_two() {
        let mut t = Tensor3::zeros(1, 4, 4);
        for y in 0..4 {
            for x in 0..4 {
                t.set(0, x, y, (x * 4 + y) as f32 + 1.0);
            }
        }
        // stride-2 1x1 filter at output (1,1) → input cell (2,2).
        let w = t.window_vector(1, 1, 1, 1, 2, 0);
        assert_eq!(w, vec![t.get(0, 2, 2)]);
    }

    #[test]
    fn window_vector_padding_yields_zeros() {
        let t = Tensor3::from_vec(vec![1.0], 1, 1, 1);
        // 3x3 window with pad 1 centred on the single cell.
        let w = t.window_vector(0, 0, 3, 3, 1, 1);
        assert_eq!(w.len(), 9);
        assert_eq!(w.iter().filter(|&&v| v != 0.0).count(), 1);
        assert_eq!(w[4], 1.0); // centre tap
    }

    #[test]
    fn to_sparse_preserves_values() {
        let t = Tensor3::from_vec(vec![0.0, 1.0, 0.0, 2.0], 2, 2, 1);
        let s = t.to_sparse(4);
        assert_eq!(s.to_dense(), t.as_slice());
    }

    #[test]
    #[should_panic(expected = "must match shape")]
    fn from_vec_validates_shape() {
        Tensor3::from_vec(vec![0.0; 5], 2, 2, 2);
    }
}
