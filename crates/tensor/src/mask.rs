//! The SparTen `SparseMap`: a fixed-width bit mask marking non-zero positions.
//!
//! The mask is the heart of the paper's efficient inner join (§3.1): ANDing
//! two masks yields the matching non-zero positions, a priority encoder walks
//! the set bits, and prefix sums over each operand mask give the offsets of
//! the packed values. This module provides the mask itself; the circuit-level
//! models of the priority encoder and prefix sum live in `sparten-arch`.

use crate::error::TensorError;
use std::fmt;

/// A bit mask over `len` positions, 1 where the tensor value is non-zero.
///
/// Bit order follows the paper's Figure 3: position 0 is the "top" of the
/// vector and has the highest priority in the priority encoder.
///
/// # Example
///
/// ```
/// use sparten_tensor::SparseMap;
///
/// let a = SparseMap::from_bools(&[true, false, true, true]);
/// let b = SparseMap::from_bools(&[true, true, false, true]);
/// let joined = a.and(&b);
/// assert_eq!(joined.count_ones(), 2); // positions 0 and 3 match
/// assert_eq!(a.prefix_count(3), 2);   // two non-zeros before position 3
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SparseMap {
    words: Vec<u64>,
    len: usize,
}

impl SparseMap {
    /// Creates an all-zero mask over `len` positions.
    pub fn zeros(len: usize) -> Self {
        SparseMap {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Creates an all-one mask over `len` positions (a dense chunk).
    pub fn ones(len: usize) -> Self {
        let mut m = Self::zeros(len);
        for i in 0..len {
            m.set(i, true);
        }
        m
    }

    /// Builds a mask from a slice of booleans.
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut m = Self::zeros(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            m.set(i, b);
        }
        m
    }

    /// Builds a mask by zero-detecting a slice of values (the EXNOR gates of
    /// the paper's Figure 5).
    pub fn from_values(values: &[f32]) -> Self {
        let mut m = Self::zeros(values.len());
        for (i, &v) in values.iter().enumerate() {
            m.set(i, v != 0.0);
        }
        m
    }

    /// Number of positions covered by the mask.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the mask covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns the bit at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn get(&self, pos: usize) -> bool {
        assert!(pos < self.len, "bit {pos} out of range {}", self.len);
        self.words[pos / 64] >> (pos % 64) & 1 == 1
    }

    /// Sets the bit at `pos`.
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn set(&mut self, pos: usize, value: bool) {
        assert!(pos < self.len, "bit {pos} out of range {}", self.len);
        let (w, b) = (pos / 64, pos % 64);
        if value {
            self.words[w] |= 1 << b;
        } else {
            self.words[w] &= !(1 << b);
        }
    }

    /// Bitwise AND — the match-finding step of the inner join.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different lengths.
    pub fn and(&self, other: &SparseMap) -> SparseMap {
        assert_eq!(self.len, other.len, "mask length mismatch");
        SparseMap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a & b)
                .collect(),
            len: self.len,
        }
    }

    /// Bitwise OR.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different lengths.
    pub fn or(&self, other: &SparseMap) -> SparseMap {
        assert_eq!(self.len, other.len, "mask length mismatch");
        SparseMap {
            words: self
                .words
                .iter()
                .zip(&other.words)
                .map(|(a, b)| a | b)
                .collect(),
            len: self.len,
        }
    }

    /// Number of set bits (non-zero values) in the whole mask.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of set bits strictly before `pos` — the prefix-sum step that
    /// yields a packed-value offset during the inner join.
    ///
    /// # Panics
    ///
    /// Panics if `pos > self.len()` (`pos == len` is allowed and counts the
    /// whole mask).
    pub fn prefix_count(&self, pos: usize) -> usize {
        assert!(pos <= self.len, "prefix position {pos} out of range");
        let full_words = pos / 64;
        let mut count: usize = self.words[..full_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum();
        let rem = pos % 64;
        if rem > 0 {
            count += (self.words[full_words] & ((1u64 << rem) - 1)).count_ones() as usize;
        }
        count
    }

    /// Position of the first (highest-priority) set bit at or after `from`,
    /// mirroring the priority encoder's scan order.
    pub fn next_one(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut w = from / 64;
        // Mask off bits below `from` in the first word.
        let below = if from.is_multiple_of(64) {
            0
        } else {
            (1u64 << (from % 64)) - 1
        };
        let mut word = self.words[w] & !below;
        loop {
            if word != 0 {
                let pos = w * 64 + word.trailing_zeros() as usize;
                return (pos < self.len).then_some(pos);
            }
            w += 1;
            if w >= self.words.len() {
                return None;
            }
            word = self.words[w];
        }
    }

    /// Iterator over the positions of set bits, in increasing position order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes { mask: self, pos: 0 }
    }

    /// Fraction of set bits (the *density* of the chunk).
    pub fn density(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// Extends the mask with `extra` zero bits (channel-count padding, §3.1).
    pub fn pad_zeros(&mut self, extra: usize) {
        let new_len = self.len + extra;
        self.words.resize(new_len.div_ceil(64), 0);
        self.len = new_len;
    }

    /// Raw 64-bit words backing the mask (low bit = position 0).
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }

    /// Number of backing 64-bit words (`⌈len/64⌉`).
    pub fn word_count(&self) -> usize {
        self.words.len()
    }

    /// The `i`-th backing word (low bit = position `64·i`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.word_count()`.
    pub fn word(&self, i: usize) -> u64 {
        self.words[i]
    }

    /// Popcount of the AND of two masks without materializing the joined
    /// mask — the word-parallel form of `self.and(other).count_ones()`.
    ///
    /// # Panics
    ///
    /// Panics if the masks have different lengths.
    pub fn and_count_ones(&self, other: &SparseMap) -> usize {
        assert_eq!(self.len, other.len, "mask length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// Rebuilds a mask from raw words (the deserialization path),
    /// checking the structural invariants instead of trusting the input.
    pub fn try_from_words(words: Vec<u64>, len: usize) -> Result<Self, TensorError> {
        let m = SparseMap { words, len };
        m.validate()?;
        Ok(m)
    }

    /// Checks the mask's structural invariants: the backing word count
    /// matches the logical length, and no bit is set past the end.
    pub fn validate(&self) -> Result<(), TensorError> {
        if self.words.len() != self.len.div_ceil(64) {
            return Err(TensorError::MaskWordMismatch {
                len: self.len,
                words: self.words.len(),
            });
        }
        let rem = self.len % 64;
        if rem > 0 {
            let last = self.words[self.words.len() - 1];
            if last & !((1u64 << rem) - 1) != 0 {
                return Err(TensorError::StrayMaskBits { len: self.len });
            }
        }
        Ok(())
    }
}

impl fmt::Debug for SparseMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SparseMap[{}; ", self.len)?;
        for i in 0..self.len.min(64) {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        if self.len > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

impl fmt::Binary for SparseMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

/// Iterator over set-bit positions of a [`SparseMap`], produced by
/// [`SparseMap::iter_ones`].
#[derive(Debug, Clone)]
pub struct IterOnes<'a> {
    mask: &'a SparseMap,
    pos: usize,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let found = self.mask.next_one(self.pos)?;
        self.pos = found + 1;
        Some(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_no_ones() {
        let m = SparseMap::zeros(130);
        assert_eq!(m.count_ones(), 0);
        assert_eq!(m.len(), 130);
        assert!(!m.is_empty());
        assert!(m.next_one(0).is_none());
    }

    #[test]
    fn ones_is_fully_set() {
        let m = SparseMap::ones(130);
        assert_eq!(m.count_ones(), 130);
        assert_eq!(m.density(), 1.0);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut m = SparseMap::zeros(200);
        m.set(0, true);
        m.set(63, true);
        m.set(64, true);
        m.set(199, true);
        assert!(m.get(0) && m.get(63) && m.get(64) && m.get(199));
        assert!(!m.get(1) && !m.get(65));
        m.set(64, false);
        assert!(!m.get(64));
        assert_eq!(m.count_ones(), 3);
    }

    #[test]
    fn and_finds_matches() {
        let a = SparseMap::from_bools(&[true, true, false, true, false]);
        let b = SparseMap::from_bools(&[true, false, false, true, true]);
        let j = a.and(&b);
        assert_eq!(j.iter_ones().collect::<Vec<_>>(), vec![0, 3]);
    }

    #[test]
    fn or_unions() {
        let a = SparseMap::from_bools(&[true, false, false]);
        let b = SparseMap::from_bools(&[false, false, true]);
        assert_eq!(a.or(&b).count_ones(), 2);
    }

    #[test]
    fn prefix_count_matches_manual() {
        let m = SparseMap::from_bools(&[true, false, true, true, false, true]);
        assert_eq!(m.prefix_count(0), 0);
        assert_eq!(m.prefix_count(1), 1);
        assert_eq!(m.prefix_count(3), 2);
        assert_eq!(m.prefix_count(6), 4);
    }

    #[test]
    fn prefix_count_across_word_boundary() {
        let mut m = SparseMap::zeros(128);
        for i in [0, 63, 64, 100, 127] {
            m.set(i, true);
        }
        assert_eq!(m.prefix_count(64), 2);
        assert_eq!(m.prefix_count(65), 3);
        assert_eq!(m.prefix_count(128), 5);
    }

    #[test]
    fn next_one_walks_in_order() {
        let mut m = SparseMap::zeros(150);
        for i in [5, 64, 149] {
            m.set(i, true);
        }
        assert_eq!(m.next_one(0), Some(5));
        assert_eq!(m.next_one(5), Some(5));
        assert_eq!(m.next_one(6), Some(64));
        assert_eq!(m.next_one(65), Some(149));
        assert_eq!(m.next_one(150), None);
    }

    #[test]
    fn iter_ones_collects_all() {
        let m = SparseMap::from_bools(&[false, true, true, false, true]);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![1, 2, 4]);
    }

    #[test]
    fn from_values_zero_detects() {
        let m = SparseMap::from_values(&[0.0, 1.5, -2.0, 0.0]);
        assert_eq!(m.iter_ones().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn pad_zeros_extends_length_only() {
        let mut m = SparseMap::from_bools(&[true, true]);
        m.pad_zeros(126);
        assert_eq!(m.len(), 128);
        assert_eq!(m.count_ones(), 2);
    }

    #[test]
    fn binary_format_is_positional() {
        let m = SparseMap::from_bools(&[true, false, true]);
        assert_eq!(format!("{m:b}"), "101");
    }

    #[test]
    fn try_from_words_roundtrips() {
        let m = SparseMap::from_bools(&[true, false, true]);
        let rebuilt = SparseMap::try_from_words(m.as_words().to_vec(), m.len()).unwrap();
        assert_eq!(rebuilt, m);
    }

    #[test]
    fn try_from_words_rejects_bad_word_count() {
        let err = SparseMap::try_from_words(vec![0, 0], 64).unwrap_err();
        assert!(matches!(err, TensorError::MaskWordMismatch { len: 64, words: 2 }));
    }

    #[test]
    fn try_from_words_rejects_stray_bits() {
        // Bit 3 set, but the mask only covers 3 positions.
        let err = SparseMap::try_from_words(vec![0b1000], 3).unwrap_err();
        assert_eq!(err, TensorError::StrayMaskBits { len: 3 });
    }

    #[test]
    fn validate_accepts_constructed_masks() {
        for len in [0, 1, 63, 64, 65, 128, 130] {
            assert_eq!(SparseMap::ones(len).validate(), Ok(()));
        }
    }

    #[test]
    fn word_accessors_expose_backing_storage() {
        let mut m = SparseMap::zeros(130);
        for i in [0, 63, 64, 129] {
            m.set(i, true);
        }
        assert_eq!(m.word_count(), 3);
        assert_eq!(m.word(0), (1 << 0) | (1 << 63));
        assert_eq!(m.word(1), 1);
        assert_eq!(m.word(2), 1 << (129 - 128));
        assert_eq!(m.as_words(), &[m.word(0), m.word(1), m.word(2)]);
    }

    #[test]
    fn and_count_ones_matches_materialized_and() {
        let a = SparseMap::from_bools(&[true, true, false, true, false]);
        let b = SparseMap::from_bools(&[true, false, false, true, true]);
        assert_eq!(a.and_count_ones(&b), a.and(&b).count_ones());
        let z = SparseMap::zeros(5);
        assert_eq!(a.and_count_ones(&z), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        SparseMap::zeros(4).get(4);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn and_length_mismatch_panics() {
        SparseMap::zeros(4).and(&SparseMap::zeros(5));
    }
}
