//! Zero-run-length-encoded pointer format (EIE-style).
//!
//! §3.1: "Some CSC or CSR formats use zero-string run-length encoding to
//! compress the pointers (e.g., EIE). However, shorter run lengths achieve
//! higher compression but incur (1) redundant pointers for strings of zeroes
//! longer than the run length ... and (2) redundant zero compute for such
//! redundant pointers." This module implements that format, including the
//! *padding zeros* (explicitly stored zero values that break up long runs),
//! so the overhead analysis can be measured rather than asserted.

/// A sparse vector encoded as `(run, value)` pairs, where `run` is the count
/// of zeros preceding `value` and is capped at `2^run_bits - 1`. Runs longer
/// than the cap force an explicitly stored *padding zero* value.
///
/// # Example
///
/// ```
/// use sparten_tensor::RleVector;
///
/// // run cap = 3 (2 bits): the 5-zero gap needs one padding zero.
/// let v = RleVector::from_dense(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0], 2);
/// assert_eq!(v.padding_zeros(), 1);
/// assert_eq!(v.to_dense(), vec![1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 2.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RleVector {
    /// `(zeros_before, value)` pairs; `value` may be an explicit 0.0 pad.
    entries: Vec<(u32, f32)>,
    run_bits: u32,
    len: usize,
}

impl RleVector {
    /// Encodes a dense slice with `run_bits`-bit run lengths.
    ///
    /// # Panics
    ///
    /// Panics if `run_bits == 0` or `run_bits > 16`.
    pub fn from_dense(dense: &[f32], run_bits: u32) -> Self {
        assert!((1..=16).contains(&run_bits), "run_bits must be in 1..=16");
        let cap = (1u32 << run_bits) - 1;
        let mut entries = Vec::new();
        let mut run = 0u32;
        for &v in dense {
            if v == 0.0 {
                if run == cap {
                    // Run overflow: emit a padding zero entry.
                    entries.push((run, 0.0));
                    run = 0;
                } else {
                    run += 1;
                }
            } else {
                entries.push((run, v));
                run = 0;
            }
        }
        // Trailing zeros shorter than a full run are dropped (recovered from
        // the known logical length); full runs still need pads so decode can
        // place later values — there are none, so drop them too.
        RleVector {
            entries,
            run_bits,
            len: dense.len(),
        }
    }

    /// Logical (dense) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored entries, including padding zeros.
    pub fn num_entries(&self) -> usize {
        self.entries.len()
    }

    /// Number of *padding zero* entries — the redundant pointers of §3.1
    /// that also cost redundant zero computation.
    pub fn padding_zeros(&self) -> usize {
        self.entries.iter().filter(|&&(_, v)| v == 0.0).count()
    }

    /// Number of genuine non-zero values.
    pub fn nnz(&self) -> usize {
        self.entries.len() - self.padding_zeros()
    }

    /// Decodes back to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        let mut pos = 0usize;
        for &(run, v) in &self.entries {
            pos += run as usize;
            out[pos] = v; // padding zeros rewrite a zero, harmless
            pos += 1;
        }
        out
    }

    /// Representation size in bits: each entry stores a `run_bits` run plus a
    /// `value_bits` value.
    pub fn storage_bits(&self, value_bits: usize) -> usize {
        self.entries.len() * (self.run_bits as usize + value_bits)
    }

    /// Multiply count of a one-sided join against a dense operand: every
    /// stored entry (including pads) is multiplied, as in EIE.
    pub fn one_sided_work(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_no_overflow() {
        let dense = [0.0, 1.0, 0.0, 0.0, 2.0, 3.0];
        let v = RleVector::from_dense(&dense, 4);
        assert_eq!(v.padding_zeros(), 0);
        assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn long_run_inserts_pads() {
        let mut dense = vec![0.0; 20];
        dense[19] = 7.0;
        // cap = 3 → 19 zeros need ⌊19/4⌋ = 4 pads (each pad consumes run 3 + itself).
        let v = RleVector::from_dense(&dense, 2);
        assert!(v.padding_zeros() >= 4);
        assert_eq!(v.to_dense(), dense);
        assert_eq!(v.nnz(), 1);
    }

    #[test]
    fn trailing_zeros_recovered_from_length() {
        let dense = [5.0, 0.0, 0.0];
        let v = RleVector::from_dense(&dense, 4);
        assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn storage_accounts_pads() {
        let mut dense = vec![0.0; 10];
        dense[9] = 1.0;
        let tight = RleVector::from_dense(&dense, 4); // cap 15, no pads
        let loose = RleVector::from_dense(&dense, 1); // cap 1, many pads
        assert!(loose.storage_bits(8) > tight.storage_bits(8) / 2);
        assert!(loose.one_sided_work() > tight.one_sided_work());
    }

    #[test]
    fn all_zero_vector() {
        let v = RleVector::from_dense(&[0.0; 7], 2);
        assert_eq!(v.nnz(), 0);
        assert_eq!(v.to_dense(), vec![0.0; 7]);
    }

    #[test]
    #[should_panic(expected = "run_bits")]
    fn zero_run_bits_panics() {
        RleVector::from_dense(&[1.0], 0);
    }
}
