//! A small, dependency-free deterministic PRNG for workload generation.
//!
//! The build must work fully offline, so the synthetic-workload generators
//! cannot pull in the `rand` crate. This module provides a seeded
//! xorshift64* generator (Vigna 2016) with splitmix64 seed scrambling —
//! more than enough statistical quality for Bernoulli sparsity masks and
//! uniform density draws, and *bit-stable across platforms and releases*,
//! which is what the experiment cache keys on: the same seed must produce
//! the same workload forever.

/// A seeded xorshift64* generator.
///
/// Streams are fully determined by the seed; two generators built from the
/// same seed produce identical sequences on every platform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng64 {
    state: u64,
}

impl Rng64 {
    /// Builds a generator from a seed. The seed is scrambled through
    /// splitmix64 so that nearby seeds (0, 1, 2, …) give unrelated streams
    /// and a zero seed is safe.
    pub fn seed_from_u64(seed: u64) -> Self {
        // splitmix64 finalizer (Steele et al.), guarantees non-zero state.
        let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Rng64 {
            state: if z == 0 { 0x9e37_79b9_7f4a_7c15 } else { z },
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A uniform `f64` in `[0, 1)` built from the top 53 bits.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f32` in `[0, 1)` built from the top 24 bits.
    pub fn gen_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }

    /// A Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p >= 1.0 {
            // Still consume a draw so density 1.0 and 0.999… stay aligned.
            self.next_u64();
            return true;
        }
        if p <= 0.0 {
            self.next_u64();
            return false;
        }
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.gen_f64() * (hi - lo)
    }

    /// A uniform `usize` in `[lo, hi)` (by multiply-shift, bias < 2⁻⁶⁴·n).
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range_usize(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = (hi - lo) as u64;
        lo + (((self.next_u64() as u128 * span as u128) >> 64) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = Rng64::seed_from_u64(7);
        let mut b = Rng64::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_draws_are_stable() {
        // Pin the stream so cache keys can rely on it: if this ever fails,
        // the generator changed and every cached workload is invalid.
        let mut r = Rng64::seed_from_u64(2019);
        assert_eq!(r.next_u64(), 0x49d7_3b6e_03c1_8f8d);
        assert_eq!(r.next_u64(), 0x5695_11db_20cf_c41f);
    }

    #[test]
    fn floats_are_in_unit_interval() {
        let mut r = Rng64::seed_from_u64(3);
        for _ in 0..1000 {
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
            let g = r.gen_f32();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn bernoulli_hits_rate() {
        let mut r = Rng64::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng64::seed_from_u64(5);
        for _ in 0..1000 {
            let v = r.gen_range_f64(0.25, 0.75);
            assert!((0.25..0.75).contains(&v));
            let u = r.gen_range_usize(3, 9);
            assert!((3..9).contains(&u));
        }
        assert!(r.gen_bool(1.0));
        assert!(!r.gen_bool(0.0));
    }
}
