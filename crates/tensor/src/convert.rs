//! Format conversions, including the §3.1 dense-image special case.
//!
//! "An extreme special case is the initial 3-channel input image which is
//! dense (i.e., zeroes are present). The input can be formatted into
//! SparTen's representation by simply creating bit masks with three 1's
//! padded by 125 0's and a pointer to the dense data (values are not
//! padded)." This module implements that formatter plus conversions between
//! the pointer formats and the bit-mask form.

use crate::chunk::SparseChunk;
use crate::csr::IndexVector;
use crate::dense::Tensor3;
use crate::layout::ChunkDirectory;
use crate::mask::SparseMap;
use crate::vector::SparseVector;

/// The SparTen-formatted dense input image: one directory entry per spatial
/// position, each with a mask of `channels` leading 1s padded to the chunk
/// width, pointing into the *unpadded* dense value array.
#[derive(Debug, Clone)]
pub struct FormattedImage {
    directory: ChunkDirectory,
    values: Vec<f32>,
    channels: usize,
    chunk_size: usize,
}

impl FormattedImage {
    /// Formats a dense image tensor (channels ≤ chunk size) into SparTen's
    /// representation without touching the values.
    ///
    /// # Panics
    ///
    /// Panics if `image.channels() > chunk_size`.
    pub fn from_dense(image: &Tensor3, chunk_size: usize) -> Self {
        let d = image.channels();
        assert!(
            d <= chunk_size,
            "image formatter covers the shallow-channel case only"
        );
        let mut mask = SparseMap::zeros(chunk_size);
        for z in 0..d {
            mask.set(z, true);
        }
        let mut directory = ChunkDirectory::new();
        for y in 0..image.width() {
            for x in 0..image.height() {
                let ptr = (x + image.height() * y) * d;
                directory.push(mask.clone(), ptr);
            }
        }
        FormattedImage {
            directory,
            values: image.as_slice().to_vec(),
            channels: d,
            chunk_size,
        }
    }

    /// The per-position chunk directory.
    pub fn directory(&self) -> &ChunkDirectory {
        &self.directory
    }

    /// The unpadded dense values (3 per position for an RGB image).
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Reconstructs the chunk at spatial position index `p` (row-major
    /// `x + h·y`) as a [`SparseChunk`].
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn chunk(&self, p: usize) -> SparseChunk {
        let entry = &self.directory.entries()[p];
        let vals = self.values[entry.value_ptr..entry.value_ptr + self.channels].to_vec();
        // A dense image may still contain exact zeros; the formatter keeps
        // them (values are not packed), so zero-out mask bits to preserve
        // the chunk invariant.
        let mut mask = entry.mask.clone();
        let mut packed = Vec::with_capacity(self.channels);
        for (z, &v) in vals.iter().enumerate() {
            if v == 0.0 {
                mask.set(z, false);
            } else {
                packed.push(v);
            }
        }
        SparseChunk::from_parts(mask, packed)
    }

    /// Total representation bits: masks plus unpadded 8-bit-per-`value_bits`
    /// values (the §3.1 claim that values are not padded).
    pub fn storage_bits(&self, value_bits: usize) -> usize {
        self.directory.len() * self.chunk_size + self.values.len() * value_bits
    }
}

/// Converts a pointer-format vector to the chunked bit-mask form.
pub fn index_to_sparse(v: &IndexVector, chunk_size: usize) -> SparseVector {
    SparseVector::from_dense(&v.to_dense(), chunk_size)
}

/// Converts a chunked bit-mask vector to the pointer format.
pub fn sparse_to_index(v: &SparseVector) -> IndexVector {
    IndexVector::from_dense(&v.to_dense())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rgb_image() -> Tensor3 {
        let mut t = Tensor3::zeros(3, 2, 2);
        let mut v = 1.0;
        for y in 0..2 {
            for x in 0..2 {
                for z in 0..3 {
                    t.set(z, x, y, v);
                    v += 1.0;
                }
            }
        }
        t
    }

    #[test]
    fn formatter_builds_three_ones_masks() {
        let img = rgb_image();
        let f = FormattedImage::from_dense(&img, 128);
        assert_eq!(f.directory().len(), 4);
        for e in f.directory().entries() {
            assert_eq!(e.mask.len(), 128);
            assert_eq!(e.mask.count_ones(), 3);
            assert_eq!(e.mask.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2]);
        }
    }

    #[test]
    fn values_are_not_padded() {
        let img = rgb_image();
        let f = FormattedImage::from_dense(&img, 128);
        assert_eq!(f.values().len(), 12); // 4 positions × 3 channels, no pad
                                          // 4 masks of 128 bits + 12 values of 8 bits.
        assert_eq!(f.storage_bits(8), 4 * 128 + 12 * 8);
    }

    #[test]
    fn chunks_reconstruct_fibers() {
        let img = rgb_image();
        let f = FormattedImage::from_dense(&img, 16);
        for p in 0..4 {
            let (x, y) = (p % 2, p / 2);
            let chunk = f.chunk(p);
            let dense = chunk.to_dense();
            assert_eq!(&dense[..3], img.fiber(x, y));
            assert!(dense[3..].iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn exact_zero_pixels_are_masked_out() {
        let mut img = rgb_image();
        img.set(1, 0, 0, 0.0);
        let f = FormattedImage::from_dense(&img, 8);
        let chunk = f.chunk(0);
        assert_eq!(chunk.nnz(), 2);
        assert_eq!(chunk.value_at(1), 0.0);
    }

    #[test]
    fn pointer_bitmask_roundtrip() {
        let dense = [0.0, 1.5, 0.0, 0.0, 2.5, 3.5, 0.0];
        let iv = IndexVector::from_dense(&dense);
        let sv = index_to_sparse(&iv, 4);
        assert_eq!(sv.to_dense(), dense);
        let back = sparse_to_index(&sv);
        assert_eq!(back, iv);
    }

    #[test]
    #[should_panic(expected = "shallow-channel")]
    fn deep_channels_rejected() {
        FormattedImage::from_dense(&Tensor3::zeros(256, 1, 1), 128);
    }
}
