//! Typed errors for violated tensor-format invariants.
//!
//! SparTen's bit-mask format rests on a chain of structural invariants
//! (§3.1): every chunk's packed value count equals its mask popcount,
//! directory pointers tile the value store contiguously, and packed
//! values are canonical (non-zero, finite — a zero packed value would
//! desynchronize the mask from the data). The panicking constructors
//! assert these for in-crate literals and tests; the `try_*`/`validate`
//! paths added for fault tolerance return a [`TensorError`] instead, so
//! corrupted or truncated data surfaces as an `Err` the caller can
//! classify rather than an abort.

use std::fmt;

/// A violated structural invariant of the sparse tensor format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorError {
    /// Packed value count differs from the mask popcount.
    CountMismatch {
        /// Mask popcount (the expected value count).
        expected: usize,
        /// Actual packed value count.
        actual: usize,
    },
    /// A packed value is zero — zeros must be absent from the packing.
    ZeroPackedValue {
        /// Index into the packed value array.
        index: usize,
    },
    /// A packed value is NaN or infinite.
    NonFiniteValue {
        /// Index into the packed value array.
        index: usize,
    },
    /// A mask's backing word count does not match its logical length.
    MaskWordMismatch {
        /// Logical bit length.
        len: usize,
        /// Number of backing 64-bit words found.
        words: usize,
    },
    /// A mask has set bits beyond its logical length.
    StrayMaskBits {
        /// Logical bit length.
        len: usize,
    },
    /// A chunk's width differs from the container's chunk size.
    ChunkWidthMismatch {
        /// Chunk index within the container.
        chunk: usize,
        /// Expected width (the container's chunk size).
        expected: usize,
        /// Actual chunk width.
        actual: usize,
    },
    /// A vector's logical length does not fit its chunk list.
    BadLogicalLength {
        /// Number of chunks.
        chunks: usize,
        /// Chunk width.
        chunk_size: usize,
        /// Claimed logical length.
        logical_len: usize,
    },
    /// A directory pointer does not continue where the previous chunk's
    /// values ended — the value store must be tiled contiguously.
    DirectoryGap {
        /// Chunk index with the bad pointer.
        chunk: usize,
        /// Where the previous chunk's values ended.
        expected_ptr: usize,
        /// The pointer actually stored.
        found_ptr: usize,
    },
    /// A directory entry's values extend past the end of the value store
    /// (e.g. after a truncation fault).
    PointerOutOfBounds {
        /// Chunk index with the dangling pointer.
        chunk: usize,
        /// Last value index the chunk needs, exclusive.
        needed: usize,
        /// Values actually available.
        available: usize,
    },
    /// The directory consumes fewer values than the store holds.
    TrailingValues {
        /// Values accounted for by the directory.
        consumed: usize,
        /// Values present in the store.
        total: usize,
    },
    /// An inner join was requested over zero-width operands — the priority
    /// encoder and prefix circuits are undefined over zero bits.
    EmptyChunk,
    /// Inner-join operands differ in width.
    JoinWidthMismatch {
        /// Width of the first operand.
        a: usize,
        /// Width of the second operand.
        b: usize,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            TensorError::CountMismatch { expected, actual } => write!(
                f,
                "packed value count must equal mask population: mask has {expected} ones, \
                 {actual} values packed"
            ),
            TensorError::ZeroPackedValue { index } => {
                write!(f, "packed value {index} is zero (zeros must be masked out)")
            }
            TensorError::NonFiniteValue { index } => {
                write!(f, "packed value {index} is not finite")
            }
            TensorError::MaskWordMismatch { len, words } => write!(
                f,
                "mask of {len} bits needs {} backing words, found {words}",
                len.div_ceil(64)
            ),
            TensorError::StrayMaskBits { len } => {
                write!(f, "mask has set bits beyond its logical length {len}")
            }
            TensorError::ChunkWidthMismatch {
                chunk,
                expected,
                actual,
            } => write!(
                f,
                "chunk {chunk} is {actual} positions wide, container expects {expected}"
            ),
            TensorError::BadLogicalLength {
                chunks,
                chunk_size,
                logical_len,
            } => write!(
                f,
                "logical length {logical_len} does not fit {chunks} chunks of {chunk_size}"
            ),
            TensorError::DirectoryGap {
                chunk,
                expected_ptr,
                found_ptr,
            } => write!(
                f,
                "directory entry {chunk} points at {found_ptr}, expected contiguous {expected_ptr}"
            ),
            TensorError::PointerOutOfBounds {
                chunk,
                needed,
                available,
            } => write!(
                f,
                "directory entry {chunk} needs values up to {needed}, store holds {available}"
            ),
            TensorError::TrailingValues { consumed, total } => write!(
                f,
                "directory accounts for {consumed} values but the store holds {total}"
            ),
            TensorError::EmptyChunk => {
                write!(f, "inner join requires positive-width chunks")
            }
            TensorError::JoinWidthMismatch { a, b } => {
                write!(f, "inner-join operand widths differ: {a} vs {b}")
            }
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_panic_substring() {
        // The `from_parts` panic message contains "packed value count";
        // the typed error's Display must keep that substring so the
        // panicking wrapper stays message-compatible.
        let e = TensorError::CountMismatch {
            expected: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("packed value count"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            TensorError::StrayMaskBits { len: 8 },
            TensorError::StrayMaskBits { len: 8 }
        );
        assert_ne!(
            TensorError::ZeroPackedValue { index: 0 },
            TensorError::NonFiniteValue { index: 0 }
        );
    }
}
