//! A single SparTen chunk: an n-bit [`SparseMap`] plus packed non-zero values.
//!
//! Chunks are the unit of computation in SparTen (§3.1): each compute unit
//! holds one filter chunk and joins it against broadcast input-map chunks.
//! The paper uses n = 128.

use crate::error::TensorError;
use crate::mask::SparseMap;

/// A chunk of a sparse tensor: bit mask + packed non-zero values.
///
/// Invariant: `values.len() == mask.count_ones()`, with `values[i]`
/// corresponding to the i-th set bit of `mask` in position order.
///
/// # Example
///
/// ```
/// use sparten_tensor::SparseChunk;
///
/// let c = SparseChunk::from_dense(&[0.0, 3.0, 0.0, 4.0]);
/// assert_eq!(c.nnz(), 2);
/// assert_eq!(c.to_dense(), vec![0.0, 3.0, 0.0, 4.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseChunk {
    mask: SparseMap,
    values: Vec<f32>,
}

impl SparseChunk {
    /// Builds a chunk from a dense slice, zero-detecting the values.
    pub fn from_dense(dense: &[f32]) -> Self {
        let mask = SparseMap::from_values(dense);
        let values = dense.iter().copied().filter(|&v| v != 0.0).collect();
        SparseChunk { mask, values }
    }

    /// Builds a chunk from an existing mask and packed values.
    ///
    /// For in-crate literals and tests; deserialization and load paths
    /// should use [`SparseChunk::try_from_parts`] instead so corrupted
    /// data surfaces as an `Err`, not an abort.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != mask.count_ones()`.
    pub fn from_parts(mask: SparseMap, values: Vec<f32>) -> Self {
        assert_eq!(
            values.len(),
            mask.count_ones(),
            "packed value count must equal mask population"
        );
        SparseChunk { mask, values }
    }

    /// Fallible [`SparseChunk::from_parts`]: checks the full invariant
    /// set (mask structure, popcount/value-count agreement, canonical
    /// non-zero finite values) and returns a typed error on violation.
    pub fn try_from_parts(mask: SparseMap, values: Vec<f32>) -> Result<Self, TensorError> {
        let c = SparseChunk { mask, values };
        c.validate()?;
        Ok(c)
    }

    /// Checks the chunk's invariants: the mask is structurally valid,
    /// `values.len() == mask.count_ones()`, and every packed value is
    /// canonical (non-zero and finite).
    pub fn validate(&self) -> Result<(), TensorError> {
        self.mask.validate()?;
        if self.values.len() != self.mask.count_ones() {
            return Err(TensorError::CountMismatch {
                expected: self.mask.count_ones(),
                actual: self.values.len(),
            });
        }
        for (index, &v) in self.values.iter().enumerate() {
            if v == 0.0 {
                return Err(TensorError::ZeroPackedValue { index });
            }
            if !v.is_finite() {
                return Err(TensorError::NonFiniteValue { index });
            }
        }
        Ok(())
    }

    /// An all-zero chunk over `len` positions.
    pub fn zeros(len: usize) -> Self {
        SparseChunk {
            mask: SparseMap::zeros(len),
            values: Vec::new(),
        }
    }

    /// The chunk's bit mask.
    pub fn mask(&self) -> &SparseMap {
        &self.mask
    }

    /// The packed non-zero values, in mask position order.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Number of positions covered (the logical length).
    pub fn len(&self) -> usize {
        self.mask.len()
    }

    /// Whether the chunk covers zero positions.
    pub fn is_empty(&self) -> bool {
        self.mask.is_empty()
    }

    /// Number of non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of non-zero positions.
    pub fn density(&self) -> f64 {
        self.mask.density()
    }

    /// The dense value at logical position `pos` (zero where the mask is 0).
    ///
    /// # Panics
    ///
    /// Panics if `pos >= self.len()`.
    pub fn value_at(&self, pos: usize) -> f32 {
        if self.mask.get(pos) {
            self.values[self.mask.prefix_count(pos)]
        } else {
            0.0
        }
    }

    /// Expands the chunk back to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len()];
        for (i, pos) in self.mask.iter_ones().enumerate() {
            out[pos] = self.values[i];
        }
        out
    }

    /// Sparse dot product — the paper's inner join (§3.1, Figure 3).
    ///
    /// ANDs the two masks, then for each match uses prefix counts over each
    /// operand's own mask to locate the packed values, exactly as the
    /// hardware does. Returns the accumulated product.
    ///
    /// # Panics
    ///
    /// Panics if the chunks have different logical lengths.
    pub fn dot(&self, other: &SparseChunk) -> f32 {
        assert_eq!(self.len(), other.len(), "chunk length mismatch");
        let joined = self.mask.and(&other.mask);
        let mut acc = 0.0f32;
        for pos in joined.iter_ones() {
            let a = self.values[self.mask.prefix_count(pos)];
            let b = other.values[other.mask.prefix_count(pos)];
            acc += a * b;
        }
        acc
    }

    /// Number of multiply-accumulate operations the inner join performs —
    /// the popcount of the ANDed masks. This is the chunk's *work* in the
    /// cycle-level model (one MAC per cycle per compute unit).
    pub fn join_work(&self, other: &SparseChunk) -> usize {
        self.mask.and_count_ones(&other.mask)
    }

    /// Pads the chunk with trailing zero positions up to `target_len`
    /// (channel-count padding, §3.1). No-op if already that long.
    ///
    /// # Panics
    ///
    /// Panics if `target_len < self.len()`.
    pub fn pad_to(&mut self, target_len: usize) {
        assert!(target_len >= self.len(), "cannot shrink a chunk by padding");
        self.mask.pad_zeros(target_len - self.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_dense_packs_values() {
        let c = SparseChunk::from_dense(&[0.0, 1.0, 0.0, 2.0, 3.0]);
        assert_eq!(c.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(c.nnz(), 3);
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn to_dense_roundtrips() {
        let dense = [0.0, -1.5, 2.5, 0.0, 0.0, 7.0];
        assert_eq!(SparseChunk::from_dense(&dense).to_dense(), dense);
    }

    #[test]
    fn dot_matches_dense_reference() {
        let a = [0.0, 2.0, 3.0, 0.0, 1.0];
        let b = [5.0, 4.0, 0.0, 1.0, 2.0];
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = SparseChunk::from_dense(&a).dot(&SparseChunk::from_dense(&b));
        assert_eq!(got, expect);
    }

    #[test]
    fn dot_of_disjoint_masks_is_zero() {
        let a = SparseChunk::from_dense(&[1.0, 0.0, 2.0, 0.0]);
        let b = SparseChunk::from_dense(&[0.0, 3.0, 0.0, 4.0]);
        assert_eq!(a.dot(&b), 0.0);
        assert_eq!(a.join_work(&b), 0);
    }

    #[test]
    fn join_work_counts_matches() {
        let a = SparseChunk::from_dense(&[1.0, 1.0, 0.0, 1.0]);
        let b = SparseChunk::from_dense(&[1.0, 0.0, 1.0, 1.0]);
        assert_eq!(a.join_work(&b), 2);
    }

    #[test]
    fn value_at_returns_dense_view() {
        let c = SparseChunk::from_dense(&[0.0, 9.0, 0.0, 8.0]);
        assert_eq!(c.value_at(0), 0.0);
        assert_eq!(c.value_at(1), 9.0);
        assert_eq!(c.value_at(3), 8.0);
    }

    #[test]
    fn pad_to_keeps_values() {
        let mut c = SparseChunk::from_dense(&[1.0, 2.0]);
        c.pad_to(128);
        assert_eq!(c.len(), 128);
        assert_eq!(c.nnz(), 2);
        assert_eq!(c.value_at(1), 2.0);
        assert_eq!(c.value_at(127), 0.0);
    }

    #[test]
    #[should_panic(expected = "packed value count")]
    fn from_parts_validates() {
        let mask = SparseMap::from_bools(&[true, true]);
        SparseChunk::from_parts(mask, vec![1.0]);
    }

    #[test]
    fn try_from_parts_accepts_valid() {
        let mask = SparseMap::from_bools(&[true, false, true]);
        let c = SparseChunk::try_from_parts(mask, vec![1.0, 2.0]).unwrap();
        assert_eq!(c.to_dense(), vec![1.0, 0.0, 2.0]);
    }

    #[test]
    fn try_from_parts_rejects_count_mismatch() {
        use crate::error::TensorError;
        let mask = SparseMap::from_bools(&[true, true]);
        let err = SparseChunk::try_from_parts(mask, vec![1.0]).unwrap_err();
        assert_eq!(err, TensorError::CountMismatch { expected: 2, actual: 1 });
    }

    #[test]
    fn try_from_parts_rejects_zero_and_nonfinite() {
        use crate::error::TensorError;
        let mask = SparseMap::from_bools(&[true, true]);
        let err = SparseChunk::try_from_parts(mask.clone(), vec![1.0, 0.0]).unwrap_err();
        assert_eq!(err, TensorError::ZeroPackedValue { index: 1 });
        let err = SparseChunk::try_from_parts(mask, vec![f32::NAN, 1.0]).unwrap_err();
        assert_eq!(err, TensorError::NonFiniteValue { index: 0 });
    }
}
