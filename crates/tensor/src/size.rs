//! The representation-size analysis of §3.1.
//!
//! "If we assume that a fraction f is non-zero in a set of n l-bit values,
//! then a pointer representation needs `f·n·log2(n) + f·n·l` bits whereas the
//! bit-mask representation needs `n + f·n·l` bits. ... For the pointer scheme
//! to be smaller, `f < 1/log2(n)`." At CNN densities (f ≈ 1/3–1/2) and
//! multi-million-value filter sets, the bit mask wins.

/// Bits needed by the pointer (index) representation for `n` values of
/// `value_bits` bits each at density `f`: `f·n·log2(n) + f·n·l`.
///
/// # Panics
///
/// Panics if `f` is not in `[0, 1]` or `n < 2`.
pub fn pointer_bits(n: usize, f: f64, value_bits: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f), "density must be in [0, 1]");
    assert!(n >= 2, "need at least two positions");
    let log2n = (n as f64).log2();
    f * n as f64 * log2n + f * n as f64 * value_bits as f64
}

/// Bits needed by the bit-mask representation: `n + f·n·l`.
///
/// # Panics
///
/// Panics if `f` is not in `[0, 1]`.
pub fn bitmask_bits(n: usize, f: f64, value_bits: usize) -> f64 {
    assert!((0.0..=1.0).contains(&f), "density must be in [0, 1]");
    n as f64 + f * n as f64 * value_bits as f64
}

/// The density below which the pointer representation becomes smaller than
/// the bit mask: `f < 1/log2(n)`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn crossover_density(n: usize) -> f64 {
    assert!(n >= 2, "need at least two positions");
    1.0 / (n as f64).log2()
}

/// Which representation is smaller at the given parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SmallerFormat {
    /// The pointer representation wins (extreme HPC-style sparsity).
    Pointer,
    /// The SparTen bit mask wins (typical CNN density).
    BitMask,
    /// Both need the same number of bits.
    Tie,
}

/// Compares the two formats at the given parameters.
pub fn smaller_format(n: usize, f: f64, value_bits: usize) -> SmallerFormat {
    let p = pointer_bits(n, f, value_bits);
    let b = bitmask_bits(n, f, value_bits);
    if p < b {
        SmallerFormat::Pointer
    } else if b < p {
        SmallerFormat::BitMask
    } else {
        SmallerFormat::Tie
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_formula() {
        // n = 2^20 (a million values) → crossover at f = 1/20 = 5 %.
        let n = 1 << 20;
        assert!((crossover_density(n) - 0.05).abs() < 1e-12);
    }

    #[test]
    fn cnn_density_favours_bitmask() {
        // Paper: observed f around 1/3 to 1/2 with millions of filter values.
        let n = 4_000_000;
        for f in [1.0 / 3.0, 0.5] {
            assert_eq!(smaller_format(n, f, 8), SmallerFormat::BitMask);
        }
    }

    #[test]
    fn hpc_sparsity_favours_pointers() {
        // HPC: 0.1% non-zero.
        assert_eq!(smaller_format(1 << 20, 0.001, 32), SmallerFormat::Pointer);
    }

    #[test]
    fn crossover_is_exact_boundary() {
        let n = 1 << 10; // log2 = 10
        let fc = crossover_density(n);
        let below = pointer_bits(n, fc * 0.99, 8) < bitmask_bits(n, fc * 0.99, 8);
        let above = pointer_bits(n, fc * 1.01, 8) > bitmask_bits(n, fc * 1.01, 8);
        assert!(below && above);
    }

    #[test]
    fn formulas_match_concrete_encodings() {
        use crate::{IndexVector, SparseVector};
        // 1024 positions, 25% dense, deterministic pattern.
        let n = 1024usize;
        let dense: Vec<f32> = (0..n).map(|i| if i % 4 == 0 { 1.0 } else { 0.0 }).collect();
        let f = 0.25;
        let iv = IndexVector::from_dense(&dense);
        let sv = SparseVector::from_dense(&dense, n); // single chunk of n bits
        assert_eq!(iv.storage_bits(8) as f64, pointer_bits(n, f, 8));
        assert_eq!(sv.storage_bits(8) as f64, bitmask_bits(n, f, 8));
    }

    #[test]
    #[should_panic(expected = "density")]
    fn invalid_density_panics() {
        pointer_bits(16, 1.5, 8);
    }
}
