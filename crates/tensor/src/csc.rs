//! Compressed Sparse Column — the EIE-style format (§3.1).
//!
//! EIE stores fully-connected weight matrices in a CSC variant so that a
//! broadcast input activation can stream down its column of non-zero
//! weights. It is included here as the third pointer-format point of
//! comparison (after [`crate::csr`] and [`crate::rle`]): the column view
//! makes *one-sided* joins cheap (skip a whole column when the activation
//! is zero) but leaves the two-sided join as expensive as CSR's.

use crate::csr::IndexVector;

/// A CSC sparse matrix: `col_ptr` offsets into shared `(row, value)` arrays.
#[derive(Debug, Clone, PartialEq)]
pub struct CscMatrix {
    col_ptr: Vec<usize>,
    rows: Vec<u32>,
    values: Vec<f32>,
    num_rows: usize,
}

impl CscMatrix {
    /// Builds a CSC matrix from dense rows (row-major input for symmetry
    /// with [`crate::CsrMatrix::from_rows`]).
    ///
    /// # Panics
    ///
    /// Panics if rows are ragged.
    pub fn from_rows(dense_rows: &[Vec<f32>]) -> Self {
        let num_rows = dense_rows.len();
        let num_cols = dense_rows.first().map_or(0, Vec::len);
        let mut col_ptr = Vec::with_capacity(num_cols + 1);
        let mut rows = Vec::new();
        let mut values = Vec::new();
        col_ptr.push(0);
        for c in 0..num_cols {
            for (r, row) in dense_rows.iter().enumerate() {
                assert_eq!(row.len(), num_cols, "ragged rows are not allowed");
                let v = row[c];
                if v != 0.0 {
                    rows.push(r as u32);
                    values.push(v);
                }
            }
            col_ptr.push(rows.len());
        }
        CscMatrix {
            col_ptr,
            rows,
            values,
            num_rows,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.col_ptr.len() - 1
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Column `c` as `(row, value)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.num_cols()`.
    pub fn col(&self, c: usize) -> (&[u32], &[f32]) {
        assert!(c < self.num_cols(), "column {c} out of range");
        let (lo, hi) = (self.col_ptr[c], self.col_ptr[c + 1]);
        (&self.rows[lo..hi], &self.values[lo..hi])
    }

    /// EIE-style one-sided SpMV: for every *non-zero* activation, stream its
    /// column and accumulate — zero activations skip their columns entirely,
    /// but every stored weight of a live column is multiplied.
    ///
    /// Returns `(result, macs)` where `macs` counts the multiplications the
    /// hardware would perform.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn spmv_one_sided(&self, x: &IndexVector) -> (Vec<f32>, usize) {
        assert_eq!(x.len(), self.num_cols(), "dimension mismatch");
        let mut y = vec![0.0f32; self.num_rows];
        let mut macs = 0usize;
        for (&c, &xv) in x.indices().iter().zip(x.values()) {
            let (rows, vals) = self.col(c as usize);
            for (&r, &w) in rows.iter().zip(vals) {
                y[r as usize] += w * xv;
                macs += 1;
            }
        }
        (y, macs)
    }

    /// Representation size in bits: `log2(rows)`-bit row indices plus
    /// `value_bits` per non-zero, plus a `log2(nnz)`-bit pointer per column.
    pub fn storage_bits(&self, value_bits: usize) -> usize {
        let row_bits = (self.num_rows.max(2) as f64).log2().ceil() as usize;
        let ptr_bits = (self.nnz().max(2) as f64).log2().ceil() as usize;
        self.nnz() * (row_bits + value_bits) + self.num_cols() * ptr_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Vec<f32>> {
        vec![
            vec![1.0, 0.0, 2.0, 0.0],
            vec![0.0, 3.0, 0.0, 0.0],
            vec![4.0, 0.0, 0.0, 5.0],
        ]
    }

    #[test]
    fn construction_and_columns() {
        let m = CscMatrix::from_rows(&sample());
        assert_eq!((m.num_rows(), m.num_cols(), m.nnz()), (3, 4, 5));
        let (rows, vals) = m.col(0);
        assert_eq!(rows, &[0, 2]);
        assert_eq!(vals, &[1.0, 4.0]);
        let (rows, _) = m.col(1);
        assert_eq!(rows, &[1]);
    }

    #[test]
    fn one_sided_spmv_matches_dense() {
        let m = CscMatrix::from_rows(&sample());
        let x = IndexVector::from_dense(&[2.0, 0.0, 1.0, 3.0]);
        let (y, macs) = m.spmv_one_sided(&x);
        assert_eq!(y, vec![2.0 + 2.0, 0.0, 8.0 + 15.0]);
        // Columns 0, 2, 3 are live: 2 + 1 + 1 = 4 multiplications.
        assert_eq!(macs, 4);
    }

    #[test]
    fn zero_activation_skips_whole_column() {
        let m = CscMatrix::from_rows(&sample());
        let dense_x = IndexVector::from_dense(&[1.0, 1.0, 1.0, 1.0]);
        let sparse_x = IndexVector::from_dense(&[1.0, 0.0, 0.0, 0.0]);
        let (_, dense_macs) = m.spmv_one_sided(&dense_x);
        let (_, sparse_macs) = m.spmv_one_sided(&sparse_x);
        assert_eq!(dense_macs, m.nnz());
        assert_eq!(sparse_macs, 2);
    }

    #[test]
    fn one_sided_still_multiplies_matched_weights_only_by_column() {
        // Two-sided inefficiency: even a one-element output needs the whole
        // column streamed — MACs equal column nnz, not join matches.
        let m = CscMatrix::from_rows(&vec![vec![1.0; 8]; 8]);
        let x = IndexVector::from_dense(&[1.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        let (_, macs) = m.spmv_one_sided(&x);
        assert_eq!(macs, 8);
    }

    #[test]
    fn storage_accounting() {
        let m = CscMatrix::from_rows(&sample());
        // 5 nnz × (2-bit rows + 8-bit values) + 4 cols × 3-bit pointers.
        assert_eq!(m.storage_bits(8), 5 * 10 + 4 * 3);
    }

    #[test]
    fn empty_columns_are_fine() {
        let m = CscMatrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 0.0]]);
        let (rows, _) = m.col(0);
        assert!(rows.is_empty());
    }
}
