//! Logical sparse vectors composed of fixed-size chunks.
//!
//! SparTen linearizes tensors on the fly into vectors for its BLAS-like
//! matrix-vector and matrix-matrix interface (§3.2). A [`SparseVector`] is
//! the chunked bit-mask representation of one such vector: the concatenation
//! of [`SparseChunk`]s, each `chunk_size` positions long, with the final
//! chunk zero-padded to a full chunk as §3.1 prescribes.

use crate::chunk::SparseChunk;
use crate::error::TensorError;

/// A sparse vector stored as consecutive fixed-size chunks.
///
/// # Example
///
/// ```
/// use sparten_tensor::SparseVector;
///
/// let v = SparseVector::from_dense(&[0.0, 1.0, 0.0, 2.0, 0.0], 4);
/// assert_eq!(v.num_chunks(), 2);      // 5 positions → two 4-wide chunks
/// assert_eq!(v.logical_len(), 5);
/// assert_eq!(v.nnz(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SparseVector {
    chunks: Vec<SparseChunk>,
    chunk_size: usize,
    logical_len: usize,
}

impl SparseVector {
    /// Builds a chunked sparse vector from a dense slice. The final chunk is
    /// zero-padded to `chunk_size`.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn from_dense(dense: &[f32], chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let mut chunks = Vec::with_capacity(dense.len().div_ceil(chunk_size));
        for piece in dense.chunks(chunk_size) {
            let mut c = SparseChunk::from_dense(piece);
            c.pad_to(chunk_size);
            chunks.push(c);
        }
        SparseVector {
            chunks,
            chunk_size,
            logical_len: dense.len(),
        }
    }

    /// Builds a vector from pre-made chunks.
    ///
    /// # Panics
    ///
    /// Panics if any chunk's length differs from `chunk_size`, or if
    /// `logical_len` does not fit in the chunks
    /// (`chunks.len() * chunk_size` must be ≥ `logical_len` and the last
    /// chunk must be needed).
    pub fn from_chunks(chunks: Vec<SparseChunk>, chunk_size: usize, logical_len: usize) -> Self {
        for c in &chunks {
            assert_eq!(c.len(), chunk_size, "chunk width mismatch");
        }
        assert!(
            chunks.len() * chunk_size >= logical_len,
            "chunks too short for logical length"
        );
        assert!(
            logical_len > chunks.len().saturating_sub(1) * chunk_size,
            "trailing empty chunks not allowed"
        );
        SparseVector {
            chunks,
            chunk_size,
            logical_len,
        }
    }

    /// Fallible [`SparseVector::from_chunks`] for load paths: checks the
    /// container invariants *and* validates every chunk, returning a
    /// typed error instead of panicking on corrupted input.
    pub fn try_from_chunks(
        chunks: Vec<SparseChunk>,
        chunk_size: usize,
        logical_len: usize,
    ) -> Result<Self, TensorError> {
        for (i, c) in chunks.iter().enumerate() {
            if c.len() != chunk_size {
                return Err(TensorError::ChunkWidthMismatch {
                    chunk: i,
                    expected: chunk_size,
                    actual: c.len(),
                });
            }
            c.validate()?;
        }
        let fits = chunks.len() * chunk_size >= logical_len;
        let last_needed = logical_len > chunks.len().saturating_sub(1) * chunk_size;
        if !fits || !last_needed {
            return Err(TensorError::BadLogicalLength {
                chunks: chunks.len(),
                chunk_size,
                logical_len,
            });
        }
        Ok(SparseVector {
            chunks,
            chunk_size,
            logical_len,
        })
    }

    /// An all-zero vector of `logical_len` positions.
    pub fn zeros(logical_len: usize, chunk_size: usize) -> Self {
        Self::from_dense(&vec![0.0; logical_len], chunk_size)
    }

    /// The chunks making up the vector.
    pub fn chunks(&self) -> &[SparseChunk] {
        &self.chunks
    }

    /// The configured chunk size (n in the paper; 128 by default).
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// The unpadded logical length of the vector.
    pub fn logical_len(&self) -> usize {
        self.logical_len
    }

    /// Total number of non-zero values.
    pub fn nnz(&self) -> usize {
        self.chunks.iter().map(SparseChunk::nnz).sum()
    }

    /// Fraction of non-zero values over the logical length.
    pub fn density(&self) -> f64 {
        if self.logical_len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.logical_len as f64
        }
    }

    /// Expands to a dense vector of `logical_len` values.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_chunks() * self.chunk_size);
        for c in &self.chunks {
            out.extend(c.to_dense());
        }
        out.truncate(self.logical_len);
        out
    }

    /// Full sparse dot product: inner join chunk by chunk (§3.1).
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different logical lengths or chunk sizes.
    pub fn dot(&self, other: &SparseVector) -> f32 {
        assert_eq!(self.logical_len, other.logical_len, "length mismatch");
        assert_eq!(self.chunk_size, other.chunk_size, "chunk size mismatch");
        self.chunks
            .iter()
            .zip(&other.chunks)
            .map(|(a, b)| a.dot(b))
            .sum()
    }

    /// Total multiply-accumulate count of the inner join against `other`
    /// (sum of per-chunk joined popcounts).
    ///
    /// # Panics
    ///
    /// Panics as for [`SparseVector::dot`].
    pub fn join_work(&self, other: &SparseVector) -> usize {
        assert_eq!(self.logical_len, other.logical_len, "length mismatch");
        assert_eq!(self.chunk_size, other.chunk_size, "chunk size mismatch");
        self.chunks
            .iter()
            .zip(&other.chunks)
            .map(|(a, b)| a.join_work(b))
            .sum()
    }

    /// Per-chunk densities — the quantity GB-H sorts on (§3.3).
    pub fn chunk_densities(&self) -> Vec<f64> {
        self.chunks.iter().map(SparseChunk::density).collect()
    }

    /// Size of the representation in bits: one mask bit per padded position
    /// plus `value_bits` per non-zero (§3.1's `n + f·n·l`).
    pub fn storage_bits(&self, value_bits: usize) -> usize {
        self.num_chunks() * self.chunk_size + self.nnz() * value_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dense_dot(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }

    #[test]
    fn chunking_pads_last_chunk() {
        let v = SparseVector::from_dense(&[1.0; 10], 4);
        assert_eq!(v.num_chunks(), 3);
        assert_eq!(v.chunks()[2].len(), 4);
        assert_eq!(v.chunks()[2].nnz(), 2);
        assert_eq!(v.logical_len(), 10);
    }

    #[test]
    fn to_dense_roundtrips_with_padding() {
        let dense = vec![0.0, 1.0, 2.0, 0.0, 0.0, 3.0, 0.0];
        let v = SparseVector::from_dense(&dense, 3);
        assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn dot_matches_dense() {
        let a = vec![0.0, 1.0, 2.0, 0.0, 5.0, 0.0, 7.0];
        let b = vec![3.0, 0.0, 2.0, 2.0, 5.0, 1.0, 0.0];
        let va = SparseVector::from_dense(&a, 4);
        let vb = SparseVector::from_dense(&b, 4);
        assert_eq!(va.dot(&vb), dense_dot(&a, &b));
    }

    #[test]
    fn join_work_counts_both_nonzero_pairs() {
        let a = vec![1.0, 0.0, 1.0, 1.0, 0.0];
        let b = vec![1.0, 1.0, 0.0, 1.0, 0.0];
        let va = SparseVector::from_dense(&a, 2);
        let vb = SparseVector::from_dense(&b, 2);
        assert_eq!(va.join_work(&vb), 2);
    }

    #[test]
    fn density_uses_logical_length() {
        let v = SparseVector::from_dense(&[1.0, 0.0, 1.0, 0.0, 1.0], 4);
        assert!((v.density() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn storage_bits_formula() {
        // 5 logical positions, chunk 4 → 2 chunks → 8 mask bits; 3 nnz × 8.
        let v = SparseVector::from_dense(&[1.0, 0.0, 1.0, 0.0, 1.0], 4);
        assert_eq!(v.storage_bits(8), 8 + 3 * 8);
    }

    #[test]
    fn chunk_densities_reports_per_chunk() {
        let v = SparseVector::from_dense(&[1.0, 1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0], 4);
        assert_eq!(v.chunk_densities(), vec![0.5, 0.25]);
    }

    #[test]
    fn try_from_chunks_accepts_valid() {
        let src = SparseVector::from_dense(&[1.0, 0.0, 2.0, 0.0, 3.0], 2);
        let rebuilt =
            SparseVector::try_from_chunks(src.chunks().to_vec(), 2, src.logical_len()).unwrap();
        assert_eq!(rebuilt, src);
    }

    #[test]
    fn try_from_chunks_rejects_bad_width_and_length() {
        let chunks = vec![SparseChunk::from_dense(&[1.0, 0.0])];
        let err = SparseVector::try_from_chunks(chunks.clone(), 4, 2).unwrap_err();
        assert!(matches!(err, TensorError::ChunkWidthMismatch { chunk: 0, .. }));
        let err = SparseVector::try_from_chunks(chunks, 2, 5).unwrap_err();
        assert!(matches!(err, TensorError::BadLogicalLength { .. }));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        let a = SparseVector::from_dense(&[1.0; 4], 4);
        let b = SparseVector::from_dense(&[1.0; 5], 4);
        a.dot(&b);
    }
}
