//! HPC-style pointer representations: index vectors and CSR matrices.
//!
//! SCNN, Cnvlutin, and Cambricon-X use CSR; EIE a CSC variant (§3.1). SparTen
//! argues the bit-mask representation beats pointers at machine-learning
//! densities (f ≈ 1/3–1/2). These types exist to (a) implement the
//! merge-based inner join the paper calls inefficient, for comparison
//! benchmarks, and (b) back the representation-size analysis in [`crate::size`].

/// A sparse vector as parallel `(indices, values)` arrays, indices strictly
/// increasing — the one-dimensional analogue of a CSR row.
///
/// # Example
///
/// ```
/// use sparten_tensor::IndexVector;
///
/// let a = IndexVector::from_dense(&[0.0, 2.0, 0.0, 3.0]);
/// let b = IndexVector::from_dense(&[1.0, 4.0, 5.0, 0.0]);
/// assert_eq!(a.dot(&b), 8.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IndexVector {
    indices: Vec<u32>,
    values: Vec<f32>,
    len: usize,
}

impl IndexVector {
    /// Builds the pointer representation of a dense slice.
    pub fn from_dense(dense: &[f32]) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if v != 0.0 {
                indices.push(i as u32);
                values.push(v);
            }
        }
        IndexVector {
            indices,
            values,
            len: dense.len(),
        }
    }

    /// Builds from parallel arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays differ in length, indices are not strictly
    /// increasing, or any index is ≥ `len`.
    pub fn from_parts(indices: Vec<u32>, values: Vec<f32>, len: usize) -> Self {
        assert_eq!(indices.len(), values.len(), "parallel array mismatch");
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        assert!(
            indices.last().is_none_or(|&i| (i as usize) < len),
            "index out of range"
        );
        IndexVector {
            indices,
            values,
            len,
        }
    }

    /// Logical (dense) length.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the logical length is zero.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The non-zero positions.
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// The non-zero values.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Expands to a dense vector.
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.len];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }

    /// Pointer-based inner join by incremental merge — the two-sided join
    /// the paper describes as inefficient with CSR (§2.1, Figure 2).
    ///
    /// # Panics
    ///
    /// Panics if the logical lengths differ.
    pub fn dot(&self, other: &IndexVector) -> f32 {
        assert_eq!(self.len, other.len, "length mismatch");
        let (mut i, mut j) = (0usize, 0usize);
        let mut acc = 0.0f32;
        while i < self.indices.len() && j < other.indices.len() {
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    acc += self.values[i] * other.values[j];
                    i += 1;
                    j += 1;
                }
            }
        }
        acc
    }

    /// Number of pointer comparisons the merge join performs — the search
    /// cost the bit-mask join avoids.
    pub fn join_comparisons(&self, other: &IndexVector) -> usize {
        let (mut i, mut j, mut cmps) = (0usize, 0usize, 0usize);
        while i < self.indices.len() && j < other.indices.len() {
            cmps += 1;
            match self.indices[i].cmp(&other.indices[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    i += 1;
                    j += 1;
                }
            }
        }
        cmps
    }

    /// Representation size in bits using `log2(len)`-bit pointers and
    /// `value_bits`-bit values — §3.1's `f·n·log2(n) + f·n·l`.
    pub fn storage_bits(&self, value_bits: usize) -> usize {
        let ptr_bits = (self.len.max(2) as f64).log2().ceil() as usize;
        self.nnz() * (ptr_bits + value_bits)
    }
}

/// A CSR sparse matrix: `row_ptr` offsets into shared `(col, value)` arrays.
///
/// Rows are the paper's filters (each row one linearized filter), columns the
/// flattened weight positions.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    row_ptr: Vec<usize>,
    cols: Vec<u32>,
    values: Vec<f32>,
    num_cols: usize,
}

impl CsrMatrix {
    /// Builds a CSR matrix from dense rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        let num_cols = rows.first().map_or(0, Vec::len);
        let mut row_ptr = Vec::with_capacity(rows.len() + 1);
        let mut cols = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in rows {
            assert_eq!(row.len(), num_cols, "ragged rows are not allowed");
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    cols.push(c as u32);
                    values.push(v);
                }
            }
            row_ptr.push(cols.len());
        }
        CsrMatrix {
            row_ptr,
            cols,
            values,
            num_cols,
        }
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.row_ptr.len() - 1
    }

    /// Number of columns.
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Total stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row `r` as an [`IndexVector`] view (copies the row's slices).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.num_rows()`.
    pub fn row(&self, r: usize) -> IndexVector {
        assert!(r < self.num_rows(), "row {r} out of range");
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        IndexVector::from_parts(
            self.cols[lo..hi].to_vec(),
            self.values[lo..hi].to_vec(),
            self.num_cols,
        )
    }

    /// Sparse matrix × sparse vector via per-row merge joins.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.num_cols()`.
    pub fn spmv(&self, x: &IndexVector) -> Vec<f32> {
        assert_eq!(x.len(), self.num_cols, "dimension mismatch");
        (0..self.num_rows()).map(|r| self.row(r).dot(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_vector_roundtrip() {
        let dense = [0.0, 5.0, 0.0, 0.0, -2.0];
        let v = IndexVector::from_dense(&dense);
        assert_eq!(v.nnz(), 2);
        assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn merge_dot_matches_dense() {
        let a = [1.0, 0.0, 2.0, 3.0, 0.0, 4.0];
        let b = [0.0, 5.0, 6.0, 0.0, 7.0, 8.0];
        let expect: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let got = IndexVector::from_dense(&a).dot(&IndexVector::from_dense(&b));
        assert_eq!(got, expect);
    }

    #[test]
    fn join_comparisons_at_least_matches() {
        let a = IndexVector::from_dense(&[1.0, 1.0, 0.0, 0.0]);
        let b = IndexVector::from_dense(&[0.0, 1.0, 1.0, 0.0]);
        // Merge must compare at least once per match, usually more.
        assert!(a.join_comparisons(&b) >= 1);
    }

    #[test]
    fn storage_bits_uses_log2_pointers() {
        let v = IndexVector::from_dense(&[1.0, 0.0, 1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        // 8 positions → 3-bit pointers; 2 nnz × (3 + 8).
        assert_eq!(v.storage_bits(8), 2 * (3 + 8));
    }

    #[test]
    fn csr_row_extraction() {
        let m = CsrMatrix::from_rows(&[
            vec![1.0, 0.0, 2.0],
            vec![0.0, 0.0, 0.0],
            vec![0.0, 3.0, 0.0],
        ]);
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.row(0).to_dense(), vec![1.0, 0.0, 2.0]);
        assert_eq!(m.row(1).nnz(), 0);
    }

    #[test]
    fn spmv_matches_dense() {
        let rows = vec![vec![1.0, 0.0, 2.0], vec![0.0, 4.0, 0.0]];
        let x = [3.0, 0.0, 5.0];
        let m = CsrMatrix::from_rows(&rows);
        let xd = IndexVector::from_dense(&x);
        let y = m.spmv(&xd);
        assert_eq!(y, vec![13.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_parts_validates_order() {
        IndexVector::from_parts(vec![2, 1], vec![1.0, 2.0], 4);
    }
}
