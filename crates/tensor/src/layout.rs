//! Memory layout of SparTen tensors (§3.1, second half).
//!
//! Data is held in two parts. The first is an array of `(SparseMap, ptr)`
//! two-tuples, one per chunk — the [`ChunkDirectory`]. The second holds the
//! variable-count non-zero values. Because different clusters concurrently
//! produce different sub-tensors of the output map, SparTen lays out each
//! cluster's output values contiguously in a per-cluster memory region
//! ([`ClusterRegion`]), sized for the average case plus padding (e.g. 10 %),
//! with a watermark-based fallback allocation when a region fills.

use crate::mask::SparseMap;

/// Directory of per-chunk `(SparseMap, value pointer)` tuples for one tensor
/// (all the filters, the input map, or the output map of a layer).
#[derive(Debug, Clone, Default)]
pub struct ChunkDirectory {
    entries: Vec<DirectoryEntry>,
}

/// One `(mask, pointer)` tuple in a [`ChunkDirectory`].
#[derive(Debug, Clone)]
pub struct DirectoryEntry {
    /// The chunk's bit mask.
    pub mask: SparseMap,
    /// Byte address of the chunk's packed values within the value region.
    pub value_ptr: usize,
}

impl ChunkDirectory {
    /// An empty directory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a chunk entry and returns its index.
    pub fn push(&mut self, mask: SparseMap, value_ptr: usize) -> usize {
        self.entries.push(DirectoryEntry { mask, value_ptr });
        self.entries.len() - 1
    }

    /// The directory entries in chunk order.
    pub fn entries(&self) -> &[DirectoryEntry] {
        &self.entries
    }

    /// Mutable access to the directory entries, used by fault injection
    /// to perturb masks and pointers in place.
    pub fn entries_mut(&mut self) -> &mut [DirectoryEntry] {
        &mut self.entries
    }

    /// Number of chunks catalogued.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the directory is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Directory size in bits: one mask (`chunk_size` bits) plus one
    /// `ptr_bits` pointer per chunk.
    pub fn storage_bits(&self, chunk_size: usize, ptr_bits: usize) -> usize {
        self.entries.len() * (chunk_size + ptr_bits)
    }
}

/// A contiguous memory region owned by one cluster for its output values.
///
/// The region is provisioned for the expected value count plus a padding
/// fraction; writes beyond capacity spill to *fallback extents* allocated in
/// the background once a watermark is crossed (§3.1). Because every chunk's
/// values carry their own pointer, extents need not be contiguous with the
/// base region.
#[derive(Debug, Clone)]
pub struct ClusterRegion {
    base_capacity: usize,
    used: usize,
    watermark: f64,
    fallback_extents: Vec<usize>,
    fallback_requested: bool,
}

impl ClusterRegion {
    /// Provisions a region for `expected_values` with `padding` fractional
    /// slack (the paper suggests ~10 %, i.e. `padding = 0.10`) and a
    /// `watermark` fill fraction that triggers background fallback
    /// allocation.
    ///
    /// # Panics
    ///
    /// Panics if `padding < 0` or `watermark` is not in `(0, 1]`.
    pub fn new(expected_values: usize, padding: f64, watermark: f64) -> Self {
        assert!(padding >= 0.0, "padding must be non-negative");
        assert!(
            watermark > 0.0 && watermark <= 1.0,
            "watermark must be in (0, 1]"
        );
        ClusterRegion {
            base_capacity: ((expected_values as f64) * (1.0 + padding)).round() as usize,
            used: 0,
            watermark,
            fallback_extents: Vec::new(),
            fallback_requested: false,
        }
    }

    /// Total capacity: base region plus any fallback extents.
    pub fn capacity(&self) -> usize {
        self.base_capacity + self.fallback_extents.iter().sum::<usize>()
    }

    /// Values written so far.
    pub fn used(&self) -> usize {
        self.used
    }

    /// Whether the watermark has been crossed and a background fallback
    /// allocation is pending.
    pub fn fallback_pending(&self) -> bool {
        self.fallback_requested
    }

    /// Number of fallback extents allocated so far — a fragmentation metric.
    pub fn num_fallback_extents(&self) -> usize {
        self.fallback_extents.len()
    }

    /// Appends `count` output values; returns the starting offset of the
    /// write within the region's logical address space.
    ///
    /// Crossing the watermark sets [`ClusterRegion::fallback_pending`]; the
    /// caller (the CPU in the paper) services it with
    /// [`ClusterRegion::grant_fallback`]. Running out of capacity entirely
    /// grows the region synchronously (modelling a stalled allocation) —
    /// callers can detect that via the extent count.
    pub fn append(&mut self, count: usize) -> usize {
        let offset = self.used;
        self.used += count;
        if self.used > self.capacity() {
            // Synchronous emergency extent: exactly the overflow, doubled to
            // avoid thrashing.
            let need = (self.used - self.capacity()).max(1) * 2;
            self.fallback_extents.push(need);
            self.fallback_requested = false;
        } else if (self.used as f64) >= self.watermark * (self.capacity() as f64) {
            self.fallback_requested = true;
        }
        offset
    }

    /// Services a pending fallback request with an extent of `size` values.
    pub fn grant_fallback(&mut self, size: usize) {
        self.fallback_extents.push(size);
        self.fallback_requested = false;
    }

    /// Unused capacity (internal fragmentation if the layer ends here).
    pub fn slack(&self) -> usize {
        self.capacity().saturating_sub(self.used)
    }
}

/// Allocates per-cluster output regions for a layer, keeping different
/// clusters' outputs in disjoint regions so value writes never serialize.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    regions: Vec<ClusterRegion>,
}

impl RegionAllocator {
    /// Provisions one region per cluster. `expected_per_cluster` is the
    /// average-case value count each cluster will produce.
    pub fn new(
        num_clusters: usize,
        expected_per_cluster: usize,
        padding: f64,
        watermark: f64,
    ) -> Self {
        RegionAllocator {
            regions: (0..num_clusters)
                .map(|_| ClusterRegion::new(expected_per_cluster, padding, watermark))
                .collect(),
        }
    }

    /// Number of cluster regions.
    pub fn num_regions(&self) -> usize {
        self.regions.len()
    }

    /// The region owned by `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn region(&self, cluster: usize) -> &ClusterRegion {
        &self.regions[cluster]
    }

    /// Mutable access to the region owned by `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if `cluster` is out of range.
    pub fn region_mut(&mut self, cluster: usize) -> &mut ClusterRegion {
        &mut self.regions[cluster]
    }

    /// Total values written across all regions.
    pub fn total_used(&self) -> usize {
        self.regions.iter().map(ClusterRegion::used).sum()
    }

    /// Total slack (fragmentation) across all regions.
    pub fn total_slack(&self) -> usize {
        self.regions.iter().map(ClusterRegion::slack).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn directory_tracks_entries() {
        let mut d = ChunkDirectory::new();
        let i0 = d.push(SparseMap::ones(128), 0);
        let i1 = d.push(SparseMap::zeros(128), 512);
        assert_eq!((i0, i1), (0, 1));
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries()[1].value_ptr, 512);
        // 2 chunks × (128-bit mask + 32-bit ptr).
        assert_eq!(d.storage_bits(128, 32), 2 * 160);
    }

    #[test]
    fn region_appends_without_fallback_below_watermark() {
        let mut r = ClusterRegion::new(100, 0.10, 0.9);
        assert_eq!(r.capacity(), 110);
        let off = r.append(50);
        assert_eq!(off, 0);
        assert!(!r.fallback_pending());
        assert_eq!(r.append(10), 50);
    }

    #[test]
    fn watermark_triggers_fallback_request() {
        let mut r = ClusterRegion::new(100, 0.0, 0.8);
        r.append(85);
        assert!(r.fallback_pending());
        r.grant_fallback(50);
        assert!(!r.fallback_pending());
        assert_eq!(r.capacity(), 150);
    }

    #[test]
    fn overflow_allocates_emergency_extent() {
        let mut r = ClusterRegion::new(10, 0.0, 0.99);
        r.append(25);
        assert!(r.capacity() >= 25);
        assert_eq!(r.num_fallback_extents(), 1);
    }

    #[test]
    fn allocator_keeps_regions_disjoint() {
        let mut a = RegionAllocator::new(4, 100, 0.10, 0.9);
        a.region_mut(0).append(30);
        a.region_mut(3).append(70);
        assert_eq!(a.total_used(), 100);
        assert_eq!(a.region(1).used(), 0);
        assert!(a.total_slack() > 0);
    }

    #[test]
    #[should_panic(expected = "watermark")]
    fn bad_watermark_panics() {
        ClusterRegion::new(10, 0.1, 0.0);
    }
}
