//! Chunked sparse 3-D tensors: the full §3.1 storage format in one type.
//!
//! A [`SparseTensor3`] holds a feature map exactly as SparTen's memory
//! does: a [`ChunkDirectory`] with one `(SparseMap, pointer)` entry per
//! chunk (Z-first, per-fiber padded), and one packed value array. It is the
//! bridge between the dense [`Tensor3`] the reference model uses and the
//! per-chunk view the accelerator consumes, and it reports its own storage
//! footprint so layer-level memory numbers come from real encodings.

use crate::chunk::SparseChunk;
use crate::dense::Tensor3;
use crate::error::TensorError;
use crate::layout::ChunkDirectory;
use crate::mask::SparseMap;

/// A sparse `channels × height × width` tensor in chunked bit-mask form.
///
/// # Example
///
/// ```
/// use sparten_tensor::{SparseTensor3, Tensor3};
///
/// let mut dense = Tensor3::zeros(3, 2, 2);
/// dense.set(1, 0, 0, 5.0);
/// let sparse = SparseTensor3::from_dense(&dense, 128);
/// assert_eq!(sparse.nnz(), 1);
/// assert_eq!(sparse.to_dense(), dense);
/// ```
#[derive(Debug, Clone)]
pub struct SparseTensor3 {
    directory: ChunkDirectory,
    values: Vec<f32>,
    channels: usize,
    height: usize,
    width: usize,
    chunk_size: usize,
    chunks_per_fiber: usize,
}

impl SparseTensor3 {
    /// Encodes a dense tensor: each spatial fiber is padded to a whole
    /// number of chunks and split into `(mask, pointer)` entries.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size == 0`.
    pub fn from_dense(dense: &Tensor3, chunk_size: usize) -> Self {
        assert!(chunk_size > 0, "chunk size must be positive");
        let d = dense.channels();
        let chunks_per_fiber = d.div_ceil(chunk_size).max(1);
        let mut directory = ChunkDirectory::new();
        let mut values = Vec::new();
        for y in 0..dense.width() {
            for x in 0..dense.height() {
                let fiber = dense.fiber(x, y);
                for c in 0..chunks_per_fiber {
                    let lo = c * chunk_size;
                    let hi = (lo + chunk_size).min(d);
                    let mut mask = SparseMap::zeros(chunk_size);
                    let ptr = values.len();
                    if lo < d {
                        for (i, &v) in fiber[lo..hi].iter().enumerate() {
                            if v != 0.0 {
                                mask.set(i, true);
                                values.push(v);
                            }
                        }
                    }
                    directory.push(mask, ptr);
                }
            }
        }
        SparseTensor3 {
            directory,
            values,
            channels: d,
            height: dense.height(),
            width: dense.width(),
            chunk_size,
            chunks_per_fiber,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.channels
    }

    /// Height.
    pub fn height(&self) -> usize {
        self.height
    }

    /// Width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunks per spatial fiber (`⌈channels / chunk⌉`).
    pub fn chunks_per_fiber(&self) -> usize {
        self.chunks_per_fiber
    }

    /// Total non-zero values.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The chunk directory.
    pub fn directory(&self) -> &ChunkDirectory {
        &self.directory
    }

    /// The `c`-th chunk of the fiber at `(x, y)` as a [`SparseChunk`].
    ///
    /// # Panics
    ///
    /// Panics if any coordinate is out of range.
    pub fn fiber_chunk(&self, x: usize, y: usize, c: usize) -> SparseChunk {
        assert!(x < self.height && y < self.width, "position out of range");
        assert!(c < self.chunks_per_fiber, "chunk index out of range");
        let idx = (x + self.height * y) * self.chunks_per_fiber + c;
        let entry = &self.directory.entries()[idx];
        let n = entry.mask.count_ones();
        SparseChunk::from_parts(
            entry.mask.clone(),
            self.values[entry.value_ptr..entry.value_ptr + n].to_vec(),
        )
    }

    /// Fallible [`SparseTensor3::fiber_chunk`]: checks the directory
    /// pointer against the value store and validates the reconstructed
    /// chunk, so a corrupted tensor yields a typed error rather than a
    /// panic or an out-of-bounds abort.
    pub fn try_fiber_chunk(&self, x: usize, y: usize, c: usize) -> Result<SparseChunk, TensorError> {
        assert!(x < self.height && y < self.width, "position out of range");
        assert!(c < self.chunks_per_fiber, "chunk index out of range");
        let idx = (x + self.height * y) * self.chunks_per_fiber + c;
        let entry = &self.directory.entries()[idx];
        let needed = entry.value_ptr + entry.mask.count_ones();
        if needed > self.values.len() {
            return Err(TensorError::PointerOutOfBounds {
                chunk: idx,
                needed,
                available: self.values.len(),
            });
        }
        SparseChunk::try_from_parts(
            entry.mask.clone(),
            self.values[entry.value_ptr..needed].to_vec(),
        )
    }

    /// Checks the whole tensor's structural invariants: every mask is
    /// well-formed and `chunk_size` wide, directory pointers tile the
    /// value store contiguously and in bounds, every packed value is
    /// canonical, and the directory accounts for every stored value.
    ///
    /// This is the detection point for mask bit flips and value
    /// corruption/truncation faults: any of those breaks at least one
    /// of these checks.
    pub fn validate(&self) -> Result<(), TensorError> {
        let mut consumed = 0usize;
        for (idx, entry) in self.directory.entries().iter().enumerate() {
            if entry.mask.len() != self.chunk_size {
                return Err(TensorError::ChunkWidthMismatch {
                    chunk: idx,
                    expected: self.chunk_size,
                    actual: entry.mask.len(),
                });
            }
            entry.mask.validate()?;
            if entry.value_ptr != consumed {
                return Err(TensorError::DirectoryGap {
                    chunk: idx,
                    expected_ptr: consumed,
                    found_ptr: entry.value_ptr,
                });
            }
            let needed = entry.value_ptr + entry.mask.count_ones();
            if needed > self.values.len() {
                return Err(TensorError::PointerOutOfBounds {
                    chunk: idx,
                    needed,
                    available: self.values.len(),
                });
            }
            for (i, &v) in self.values[entry.value_ptr..needed].iter().enumerate() {
                if v == 0.0 {
                    return Err(TensorError::ZeroPackedValue {
                        index: entry.value_ptr + i,
                    });
                }
                if !v.is_finite() {
                    return Err(TensorError::NonFiniteValue {
                        index: entry.value_ptr + i,
                    });
                }
            }
            consumed = needed;
        }
        if consumed != self.values.len() {
            return Err(TensorError::TrailingValues {
                consumed,
                total: self.values.len(),
            });
        }
        Ok(())
    }

    /// Fault hook: flips bit `bit` of directory entry `entry`'s mask.
    ///
    /// Any single-bit flip desynchronizes the mask popcount from the
    /// packed value count, so [`SparseTensor3::validate`] is guaranteed
    /// to reject the tensor afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `entry` or `bit` is out of range.
    pub fn flip_mask_bit(&mut self, entry: usize, bit: usize) {
        let e = &mut self.directory.entries_mut()[entry];
        let cur = e.mask.get(bit);
        e.mask.set(bit, !cur);
    }

    /// Fault hook: overwrites packed value `index` with `value`
    /// (e.g. `0.0` or NaN to model a corrupted word).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn corrupt_value(&mut self, index: usize, value: f32) {
        self.values[index] = value;
    }

    /// Fault hook: truncates the packed value store to `keep` values,
    /// leaving directory pointers past the end dangling.
    pub fn truncate_values(&mut self, keep: usize) {
        self.values.truncate(keep);
    }

    /// Decodes back to a dense tensor.
    pub fn to_dense(&self) -> Tensor3 {
        let mut out = Tensor3::zeros(self.channels, self.height, self.width);
        for y in 0..self.width {
            for x in 0..self.height {
                for c in 0..self.chunks_per_fiber {
                    let chunk = self.fiber_chunk(x, y, c);
                    for (i, pos) in chunk.mask().iter_ones().enumerate() {
                        let z = c * self.chunk_size + pos;
                        if z < self.channels {
                            out.set(z, x, y, chunk.values()[i]);
                        }
                    }
                }
            }
        }
        out
    }

    /// Storage bits: directory (mask + pointer per chunk) plus packed
    /// values — the real encoding size behind the §3.1 formulas.
    pub fn storage_bits(&self, value_bits: usize, ptr_bits: usize) -> usize {
        self.directory.storage_bits(self.chunk_size, ptr_bits) + self.nnz() * value_bits
    }

    /// Density over the *logical* (unpadded) cells.
    pub fn density(&self) -> f64 {
        let cells = self.channels * self.height * self.width;
        if cells == 0 {
            0.0
        } else {
            self.nnz() as f64 / cells as f64
        }
    }
}

impl PartialEq for SparseTensor3 {
    fn eq(&self, other: &Self) -> bool {
        self.channels == other.channels
            && self.height == other.height
            && self.width == other.width
            && self.chunk_size == other.chunk_size
            && self.values == other.values
            && self
                .directory
                .entries()
                .iter()
                .zip(other.directory.entries())
                .all(|(a, b)| a.mask == b.mask && a.value_ptr == b.value_ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(d: usize, h: usize, w: usize) -> Tensor3 {
        let mut t = Tensor3::zeros(d, h, w);
        for (i, v) in t.as_mut_slice().iter_mut().enumerate() {
            if i % 3 == 0 {
                *v = (i % 17) as f32 + 1.0;
            }
        }
        t
    }

    #[test]
    fn roundtrip_exact() {
        let dense = sample(5, 3, 4);
        let sparse = SparseTensor3::from_dense(&dense, 4);
        assert_eq!(sparse.to_dense(), dense);
        assert_eq!(sparse.nnz(), dense.nnz());
    }

    #[test]
    fn fiber_chunks_align_with_dense_fibers() {
        let dense = sample(6, 3, 3);
        let sparse = SparseTensor3::from_dense(&dense, 4);
        assert_eq!(sparse.chunks_per_fiber(), 2);
        for y in 0..3 {
            for x in 0..3 {
                let fiber = dense.fiber(x, y);
                let c0 = sparse.fiber_chunk(x, y, 0).to_dense();
                let c1 = sparse.fiber_chunk(x, y, 1).to_dense();
                assert_eq!(&c0[..], &fiber[..4]);
                assert_eq!(&c1[..2], &fiber[4..]);
                assert_eq!(&c1[2..], &[0.0, 0.0]);
            }
        }
    }

    #[test]
    fn directory_has_one_entry_per_chunk() {
        let dense = sample(130, 2, 2);
        let sparse = SparseTensor3::from_dense(&dense, 128);
        assert_eq!(sparse.chunks_per_fiber(), 2);
        assert_eq!(sparse.directory().len(), 2 * 2 * 2);
    }

    #[test]
    fn storage_counts_masks_pointers_values() {
        let dense = sample(4, 2, 2);
        let sparse = SparseTensor3::from_dense(&dense, 4);
        // 4 chunks × (4-bit mask + 32-bit ptr) + nnz × 8.
        let expect = 4 * (4 + 32) + sparse.nnz() * 8;
        assert_eq!(sparse.storage_bits(8, 32), expect);
    }

    #[test]
    fn density_uses_logical_cells() {
        let mut dense = Tensor3::zeros(3, 2, 2);
        dense.set(0, 0, 0, 1.0);
        dense.set(1, 1, 1, 1.0);
        let sparse = SparseTensor3::from_dense(&dense, 128);
        assert!((sparse.density() - 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_tensor() {
        let sparse = SparseTensor3::from_dense(&Tensor3::zeros(4, 2, 2), 4);
        assert_eq!(sparse.nnz(), 0);
        assert_eq!(sparse.to_dense(), Tensor3::zeros(4, 2, 2));
    }

    #[test]
    fn validate_accepts_clean_tensors() {
        let sparse = SparseTensor3::from_dense(&sample(6, 3, 3), 4);
        assert_eq!(sparse.validate(), Ok(()));
        assert_eq!(SparseTensor3::from_dense(&Tensor3::zeros(4, 2, 2), 4).validate(), Ok(()));
    }

    #[test]
    fn any_mask_bit_flip_is_detected() {
        use crate::error::TensorError;
        let clean = SparseTensor3::from_dense(&sample(6, 2, 2), 4);
        for entry in 0..clean.directory().len() {
            for bit in 0..4 {
                let mut t = clean.clone();
                t.flip_mask_bit(entry, bit);
                let err = t.validate().unwrap_err();
                assert!(
                    matches!(
                        err,
                        TensorError::DirectoryGap { .. }
                            | TensorError::PointerOutOfBounds { .. }
                            | TensorError::TrailingValues { .. }
                            | TensorError::ZeroPackedValue { .. }
                    ),
                    "flip of entry {entry} bit {bit} must be detected, got {err:?}"
                );
            }
        }
    }

    #[test]
    fn value_corruption_and_truncation_are_detected() {
        use crate::error::TensorError;
        let clean = SparseTensor3::from_dense(&sample(6, 2, 2), 4);
        assert!(clean.nnz() > 1);

        let mut zeroed = clean.clone();
        zeroed.corrupt_value(0, 0.0);
        assert!(matches!(zeroed.validate(), Err(TensorError::ZeroPackedValue { index: 0 })));

        let mut nan = clean.clone();
        nan.corrupt_value(1, f32::NAN);
        assert!(matches!(nan.validate(), Err(TensorError::NonFiniteValue { index: 1 })));

        let mut cut = clean.clone();
        cut.truncate_values(clean.nnz() - 1);
        assert!(matches!(
            cut.validate(),
            Err(TensorError::PointerOutOfBounds { .. }) | Err(TensorError::TrailingValues { .. })
        ));
    }

    #[test]
    fn try_fiber_chunk_matches_fiber_chunk_when_clean() {
        let sparse = SparseTensor3::from_dense(&sample(6, 2, 2), 4);
        for x in 0..2 {
            for y in 0..2 {
                for c in 0..sparse.chunks_per_fiber() {
                    assert_eq!(sparse.try_fiber_chunk(x, y, c).unwrap(), sparse.fiber_chunk(x, y, c));
                }
            }
        }
    }

    #[test]
    fn try_fiber_chunk_reports_dangling_pointer() {
        use crate::error::TensorError;
        let mut sparse = SparseTensor3::from_dense(&sample(6, 2, 2), 4);
        sparse.truncate_values(0);
        let mut saw_err = false;
        for x in 0..2 {
            for y in 0..2 {
                for c in 0..sparse.chunks_per_fiber() {
                    if let Err(e) = sparse.try_fiber_chunk(x, y, c) {
                        assert!(matches!(e, TensorError::PointerOutOfBounds { .. }));
                        saw_err = true;
                    }
                }
            }
        }
        assert!(saw_err);
    }
}
