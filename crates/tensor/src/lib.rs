#![warn(missing_docs)]

//! Sparse tensor substrate for the SparTen accelerator reproduction.
//!
//! SparTen ("SparTen: A Sparse Tensor Accelerator for Convolutional Neural
//! Networks", MICRO 2019) stores sparse tensors as a *bit-mask* two-tuple:
//! an n-bit mask called a [`SparseMap`] with 1s at non-zero positions, plus
//! the packed non-zero values. Tensors are broken into fixed-size *chunks*
//! (n = 128 in the paper) so a chunk is a [`SparseChunk`] and a logical
//! vector is a [`SparseVector`] of chunks.
//!
//! This crate provides:
//!
//! * [`SparseMap`] — the bit mask with the operations the SparTen datapath
//!   needs (AND, population count, prefix count);
//! * [`SparseChunk`] / [`SparseVector`] — chunked bit-mask tensors with
//!   exact sparse dot products (the *inner join* of the paper's §3.1);
//! * [`Tensor3`] — dense 3-D tensors in the paper's Z-first (Z, X, Y) layout;
//! * [`csr`] / [`rle`] — the pointer-based formats (HPC's CSR/CSC and
//!   zero-run-length encoding) SparTen is compared against;
//! * [`size`] — the representation-size analysis of §3.1 (bit-mask vs
//!   pointer crossover at `f < 1/log2(n)`);
//! * [`layout`] — the memory layout of §3.1: per-chunk `(SparseMap, ptr)`
//!   directories and the per-cluster output-region allocator with
//!   average-case padding and a watermark-based fallback.
//!
//! # Example
//!
//! ```
//! use sparten_tensor::{SparseVector, CHUNK_SIZE};
//!
//! let a = SparseVector::from_dense(&[0.0, 2.0, 0.0, 3.0], CHUNK_SIZE);
//! let b = SparseVector::from_dense(&[1.0, 4.0, 5.0, 0.0], CHUNK_SIZE);
//! // Inner join: only position 1 is non-zero in both.
//! assert_eq!(a.dot(&b), 8.0);
//! ```

pub mod chunk;
pub mod convert;
pub mod error;
pub mod csc;
pub mod csr;
pub mod dense;
pub mod layout;
pub mod mask;
pub mod prng;
pub mod rle;
pub mod size;
pub mod sparse3;
pub mod vector;

pub use chunk::SparseChunk;
pub use convert::FormattedImage;
pub use csc::CscMatrix;
pub use csr::{CsrMatrix, IndexVector};
pub use dense::Tensor3;
pub use error::TensorError;
pub use layout::{ChunkDirectory, ClusterRegion, RegionAllocator};
pub use mask::SparseMap;
pub use prng::Rng64;
pub use rle::RleVector;
pub use sparse3::SparseTensor3;
pub use vector::SparseVector;

/// The chunk size used throughout the paper: 128 positions per chunk.
pub const CHUNK_SIZE: usize = 128;
