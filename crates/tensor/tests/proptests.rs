//! Property-based tests over the sparse-tensor substrate: every format
//! round-trips, every dot product agrees with the dense reference, and the
//! storage formulas match concrete encodings.

use proptest::prelude::*;
use sparten_tensor::size::{bitmask_bits, pointer_bits};
use sparten_tensor::{
    CscMatrix, CsrMatrix, IndexVector, RleVector, SparseChunk, SparseMap, SparseVector,
};

/// A sparse value vector with mixed densities.
fn sparse_values(max_len: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        prop_oneof![
            3 => Just(0.0f32),
            2 => (-100i32..100).prop_map(|v| v as f32 / 4.0),
        ],
        1..max_len,
    )
}

fn dense_dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

proptest! {
    #[test]
    fn sparse_vector_roundtrips(dense in sparse_values(300), chunk in 1usize..70) {
        let v = SparseVector::from_dense(&dense, chunk);
        prop_assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn chunk_roundtrips_and_counts(dense in sparse_values(200)) {
        let c = SparseChunk::from_dense(&dense);
        prop_assert_eq!(c.to_dense(), dense.clone());
        prop_assert_eq!(c.nnz(), dense.iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn rle_roundtrips(dense in sparse_values(300), run_bits in 1u32..8) {
        let v = RleVector::from_dense(&dense, run_bits);
        prop_assert_eq!(v.to_dense(), dense.clone());
        prop_assert_eq!(v.nnz(), dense.iter().filter(|&&v| v != 0.0).count());
    }

    #[test]
    fn index_vector_roundtrips(dense in sparse_values(300)) {
        let v = IndexVector::from_dense(&dense);
        prop_assert_eq!(v.to_dense(), dense);
    }

    #[test]
    fn all_dot_products_agree(
        pair in sparse_values(256).prop_flat_map(|a| {
            let n = a.len();
            (Just(a), sparse_values(n + 1).prop_map(move |mut b| {
                b.resize(n, 0.0);
                b
            }))
        }),
        chunk in 1usize..40,
    ) {
        let (a, b) = pair;
        let expect = dense_dot(&a, &b);
        let sv = SparseVector::from_dense(&a, chunk).dot(&SparseVector::from_dense(&b, chunk));
        let iv = IndexVector::from_dense(&a).dot(&IndexVector::from_dense(&b));
        prop_assert!((sv - expect).abs() < 1e-2, "bitmask {} vs dense {}", sv, expect);
        prop_assert!((iv - expect).abs() < 1e-2, "pointer {} vs dense {}", iv, expect);
    }

    #[test]
    fn join_work_counts_both_nonzero_pairs(
        pair in sparse_values(256).prop_flat_map(|a| {
            let n = a.len();
            (Just(a), sparse_values(n + 1).prop_map(move |mut b| {
                b.resize(n, 0.0);
                b
            }))
        }),
    ) {
        let (a, b) = pair;
        let expect = a.iter().zip(&b).filter(|(x, y)| **x != 0.0 && **y != 0.0).count();
        let got = SparseVector::from_dense(&a, 32).join_work(&SparseVector::from_dense(&b, 32));
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn prefix_count_equals_iter_count(bits in prop::collection::vec(any::<bool>(), 1..300), pos_frac in 0.0f64..1.0) {
        let m = SparseMap::from_bools(&bits);
        let pos = ((bits.len() as f64) * pos_frac) as usize;
        let expect = m.iter_ones().take_while(|&p| p < pos).count();
        prop_assert_eq!(m.prefix_count(pos), expect);
    }

    #[test]
    fn mask_and_is_intersection(
        a in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let b: Vec<bool> = a.iter().map(|&x| !x).collect();
        let ma = SparseMap::from_bools(&a);
        let mb = SparseMap::from_bools(&b);
        prop_assert_eq!(ma.and(&mb).count_ones(), 0);
        prop_assert_eq!(ma.or(&mb).count_ones(), a.len());
    }

    #[test]
    fn storage_formulas_match_encodings(period in 2usize..64) {
        let n = 4096usize;
        let dense: Vec<f32> = (0..n).map(|i| if i % period == 0 { 1.0 } else { 0.0 }).collect();
        let f = dense.iter().filter(|&&v| v != 0.0).count() as f64 / n as f64;
        let bitmask = SparseVector::from_dense(&dense, n);
        let pointer = IndexVector::from_dense(&dense);
        prop_assert_eq!(bitmask.storage_bits(8) as f64, bitmask_bits(n, f, 8));
        prop_assert_eq!(pointer.storage_bits(8) as f64, pointer_bits(n, f, 8));
    }

    #[test]
    fn csr_and_csc_spmv_agree(
        rows in prop::collection::vec(sparse_values(24).prop_map(|mut r| { r.resize(24, 0.0); r }), 1..12),
        x in sparse_values(25).prop_map(|mut v| { v.resize(24, 0.0); v }),
    ) {
        let csr = CsrMatrix::from_rows(&rows);
        let csc = CscMatrix::from_rows(&rows);
        let xi = IndexVector::from_dense(&x);
        let y_csr = csr.spmv(&xi);
        let (y_csc, _macs) = csc.spmv_one_sided(&xi);
        for (a, b) in y_csr.iter().zip(&y_csc) {
            prop_assert!((a - b).abs() < 1e-2, "csr {} vs csc {}", a, b);
        }
    }

    #[test]
    fn csc_one_sided_macs_bounded_by_nnz(
        rows in prop::collection::vec(sparse_values(16).prop_map(|mut r| { r.resize(16, 0.0); r }), 1..8),
        x in sparse_values(17).prop_map(|mut v| { v.resize(16, 0.0); v }),
    ) {
        let csc = CscMatrix::from_rows(&rows);
        let xi = IndexVector::from_dense(&x);
        let (_, macs) = csc.spmv_one_sided(&xi);
        prop_assert!(macs <= csc.nnz());
    }
}
