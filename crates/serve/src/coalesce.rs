//! Request coalescing and admission control, as one gate.
//!
//! The two concerns share a single lock on purpose. If coalescing and
//! admission were separate structures, a request could join an in-flight
//! run at the exact moment that run's admission was rejected — stranding
//! the follower forever. Here every request makes one atomic decision in
//! [`Gate::enter`]:
//!
//! * the key is already in flight → **follow** it (always admitted —
//!   a follower adds no executor load, only a subscriber channel);
//! * the key is new and the admission budget (`max_active + max_queued`
//!   runs) has room → **run** it, holding a [`RunPermit`];
//! * the key is new and the budget is full → **saturated**, reported to
//!   the client as 429 + `Retry-After`. No entry is created, so nobody
//!   can coalesce onto work that will never start.
//!
//! An admitted runner then blocks in [`RunPermit::wait_for_slot`] until
//! one of the `max_active` execution slots frees — a bounded FIFO-by-
//! condvar queue, which is what makes "zero dropped accepted requests"
//! hold: once `enter` says run, the run *will* execute (or every waiter
//! is notified of its failure via the permit's drop guard).

use crate::{JobOutput, PointSource};
use sparten_telemetry::CancelToken;
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// One progress or completion event, broadcast to every subscriber of a
/// coalesced run.
#[derive(Debug, Clone)]
pub enum Event {
    /// One sweep point finished; `done` of `total` points are complete.
    Point {
        /// Index of the point that finished.
        point: usize,
        /// Points complete so far (monotonic under the broadcast lock).
        done: usize,
        /// Total points in the job.
        total: usize,
        /// Whether the point was computed or served from the cache.
        source: PointSource,
    },
    /// The run finished; shared so a large output is not cloned per
    /// follower.
    Done(Arc<Result<JobOutput, String>>),
}

/// The gate's verdict for one request.
pub enum Ticket {
    /// Caller owns the execution: spawn the run, then stream `rx` (the
    /// runner subscribes to its own broadcast, so runner and followers
    /// observe identical event sequences).
    Runner(RunPermit, Receiver<Event>),
    /// An identical run is in flight; stream its events from `rx`. The
    /// second field is the runner's `(trace_id, span_id)` (when the
    /// runner was traced), so the follower's own trace can link to the
    /// execution it joined.
    Follower(Receiver<Event>, Option<(u64, u64)>),
    /// The admission budget is full; answer 429.
    Saturated,
}

struct Inflight {
    subscribers: Vec<Sender<Event>>,
    points_done: usize,
    /// The admitted runner's `(trace_id, span_id)`, handed to followers.
    runner_trace: Option<(u64, u64)>,
    /// The run's cancellation token: fired by the gate when the last
    /// subscriber disconnects, so a run nobody is watching stops at its
    /// next cooperative checkpoint instead of burning an executor slot.
    cancel: CancelToken,
}

struct State {
    inflight: HashMap<u64, Inflight>,
    /// Admitted runs: in flight entries that consume admission budget
    /// (equal to `inflight.len()` today, tracked separately for clarity
    /// against the active count).
    admitted: usize,
    /// Runs currently holding an execution slot.
    active: usize,
}

/// The combined coalescer + admission gate. See the module docs for the
/// decision table.
pub struct Gate {
    state: Mutex<State>,
    slot_free: Condvar,
    max_active: usize,
    max_queued: usize,
}

impl Gate {
    /// A gate running at most `max_active` executions with at most
    /// `max_queued` more admitted and waiting. Both are clamped to ≥ 1
    /// active so the gate can always make progress.
    pub fn new(max_active: usize, max_queued: usize) -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(State {
                inflight: HashMap::new(),
                admitted: 0,
                active: 0,
            }),
            slot_free: Condvar::new(),
            max_active: max_active.max(1),
            max_queued,
        })
    }

    /// Recover from a poisoned lock rather than cascading the panic: the
    /// gate's counters are adjusted atomically under the lock (never left
    /// half-updated across a call into user code), so the state is always
    /// safe to keep reading — and a panicking runner must not wedge every
    /// later request behind a dead mutex.
    fn locked(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Makes the atomic run / follow / reject decision for `key`.
    /// `trace` is the requester's `(trace_id, span_id)`; a runner's is
    /// remembered on the in-flight entry so later followers can link
    /// their spans to the execution they joined. The gate itself never
    /// interprets the ids — they are opaque correlation material.
    /// `cancel` is the token a runner's execution polls; the gate fires
    /// it when the run's last subscriber disconnects (followers ignore
    /// the argument — they ride the runner's token).
    pub fn enter(self: &Arc<Gate>, key: u64, trace: Option<(u64, u64)>, cancel: CancelToken) -> Ticket {
        let mut state = self.locked();
        if let Some(entry) = state.inflight.get_mut(&key) {
            let (tx, rx) = channel();
            entry.subscribers.push(tx);
            return Ticket::Follower(rx, entry.runner_trace);
        }
        if state.admitted >= self.max_active + self.max_queued {
            return Ticket::Saturated;
        }
        let (tx, rx) = channel();
        state.inflight.insert(
            key,
            Inflight {
                subscribers: vec![tx],
                points_done: 0,
                runner_trace: trace,
                cancel: cancel.clone(),
            },
        );
        state.admitted += 1;
        Ticket::Runner(
            RunPermit {
                gate: Arc::clone(self),
                key,
                cancel,
                finished: false,
                holds_slot: Cell::new(false),
            },
            rx,
        )
    }

    /// Broadcasts a finished point for `key` to every subscriber,
    /// assigning the monotonic `done` count under the lock. When the
    /// broadcast discovers every subscriber has hung up, the run's cancel
    /// token fires: nobody is left to receive the result, so the runner
    /// should stop at its next checkpoint.
    pub fn point_done(&self, key: u64, point: usize, total: usize, source: PointSource) {
        let mut state = self.locked();
        if let Some(entry) = state.inflight.get_mut(&key) {
            entry.points_done += 1;
            let event = Event::Point {
                point,
                done: entry.points_done,
                total,
                source,
            };
            // A dropped receiver (client hung up) just fails the send.
            entry
                .subscribers
                .retain(|tx| tx.send(event.clone()).is_ok());
            if entry.subscribers.is_empty() {
                entry.cancel.cancel();
            }
        }
    }

    /// Number of runs currently holding an execution slot (test hook).
    pub fn active(&self) -> usize {
        self.locked().active
    }

    /// Number of admitted runs still holding budget — the chaos campaign's
    /// leaked-permit invariant: this must return to 0 after a drain.
    pub fn admitted(&self) -> usize {
        self.locked().admitted
    }

    fn finish(&self, key: u64, result: Arc<Result<JobOutput, String>>, held_slot: bool) {
        let mut state = self.locked();
        if let Some(entry) = state.inflight.remove(&key) {
            for tx in entry.subscribers {
                let _ = tx.send(Event::Done(Arc::clone(&result)));
            }
        }
        state.admitted -= 1;
        if held_slot {
            state.active -= 1;
        }
        drop(state);
        self.slot_free.notify_all();
    }
}

/// Proof that a request was admitted as the runner for its key. The
/// holder must call [`wait_for_slot`](RunPermit::wait_for_slot), execute,
/// and then [`finish`](RunPermit::finish); if it is dropped early (runner
/// thread panicked), the drop guard fails the run so followers are never
/// stranded waiting on a ghost.
pub struct RunPermit {
    gate: Arc<Gate>,
    key: u64,
    cancel: CancelToken,
    finished: bool,
    /// Whether `wait_for_slot` claimed an execution slot; release paths
    /// (finish and the drop guard) only decrement `active` when it did.
    holds_slot: Cell<bool>,
}

/// Outcome of [`RunPermit::wait_for_slot`]: either the slot was claimed,
/// or the wait outlived the request deadline and no slot is held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotWait {
    /// A slot was claimed after `waited_us` microseconds in the queue.
    Granted {
        /// Microseconds spent queued.
        waited_us: u64,
    },
    /// The deadline passed while queued; the permit holds no slot and
    /// should be finished with an error (queue-wait-exceeded → 503).
    DeadlineExpired {
        /// Microseconds spent queued before giving up.
        waited_us: u64,
    },
}

impl RunPermit {
    /// The key this permit runs.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// The run's cancellation token (fires on last-subscriber-gone; the
    /// caller may have attached a deadline before `enter`).
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// Blocks until an execution slot is free, then claims it — but never
    /// past `deadline`. The wait is a `wait_timeout` loop, so a queued
    /// waiter with a deadline can never block forever; without one the
    /// wait re-arms in bounded ticks (semantically unbounded, used only
    /// by callers that impose no budget, e.g. unit tests).
    pub fn wait_for_slot(&self, deadline: Option<Instant>) -> SlotWait {
        let started = Instant::now();
        let waited_us = |s: Instant| s.elapsed().as_micros() as u64;
        let mut state = self.gate.locked();
        while state.active >= self.gate.max_active {
            let timeout = match deadline {
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return SlotWait::DeadlineExpired { waited_us: waited_us(started) };
                    }
                    d - now
                }
                None => Duration::from_secs(1),
            };
            let (guard, _) = self
                .gate
                .slot_free
                .wait_timeout(state, timeout)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
        state.active += 1;
        self.holds_slot.set(true);
        SlotWait::Granted { waited_us: waited_us(started) }
    }

    /// Reports a finished point to every subscriber of this run.
    pub fn point_done(&self, point: usize, total: usize, source: PointSource) {
        self.gate.point_done(self.key, point, total, source);
    }

    /// Completes the run: broadcasts `Done` to all subscribers, frees the
    /// execution slot (when one was claimed — a queue-wait timeout never
    /// claims one), and releases the admission budget.
    pub fn finish(mut self, result: Result<JobOutput, String>) {
        self.finished = true;
        self.gate
            .finish(self.key, Arc::new(result), self.holds_slot.get());
    }
}

impl Drop for RunPermit {
    fn drop(&mut self) {
        if !self.finished {
            // Runner died without finishing (panic between enter and
            // finish). The permit knows whether it claimed a slot, so the
            // guard releases exactly what was held and followers are
            // notified either way.
            self.gate.finish(
                self.key,
                Arc::new(Err("runner aborted before completing".to_string())),
                self.holds_slot.get(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    fn output(text: &str) -> JobOutput {
        JobOutput {
            text: text.to_string(),
            artifacts: Vec::new(),
        }
    }

    #[test]
    fn duplicate_keys_coalesce_onto_one_runner() {
        let gate = Gate::new(2, 2);
        let Ticket::Runner(permit, runner_rx) = gate.enter(42, Some((7, 8)), CancelToken::new()) else {
            panic!("first entrant must run");
        };
        let Ticket::Follower(follower_rx, runner_trace) = gate.enter(42, Some((7, 99)), CancelToken::new()) else {
            panic!("second entrant must follow");
        };
        // The follower learns the *runner's* trace, not its own.
        assert_eq!(runner_trace, Some((7, 8)));
        permit.wait_for_slot(None);
        permit.point_done(0, 1, PointSource::Computed);
        permit.finish(Ok(output("result")));
        for rx in [runner_rx, follower_rx] {
            let events: Vec<Event> = rx.iter().collect();
            assert_eq!(events.len(), 2, "point + done");
            assert!(matches!(
                events[0],
                Event::Point { point: 0, done: 1, total: 1, .. }
            ));
            let Event::Done(result) = &events[1] else {
                panic!("last event must be Done");
            };
            assert_eq!(result.as_ref().as_ref().unwrap().text, "result");
        }
        // The key is free again: the next entrant is a fresh runner.
        assert!(matches!(gate.enter(42, None, CancelToken::new()), Ticket::Runner(..)));
    }

    #[test]
    fn new_keys_beyond_the_budget_are_saturated_but_followers_never_are() {
        let gate = Gate::new(1, 1);
        let Ticket::Runner(a, _rx_a) = gate.enter(1, None, CancelToken::new()) else { panic!() };
        let Ticket::Runner(b, _rx_b) = gate.enter(2, None, CancelToken::new()) else { panic!() };
        // Budget (1 active + 1 queued) is spent: a third key bounces...
        assert!(matches!(gate.enter(3, None, CancelToken::new()), Ticket::Saturated));
        // ...but joining either in-flight key is still free.
        assert!(matches!(gate.enter(1, None, CancelToken::new()), Ticket::Follower(..)));
        assert!(matches!(gate.enter(2, None, CancelToken::new()), Ticket::Follower(..)));
        a.wait_for_slot(None);
        a.finish(Ok(output("a")));
        b.wait_for_slot(None);
        b.finish(Ok(output("b")));
        // Budget released.
        assert!(matches!(gate.enter(3, None, CancelToken::new()), Ticket::Runner(..)));
    }

    #[test]
    fn slots_serialize_execution_to_max_active() {
        let gate = Gate::new(1, 4);
        let Ticket::Runner(first, _rx1) = gate.enter(10, None, CancelToken::new()) else { panic!() };
        let Ticket::Runner(second, rx2) = gate.enter(11, None, CancelToken::new()) else { panic!() };
        first.wait_for_slot(None);
        assert_eq!(gate.active(), 1);
        let waiter = thread::spawn(move || {
            second.wait_for_slot(None);
            second.finish(Ok(output("second")));
        });
        // The queued runner cannot take a slot while the first holds it.
        thread::sleep(Duration::from_millis(30));
        assert_eq!(gate.active(), 1);
        first.finish(Ok(output("first")));
        waiter.join().unwrap();
        let Event::Done(result) = rx2.iter().last().unwrap() else {
            panic!("second run must complete");
        };
        assert_eq!(result.as_ref().as_ref().unwrap().text, "second");
    }

    #[test]
    fn dropped_permit_fails_followers_instead_of_stranding_them() {
        let gate = Gate::new(1, 0);
        let Ticket::Runner(permit, _rx) = gate.enter(7, Some((1, 2)), CancelToken::new()) else { panic!() };
        let Ticket::Follower(rx, runner_trace) = gate.enter(7, None, CancelToken::new()) else { panic!() };
        assert_eq!(runner_trace, Some((1, 2)));
        drop(permit); // simulated runner panic
        let Event::Done(result) = rx.recv().unwrap() else {
            panic!("follower must be notified");
        };
        assert!(result.as_ref().as_ref().unwrap_err().contains("aborted"));
        // Budget was released despite the abort.
        assert!(matches!(gate.enter(8, None, CancelToken::new()), Ticket::Runner(..)));
    }

    #[test]
    fn queue_wait_gives_up_at_the_deadline_without_claiming_a_slot() {
        let gate = Gate::new(1, 4);
        let Ticket::Runner(first, _rx1) = gate.enter(20, None, CancelToken::new()) else { panic!() };
        let Ticket::Runner(second, _rx2) = gate.enter(21, None, CancelToken::new()) else { panic!() };
        assert!(matches!(first.wait_for_slot(None), SlotWait::Granted { .. }));
        // The only slot is taken; an already-expired deadline bails out
        // immediately and the slot count is untouched.
        let expired = Instant::now() - Duration::from_millis(1);
        assert!(matches!(
            second.wait_for_slot(Some(expired)),
            SlotWait::DeadlineExpired { .. }
        ));
        assert_eq!(gate.active(), 1);
        // A short live deadline also expires (the slot never frees)...
        let soon = Instant::now() + Duration::from_millis(30);
        assert!(matches!(
            second.wait_for_slot(Some(soon)),
            SlotWait::DeadlineExpired { .. }
        ));
        // ...and finishing the timed-out permit releases its admission
        // budget without touching the active count.
        second.finish(Err("queue-wait-exceeded".to_string()));
        assert_eq!(gate.active(), 1);
        assert_eq!(gate.admitted(), 1);
        first.finish(Ok(output("first")));
        assert_eq!(gate.active(), 0);
        assert_eq!(gate.admitted(), 0);
    }

    #[test]
    fn last_subscriber_gone_fires_the_cancel_token() {
        let gate = Gate::new(2, 2);
        let token = CancelToken::new();
        let Ticket::Runner(permit, runner_rx) = gate.enter(30, None, token.clone()) else {
            panic!()
        };
        let Ticket::Follower(follower_rx, _) = gate.enter(30, None, CancelToken::new()) else {
            panic!()
        };
        permit.wait_for_slot(None);
        permit.point_done(0, 3, PointSource::Computed);
        assert!(!token.is_cancelled(), "live subscribers keep the run alive");
        // The runner's own stream hangs up; the follower still listens.
        drop(runner_rx);
        permit.point_done(1, 3, PointSource::Computed);
        assert!(!token.is_cancelled(), "one live follower is enough");
        // The last subscriber disconnects: the next broadcast finds
        // nobody home and fires the token.
        drop(follower_rx);
        permit.point_done(2, 3, PointSource::Computed);
        assert!(token.is_cancelled());
        assert!(permit.cancel_token().is_cancelled());
        permit.finish(Err("cancelled".to_string()));
        assert_eq!(gate.admitted(), 0);
        assert_eq!(gate.active(), 0);
    }
}
