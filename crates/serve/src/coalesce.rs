//! Request coalescing and admission control, as one gate.
//!
//! The two concerns share a single lock on purpose. If coalescing and
//! admission were separate structures, a request could join an in-flight
//! run at the exact moment that run's admission was rejected — stranding
//! the follower forever. Here every request makes one atomic decision in
//! [`Gate::enter`]:
//!
//! * the key is already in flight → **follow** it (always admitted —
//!   a follower adds no executor load, only a subscriber channel);
//! * the key is new and the admission budget (`max_active + max_queued`
//!   runs) has room → **run** it, holding a [`RunPermit`];
//! * the key is new and the budget is full → **saturated**, reported to
//!   the client as 429 + `Retry-After`. No entry is created, so nobody
//!   can coalesce onto work that will never start.
//!
//! An admitted runner then blocks in [`RunPermit::wait_for_slot`] until
//! one of the `max_active` execution slots frees — a bounded FIFO-by-
//! condvar queue, which is what makes "zero dropped accepted requests"
//! hold: once `enter` says run, the run *will* execute (or every waiter
//! is notified of its failure via the permit's drop guard).

use crate::{JobOutput, PointSource};
use std::collections::HashMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Condvar, Mutex};

/// One progress or completion event, broadcast to every subscriber of a
/// coalesced run.
#[derive(Debug, Clone)]
pub enum Event {
    /// One sweep point finished; `done` of `total` points are complete.
    Point {
        /// Index of the point that finished.
        point: usize,
        /// Points complete so far (monotonic under the broadcast lock).
        done: usize,
        /// Total points in the job.
        total: usize,
        /// Whether the point was computed or served from the cache.
        source: PointSource,
    },
    /// The run finished; shared so a large output is not cloned per
    /// follower.
    Done(Arc<Result<JobOutput, String>>),
}

/// The gate's verdict for one request.
pub enum Ticket {
    /// Caller owns the execution: spawn the run, then stream `rx` (the
    /// runner subscribes to its own broadcast, so runner and followers
    /// observe identical event sequences).
    Runner(RunPermit, Receiver<Event>),
    /// An identical run is in flight; stream its events from `rx`. The
    /// second field is the runner's `(trace_id, span_id)` (when the
    /// runner was traced), so the follower's own trace can link to the
    /// execution it joined.
    Follower(Receiver<Event>, Option<(u64, u64)>),
    /// The admission budget is full; answer 429.
    Saturated,
}

struct Inflight {
    subscribers: Vec<Sender<Event>>,
    points_done: usize,
    /// The admitted runner's `(trace_id, span_id)`, handed to followers.
    runner_trace: Option<(u64, u64)>,
}

struct State {
    inflight: HashMap<u64, Inflight>,
    /// Admitted runs: in flight entries that consume admission budget
    /// (equal to `inflight.len()` today, tracked separately for clarity
    /// against the active count).
    admitted: usize,
    /// Runs currently holding an execution slot.
    active: usize,
}

/// The combined coalescer + admission gate. See the module docs for the
/// decision table.
pub struct Gate {
    state: Mutex<State>,
    slot_free: Condvar,
    max_active: usize,
    max_queued: usize,
}

impl Gate {
    /// A gate running at most `max_active` executions with at most
    /// `max_queued` more admitted and waiting. Both are clamped to ≥ 1
    /// active so the gate can always make progress.
    pub fn new(max_active: usize, max_queued: usize) -> Arc<Gate> {
        Arc::new(Gate {
            state: Mutex::new(State {
                inflight: HashMap::new(),
                admitted: 0,
                active: 0,
            }),
            slot_free: Condvar::new(),
            max_active: max_active.max(1),
            max_queued,
        })
    }

    /// Makes the atomic run / follow / reject decision for `key`.
    /// `trace` is the requester's `(trace_id, span_id)`; a runner's is
    /// remembered on the in-flight entry so later followers can link
    /// their spans to the execution they joined. The gate itself never
    /// interprets the ids — they are opaque correlation material.
    pub fn enter(self: &Arc<Gate>, key: u64, trace: Option<(u64, u64)>) -> Ticket {
        let mut state = self.state.lock().unwrap();
        if let Some(entry) = state.inflight.get_mut(&key) {
            let (tx, rx) = channel();
            entry.subscribers.push(tx);
            return Ticket::Follower(rx, entry.runner_trace);
        }
        if state.admitted >= self.max_active + self.max_queued {
            return Ticket::Saturated;
        }
        let (tx, rx) = channel();
        state.inflight.insert(
            key,
            Inflight {
                subscribers: vec![tx],
                points_done: 0,
                runner_trace: trace,
            },
        );
        state.admitted += 1;
        Ticket::Runner(
            RunPermit {
                gate: Arc::clone(self),
                key,
                finished: false,
            },
            rx,
        )
    }

    /// Broadcasts a finished point for `key` to every subscriber,
    /// assigning the monotonic `done` count under the lock.
    pub fn point_done(&self, key: u64, point: usize, total: usize, source: PointSource) {
        let mut state = self.state.lock().unwrap();
        if let Some(entry) = state.inflight.get_mut(&key) {
            entry.points_done += 1;
            let event = Event::Point {
                point,
                done: entry.points_done,
                total,
                source,
            };
            // A dropped receiver (client hung up) just fails the send.
            entry
                .subscribers
                .retain(|tx| tx.send(event.clone()).is_ok());
        }
    }

    /// Number of runs currently holding an execution slot (test hook).
    pub fn active(&self) -> usize {
        self.state.lock().unwrap().active
    }

    fn finish(&self, key: u64, result: Arc<Result<JobOutput, String>>, held_slot: bool) {
        let mut state = self.state.lock().unwrap();
        if let Some(entry) = state.inflight.remove(&key) {
            for tx in entry.subscribers {
                let _ = tx.send(Event::Done(Arc::clone(&result)));
            }
        }
        state.admitted -= 1;
        if held_slot {
            state.active -= 1;
        }
        drop(state);
        self.slot_free.notify_all();
    }
}

/// Proof that a request was admitted as the runner for its key. The
/// holder must call [`wait_for_slot`](RunPermit::wait_for_slot), execute,
/// and then [`finish`](RunPermit::finish); if it is dropped early (runner
/// thread panicked), the drop guard fails the run so followers are never
/// stranded waiting on a ghost.
pub struct RunPermit {
    gate: Arc<Gate>,
    key: u64,
    finished: bool,
}

impl RunPermit {
    /// The key this permit runs.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Blocks until an execution slot is free, then claims it. Returns
    /// the number of microseconds spent waiting.
    pub fn wait_for_slot(&self) -> u64 {
        let started = std::time::Instant::now();
        let mut state = self.gate.state.lock().unwrap();
        while state.active >= self.gate.max_active {
            state = self.gate.slot_free.wait(state).unwrap();
        }
        state.active += 1;
        started.elapsed().as_micros() as u64
    }

    /// Reports a finished point to every subscriber of this run.
    pub fn point_done(&self, point: usize, total: usize, source: PointSource) {
        self.gate.point_done(self.key, point, total, source);
    }

    /// Completes the run: broadcasts `Done` to all subscribers, frees the
    /// execution slot, and releases the admission budget.
    pub fn finish(mut self, result: Result<JobOutput, String>) {
        self.finished = true;
        self.gate.finish(self.key, Arc::new(result), true);
    }
}

impl Drop for RunPermit {
    fn drop(&mut self) {
        if !self.finished {
            // Runner died without finishing (panic between enter and
            // finish). Whether it held a slot is unknowable here, so the
            // guard assumes not — wait_for_slot + execute + finish is one
            // straight-line path in the server, and a panic before
            // wait_for_slot is the only survivable early exit.
            self.gate.finish(
                self.key,
                Arc::new(Err("runner aborted before completing".to_string())),
                false,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    fn output(text: &str) -> JobOutput {
        JobOutput {
            text: text.to_string(),
            artifacts: Vec::new(),
        }
    }

    #[test]
    fn duplicate_keys_coalesce_onto_one_runner() {
        let gate = Gate::new(2, 2);
        let Ticket::Runner(permit, runner_rx) = gate.enter(42, Some((7, 8))) else {
            panic!("first entrant must run");
        };
        let Ticket::Follower(follower_rx, runner_trace) = gate.enter(42, Some((7, 99))) else {
            panic!("second entrant must follow");
        };
        // The follower learns the *runner's* trace, not its own.
        assert_eq!(runner_trace, Some((7, 8)));
        permit.wait_for_slot();
        permit.point_done(0, 1, PointSource::Computed);
        permit.finish(Ok(output("result")));
        for rx in [runner_rx, follower_rx] {
            let events: Vec<Event> = rx.iter().collect();
            assert_eq!(events.len(), 2, "point + done");
            assert!(matches!(
                events[0],
                Event::Point { point: 0, done: 1, total: 1, .. }
            ));
            let Event::Done(result) = &events[1] else {
                panic!("last event must be Done");
            };
            assert_eq!(result.as_ref().as_ref().unwrap().text, "result");
        }
        // The key is free again: the next entrant is a fresh runner.
        assert!(matches!(gate.enter(42, None), Ticket::Runner(..)));
    }

    #[test]
    fn new_keys_beyond_the_budget_are_saturated_but_followers_never_are() {
        let gate = Gate::new(1, 1);
        let Ticket::Runner(a, _rx_a) = gate.enter(1, None) else { panic!() };
        let Ticket::Runner(b, _rx_b) = gate.enter(2, None) else { panic!() };
        // Budget (1 active + 1 queued) is spent: a third key bounces...
        assert!(matches!(gate.enter(3, None), Ticket::Saturated));
        // ...but joining either in-flight key is still free.
        assert!(matches!(gate.enter(1, None), Ticket::Follower(..)));
        assert!(matches!(gate.enter(2, None), Ticket::Follower(..)));
        a.wait_for_slot();
        a.finish(Ok(output("a")));
        b.wait_for_slot();
        b.finish(Ok(output("b")));
        // Budget released.
        assert!(matches!(gate.enter(3, None), Ticket::Runner(..)));
    }

    #[test]
    fn slots_serialize_execution_to_max_active() {
        let gate = Gate::new(1, 4);
        let Ticket::Runner(first, _rx1) = gate.enter(10, None) else { panic!() };
        let Ticket::Runner(second, rx2) = gate.enter(11, None) else { panic!() };
        first.wait_for_slot();
        assert_eq!(gate.active(), 1);
        let waiter = thread::spawn(move || {
            second.wait_for_slot();
            second.finish(Ok(output("second")));
        });
        // The queued runner cannot take a slot while the first holds it.
        thread::sleep(Duration::from_millis(30));
        assert_eq!(gate.active(), 1);
        first.finish(Ok(output("first")));
        waiter.join().unwrap();
        let Event::Done(result) = rx2.iter().last().unwrap() else {
            panic!("second run must complete");
        };
        assert_eq!(result.as_ref().as_ref().unwrap().text, "second");
    }

    #[test]
    fn dropped_permit_fails_followers_instead_of_stranding_them() {
        let gate = Gate::new(1, 0);
        let Ticket::Runner(permit, _rx) = gate.enter(7, Some((1, 2))) else { panic!() };
        let Ticket::Follower(rx, runner_trace) = gate.enter(7, None) else { panic!() };
        assert_eq!(runner_trace, Some((1, 2)));
        drop(permit); // simulated runner panic
        let Event::Done(result) = rx.recv().unwrap() else {
            panic!("follower must be notified");
        };
        assert!(result.as_ref().as_ref().unwrap_err().contains("aborted"));
        // Budget was released despite the abort.
        assert!(matches!(gate.enter(8, None), Ticket::Runner(..)));
    }
}
