//! A minimal blocking HTTP client for tests and benchmarks.
//!
//! Just enough protocol to drive the daemon from the same process:
//! one request per connection, `Content-Length` and chunked bodies
//! decoded. Not a general client — no redirects, no keep-alive, no TLS —
//! and deliberately independent of the server code so a codec bug cannot
//! cancel itself out in round-trip tests.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A fully-read response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked framing removed).
    pub body: String,
}

impl Response {
    /// First header value for `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find_map(|(k, v)| (*k == want).then_some(v.as_str()))
    }

    /// The body split into non-empty NDJSON lines.
    pub fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

fn read_line(reader: &mut impl BufRead) -> Result<String, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

/// Sends `method target` to `addr` and reads the whole response,
/// blocking until the server finishes the body (so a streamed `/run`
/// returns only once the run is done).
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: sparten-serve\r\nContent-Length: {}\r\n\
         Connection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("bad chunk size `{size_line}`"))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF after last chunk
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| format!("chunk read: {e}"))?;
            body.extend_from_slice(&chunk);
            let _ = read_line(&mut reader)?; // chunk's trailing CRLF
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body.resize(len, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("body read: {e}"))?;
    } else {
        reader
            .read_to_end(&mut body)
            .map_err(|e| format!("body read: {e}"))?;
    }
    Ok(Response {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}
