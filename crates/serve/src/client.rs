//! A minimal blocking HTTP client for tests and benchmarks.
//!
//! Just enough protocol to drive the daemon from the same process:
//! one request per connection, `Content-Length` and chunked bodies
//! decoded. Not a general client — no redirects, no keep-alive, no TLS —
//! and deliberately independent of the server code so a codec bug cannot
//! cancel itself out in round-trip tests.
//!
//! [`request_with`] adds the resilience layer: bounded retries with
//! seeded-jitter exponential backoff (honoring `Retry-After` on 429),
//! a configurable per-attempt read timeout, and an overall deadline that
//! is both enforced locally and propagated to the server as a
//! `Deadline-Ms` header so server-side queue time draws down the same
//! budget the client is counting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A fully-read response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code from the status line.
    pub status: u16,
    /// Header `(lowercased-name, value)` pairs.
    pub headers: Vec<(String, String)>,
    /// The decoded body (chunked framing removed).
    pub body: String,
}

impl Response {
    /// First header value for `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find_map(|(k, v)| (*k == want).then_some(v.as_str()))
    }

    /// The body split into non-empty NDJSON lines.
    pub fn lines(&self) -> Vec<&str> {
        self.body.lines().filter(|l| !l.is_empty()).collect()
    }
}

/// Per-request resilience knobs for [`request_with`].
#[derive(Debug, Clone)]
pub struct RequestOptions {
    /// Per-attempt socket read timeout (the old hardcoded 120 s).
    pub read_timeout: Duration,
    /// Extra attempts after the first (0 = never retry). Only 429
    /// responses and transport errors are retried; any other status is a
    /// definitive answer.
    pub retries: u32,
    /// Base backoff for attempt `n`: `backoff * 2^n` plus up to 50%
    /// seeded jitter, overridden by the server's `Retry-After` (seconds)
    /// when one is present on a 429.
    pub backoff: Duration,
    /// Overall budget across all attempts, enforced locally (no attempt
    /// starts past it) and sent to the server as `Deadline-Ms` computed
    /// from the *remaining* budget so queue time on the server counts
    /// against the same clock. `None` sends no header and retries are
    /// bounded only by `retries`.
    pub deadline: Option<Duration>,
    /// Seed for the backoff jitter, so a retry storm in a deterministic
    /// test is reproducible byte-for-byte.
    pub seed: u64,
}

impl Default for RequestOptions {
    fn default() -> Self {
        RequestOptions {
            read_timeout: Duration::from_secs(120),
            retries: 0,
            backoff: Duration::from_millis(100),
            deadline: None,
            seed: 0,
        }
    }
}

/// splitmix64 — same mixer as the fault plans; inlined so the client
/// keeps zero crate dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn read_line(reader: &mut impl BufRead) -> Result<String, String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read: {e}"))?;
    Ok(line.trim_end_matches(['\r', '\n']).to_string())
}

/// Sends `method target` to `addr` and reads the whole response,
/// blocking until the server finishes the body (so a streamed `/run`
/// returns only once the run is done). One attempt, default timeouts —
/// see [`request_with`] for retries and deadlines.
pub fn request(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
) -> Result<Response, String> {
    request_with(addr, method, target, body, &RequestOptions::default())
}

/// [`request`] with retries, backoff, and deadline propagation.
///
/// Retry policy: 429 (honoring its `Retry-After` seconds) and transport
/// errors are retried up to `opts.retries` times; every other status is
/// returned as-is. Re-submissions carry a `Retry-Attempt: n` header so
/// the server can count them. With a deadline set, each attempt sends
/// `Deadline-Ms` equal to the remaining budget, and the loop gives up
/// locally once the budget (minus the next backoff) is spent.
pub fn request_with(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
    opts: &RequestOptions,
) -> Result<Response, String> {
    let started = Instant::now();
    let overall = opts.deadline.map(|d| started + d);
    let mut last_err = String::new();
    for attempt in 0..=opts.retries {
        let remaining = match overall {
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    return Err(format!(
                        "deadline of {:?} exhausted after {} attempt(s): {last_err}",
                        opts.deadline.unwrap_or_default(),
                        attempt
                    ));
                }
                Some(deadline - now)
            }
            None => None,
        };
        let outcome = attempt_once(addr, method, target, body, opts, attempt, remaining);
        let retry_after = match outcome {
            Ok(response) if response.status == 429 && attempt < opts.retries => {
                let after = response
                    .header("retry-after")
                    .and_then(|v| v.parse::<u64>().ok())
                    .map(Duration::from_secs);
                last_err = "429 Too Many Requests".to_string();
                after
            }
            Ok(response) => return Ok(response),
            Err(e) if attempt < opts.retries => {
                last_err = e;
                None
            }
            Err(e) => return Err(e),
        };
        // Server-directed pacing wins; otherwise exponential backoff with
        // up to 50% seeded jitter so synchronized clients fan out.
        let pause = retry_after.unwrap_or_else(|| {
            let base = opts.backoff.saturating_mul(1u32 << attempt.min(16));
            let jitter = splitmix64(opts.seed ^ u64::from(attempt)) % 50;
            base + base.mul_f64(jitter as f64 / 100.0)
        });
        if let Some(deadline) = overall {
            if Instant::now() + pause >= deadline {
                return Err(format!(
                    "deadline of {:?} exhausted after {} attempt(s): {last_err}",
                    opts.deadline.unwrap_or_default(),
                    attempt + 1
                ));
            }
        }
        std::thread::sleep(pause);
    }
    Err(last_err)
}

/// One connection, one request, one fully-read response.
#[allow(clippy::too_many_arguments)]
fn attempt_once(
    addr: &str,
    method: &str,
    target: &str,
    body: Option<&str>,
    opts: &RequestOptions,
    attempt: u32,
    remaining: Option<Duration>,
) -> Result<Response, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let read_timeout = match remaining {
        Some(r) => opts.read_timeout.min(r.max(Duration::from_millis(1))),
        None => opts.read_timeout,
    };
    stream
        .set_read_timeout(Some(read_timeout))
        .map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let body = body.unwrap_or("");
    let mut extra = String::new();
    if let Some(r) = remaining {
        extra.push_str(&format!("Deadline-Ms: {}\r\n", r.as_millis().max(1)));
    }
    if attempt > 0 {
        extra.push_str(&format!("Retry-Attempt: {attempt}\r\n"));
    }
    write!(
        writer,
        "{method} {target} HTTP/1.1\r\nHost: sparten-serve\r\nContent-Length: {}\r\n\
         {extra}Connection: close\r\n\r\n{body}",
        body.len()
    )
    .map_err(|e| format!("send: {e}"))?;
    writer.flush().map_err(|e| e.to_string())?;

    let mut reader = BufReader::new(stream);
    let status_line = read_line(&mut reader)?;
    let status = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| format!("bad status line `{status_line}`"))?;
    let mut headers = Vec::new();
    loop {
        let line = read_line(&mut reader)?;
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
        }
    }
    let chunked = headers
        .iter()
        .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
    let mut body = Vec::new();
    if chunked {
        loop {
            let size_line = read_line(&mut reader)?;
            let size = usize::from_str_radix(size_line.trim(), 16)
                .map_err(|_| format!("bad chunk size `{size_line}`"))?;
            if size == 0 {
                let _ = read_line(&mut reader); // trailing CRLF after last chunk
                break;
            }
            let mut chunk = vec![0u8; size];
            reader
                .read_exact(&mut chunk)
                .map_err(|e| format!("chunk read: {e}"))?;
            body.extend_from_slice(&chunk);
            let _ = read_line(&mut reader)?; // chunk's trailing CRLF
        }
    } else if let Some(len) = headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok())
    {
        body.resize(len, 0);
        reader
            .read_exact(&mut body)
            .map_err(|e| format!("body read: {e}"))?;
    } else {
        reader
            .read_to_end(&mut body)
            .map_err(|e| format!("body read: {e}"))?;
    }
    Ok(Response {
        status,
        headers,
        body: String::from_utf8_lossy(&body).into_owned(),
    })
}
