//! The serve daemon: listener, router, session streaming, and drain.
//!
//! # Request flow
//!
//! Every connection is one request. `POST /run` resolves the job, tries
//! the whole-job cache first (memory-speed, executor untouched), then
//! takes a ticket from the [`Gate`]:
//!
//! * **Runner** — spawns the execution on a worker thread (which waits
//!   for one of `max_active` slots, runs the [`Backend`], and broadcasts
//!   completion), then streams its own subscription like any follower.
//! * **Follower** — streams the in-flight run's events; no new work.
//! * **Saturated** — answers `429` with `Retry-After` immediately.
//!
//! Progress is chunked NDJSON: an `accepted` event, one `point` event per
//! finished sweep point, and a terminal `done` event carrying the full
//! output. The runner and every follower observe identical sequences.
//!
//! # Drain state machine
//!
//! The accept loop polls a shared shutdown flag (the harness wires in the
//! `signal.rs` flag, tests inject their own):
//!
//! ```text
//! ACCEPTING --flag>=1--> DRAINING --sessions==0--> DRAINED (exit 75)
//!                            |                        ^
//!                            +--drain_timeout reached-+  (timed_out)
//! ```
//!
//! In `DRAINING` the listener closes, so new connections are refused at
//! the TCP layer, while every accepted session — including runs still
//! queued for a slot — completes normally. That is what "zero dropped
//! accepted requests" means under shutdown.

use crate::coalesce::{Event, Gate, SlotWait, Ticket};
use crate::http::{parse_request, respond, ChunkedWriter, HttpError, Request};
use crate::{Backend, JobInfo, PointSource};
use sparten_bench::json::Json;
use sparten_telemetry::{
    chrome_trace, prometheus, text_report, CancelToken, ServerMetrics, Telemetry, TraceContext,
};
use std::io::{BufReader, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Static identity a running daemon reports from `/healthz` and
/// `/metrics`: which binary and which job registry a scrape is observing.
#[derive(Debug, Clone, Default)]
pub struct BuildInfo {
    /// Binary version (the harness passes its crate version).
    pub version: String,
    /// FNV fingerprint of the served job registry.
    pub registry_fp: u64,
}

/// How the daemon listens and drains.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind address; use port 0 for an ephemeral port.
    pub addr: String,
    /// Executor runs allowed concurrently.
    pub max_active: usize,
    /// Additional admitted runs allowed to queue for a slot.
    pub max_queued: usize,
    /// Total budget for reading one request (head + body). This bounds a
    /// slow-loris client dripping bytes: each byte may arrive "in time",
    /// but the whole request must land within this window or the
    /// connection is answered 408 and reaped — before any admission
    /// decision, so a drip-feed never consumes an execution slot.
    pub read_timeout: Duration,
    /// How long drain waits for in-flight sessions before giving up.
    pub drain_timeout: Duration,
    /// Deadline budget applied when a request carries no `Deadline-Ms`
    /// header. Queue wait, executor dispatch, and per-point compute all
    /// draw down this budget.
    pub default_deadline: Duration,
    /// Server-side cap on client-requested deadlines: a `Deadline-Ms`
    /// larger than this is clamped, so one client cannot park work in
    /// the queue indefinitely.
    pub max_deadline: Duration,
    /// Shared shutdown flag: 0 = run, ≥ 1 = drain. The harness passes the
    /// `signal.rs` flag; tests store into their own.
    pub shutdown: Arc<AtomicUsize>,
    /// Identity reported to scrapers.
    pub build: BuildInfo,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            max_active: 2,
            max_queued: 8,
            read_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
            default_deadline: Duration::from_secs(120),
            max_deadline: Duration::from_secs(600),
            shutdown: Arc::new(AtomicUsize::new(0)),
            build: BuildInfo::default(),
        }
    }
}

/// What happened by the time [`Server::serve`] returned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Sessions fully served over the server's lifetime.
    pub sessions_served: u64,
    /// Sessions still open when the drain timeout expired (0 on a clean
    /// drain).
    pub abandoned: u64,
}

impl DrainReport {
    /// True when every accepted session completed before shutdown.
    pub fn clean(&self) -> bool {
        self.abandoned == 0
    }
}

struct Shared {
    backend: Arc<dyn Backend>,
    telemetry: Arc<Telemetry>,
    metrics: ServerMetrics,
    gate: Arc<Gate>,
    open_sessions: AtomicUsize,
    served: AtomicUsize,
    build: BuildInfo,
    /// When the daemon started; request spans are stamped in µs since
    /// this instant, and `/metrics` reports it as uptime.
    started: Instant,
    /// Recorder process track every server-side span lands on.
    trace_pid: u32,
    /// Monotonic per-request thread-track allocator for the trace.
    request_seq: AtomicU64,
    /// Budget applied when a request has no `Deadline-Ms` header.
    default_deadline: Duration,
    /// Cap on client-requested deadline budgets.
    max_deadline: Duration,
}

impl Shared {
    /// Microseconds since the daemon started (the server-side trace
    /// clock).
    fn now_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }
}

/// A bound, not-yet-serving daemon. `bind` then `serve`; tests grab
/// [`local_addr`](Server::local_addr) in between.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    opts: ServeOptions,
}

impl Server {
    /// Binds the listener and interns the server metrics in `telemetry`.
    pub fn bind(
        backend: Arc<dyn Backend>,
        telemetry: Arc<Telemetry>,
        opts: ServeOptions,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&opts.addr)?;
        listener.set_nonblocking(true)?;
        let metrics = ServerMetrics::new(&telemetry.metrics);
        let gate = Gate::new(opts.max_active, opts.max_queued);
        let trace_pid = telemetry.recorder.alloc_process("serve");
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                backend,
                telemetry,
                metrics,
                gate,
                open_sessions: AtomicUsize::new(0),
                served: AtomicUsize::new(0),
                build: opts.build.clone(),
                started: Instant::now(),
                trace_pid,
                request_seq: AtomicU64::new(0),
                default_deadline: opts.default_deadline,
                max_deadline: opts.max_deadline,
            }),
            opts,
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A live-state handle that outlives [`Server::serve`]: the chaos
    /// campaign holds one across a trial and asserts every counter
    /// returns to zero after the drain (no leaked permits, no stuck
    /// sessions).
    pub fn probe(&self) -> ServerProbe {
        ServerProbe {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Runs the accept loop until the shutdown flag is raised, then
    /// drains. Blocks; run on a dedicated thread when embedding.
    pub fn serve(self) -> DrainReport {
        let Server {
            listener,
            shared,
            opts,
        } = self;
        while opts.shutdown.load(Ordering::SeqCst) == 0 {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let shared = Arc::clone(&shared);
                    let read_timeout = opts.read_timeout;
                    shared.open_sessions.fetch_add(1, Ordering::SeqCst);
                    thread::spawn(move || {
                        handle_connection(&shared, stream, read_timeout);
                        shared.open_sessions.fetch_sub(1, Ordering::SeqCst);
                        shared.served.fetch_add(1, Ordering::SeqCst);
                    });
                }
                // The nonblocking listener doubles as the shutdown poll;
                // a 1ms nap bounds per-connection accept latency without
                // measurable idle cost (the OS coalesces the wakeups).
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(1));
                }
                Err(_) => thread::sleep(Duration::from_millis(1)),
            }
        }
        // DRAINING: close the listener so new connections are refused,
        // then wait for every accepted session (running or queued).
        drop(listener);
        let deadline = Instant::now() + opts.drain_timeout;
        while shared.open_sessions.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            thread::sleep(Duration::from_millis(10));
        }
        DrainReport {
            sessions_served: shared.served.load(Ordering::SeqCst) as u64,
            abandoned: shared.open_sessions.load(Ordering::SeqCst) as u64,
        }
    }
}

/// Read-state handle for post-drain invariant checks. Every accessor is
/// a lock-free or briefly-locked read; see [`Server::probe`].
pub struct ServerProbe {
    shared: Arc<Shared>,
}

impl ServerProbe {
    /// Runs currently holding an execution slot (0 after a clean drain).
    pub fn gate_active(&self) -> usize {
        self.shared.gate.active()
    }

    /// Admitted runs still holding budget — a nonzero value after a drain
    /// is a leaked [`crate::coalesce::RunPermit`].
    pub fn gate_admitted(&self) -> usize {
        self.shared.gate.admitted()
    }

    /// Connections currently being served (0 after a clean drain).
    pub fn open_sessions(&self) -> usize {
        self.shared.open_sessions.load(Ordering::SeqCst)
    }

    /// Sessions fully served so far.
    pub fn sessions_served(&self) -> usize {
        self.shared.served.load(Ordering::SeqCst)
    }
}

/// A [`TcpStream`] reader whose *total* read time is bounded: the
/// per-read socket timeout is re-armed to the time left before
/// `deadline`, so a slow-loris client dripping one byte per interval
/// still runs out of budget after `read_timeout` overall.
struct DeadlineReader {
    stream: TcpStream,
    deadline: Instant,
}

impl Read for DeadlineReader {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let remaining = self.deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return Err(std::io::ErrorKind::TimedOut.into());
        }
        // set_read_timeout rejects a zero Duration; clamp up.
        self.stream
            .set_read_timeout(Some(remaining.max(Duration::from_millis(1))))?;
        self.stream.read(buf)
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream, read_timeout: Duration) {
    let _ = stream.set_read_timeout(Some(read_timeout));
    shared.metrics.sessions_inflight.observe(
        shared.open_sessions.load(Ordering::SeqCst) as f64,
    );
    let request = {
        let Ok(reader) = stream.try_clone() else {
            return;
        };
        let reader = DeadlineReader {
            stream: reader,
            deadline: Instant::now() + read_timeout,
        };
        parse_request(&mut BufReader::new(reader))
    };
    match request {
        Ok(request) => {
            shared.metrics.requests.inc();
            route(shared, &mut stream, &request);
        }
        Err(HttpError::UnexpectedEof) => {} // client gave up; nothing to answer
        Err(HttpError::TimedOut) => {
            // Slow-loris or stalled client: answer 408 (best-effort) and
            // reap. The request never reached admission, so no slot or
            // budget is held.
            shared.metrics.bad_requests.inc();
            let _ = respond(
                &mut stream,
                408,
                "text/plain",
                &[],
                "request not received within the read budget\n",
            );
        }
        Err(e) => {
            shared.metrics.bad_requests.inc();
            let _ = respond(
                &mut stream,
                400,
                "text/plain",
                &[],
                &format!("{e}\n"),
            );
        }
    }
}

/// One `# build ...` comment line: valid in the text-report format
/// (parsers skip `#`), greppable by humans and smokes alike.
fn build_comment(shared: &Shared) -> String {
    format!(
        "# build version={} registry={:016x} uptime_s={}\n",
        shared.build.version,
        shared.build.registry_fp,
        shared.started.elapsed().as_secs()
    )
}

/// Whether the client asked for Prometheus exposition instead of the
/// native text report: `Accept: text/plain; version=0.0.4`, any
/// OpenMetrics accept, or an explicit `?format=prometheus`.
fn wants_prometheus(request: &Request) -> bool {
    if request.query_param("format") == Some("prometheus") {
        return true;
    }
    request.header("accept").is_some_and(|accept| {
        let accept = accept.to_ascii_lowercase();
        accept.contains("version=0.0.4") || accept.contains("openmetrics")
    })
}

fn route(shared: &Arc<Shared>, stream: &mut TcpStream, request: &Request) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => {
            let body = format!("ok\n{}", build_comment(shared));
            let _ = respond(stream, 200, "text/plain", &[], &body);
        }
        ("GET", "/metrics") => {
            if wants_prometheus(request) {
                let mut body = prometheus::prometheus_report(
                    &shared.telemetry.metrics.snapshot(),
                    shared.telemetry.recorder.dropped(),
                );
                body.push_str(&prometheus::build_info(
                    &shared.build.version,
                    shared.build.registry_fp,
                    shared.started.elapsed().as_secs(),
                ));
                let _ = respond(stream, 200, prometheus::PROMETHEUS_CONTENT_TYPE, &[], &body);
            } else {
                let mut report = text_report(
                    "serve",
                    &shared.telemetry.metrics.snapshot(),
                    &shared.telemetry.recorder,
                );
                report.push_str(&build_comment(shared));
                let _ = respond(stream, 200, "text/plain", &[], &report);
            }
        }
        ("GET", "/trace") => {
            // The whole correlated timeline — request spans, gate
            // verdicts, queue waits, executor points, simulator chunks —
            // as one Perfetto-loadable Chrome trace.
            let trace = chrome_trace(
                &shared.telemetry.metrics.snapshot(),
                &shared.telemetry.recorder,
            );
            let _ = respond(stream, 200, "application/json", &[], &trace);
        }
        ("GET", "/jobs") => {
            let jobs = Json::Arr(shared.backend.jobs().iter().map(job_json).collect());
            let _ = respond(stream, 200, "application/json", &[], &(jobs.pretty() + "\n"));
        }
        ("GET", "/result") => handle_result(shared, stream, request),
        ("POST", "/run") => handle_run(shared, stream, request),
        ("GET", "/run") => {
            let _ = respond(
                stream,
                405,
                "text/plain",
                &[("Allow", "POST")],
                "use POST /run\n",
            );
        }
        _ => {
            let _ = respond(stream, 404, "text/plain", &[], "no such endpoint\n");
        }
    }
}

fn job_json(job: &JobInfo) -> Json {
    Json::obj([
        ("name", Json::str(&job.name)),
        ("kind", Json::str(&job.kind)),
        ("points", Json::UInt(job.points as u64)),
        ("key", Json::str(format!("{:016x}", job.key))),
    ])
}

/// Pulls the requested job name from `?job=` or a `{"job": "..."}` body.
fn requested_job(request: &Request) -> Result<String, String> {
    if let Some(name) = request.query_param("job") {
        if !name.is_empty() {
            return Ok(name.to_string());
        }
    }
    if !request.body.trim().is_empty() {
        let body = Json::parse(&request.body).map_err(|e| format!("bad JSON body: {e}"))?;
        if let Some(Json::Str(name)) = body.get("job") {
            return Ok(name.clone());
        }
        return Err("JSON body missing string field `job`".to_string());
    }
    Err("no job requested: pass ?job=NAME or a JSON body {\"job\": \"NAME\"}".to_string())
}

/// `GET /result?job=NAME`: the raw rendered output, cache-only. This is
/// the byte-identity endpoint — the body is exactly what `harness run`
/// prints for the job — and the hot path the cache-hit latency bench
/// times.
fn handle_result(shared: &Arc<Shared>, stream: &mut TcpStream, request: &Request) {
    let name = match requested_job(request) {
        Ok(name) => name,
        Err(e) => {
            shared.metrics.bad_requests.inc();
            let _ = respond(stream, 400, "text/plain", &[], &format!("{e}\n"));
            return;
        }
    };
    if shared.backend.job(&name).is_none() {
        shared.metrics.rejected_unknown_job.inc();
        let _ = respond(stream, 404, "text/plain", &[], &format!("unknown job `{name}`\n"));
        return;
    }
    let started = Instant::now();
    match shared.backend.cached(&name) {
        Some(output) => {
            shared.metrics.cache_full_hits.inc();
            shared
                .metrics
                .cache_hit_latency_us
                .record(started.elapsed().as_micros() as u64);
            let _ = respond(stream, 200, "text/plain", &[], &output.text);
        }
        None => {
            let _ = respond(
                stream,
                404,
                "text/plain",
                &[],
                &format!("job `{name}` not fully cached; POST /run to compute it\n"),
            );
        }
    }
}

/// `POST /run?job=NAME`: compute (or join, or fetch) a job, streaming
/// NDJSON progress.
///
/// Every run request mints a root [`TraceContext`] and records the
/// causal chain into the shared recorder: the request span, the gate's
/// verdict (as an instant event), the queue wait, and — via the trace
/// context handed to [`Backend::execute`] — the executor's per-point
/// spans and the simulators' per-chunk spans, all carrying the same
/// trace id. A follower's events additionally carry `runner_trace` /
/// `runner_span` args linking to the execution it joined.
fn handle_run(shared: &Arc<Shared>, stream: &mut TcpStream, request: &Request) {
    let name = match requested_job(request) {
        Ok(name) => name,
        Err(e) => {
            shared.metrics.bad_requests.inc();
            let _ = respond(stream, 400, "text/plain", &[], &format!("{e}\n"));
            return;
        }
    };
    let Some(job) = shared.backend.job(&name) else {
        shared.metrics.rejected_unknown_job.inc();
        let _ = respond(stream, 404, "text/plain", &[], &format!("unknown job `{name}`\n"));
        return;
    };

    // A client retry loop announces re-submissions; count them so a
    // scrape distinguishes organic load from retry amplification.
    if request.header("retry-attempt").is_some() {
        shared.metrics.retried_requests.inc();
    }

    // The request's deadline budget: `Deadline-Ms` (clamped to the
    // server cap) or the server default. Everything downstream — queue
    // wait, executor dispatch, per-point compute — draws down this one
    // budget, counted from request receipt.
    let received = Instant::now();
    let budget = match request.header("deadline-ms") {
        None => shared.default_deadline,
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(ms) => Duration::from_millis(ms).min(shared.max_deadline),
            Err(_) => {
                shared.metrics.bad_requests.inc();
                let _ = respond(
                    stream,
                    400,
                    "text/plain",
                    &[],
                    &format!("bad Deadline-Ms header `{raw}`: want milliseconds as an integer\n"),
                );
                return;
            }
        },
    };
    let deadline = received + budget;

    let ctx = TraceContext::root().with_deadline(deadline);
    let tid = shared.request_seq.fetch_add(1, Ordering::Relaxed) as u32;
    let recorder = &shared.telemetry.recorder;
    let req_start_us = shared.now_us();
    let mut request_args = ctx.args();
    request_args.push(("key", job.key));

    // An already-spent budget never reaches the cache, the gate, or the
    // executor: answer 504 with the elapsed breakdown immediately.
    if Instant::now() >= deadline {
        shared.metrics.deadline_expired.inc();
        recorder.instant(
            shared.trace_pid,
            tid,
            "deadline.expired",
            shared.now_us(),
            &ctx.args(),
        );
        respond_deadline_exceeded(stream, "admission", budget, received, 0);
        record_request_span(shared, tid, req_start_us, &request_args);
        return;
    }

    // Fast path: the whole job is in the result cache — answer at memory
    // speed without consuming admission budget or touching the executor.
    let started = Instant::now();
    if let Some(output) = shared.backend.cached(&name) {
        shared.metrics.cache_full_hits.inc();
        shared
            .metrics
            .cache_hit_latency_us
            .record(started.elapsed().as_micros() as u64);
        recorder.instant(shared.trace_pid, tid, "gate.cache", shared.now_us(), &ctx.args());
        stream_events(
            stream,
            &job,
            "cache",
            std::iter::once(Event::Done(Arc::new(Ok(output)))),
            &ctx,
        );
        record_request_span(shared, tid, req_start_us, &request_args);
        return;
    }

    let cancel = CancelToken::new().with_deadline(deadline);
    match shared.gate.enter(job.key, Some((ctx.trace_id, ctx.span_id)), cancel) {
        Ticket::Saturated => {
            shared.metrics.rejected_saturated.inc();
            recorder.instant(
                shared.trace_pid,
                tid,
                "gate.saturated",
                shared.now_us(),
                &ctx.args(),
            );
            let _ = respond(
                stream,
                429,
                "text/plain",
                &[("Retry-After", "1")],
                "saturated: admission queue is full, retry shortly\n",
            );
            record_request_span(shared, tid, req_start_us, &request_args);
        }
        Ticket::Follower(rx, runner_trace) => {
            shared.metrics.coalesced.inc();
            let mut args = ctx.args();
            if let Some((runner_trace, runner_span)) = runner_trace {
                args.push(("runner_trace", runner_trace));
                args.push(("runner_span", runner_span));
                request_args.push(("runner_trace", runner_trace));
                request_args.push(("runner_span", runner_span));
            }
            recorder.instant(shared.trace_pid, tid, "gate.follower", shared.now_us(), &args);
            stream_events(stream, &job, "follower", rx.into_iter(), &ctx);
            record_request_span(shared, tid, req_start_us, &request_args);
        }
        Ticket::Runner(permit, rx) => {
            recorder.instant(shared.trace_pid, tid, "gate.runner", shared.now_us(), &ctx.args());
            let wait_ctx = ctx.child("queue.wait", 0);
            // Queue for an execution slot *before* the response starts,
            // and never past the deadline: queue time draws down the
            // request budget, and an over-budget wait is still free to
            // become a clean 503 because no bytes have been written.
            let waited_us = match permit.wait_for_slot(Some(deadline)) {
                SlotWait::Granted { waited_us } => waited_us,
                SlotWait::DeadlineExpired { waited_us } => {
                    shared.metrics.queue_timeouts.inc();
                    recorder.instant(
                        shared.trace_pid,
                        tid,
                        "queue.timeout",
                        shared.now_us(),
                        &wait_ctx.args(),
                    );
                    // Fail the run so followers are notified and the
                    // admission budget is released; no slot was claimed.
                    permit.finish(Err(format!(
                        "queue-wait-exceeded: waited {}ms of a {}ms deadline budget",
                        waited_us / 1000,
                        budget.as_millis()
                    )));
                    respond_deadline_exceeded(stream, "queue", budget, received, waited_us);
                    record_request_span(shared, tid, req_start_us, &request_args);
                    return;
                }
            };
            shared.metrics.queue_wait_us.record(waited_us);
            let slot_at_us = shared.now_us();
            recorder.span(
                shared.trace_pid,
                tid,
                "queue.wait",
                slot_at_us.saturating_sub(waited_us),
                waited_us,
                &wait_ctx.args(),
            );
            let runner_shared = Arc::clone(shared);
            let runner_job = job.clone();
            let exec_ctx = ctx.child("execute", 0);
            thread::spawn(move || {
                // Double-check the cache under the run permit: the
                // handler's check can race a just-finishing twin run —
                // miss, twin completes and leaves the gate, then this
                // request becomes a fresh runner for work that is now
                // fully cached. Without this, "one executor run per
                // unique key" would only hold absent that interleaving.
                let result = match runner_shared.backend.cached(&runner_job.name) {
                    Some(output) => {
                        runner_shared.metrics.cache_full_hits.inc();
                        Ok(output)
                    }
                    None => {
                        runner_shared.metrics.exec_runs.inc();
                        // The progress closure goes through the gate, not
                        // the permit, so the permit stays solely owned
                        // here and its drop guard cannot misfire on a
                        // leaked clone.
                        let gate = Arc::clone(&runner_shared.gate);
                        let (key, total) = (runner_job.key, runner_job.points);
                        let progress: Arc<dyn Fn(usize, PointSource) + Send + Sync> =
                            Arc::new(move |point, source| {
                                gate.point_done(key, point, total, source)
                            });
                        let cancel = permit.cancel_token();
                        let result = runner_shared.backend.execute(
                            &runner_job.name,
                            progress,
                            Some(exec_ctx),
                            cancel.clone(),
                        );
                        if result.is_err() {
                            if cancel.is_cancelled() {
                                runner_shared.metrics.exec_cancelled.inc();
                            } else {
                                runner_shared.metrics.exec_failures.inc();
                            }
                        }
                        result
                    }
                };
                permit.finish(result);
            });
            stream_events(stream, &job, "runner", rx.into_iter(), &ctx);
            record_request_span(shared, tid, req_start_us, &request_args);
        }
    }
}

/// Answers a spent deadline budget: `504` at admission (the request never
/// reached the gate), `503` for a queue wait that outlived the budget —
/// the latter with `Retry-After`, since a freed-up queue may well admit a
/// retry. The body carries the elapsed breakdown so the client can see
/// where the budget went.
fn respond_deadline_exceeded(
    stream: &mut TcpStream,
    stage: &str,
    budget: Duration,
    received: Instant,
    queue_wait_us: u64,
) {
    let (status, error) = match stage {
        "queue" => (503, "queue-wait-exceeded"),
        _ => (504, "deadline-exceeded"),
    };
    let body = Json::obj([
        ("error", Json::str(error)),
        ("stage", Json::str(stage)),
        ("budget_ms", Json::UInt(budget.as_millis() as u64)),
        (
            "elapsed_ms",
            Json::UInt(received.elapsed().as_millis() as u64),
        ),
        ("queue_wait_ms", Json::UInt(queue_wait_us / 1000)),
    ]);
    let headers: &[(&str, &str)] = if status == 503 {
        &[("Retry-After", "1")]
    } else {
        &[]
    };
    let _ = respond(
        stream,
        status,
        "application/json",
        headers,
        &(body.compact() + "\n"),
    );
}

/// Closes out one request's trace span (start → response fully
/// streamed).
fn record_request_span(shared: &Shared, tid: u32, start_us: u64, args: &[(&'static str, u64)]) {
    shared.telemetry.recorder.span(
        shared.trace_pid,
        tid,
        "request",
        start_us,
        shared.now_us().saturating_sub(start_us),
        args,
    );
}

/// Streams `accepted` + per-point + `done` NDJSON events over a chunked
/// response. Client hangups are ignored: the run itself is owned by the
/// runner thread and completes regardless.
fn stream_events(
    stream: &mut TcpStream,
    job: &JobInfo,
    role: &str,
    events: impl Iterator<Item = Event>,
    ctx: &TraceContext,
) {
    let Ok(mut writer) = ChunkedWriter::begin(stream, 200, "application/x-ndjson") else {
        return;
    };
    let accepted = Json::obj([
        ("event", Json::str("accepted")),
        ("job", Json::str(&job.name)),
        ("points", Json::UInt(job.points as u64)),
        ("key", Json::str(format!("{:016x}", job.key))),
        ("role", Json::str(role)),
        ("trace", Json::str(ctx.trace_hex())),
    ]);
    if writer.chunk(&(accepted.compact() + "\n")).is_err() {
        return;
    }
    for event in events {
        let line = match event {
            Event::Point {
                point,
                done,
                total,
                source,
            } => Json::obj([
                ("event", Json::str("point")),
                ("point", Json::UInt(point as u64)),
                ("done", Json::UInt(done as u64)),
                ("total", Json::UInt(total as u64)),
                ("source", Json::str(source.label())),
            ]),
            Event::Done(result) => {
                let line = match result.as_ref() {
                    Ok(output) => Json::obj([
                        ("event", Json::str("done")),
                        ("status", Json::str("ok")),
                        ("output", Json::str(&output.text)),
                        (
                            "artifacts",
                            Json::Arr(
                                output
                                    .artifacts
                                    .iter()
                                    .map(|(name, data)| {
                                        Json::obj([
                                            ("name", Json::str(name)),
                                            ("data", Json::str(data)),
                                        ])
                                    })
                                    .collect(),
                            ),
                        ),
                    ]),
                    Err(error) => Json::obj([
                        ("event", Json::str("done")),
                        ("status", Json::str("error")),
                        ("error", Json::str(error)),
                    ]),
                };
                let _ = writer.chunk(&(line.compact() + "\n"));
                let _ = writer.finish();
                return;
            }
        };
        if writer.chunk(&(line.compact() + "\n")).is_err() {
            return; // client hung up; runner thread finishes regardless
        }
    }
    // Event stream ended without Done (runner vanished) — terminate the
    // response so the client is not left waiting on a dead chunk stream.
    let _ = writer.finish();
}
