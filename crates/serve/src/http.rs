//! A hand-rolled HTTP/1.1 codec, in the same spirit as the repo's in-tree
//! JSON and RNG: std-only, small, and exactly as much protocol as the
//! daemon needs.
//!
//! One request per connection (`Connection: close` on every response), a
//! bounded request line / header block / body, and two response shapes:
//! a fixed [`respond`] with `Content-Length`, and a [`ChunkedWriter`] for
//! streamed progress (`Transfer-Encoding: chunked`). Anything malformed is
//! a typed [`HttpError`] the router turns into a 400 — a bad client must
//! never panic a worker or wedge the accept loop (reads are bounded by the
//! caller's socket timeout).

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers) in bytes.
const MAX_HEAD: usize = 16 * 1024;

/// Upper bound on a request body in bytes (requests are tiny job specs).
const MAX_BODY: usize = 1024 * 1024;

/// Why a request could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The connection closed before a full request arrived.
    UnexpectedEof,
    /// The request line / headers / body violate the grammar or a bound.
    Malformed(String),
    /// The client went silent (or dripped bytes) past the read budget —
    /// the slow-loris case, answered 408 and reaped.
    TimedOut,
    /// The underlying socket failed.
    Io(String),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::UnexpectedEof => write!(f, "connection closed mid-request"),
            HttpError::Malformed(m) => write!(f, "malformed request: {m}"),
            HttpError::TimedOut => write!(f, "request not received within the read budget"),
            HttpError::Io(m) => write!(f, "socket error: {m}"),
        }
    }
}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        match e.kind() {
            io::ErrorKind::UnexpectedEof => HttpError::UnexpectedEof,
            // A read timeout surfaces as WouldBlock on Unix and TimedOut
            // on Windows; both mean the read budget ran out.
            io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut => HttpError::TimedOut,
            _ => HttpError::Io(e.to_string()),
        }
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Uppercase method (`GET`, `POST`, ...).
    pub method: String,
    /// Decoded path component (`/run`), without the query string.
    pub path: String,
    /// Decoded `key=value` query pairs, in order of appearance.
    pub query: Vec<(String, String)>,
    /// Header `(lowercased-name, value)` pairs, in order of appearance.
    pub headers: Vec<(String, String)>,
    /// The request body (empty unless `Content-Length` said otherwise).
    pub body: String,
}

impl Request {
    /// First query value for `key`, if present.
    pub fn query_param(&self, key: &str) -> Option<&str> {
        self.query
            .iter()
            .find_map(|(k, v)| (k == key).then_some(v.as_str()))
    }

    /// First header value for `name` (case-insensitive), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        let want = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find_map(|(k, v)| (*k == want).then_some(v.as_str()))
    }
}

/// Reads one `\r\n`- (or `\n`-) terminated line, bounded by `budget`.
fn read_line(reader: &mut impl BufRead, budget: &mut usize) -> Result<String, HttpError> {
    let mut raw = Vec::new();
    let n = reader
        .by_ref()
        .take(*budget as u64 + 1)
        .read_until(b'\n', &mut raw)?;
    if n == 0 {
        return Err(HttpError::UnexpectedEof);
    }
    if n > *budget {
        return Err(HttpError::Malformed("request head too large".into()));
    }
    *budget -= n;
    if raw.last() != Some(&b'\n') {
        return Err(HttpError::UnexpectedEof);
    }
    raw.pop();
    if raw.last() == Some(&b'\r') {
        raw.pop();
    }
    String::from_utf8(raw).map_err(|_| HttpError::Malformed("non-UTF-8 header line".into()))
}

/// Decodes `%XX` escapes and `+` (as space) in a query component.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => out.push(b' '),
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3).and_then(|h| {
                    std::str::from_utf8(h)
                        .ok()
                        .and_then(|h| u8::from_str_radix(h, 16).ok())
                });
                match hex {
                    Some(b) => {
                        out.push(b);
                        i += 2;
                    }
                    None => out.push(b'%'),
                }
            }
            b => out.push(b),
        }
        i += 1;
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a request target into its decoded path and query pairs.
fn parse_target(target: &str) -> (String, Vec<(String, String)>) {
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let pairs = query
        .split('&')
        .filter(|kv| !kv.is_empty())
        .map(|kv| match kv.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(kv), String::new()),
        })
        .collect();
    (percent_decode(path), pairs)
}

/// Parses one request off `reader`.
pub fn parse_request(reader: &mut BufReader<impl Read>) -> Result<Request, HttpError> {
    let mut budget = MAX_HEAD;
    let request_line = read_line(reader, &mut budget)?;
    let mut parts = request_line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next())
    {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => {
            return Err(HttpError::Malformed(format!(
                "bad request line `{request_line}`"
            )))
        }
    };
    if version != "HTTP/1.1" && version != "HTTP/1.0" {
        return Err(HttpError::Malformed(format!("unsupported version `{version}`")));
    }
    let mut headers = Vec::new();
    loop {
        let line = read_line(reader, &mut budget)?;
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(HttpError::Malformed(format!("bad header line `{line}`")));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers
        .iter()
        .find(|(k, _)| k == "content-length")
        .map(|(_, v)| v.parse::<usize>())
    {
        None => 0,
        Some(Ok(n)) if n <= MAX_BODY => n,
        Some(Ok(_)) => return Err(HttpError::Malformed("request body too large".into())),
        Some(Err(_)) => return Err(HttpError::Malformed("bad Content-Length".into())),
    };
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body)?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("non-UTF-8 body".into()))?;
    let (path, query) = parse_target(target);
    Ok(Request {
        method: method.to_string(),
        path,
        query,
        headers,
        body,
    })
}

/// Reason phrase for the handful of status codes the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Writes a complete fixed-length response and flushes it. `extra_headers`
/// are emitted verbatim (e.g. `("Retry-After", "1")`).
pub fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &str,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nConnection: close\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n",
        reason(status),
        body.len()
    );
    for (name, value) in extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A chunked-transfer response being streamed. Each [`chunk`] is flushed
/// immediately so clients observe progress live; [`finish`] writes the
/// terminal zero chunk.
///
/// [`chunk`]: ChunkedWriter::chunk
/// [`finish`]: ChunkedWriter::finish
pub struct ChunkedWriter<'a> {
    stream: &'a mut TcpStream,
}

impl<'a> ChunkedWriter<'a> {
    /// Writes the response head for a chunked `status` response.
    pub fn begin(
        stream: &'a mut TcpStream,
        status: u16,
        content_type: &str,
    ) -> io::Result<ChunkedWriter<'a>> {
        let head = format!(
            "HTTP/1.1 {status} {}\r\nConnection: close\r\nContent-Type: {content_type}\r\n\
             Transfer-Encoding: chunked\r\n\r\n",
            reason(status)
        );
        stream.write_all(head.as_bytes())?;
        stream.flush()?;
        Ok(ChunkedWriter { stream })
    }

    /// Writes one non-empty chunk and flushes it.
    pub fn chunk(&mut self, data: &str) -> io::Result<()> {
        if data.is_empty() {
            return Ok(()); // an empty chunk would terminate the stream
        }
        write!(self.stream, "{:x}\r\n", data.len())?;
        self.stream.write_all(data.as_bytes())?;
        self.stream.write_all(b"\r\n")?;
        self.stream.flush()
    }

    /// Terminates the stream with the zero-length chunk.
    pub fn finish(self) -> io::Result<()> {
        self.stream.write_all(b"0\r\n\r\n")?;
        self.stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, HttpError> {
        parse_request(&mut BufReader::new(text.as_bytes()))
    }

    #[test]
    fn requests_parse_with_query_and_body() {
        let r = parse(
            "POST /run?job=fig7_alexnet_speedup&x=a%20b HTTP/1.1\r\n\
             Host: localhost\r\nContent-Length: 11\r\n\r\n{\"job\":\"x\"}",
        )
        .unwrap();
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/run");
        assert_eq!(r.query_param("job"), Some("fig7_alexnet_speedup"));
        assert_eq!(r.query_param("x"), Some("a b"));
        assert_eq!(r.header("host"), Some("localhost"));
        assert_eq!(r.header("Host"), Some("localhost"));
        assert_eq!(r.body, "{\"job\":\"x\"}");
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let r = parse("GET /healthz HTTP/1.1\nHost: x\n\n").unwrap();
        assert_eq!(r.path, "/healthz");
    }

    #[test]
    fn malformed_requests_are_typed_errors() {
        assert!(matches!(parse(""), Err(HttpError::UnexpectedEof)));
        assert!(matches!(
            parse("GARBAGE\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/2.0\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        assert!(matches!(
            parse("GET / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"),
            Err(HttpError::Malformed(_))
        ));
        // A body shorter than its Content-Length is a truncated request.
        assert!(matches!(
            parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::UnexpectedEof)
        ));
    }

    #[test]
    fn oversized_heads_are_rejected_not_buffered() {
        let huge = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(MAX_HEAD));
        assert!(matches!(parse(&huge), Err(HttpError::Malformed(_))));
    }

    #[test]
    fn percent_decoding_handles_escapes_and_junk() {
        assert_eq!(percent_decode("a%2Fb+c"), "a/b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
    }
}
