#![warn(missing_docs)]

//! `sparten-serve`: a multi-tenant simulation service over the harness.
//!
//! The ROADMAP's north star is a production-scale system answering heavy
//! design-space traffic. SparTen-style studies arrive as many small
//! simulation requests — often *identical* ones, because several clients
//! sweep overlapping configurations. This crate wraps the harness's
//! existing machinery (content-addressed result cache, worker-pool
//! executor, write-ahead journal, telemetry) in a long-running daemon
//! that makes duplicate traffic nearly free:
//!
//! * **HTTP/1.1 codec** ([`http`]) — hand-rolled, std-only, bounded
//!   parsing; the same offline-build spirit as the in-repo JSON and RNG.
//! * **Request coalescing + admission** ([`coalesce`]) — one combined
//!   gate decides, under a single lock, whether a request *runs*,
//!   *follows* an identical in-flight run, or is *bounced* with
//!   429 + `Retry-After`. Followers are always free (they add no load),
//!   so only genuinely new work can be rejected, and an accepted request
//!   is never dropped.
//! * **Progress streaming** ([`server`]) — per-point progress flows back
//!   as chunked NDJSON events, to the runner and every coalesced
//!   follower alike.
//! * **Graceful drain** — on shutdown the server stops accepting,
//!   finishes every in-flight and queued session, and reports a
//!   [`DrainReport`](server::DrainReport) the harness turns into a
//!   journaled exit 75 (the same crash-only contract as `harness run`).
//!
//! The crate is deliberately ignorant of experiments, caches, and
//! journals: the harness implements [`Backend`] over its registry /
//! cache / executor, and this crate only schedules and speaks HTTP.
//! That keeps the dependency arrow pointing one way (harness → serve)
//! and lets tests drive the server with synthetic backends.

pub mod client;
pub mod coalesce;
pub mod http;
pub mod server;

pub use coalesce::{Event, Gate, SlotWait, Ticket};
pub use server::{BuildInfo, DrainReport, ServeOptions, Server, ServerProbe};
pub use sparten_telemetry::CancelToken;

use std::sync::Arc;

/// Whether a finished sweep point was computed or served from the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointSource {
    /// The point came out of the content-addressed result cache.
    Cache,
    /// The point was computed by the executor this run.
    Computed,
}

impl PointSource {
    /// Stable wire label used in streamed progress events.
    pub fn label(self) -> &'static str {
        match self {
            PointSource::Cache => "cache",
            PointSource::Computed => "computed",
        }
    }
}

/// Metadata for one servable job, as reported by `/jobs` and used for
/// admission decisions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobInfo {
    /// Registry name (`fig7_alexnet_speedup`, ...).
    pub name: String,
    /// Human kind label (`figure`, `table`, ...).
    pub kind: String,
    /// Number of sweep points the job computes.
    pub points: usize,
    /// Content-addressed coalescing key: identical keys mean identical
    /// work, so concurrent requests for the same key share one execution.
    /// The harness derives this from the cache key material (name,
    /// registry fingerprint, seed), so it changes whenever a rerun could
    /// produce different bytes.
    pub key: u64,
}

/// A completed job's response payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOutput {
    /// Rendered result text — byte-identical to what `harness run`
    /// writes for the same job (that identity is load-bearing: tests and
    /// the verify smoke diff it).
    pub text: String,
    /// Named artifacts (`results/<name>` relative path, contents).
    pub artifacts: Vec<(String, String)>,
}

/// What the serve daemon needs from the harness.
///
/// Implementations must be cheap to call concurrently: the server invokes
/// `cached` on every request thread and `execute` from at most
/// `max_active` runner threads at once.
pub trait Backend: Send + Sync {
    /// Every servable job, for `/jobs`.
    fn jobs(&self) -> Vec<JobInfo>;

    /// Metadata for one job, or `None` if the name is unknown.
    fn job(&self, name: &str) -> Option<JobInfo>;

    /// The job's output if *every* point is already in the result cache
    /// (validated and rendered without touching the executor); `None` on
    /// any miss.
    fn cached(&self, name: &str) -> Option<JobOutput>;

    /// Runs the job to completion, invoking `progress` once per finished
    /// point with `(point_index, source)`. `trace` is the request's
    /// trace context (carrying the request deadline, when one was set);
    /// a backend that records telemetry threads it through to the
    /// executor so per-point work is correlated with the request.
    /// `cancel` is the run's cooperative cancellation token — the backend
    /// must poll it at point boundaries and stop promptly once it fires,
    /// reporting the stop as an error rather than a partial result.
    fn execute(
        &self,
        name: &str,
        progress: Arc<dyn Fn(usize, PointSource) + Send + Sync>,
        trace: Option<sparten_telemetry::TraceContext>,
        cancel: CancelToken,
    ) -> Result<JobOutput, String>;
}
