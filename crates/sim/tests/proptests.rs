//! Property-based tests over the simulators: accounting identities, depth
//! monotonicity, and functional/cycle-model agreement on arbitrary shapes.

use proptest::prelude::*;
use sparten_core::balance::BalanceMode;
use sparten_core::{AcceleratorConfig, ClusterConfig};
use sparten_nn::generate::workload;
use sparten_nn::ConvShape;
use sparten_sim::buffered::{simulate_buffered, BufferDepth};
use sparten_sim::scnn_engine::scnn_cartesian_conv;
use sparten_sim::{simulate_layer, MaskModel, Scheme, SimConfig};

fn small_config(units: usize, clusters: usize) -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.accel = AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: units,
            chunk_size: 64,
            bisection_limit: 4,
        },
        num_clusters: clusters,
    };
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn accounting_identity_on_random_shapes(
        d in 1usize..48,
        hw in 3usize..8,
        k in 1usize..4,
        n in 1usize..14,
        stride in 1usize..3,
        units in 2usize..6,
        clusters in 1usize..4,
        di in 0.1f64..0.9,
        df in 0.1f64..0.9,
        seed in 0u64..500,
    ) {
        prop_assume!(hw >= k);
        let shape = ConvShape::new(d, hw, hw, k, n, stride, k / 2);
        let w = workload(&shape, di, df, seed);
        let cfg = small_config(units, clusters);
        let model = MaskModel::new(&w, 64);
        for scheme in Scheme::all() {
            let r = simulate_layer(&w, &model, &cfg, scheme);
            prop_assert!(r.accounting_holds(), "{} accounting broken", r.scheme);
            prop_assert!(r.compute_cycles > 0 || model.total_sparse_macs() == 0);
        }
    }

    #[test]
    fn buffering_is_monotone_and_bounded(
        seed in 0u64..300,
        units in 2usize..6,
    ) {
        let shape = ConvShape::new(64, 6, 6, 3, 12, 1, 1);
        let w = workload(&shape, 0.4, 0.35, seed);
        let cfg = small_config(units, 2);
        let model = MaskModel::new(&w, 64);
        let mut last = u64::MAX;
        for depth in [1usize, 2, 8] {
            let r = simulate_buffered(&w, &model, &cfg, BalanceMode::None, BufferDepth::Bounded(depth));
            prop_assert!(r.cycles <= last);
            last = r.cycles;
        }
        let inf = simulate_buffered(&w, &model, &cfg, BalanceMode::None, BufferDepth::Unbounded);
        prop_assert!(inf.cycles <= last);
        // Lower bound: the slowest unit's total work within each group
        // cannot be beaten by any buffering.
        prop_assert!(inf.cycles * (units as u64) >= inf.useful / (units as u64).max(1));
    }

    #[test]
    fn cartesian_engine_matches_reference_on_random_unit_stride(
        d in 1usize..16,
        hw in 3usize..8,
        k in 1usize..4,
        n in 1usize..6,
        seed in 0u64..500,
    ) {
        prop_assume!(hw >= k);
        let shape = ConvShape::new(d, hw, hw, k, n, 1, k / 2);
        let w = workload(&shape, 0.5, 0.5, seed);
        let (out, stats) = scnn_cartesian_conv(&w);
        let reference = sparten_nn::conv2d(&w.input, &w.filters, &shape);
        for (a, b) in out.as_slice().iter().zip(reference.as_slice()) {
            prop_assert!((a - b).abs() < 1e-2, "{} vs {}", a, b);
        }
        // Products must account exactly.
        prop_assert_eq!(stats.products, stats.accumulated + stats.discarded);
        let model = MaskModel::new(&w, 64);
        prop_assert_eq!(stats.accumulated, model.total_sparse_macs());
    }

    #[test]
    fn gb_never_loses_to_no_gb_by_much(
        seed in 0u64..300,
    ) {
        // GB is a heuristic; on multi-of-2·units filter counts it must not
        // regress versus no balancing beyond the routing noise.
        let shape = ConvShape::new(64, 6, 6, 3, 16, 1, 1);
        let w = workload(&shape, 0.4, 0.35, seed);
        let cfg = small_config(4, 2);
        let model = MaskModel::new(&w, 64);
        let none = simulate_layer(&w, &model, &cfg, Scheme::SpartenNoGb).compute_cycles;
        let gbh = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH).compute_cycles;
        prop_assert!(gbh as f64 <= none as f64 * 1.02, "GB-H {} vs none {}", gbh, none);
    }
}
