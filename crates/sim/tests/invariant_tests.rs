//! Cross-simulator invariants on a randomized layer sweep.
//!
//! Two properties must hold for *every* layer and every architecture:
//!
//! 1. **MAC-count ground truth** — the number of `JoinStep`s the
//!    word-parallel `fast_join` emits over a window equals the dense
//!    reference's count of position pairs where both operands are
//!    non-zero, and equals the `MaskModel`'s precomputed work. This ties
//!    the fast path, the functional chunking, and the simulators' work
//!    model to one number.
//! 2. **Breakdown accounting identity** — each simulator's execution-time
//!    decomposition satisfies `nonzero + zero + intra + inter ==
//!    compute_cycles × total_units` (the invariant Figures 10–12 rely on
//!    for their normalized stacked bars).
//!
//! The sweep is seeded and deterministic; `exhaustive-tests` widens it.

use sparten_arch::fast::fast_join;
use sparten_core::chunking::{filter_to_chunks, linearize_window_padded};
use sparten_nn::generate::{workload, Workload};
use sparten_nn::ConvShape;
use sparten_sim::cambricon::simulate_cambricon;
use sparten_sim::{simulate_layer, MaskModel, Scheme, SimConfig};
use sparten_tensor::{Rng64, SparseVector};

fn sweep_cases(default: usize, exhaustive: usize) -> usize {
    if cfg!(feature = "exhaustive-tests") {
        exhaustive
    } else {
        default
    }
}

/// A small randomized layer: channels, spatial size, kernel, stride, pad,
/// and densities all drawn from the seeded generator.
fn random_layer(rng: &mut Rng64) -> (Workload, ConvShape) {
    let kernel: usize = [1, 3, 3, 5][rng.gen_range_usize(0, 4)];
    let stride = 1 + rng.gen_range_usize(0, 2);
    let pad = rng.gen_range_usize(0, kernel.div_ceil(2) + 1);
    let side = kernel + stride + rng.gen_range_usize(0, 4);
    let channels = rng.gen_range_usize(3, 80);
    let filters = rng.gen_range_usize(1, 9);
    let shape = ConvShape::new(channels, side, side, kernel, filters, stride, pad);
    let input_density = rng.gen_range_f64(0.15, 0.85);
    let filter_density = rng.gen_range_f64(0.15, 0.85);
    let seed = rng.next_u64();
    (
        workload(&shape, input_density, filter_density, seed),
        shape,
    )
}

/// Dense-reference nonzero-product count for one (window, filter) pair.
fn dense_reference_macs(w: &Workload, ox: usize, oy: usize, f: usize) -> usize {
    let shape = &w.shape;
    let win = w
        .input
        .window_vector(ox, oy, shape.kernel, shape.kernel, shape.stride, shape.pad);
    let lin = w.filters[f].linearize();
    win.iter()
        .zip(&lin)
        .filter(|(a, b)| **a != 0.0 && **b != 0.0)
        .count()
}

#[test]
fn fast_join_mac_count_equals_dense_reference() {
    let mut rng = Rng64::seed_from_u64(0xFA57);
    let chunk_size = 64;
    for _ in 0..sweep_cases(6, 60) {
        let (w, shape) = random_layer(&mut rng);
        let model = MaskModel::new(&w, chunk_size);
        let filter_chunks: Vec<SparseVector> = w
            .filters
            .iter()
            .map(|f| filter_to_chunks(f, chunk_size))
            .collect();
        // Sample a few output positions rather than the full plane.
        for _ in 0..3 {
            let ox = rng.gen_range_usize(0, shape.out_height());
            let oy = rng.gen_range_usize(0, shape.out_width());
            let win = linearize_window_padded(
                &w.input,
                ox,
                oy,
                shape.kernel,
                shape.stride,
                shape.pad,
                chunk_size,
            );
            let win = SparseVector::from_dense(&win, chunk_size);
            for (f, fc) in filter_chunks.iter().enumerate() {
                let mut join_macs = 0usize;
                for (ic, fcc) in win.chunks().iter().zip(fc.chunks()) {
                    let mut join = fast_join(ic, fcc);
                    join_macs += join.by_ref().count();
                }
                let expect = dense_reference_macs(&w, ox, oy, f);
                assert_eq!(join_macs, expect, "fast_join vs dense reference");
                assert_eq!(
                    model.window_work(ox, oy, f) as usize,
                    expect,
                    "mask model vs dense reference"
                );
            }
        }
        // And in aggregate: the cached total equals the brute-force total.
        let total: u64 = (0..shape.out_width())
            .flat_map(|oy| (0..shape.out_height()).map(move |ox| (ox, oy)))
            .map(|(ox, oy)| {
                (0..w.filters.len())
                    .map(|f| dense_reference_macs(&w, ox, oy, f) as u64)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(model.total_sparse_macs(), total);
    }
}

#[test]
fn breakdown_accounting_identity_holds_across_simulators() {
    let mut rng = Rng64::seed_from_u64(0xB4EA);
    let config = SimConfig::small();
    for _ in 0..sweep_cases(6, 60) {
        let (w, _shape) = random_layer(&mut rng);
        let model = MaskModel::new(&w, config.accel.cluster.chunk_size);
        for scheme in Scheme::all() {
            let r = simulate_layer(&w, &model, &config, scheme);
            assert!(
                r.accounting_holds(),
                "{}: breakdown {:?} != {} cycles × {} units",
                r.scheme,
                r.breakdown,
                r.compute_cycles,
                r.total_units
            );
            assert_eq!(r.scheme, scheme.label());
        }
        let cambricon = simulate_cambricon(&w, &config);
        assert!(
            cambricon.sim.accounting_holds(),
            "Cambricon-S: breakdown {:?} != {} cycles × {} units",
            cambricon.sim.breakdown,
            cambricon.sim.compute_cycles,
            cambricon.sim.total_units
        );
    }
}
