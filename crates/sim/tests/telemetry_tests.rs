//! Reconciliation tests: the telemetry stall/work counters must agree
//! *exactly* with every simulator's Figure 10–12 breakdown.

use sparten_nn::generate::{workload, Workload};
use sparten_nn::ConvShape;
use sparten_sim::{
    simulate_cambricon_checked, simulate_layer, simulate_layer_telemetry, trace_cluster,
    trace_cluster_telemetry, MaskModel, Scheme, SimConfig,
};
use sparten_telemetry::Telemetry;

fn test_config() -> SimConfig {
    let mut cfg = SimConfig::small();
    cfg.accel.num_clusters = 2;
    cfg.accel.cluster.compute_units = 4;
    cfg
}

fn test_workload(seed: u64) -> Workload {
    let shape = ConvShape::new(40, 8, 8, 3, 12, 1, 1);
    workload(&shape, 0.4, 0.35, seed)
}

#[test]
fn all_schemes_reconcile_on_two_seeds() {
    let cfg = test_config();
    for seed in [31, 2019] {
        let w = test_workload(seed);
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        for scheme in Scheme::all() {
            let session = Telemetry::new();
            let r = simulate_layer_telemetry(&w, &m, &cfg, scheme, &session, "t:")
                .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            // The instrumented run must return the identical result.
            let plain = simulate_layer(&w, &m, &cfg, scheme);
            assert_eq!(r, plain, "telemetry changed {} result", plain.scheme);
            // And the merged session holds the scheme's counters.
            let snap = session.metrics.snapshot();
            assert_eq!(
                snap.counter(&format!("{}/work.nonzero", r.scheme)),
                Some(r.breakdown.nonzero)
            );
            assert_eq!(
                snap.counter_sum(&format!("{}/stall.intra.", r.scheme)),
                r.breakdown.intra
            );
            assert_eq!(
                snap.counter_sum(&format!("{}/stall.inter.", r.scheme)),
                r.breakdown.inter
            );
        }
    }
}

#[test]
fn strided_and_unbalanced_layers_reconcile() {
    // Stress the decomposition where the models are most irregular:
    // stride-2 SCNN discard, uneven position slices, partial groups.
    let cfg = test_config();
    let shape = ConvShape::new(32, 9, 9, 3, 10, 2, 1);
    let w = workload(&shape, 0.3, 0.45, 7);
    let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    for scheme in Scheme::all() {
        let session = Telemetry::new();
        simulate_layer_telemetry(&w, &m, &cfg, scheme, &session, "s:")
            .unwrap_or_else(|e| panic!("{e}"));
    }
}

#[test]
fn cambricon_reconciles_and_merges() {
    let cfg = test_config();
    let shape = ConvShape::new(64, 8, 8, 3, 32, 1, 1);
    let w = workload(&shape, 0.35, 0.4, 77);
    let session = Telemetry::new();
    let r = simulate_cambricon_checked(&w, &cfg, &session, "cam:")
        .expect("cambricon telemetry reconciles");
    let snap = session.metrics.snapshot();
    assert_eq!(
        snap.counter("Cambricon-S-like/work.zero"),
        Some(r.sim.breakdown.zero)
    );
    assert!(snap.counter("Cambricon-S-like/prune.clamped_keepers").unwrap_or(0) > 0);
}

#[test]
fn shared_session_accumulates_across_layers() {
    // Two layers into one session: counters add, per-layer invariants were
    // each checked against their own local session before merging.
    let cfg = test_config();
    let w1 = test_workload(1);
    let w2 = test_workload(2);
    let m1 = MaskModel::new(&w1, cfg.accel.cluster.chunk_size);
    let m2 = MaskModel::new(&w2, cfg.accel.cluster.chunk_size);
    let session = Telemetry::new();
    let r1 = simulate_layer_telemetry(&w1, &m1, &cfg, Scheme::SpartenGbH, &session, "l1:")
        .expect("layer 1");
    let r2 = simulate_layer_telemetry(&w2, &m2, &cfg, Scheme::SpartenGbH, &session, "l2:")
        .expect("layer 2");
    let snap = session.metrics.snapshot();
    assert_eq!(
        snap.counter("SparTen/work.nonzero"),
        Some(r1.breakdown.nonzero + r2.breakdown.nonzero)
    );
    assert_eq!(
        snap.counter_sum("SparTen/stall."),
        r1.breakdown.intra + r1.breakdown.inter + r2.breakdown.intra + r2.breakdown.inter
    );
    // Both layers' cluster tracks exist, prefixed per layer.
    let names = session.recorder.process_names();
    assert!(names.iter().any(|n| n == "l1:SparTen"));
    assert!(names.iter().any(|n| n == "l2:SparTen"));
}

#[test]
fn trace_counters_match_log_utilization() {
    let cfg = test_config();
    let w = test_workload(17);
    let tel = Telemetry::new();
    let log = trace_cluster_telemetry(
        &w,
        &cfg,
        sparten_core::balance::BalanceMode::GbS,
        4,
        Some(&tel),
    );
    let plain = trace_cluster(&w, &cfg, sparten_core::balance::BalanceMode::GbS, 4);
    assert_eq!(log, plain, "telemetry changed the trace log");
    let snap = tel.metrics.snapshot();
    let useful = snap.counter("Trace-GB-S/trace.useful_slots").expect("useful") as f64;
    let barrier = snap.counter("Trace-GB-S/trace.barrier_slots").expect("barrier") as f64;
    assert!((useful / barrier - log.utilization()).abs() < 1e-12);
    assert!(!tel.recorder.events().is_empty());
}
