//! Per-chunk execution traces: Figure 6 as data.
//!
//! The paper's Figure 6 illustrates greedy balancing with per-unit
//! useful/wasted cycle strips across chunk barriers. This module records
//! exactly that from the work model — one event per (position, group,
//! chunk) with every unit's work and the barrier max — and renders the
//! strips as text, so any layer's balance behaviour can be inspected rather
//! than inferred from aggregates.

use sparten_core::balance::{BalanceMode, LayerBalance};
use sparten_nn::generate::Workload;
use sparten_telemetry::Telemetry;

use crate::config::SimConfig;
use crate::probe::Probe;
use crate::workmodel::MaskModel;

/// One chunk barrier's record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkEvent {
    /// Output-position index within the traced slice.
    pub position: usize,
    /// Filter-group index.
    pub group: usize,
    /// Chunk index within the window.
    pub chunk: usize,
    /// Each unit's useful cycles for this chunk.
    pub unit_work: Vec<u32>,
    /// The barrier: the slowest unit's work.
    pub barrier: u32,
}

impl ChunkEvent {
    /// Idle unit-cycles exposed by this barrier.
    pub fn idle(&self) -> u64 {
        self.unit_work
            .iter()
            .map(|&w| (self.barrier - w) as u64)
            .sum()
    }
}

/// A recorded trace of one cluster's first `positions` output cells.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterTraceLog {
    /// The chunk events in execution order.
    pub events: Vec<ChunkEvent>,
    /// Units in the traced cluster.
    pub units: usize,
}

impl ClusterTraceLog {
    /// Overall utilization across the trace (Figure 6's shaded fraction).
    pub fn utilization(&self) -> f64 {
        let useful: u64 = self
            .events
            .iter()
            .map(|e| e.unit_work.iter().map(|&w| w as u64).sum::<u64>())
            .sum();
        let wall: u64 = self
            .events
            .iter()
            .map(|e| e.barrier as u64 * self.units as u64)
            .sum();
        if wall == 0 {
            1.0
        } else {
            useful as f64 / wall as f64
        }
    }

    /// Renders the first `max_events` barriers as per-unit strips:
    /// `#` useful cycles, `.` idle-at-barrier cycles (scaled to `width`
    /// columns per barrier).
    pub fn render(&self, max_events: usize, width: usize) -> String {
        let mut out = String::new();
        for e in self.events.iter().take(max_events) {
            out.push_str(&format!(
                "pos {:>3} group {:>2} chunk {:>3} (barrier {:>3}):\n",
                e.position, e.group, e.chunk, e.barrier
            ));
            for (u, &w) in e.unit_work.iter().enumerate() {
                let scale = |v: u32| {
                    if e.barrier == 0 {
                        0
                    } else {
                        (v as usize * width).div_ceil(e.barrier as usize)
                    }
                };
                let useful = scale(w);
                out.push_str(&format!(
                    "  u{:<2} {}{}\n",
                    u,
                    "#".repeat(useful),
                    ".".repeat(width.saturating_sub(useful))
                ));
            }
        }
        out
    }
}

/// Traces the first cluster's first `max_positions` output cells under the
/// given balance mode.
pub fn trace_cluster(
    workload: &Workload,
    config: &SimConfig,
    mode: BalanceMode,
    max_positions: usize,
) -> ClusterTraceLog {
    trace_cluster_telemetry(workload, config, mode, max_positions, None)
}

/// The telemetry scope a balance mode's trace records under.
fn trace_scope(mode: BalanceMode) -> &'static str {
    match mode {
        BalanceMode::None => "Trace-no-GB",
        BalanceMode::GbS => "Trace-GB-S",
        BalanceMode::GbH => "Trace-GB-H",
        BalanceMode::GbSNoColloc => "Trace-GB-S-nocolloc",
    }
}

/// [`trace_cluster`] with an optional telemetry session: every chunk
/// barrier is additionally emitted through the recorder — one thread track
/// per compute unit, one span per unit per barrier (Figure 6's strips as a
/// Perfetto timeline) — plus `trace.useful_slots` / `trace.barrier_slots`
/// counters whose ratio is exactly [`ClusterTraceLog::utilization`].
pub fn trace_cluster_telemetry(
    workload: &Workload,
    config: &SimConfig,
    mode: BalanceMode,
    max_positions: usize,
    tel: Option<&Telemetry>,
) -> ClusterTraceLog {
    let shape = &workload.shape;
    let units = config.accel.cluster.compute_units;
    let chunk_size = config.accel.cluster.chunk_size;
    let model = MaskModel::new(workload, chunk_size);
    let balance = LayerBalance::new(&workload.filters, units, chunk_size, mode);
    let chunks = model.chunks_per_window();
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let positions = (oh * ow).min(max_positions);

    let probe = tel.map(|t| {
        let p = Probe::new(t, trace_scope(mode));
        for u in 0..units {
            p.thread(u as u32, &format!("unit{u}"));
        }
        p
    });
    let mut now = 0u64; // barrier-aligned trace clock
    let mut useful_slots = 0u64;
    let mut barrier_slots = 0u64;

    let mut events = Vec::new();
    for p in 0..positions {
        let (ox, oy) = (p % oh, p / oh);
        for (g, group) in balance.groups.iter().enumerate() {
            for c in 0..chunks {
                let per_unit: &[Vec<usize>] = if group.per_chunk_cu.is_empty() {
                    &group.per_cu
                } else {
                    &group.per_chunk_cu[c]
                };
                let mut unit_work = vec![0u32; units];
                for (u, slots) in per_unit.iter().enumerate() {
                    for &f in slots {
                        unit_work[u] += model.chunk_work(ox, oy, f, c);
                    }
                }
                let barrier = unit_work.iter().copied().max().unwrap_or(0);
                if let Some(pr) = &probe {
                    for (u, &w) in unit_work.iter().enumerate() {
                        useful_slots += w as u64;
                        if w > 0 {
                            pr.span(
                                u as u32,
                                "chunk",
                                now,
                                w as u64,
                                &[("pos", p as u64), ("group", g as u64), ("chunk", c as u64)],
                            );
                        }
                    }
                    if barrier > 0 {
                        pr.instant(0, "barrier", now + barrier as u64, &[]);
                    }
                    now += barrier as u64;
                    barrier_slots += barrier as u64 * units as u64;
                }
                events.push(ChunkEvent {
                    position: p,
                    group: g,
                    chunk: c,
                    unit_work,
                    barrier,
                });
            }
        }
    }
    if let Some(pr) = &probe {
        pr.count("trace.useful_slots", useful_slots);
        pr.count("trace.barrier_slots", barrier_slots);
    }
    ClusterTraceLog { events, units }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    fn setup() -> (Workload, SimConfig) {
        let shape = ConvShape::new(64, 6, 6, 3, 16, 1, 1);
        let w = workload(&shape, 0.4, 0.35, 17);
        let mut cfg = SimConfig::small();
        cfg.accel.cluster.compute_units = 4;
        (w, cfg)
    }

    #[test]
    fn trace_covers_positions_groups_chunks() {
        let (w, cfg) = setup();
        let log = trace_cluster(&w, &cfg, BalanceMode::None, 3);
        // 3 positions × 4 groups (16 filters / 4 units) × 9 chunks.
        assert_eq!(log.events.len(), 3 * 4 * 9);
        assert!(log.events.iter().all(|e| e.unit_work.len() == 4));
    }

    #[test]
    fn barrier_is_the_unit_maximum() {
        let (w, cfg) = setup();
        let log = trace_cluster(&w, &cfg, BalanceMode::GbS, 2);
        for e in &log.events {
            assert_eq!(e.barrier, *e.unit_work.iter().max().expect("units"));
            assert_eq!(
                e.idle(),
                e.unit_work
                    .iter()
                    .map(|&x| (e.barrier - x) as u64)
                    .sum::<u64>()
            );
        }
    }

    #[test]
    fn gb_raises_traced_utilization() {
        let (w, cfg) = setup();
        let plain = trace_cluster(&w, &cfg, BalanceMode::None, 6).utilization();
        let gbh = trace_cluster(&w, &cfg, BalanceMode::GbH, 6).utilization();
        assert!(gbh > plain, "GB-H {gbh} !> none {plain}");
    }

    #[test]
    fn render_produces_one_strip_per_unit() {
        let (w, cfg) = setup();
        let log = trace_cluster(&w, &cfg, BalanceMode::GbS, 1);
        let text = log.render(2, 20);
        // Two events × (1 header + 4 units) lines.
        assert_eq!(text.lines().count(), 2 * 5);
        assert!(text.contains('#') || text.contains('.'));
    }
}
