//! Cycle-level model of the dense (TPU-like) baseline.
//!
//! §4: "For the dense accelerator, the simulator captures the zero
//! computations, which provide opportunity for the sparse architectures,
//! without imposing sparse computation overheads (i.e., inner-join,
//! permutation network, and output compaction)." Every compute unit streams
//! one output cell's full `k²·d` multiply-accumulates; units within a
//! cluster are in lockstep on equal work, so the only losses are idle units
//! when filters run out and inter-cluster slack from uneven spatial slices.

use sparten_nn::generate::Workload;
use sparten_telemetry::{StallCause, Telemetry};

use crate::breakdown::{Breakdown, OpCounts, SimResult, Traffic};
use crate::config::SimConfig;
use crate::probe::Probe;
use crate::workmodel::MaskModel;

/// Simulates one layer on the dense baseline.
pub fn simulate_dense(workload: &Workload, model: &MaskModel, config: &SimConfig) -> SimResult {
    simulate_dense_telemetry(workload, model, config, None)
}

/// [`simulate_dense`] with an optional telemetry session.
pub fn simulate_dense_telemetry(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    tel: Option<&Telemetry>,
) -> SimResult {
    let shape = &workload.shape;
    let units = config.accel.cluster.compute_units;
    let num_clusters = config.accel.num_clusters;
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let positions = oh * ow;
    let work_per_output = (shape.kernel * shape.kernel * shape.in_channels) as u64;
    let num_groups = shape.num_filters.div_ceil(units);

    let mut cluster_cycles = vec![0u64; num_clusters];
    let mut cluster_busy = vec![0u64; num_clusters];
    for cluster in 0..num_clusters {
        let lo = positions * cluster / num_clusters;
        let hi = positions * (cluster + 1) / num_clusters;
        let slice = (hi - lo) as u64;
        // Each group of up to `units` filters takes `work_per_output` cycles
        // per position; partially filled groups leave units idle.
        cluster_cycles[cluster] = slice * num_groups as u64 * work_per_output;
        cluster_busy[cluster] = slice * shape.num_filters as u64 * work_per_output;
    }

    let makespan = cluster_cycles.iter().copied().max().unwrap_or(0);
    let total_units = (units * num_clusters) as u64;
    let total_macs: u64 = cluster_busy.iter().sum();
    let nonzero = model.total_sparse_macs();
    let zero = total_macs - nonzero;

    let mut intra = 0u64;
    let mut inter = 0u64;
    for c in 0..num_clusters {
        intra += cluster_cycles[c] * units as u64 - cluster_busy[c];
        inter += (makespan - cluster_cycles[c]) * units as u64;
    }

    let traffic = dense_traffic(workload, model, config);
    let memory_cycles = (traffic.total_bytes() / config.memory.bytes_per_cycle).ceil() as u64;

    if let Some(t) = tel {
        let probe = Probe::new(t, "Dense");
        for c in 0..num_clusters {
            probe.thread(c as u32, &format!("cluster{c}"));
            probe.span(
                c as u32,
                "cluster",
                0,
                cluster_cycles[c],
                &[("busy", cluster_busy[c])],
            );
            if cluster_cycles[c] > 0 {
                probe.gauge(
                    "occupancy.cluster_util",
                    cluster_busy[c] as f64 / (cluster_cycles[c] * units as u64) as f64,
                );
            }
        }
        probe.work(nonzero, zero);
        // Dense lockstep clusters have exactly one intra loss: partially
        // filled filter groups leaving units idle.
        probe.stall(StallCause::UnitUnderfill, intra);
        probe.stall(StallCause::ClusterIdle, inter);
        probe.traffic(&traffic);
        probe.gauge("occupancy.makespan_cycles", makespan as f64);
    }

    SimResult {
        scheme: "Dense",
        compute_cycles: makespan,
        memory_cycles,
        total_units,
        breakdown: Breakdown {
            nonzero,
            zero,
            intra,
            inter,
        },
        traffic,
        ops: OpCounts {
            macs_nonzero: nonzero,
            macs_zero: zero,
            buffer_accesses: 3 * total_macs,
            prefix_ops: 0,
            encoder_ops: 0,
            permute_values: 0,
            compact_ops: 0,
            crossbar_ops: 0,
        },
    }
}

/// Dense traffic: every value travels, zeros included, with no metadata.
fn dense_traffic(workload: &Workload, model: &MaskModel, config: &SimConfig) -> Traffic {
    let shape = &workload.shape;
    let elem = config.memory.element_bytes as f64;
    let batch = config.memory.batch as f64;
    let input_cells = shape.input_cells() as f64;
    let weight_cells = shape.weight_cells() as f64;
    let out_cells = shape.num_outputs() as f64;

    let input_zero = input_cells - model.input_nnz() as f64;
    let filter_zero = (weight_cells - model.weight_nnz() as f64) / batch;
    let output_zero = out_cells * (1.0 - config.memory.output_density);

    Traffic {
        input_bytes: input_cells * elem,
        filter_bytes: weight_cells * elem / batch,
        output_bytes: out_cells * elem,
        zero_value_bytes: (input_zero + filter_zero + output_zero) * elem,
        metadata_bytes: 0.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    fn test_config() -> SimConfig {
        let mut c = SimConfig::small();
        c.accel.num_clusters = 2;
        c.accel.cluster.compute_units = 4;
        c
    }

    #[test]
    fn accounting_identity_holds() {
        let shape = ConvShape::new(32, 6, 6, 3, 6, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 1);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_dense(&w, &m, &cfg);
        assert!(r.accounting_holds());
    }

    #[test]
    fn dense_cycles_match_formula() {
        // 6 filters on 4-unit clusters → 2 groups; balanced 6x6 output over
        // 2 clusters → 18 positions each.
        let shape = ConvShape::new(32, 6, 6, 3, 6, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 2);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_dense(&w, &m, &cfg);
        assert_eq!(r.compute_cycles, 18 * 2 * (9 * 32) as u64);
    }

    #[test]
    fn zero_component_dominates_sparse_layers() {
        let shape = ConvShape::new(64, 6, 6, 3, 8, 1, 1);
        let w = workload(&shape, 0.2, 0.2, 3);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_dense(&w, &m, &cfg);
        assert!(r.breakdown.zero > r.breakdown.nonzero);
    }

    #[test]
    fn dense_moves_zero_values() {
        let shape = ConvShape::new(64, 6, 6, 3, 8, 1, 1);
        let w = workload(&shape, 0.3, 0.3, 4);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_dense(&w, &m, &cfg);
        assert!(r.traffic.zero_value_bytes > 0.0);
        assert_eq!(r.traffic.metadata_bytes, 0.0);
    }

    #[test]
    fn uneven_positions_create_inter_cluster_loss() {
        // 5x5 output = 25 positions over 2 clusters → 12/13 split.
        let shape = ConvShape::new(16, 5, 5, 1, 4, 1, 0);
        let w = workload(&shape, 0.5, 0.5, 5);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_dense(&w, &m, &cfg);
        assert!(r.breakdown.inter > 0);
    }
}
