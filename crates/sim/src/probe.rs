//! Simulator-side telemetry probes.
//!
//! A [`Probe`] scopes a [`Telemetry`] session to one scheme: every metric
//! it records is named `<scope>/<leaf>` (see the naming table in
//! `sparten_telemetry`), and every span lands on a process track named
//! after the scope. Simulators take an `Option<&Telemetry>` and build a
//! probe only when it is `Some`, so the uninstrumented path stays
//! allocation- and atomics-free.
//!
//! [`StallTally`] accumulates the stall-cause decomposition in plain local
//! integers inside the hot loops and emits counters once per cluster; the
//! decomposition is constructed so each cluster's causes sum *exactly* to
//! that cluster's `intra` breakdown term, which is what lets
//! `sparten_telemetry::check_breakdown` reconcile without tolerance.

use std::sync::Arc;

use sparten_telemetry::{
    check_breakdown, BreakdownExpectation, Histogram, ReconcileError, StallCause, Telemetry,
};

use crate::breakdown::{SimResult, Traffic};

/// Maximum per-position spans sampled per cluster/PE track, so timelines
/// stay readable (and bounded) on large layers.
pub const POSITION_SPAN_LIMIT: usize = 32;

/// A telemetry session scoped to one scheme.
#[derive(Debug)]
pub struct Probe<'a> {
    tel: &'a Telemetry,
    scope: &'static str,
    pid: u32,
}

impl<'a> Probe<'a> {
    /// Opens a probe for `scope`, allocating its process track.
    pub fn new(tel: &'a Telemetry, scope: &'static str) -> Self {
        let pid = tel.recorder.alloc_process(scope);
        Probe { tel, scope, pid }
    }

    /// The scheme label this probe scopes to.
    pub fn scope(&self) -> &'static str {
        self.scope
    }

    fn name(&self, leaf: &str) -> String {
        format!("{}/{leaf}", self.scope)
    }

    /// Adds `n` to counter `<scope>/<leaf>` (interning it even when zero,
    /// so taxonomy placeholders show up in reports).
    pub fn count(&self, leaf: &str, n: u64) {
        self.tel.metrics.counter(&self.name(leaf)).add(n);
    }

    /// Adds `n` MAC-slot cycles to the stall counter for `cause`.
    pub fn stall(&self, cause: StallCause, n: u64) {
        self.tel
            .metrics
            .counter(&cause.metric_name(self.scope))
            .add(n);
    }

    /// Records the executed-work counters the invariant checker reads.
    pub fn work(&self, nonzero: u64, zero: u64) {
        self.count("work.nonzero", nonzero);
        self.count("work.zero", zero);
    }

    /// Records per-tensor DRAM traffic (bytes, rounded down).
    pub fn traffic(&self, t: &Traffic) {
        self.count("dram.input_bytes", t.input_bytes as u64);
        self.count("dram.filter_bytes", t.filter_bytes as u64);
        self.count("dram.output_bytes", t.output_bytes as u64);
        self.count("dram.zero_value_bytes", t.zero_value_bytes as u64);
        self.count("dram.metadata_bytes", t.metadata_bytes as u64);
    }

    /// Observes gauge `<scope>/<leaf>`.
    pub fn gauge(&self, leaf: &str, v: f64) {
        self.tel.metrics.gauge(&self.name(leaf)).observe(v);
    }

    /// Returns histogram `<scope>/<leaf>` for hot-loop recording.
    pub fn histogram(&self, leaf: &str) -> Arc<Histogram> {
        self.tel.metrics.histogram(&self.name(leaf))
    }

    /// Names thread track `tid` on this probe's process.
    pub fn thread(&self, tid: u32, name: &str) {
        self.tel.recorder.name_thread(self.pid, tid, name);
    }

    /// Records a span on thread `tid`.
    pub fn span(&self, tid: u32, name: &'static str, ts: u64, dur: u64, args: &[(&'static str, u64)]) {
        self.tel.recorder.span(self.pid, tid, name, ts, dur, args);
    }

    /// Records an instant event on thread `tid`.
    pub fn instant(&self, tid: u32, name: &'static str, ts: u64, args: &[(&'static str, u64)]) {
        self.tel.recorder.instant(self.pid, tid, name, ts, args);
    }
}

/// Local accumulator for the stall-cause decomposition of one cluster (or
/// one PE grid): plain integers in the hot loop, one counter emission at
/// the end.
#[derive(Debug, Default, Clone, Copy)]
pub struct StallTally {
    /// [`StallCause::EmptyMaskAnd`] slot-cycles.
    pub empty_mask_and: u64,
    /// [`StallCause::PrefixEncoderWait`] slot-cycles.
    pub prefix_encoder_wait: u64,
    /// [`StallCause::ChunkBarrierIdle`] slot-cycles.
    pub chunk_barrier_idle: u64,
    /// [`StallCause::UnitUnderfill`] slot-cycles.
    pub unit_underfill: u64,
    /// [`StallCause::MultiplierQuantization`] slot-cycles.
    pub multiplier_quantization: u64,
    /// [`StallCause::ClusterIdle`] slot-cycles.
    pub cluster_idle: u64,
    /// [`StallCause::PeBarrierIdle`] slot-cycles.
    pub pe_barrier_idle: u64,
}

impl StallTally {
    /// Total intra-cluster slot-cycles tallied.
    pub fn intra(&self) -> u64 {
        self.empty_mask_and
            + self.prefix_encoder_wait
            + self.chunk_barrier_idle
            + self.unit_underfill
            + self.multiplier_quantization
    }

    /// Total inter-cluster slot-cycles tallied.
    pub fn inter(&self) -> u64 {
        self.cluster_idle + self.pe_barrier_idle
    }

    /// Emits the non-zero causes as counters on `probe`.
    pub fn emit(&self, probe: &Probe<'_>) {
        for (cause, n) in [
            (StallCause::EmptyMaskAnd, self.empty_mask_and),
            (StallCause::PrefixEncoderWait, self.prefix_encoder_wait),
            (StallCause::ChunkBarrierIdle, self.chunk_barrier_idle),
            (StallCause::UnitUnderfill, self.unit_underfill),
            (StallCause::MultiplierQuantization, self.multiplier_quantization),
            (StallCause::ClusterIdle, self.cluster_idle),
            (StallCause::PeBarrierIdle, self.pe_barrier_idle),
        ] {
            if n > 0 {
                probe.stall(cause, n);
            }
        }
    }
}

/// Checks that `local`'s counters reconcile exactly with `result`'s
/// breakdown, then folds `local` into `session` (prefixing its Perfetto
/// tracks with `track_prefix`).
///
/// This is the load-bearing hook of the telemetry subsystem: the stall
/// decomposition is accumulated independently inside the simulator loops,
/// so a missed attribution or double-counted slot surfaces here instead of
/// silently skewing reports. Running each simulation into its own local
/// session keeps the check exact even when many layers record into one
/// shared session concurrently.
pub fn reconcile_and_merge(
    local: Telemetry,
    result: &SimResult,
    session: &Telemetry,
    track_prefix: &str,
) -> Result<(), ReconcileError> {
    let snapshot = local.metrics.snapshot();
    check_breakdown(
        &snapshot,
        result.scheme,
        &BreakdownExpectation {
            nonzero: result.breakdown.nonzero,
            zero: result.breakdown.zero,
            intra: result.breakdown.intra,
            inter: result.breakdown.inter,
            compute_cycles: result.compute_cycles,
            units: result.total_units,
        },
    )?;
    session.merge(local, track_prefix);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_scopes_names_and_tracks() {
        let tel = Telemetry::new();
        let p = Probe::new(&tel, "SparTen");
        p.count("work.nonzero", 7);
        p.gauge("occupancy.cluster_util", 0.5);
        p.histogram("hist.chunk_barrier").record(3);
        p.thread(0, "cluster0");
        p.span(0, "cluster", 0, 10, &[("busy", 8)]);
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("SparTen/work.nonzero"), Some(7));
        let events = tel.recorder.events();
        assert_eq!(events.len(), 1);
        assert_eq!(
            tel.recorder.process_name(events[0].pid).as_deref(),
            Some("SparTen")
        );
    }

    #[test]
    fn tally_emits_nonzero_causes_and_sums() {
        let tel = Telemetry::new();
        let p = Probe::new(&tel, "S");
        let tally = StallTally {
            empty_mask_and: 2,
            prefix_encoder_wait: 3,
            chunk_barrier_idle: 0,
            unit_underfill: 5,
            multiplier_quantization: 0,
            cluster_idle: 11,
            pe_barrier_idle: 0,
        };
        assert_eq!(tally.intra(), 10);
        assert_eq!(tally.inter(), 11);
        tally.emit(&p);
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter_sum("S/stall.intra."), 10);
        assert_eq!(snap.counter_sum("S/stall.inter."), 11);
        // Zero causes are not interned by the tally.
        assert_eq!(snap.counter("S/stall.intra.chunk_barrier_idle"), None);
    }
}
