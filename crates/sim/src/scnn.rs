//! Cycle-level simulator for SCNN's Cartesian-product dataflow.
//!
//! Model (§2.1 of the paper): the input plane is partitioned spatially
//! across a √PEs × √PEs grid (input stationary); each PE works through its
//! region in ≤6×6 sub-tiles. For every (channel, filter-group) step the PE
//! fetches I non-zero inputs and F non-zero weights per cycle-batch through
//! its 4×4 multiplier array, taking `⌈I/4⌉·⌈F/4⌉` cycles and computing all
//! I·F products, which a crossbar scatters to accumulators. The filter-group
//! broadcast imposes an inter-PE barrier at every (channel, group) step.
//! Per-region non-zero counts come from [`MaskModel`], whose inner loops
//! run on the word-parallel `sparten_arch::fast` kernels.
//!
//! Captured overheads, matching §2.1.1 and the Figure 10–12 decomposition:
//!
//! * **intra-PE**: idle multiplier slots from the `⌈·/4⌉` quantization when
//!   a tile or filter group has too few non-zeros (natural sparsity, small
//!   tiles, 1×1 filters);
//! * **inter-PE**: barrier-exposed imbalance from density variation and
//!   truncated edge tiles (plus wholly idle PEs when the plane is small);
//! * **stride**: the Cartesian product assumes unit stride; for stride-s
//!   convolutions all products are computed and the ~1−1/s² that land
//!   between outputs are discarded (counted as zero/wasted compute) —
//!   AlexNet Layer0's pathology;
//! * border products that fall outside the output map are likewise counted
//!   as wasted.

use sparten_core::SimError;
use sparten_faults::{UnitFault, UnitFaultSpec};
use sparten_nn::generate::Workload;
use sparten_telemetry::{StallCause, Telemetry};

use crate::breakdown::{Breakdown, OpCounts, SimResult, Traffic};
use crate::config::SimConfig;
use crate::probe::{Probe, StallTally};
use crate::workmodel::MaskModel;

/// Sparsity handling for the SCNN variants of §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScnnVariant {
    /// Full SCNN: both inputs and filters sparse.
    Full,
    /// SCNN-one-sided: input maps sparse, filters dense.
    OneSided,
    /// SCNN-dense: everything dense (inherits the dataflow overheads).
    Dense,
}

impl ScnnVariant {
    fn name(self) -> &'static str {
        match self {
            ScnnVariant::Full => "SCNN",
            ScnnVariant::OneSided => "SCNN-one-sided",
            ScnnVariant::Dense => "SCNN-dense",
        }
    }
}

/// Splits `n` cells into `parts` contiguous, nearly equal segments (some may
/// be empty when `n < parts`).
fn segments(n: usize, parts: usize) -> Vec<(usize, usize)> {
    (0..parts)
        .map(|i| {
            let lo = n * i / parts;
            let hi = n * (i + 1) / parts;
            (lo, hi - lo)
        })
        .collect()
}

/// Splits a segment of length `len` into sub-tiles of at most `cap`.
fn subtiles(start: usize, len: usize, cap: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < len {
        let piece = cap.min(len - off);
        out.push((start + off, piece));
        off += piece;
    }
    out
}

/// Simulates one layer on SCNN.
pub fn simulate_scnn(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    variant: ScnnVariant,
) -> SimResult {
    simulate_scnn_telemetry(workload, model, config, variant, None)
}

/// [`simulate_scnn`] with an optional telemetry session.
pub fn simulate_scnn_telemetry(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    variant: ScnnVariant,
    tel: Option<&Telemetry>,
) -> SimResult {
    simulate_scnn_inner(workload, model, config, variant, tel, None)
        .expect("fault-free simulation cannot fail")
}

/// [`simulate_scnn`] with a stuck/slow PE fault injected.
///
/// The victim is `fault.cluster` interpreted as the flat PE index
/// (`fault.unit` is ignored — SCNN's barrier is PE-granular). A slow PE
/// stretches only the per-step barrier, leaving work counts and the
/// cycle-accounting identity intact; a stuck PE holding nonzero work
/// returns [`SimError::StuckUnit`].
pub fn simulate_scnn_faulted(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    variant: ScnnVariant,
    fault: &UnitFaultSpec,
    tel: Option<&Telemetry>,
) -> Result<SimResult, SimError> {
    simulate_scnn_inner(workload, model, config, variant, tel, Some(fault))
}

fn simulate_scnn_inner(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    variant: ScnnVariant,
    tel: Option<&Telemetry>,
    fault: Option<&UnitFaultSpec>,
) -> Result<SimResult, SimError> {
    let shape = &workload.shape;
    let scnn = &config.scnn;
    let grid = (scnn.num_pes as f64).sqrt() as usize;
    assert_eq!(grid * grid, scnn.num_pes, "PE count must be a square");
    let f_edge = scnn.mult_edge as u64;
    let i_edge = scnn.mult_edge as u64;
    let d = shape.in_channels;
    let k = shape.kernel;
    let groups = shape.num_filters.div_ceil(scnn.output_group);

    // Per-(sub-tile, channel) input non-zero counts. Sub-tiles are the
    // ≤tile×tile pieces of each PE's region; `tile_owner[t]` is the PE.
    let rows = segments(shape.in_height, grid);
    let cols = segments(shape.in_width, grid);
    let mut tile_bounds: Vec<(usize, usize, usize, usize)> = Vec::new();
    let mut tile_owner: Vec<usize> = Vec::new();
    for (pi, &(rx, rl)) in rows.iter().enumerate() {
        for (pj, &(cy, cl)) in cols.iter().enumerate() {
            for (sx, sl) in subtiles(rx, rl, scnn.tile) {
                for (sy, swl) in subtiles(cy, cl, scnn.tile) {
                    tile_bounds.push((sx, sl, sy, swl));
                    tile_owner.push(pi * grid + pj);
                }
            }
        }
    }
    let num_tiles = tile_bounds.len();
    let mut tile_channel_nnz = vec![0u32; num_tiles * d];
    for (t, &(sx, sl, sy, swl)) in tile_bounds.iter().enumerate() {
        for y in sy..sy + swl {
            for x in sx..sx + sl {
                for (z, &v) in workload.input.fiber(x, y).iter().enumerate() {
                    let dense_input = variant == ScnnVariant::Dense;
                    if v != 0.0 || dense_input {
                        tile_channel_nnz[t * d + z] += 1;
                    }
                }
            }
        }
    }

    // Per-(group, channel) filter non-zero counts (summed over the group's
    // filters and all k² taps).
    let mut group_channel_nnz = vec![0u32; groups * d];
    for (f, filter) in workload.filters.iter().enumerate() {
        let g = f / scnn.output_group;
        let dense_filters = matches!(variant, ScnnVariant::OneSided | ScnnVariant::Dense);
        for fy in 0..k {
            for fx in 0..k {
                for (z, &v) in filter.weights().fiber(fx, fy).iter().enumerate() {
                    if v != 0.0 || dense_filters {
                        group_channel_nnz[g * d + z] += 1;
                    }
                }
            }
        }
    }

    // Main timing loop: one barrier per (group, channel).
    let probe = tel.map(|t| Probe::new(t, variant.name()));
    let hist_step = probe.as_ref().map(|p| p.histogram("hist.step_cycles"));
    let mut tally = StallTally::default();

    let mut makespan = 0u64;
    let mut busy_slots = vec![0u64; scnn.num_pes];
    let mut pe_cycles_total = vec![0u64; scnn.num_pes];
    let mut total_products = 0u64;
    let slots_per_cycle = (scnn.mult_edge * scnn.mult_edge) as u64;
    let mut pe_cycles = vec![0u64; scnn.num_pes];
    for g in 0..groups {
        for c in 0..d {
            // One (group, channel) barrier is SCNN's chunk batch; honor a
            // cooperative cancellation here like the SparTen inner loop.
            sparten_telemetry::cancel::checkpoint();
            let f_nnz = group_channel_nnz[g * d + c] as u64;
            pe_cycles.iter_mut().for_each(|v| *v = 0);
            if f_nnz > 0 {
                let f_batches = f_nnz.div_ceil(f_edge);
                for (t, &owner) in tile_owner.iter().enumerate() {
                    let i_nnz = tile_channel_nnz[t * d + c] as u64;
                    if i_nnz == 0 {
                        continue;
                    }
                    let cycles = i_nnz.div_ceil(i_edge) * f_batches;
                    pe_cycles[owner] += cycles;
                    total_products += i_nnz * f_nnz;
                    if let Some(h) = &hist_step {
                        // Idle multiplier-array slots from the ⌈I/4⌉·⌈F/4⌉
                        // quantization of this tile's batch.
                        tally.multiplier_quantization +=
                            cycles * slots_per_cycle - i_nnz * f_nnz;
                        h.record(cycles);
                    }
                }
            }
            // The (group, channel) barrier advances at the slowest PE's
            // *latency* — a slow victim stretches only the barrier, its
            // busy-slot accounting keeps the true cycle count.
            let mut barrier = 0u64;
            for (pe, &cy) in pe_cycles.iter().enumerate() {
                let mut latency = cy;
                if let Some(fa) = fault {
                    if fa.cluster == pe {
                        match fa.fault {
                            UnitFault::Slow(k) => latency = cy * k.max(1),
                            UnitFault::Stuck => {
                                if cy > 0 {
                                    return Err(SimError::StuckUnit {
                                        cluster: pe,
                                        unit: 0,
                                    });
                                }
                            }
                        }
                    }
                }
                barrier = barrier.max(latency);
            }
            makespan += barrier;
            for (pe, &cy) in pe_cycles.iter().enumerate() {
                busy_slots[pe] += cy * slots_per_cycle;
                pe_cycles_total[pe] += cy;
            }
        }
    }

    // Useful MACs are the true stride-aware sparse MACs; the Cartesian
    // product's surplus (stride discard + border waste + zero operands in
    // the one-sided/dense variants) is the "zero" component.
    let nonzero = model.total_sparse_macs().min(total_products);
    let zero = total_products - nonzero;
    let total_busy: u64 = busy_slots.iter().sum();
    let intra = total_busy - total_products;
    let inter: u64 = pe_cycles_total
        .iter()
        .map(|&cy| (makespan - cy) * slots_per_cycle)
        .sum();

    let traffic = scnn_traffic(workload, model, config, variant);
    let memory_cycles = (traffic.total_bytes() / config.memory.bytes_per_cycle).ceil() as u64;
    let total_units = (scnn.num_pes as u64) * slots_per_cycle;

    if let Some(pr) = &probe {
        for (pe, &cy) in pe_cycles_total.iter().enumerate() {
            pr.thread(pe as u32, &format!("pe{pe}"));
            pr.span(pe as u32, "pe", 0, cy, &[("busy_slots", busy_slots[pe])]);
            if makespan > 0 {
                pr.gauge(
                    "occupancy.pe_util",
                    busy_slots[pe] as f64 / (makespan * slots_per_cycle) as f64,
                );
            }
        }
        debug_assert_eq!(tally.multiplier_quantization, intra);
        tally.pe_barrier_idle = inter;
        tally.emit(pr);
        pr.work(nonzero, zero);
        // Crossbar/accumulator-bank contention is not modelled (perfect
        // collector assumption); the taxonomy slot stays visible at zero.
        pr.stall(StallCause::OutputBackpressure, 0);
        pr.traffic(&traffic);
        pr.count("trace.products", total_products);
        pr.gauge("occupancy.makespan_cycles", makespan as f64);
    }

    Ok(SimResult {
        scheme: variant.name(),
        compute_cycles: makespan,
        memory_cycles,
        total_units,
        breakdown: Breakdown {
            nonzero,
            zero,
            intra,
            inter,
        },
        traffic,
        ops: OpCounts {
            macs_nonzero: nonzero,
            macs_zero: zero,
            buffer_accesses: 3 * total_products,
            prefix_ops: 0,
            encoder_ops: 0,
            permute_values: 0,
            compact_ops: shape.num_outputs() as u64,
            crossbar_ops: total_products,
        },
    })
}

/// SCNN traffic: CSR-style storage — values plus ~4-bit coordinates per
/// non-zero (half a byte of index metadata).
fn scnn_traffic(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    variant: ScnnVariant,
) -> Traffic {
    let shape = &workload.shape;
    let elem = config.memory.element_bytes as f64;
    let batch = config.memory.batch as f64;
    let idx = 0.5; // bytes of coordinate metadata per stored value
    let input_cells = shape.input_cells() as f64;
    let weight_cells = shape.weight_cells() as f64;
    let out_cells = shape.num_outputs() as f64;
    let input_nnz = model.input_nnz() as f64;
    let weight_nnz = model.weight_nnz() as f64;

    let (input_bytes, input_zero, input_meta) = if variant == ScnnVariant::Dense {
        (input_cells * elem, input_cells - input_nnz, 0.0)
    } else {
        (input_nnz * (elem + idx), 0.0, input_nnz * idx)
    };
    let (filter_bytes, filter_zero, filter_meta) = if variant == ScnnVariant::Full {
        (
            weight_nnz * (elem + idx) / batch,
            0.0,
            weight_nnz * idx / batch,
        )
    } else {
        (
            weight_cells * elem / batch,
            (weight_cells - weight_nnz) / batch,
            0.0,
        )
    };
    let out_nnz = out_cells * config.memory.output_density;
    let (output_bytes, output_meta) = if variant == ScnnVariant::Dense {
        (out_cells * elem, 0.0)
    } else {
        (out_nnz * (elem + idx), out_nnz * idx)
    };

    Traffic {
        input_bytes,
        filter_bytes,
        output_bytes,
        zero_value_bytes: (input_zero + filter_zero) * elem,
        metadata_bytes: input_meta + filter_meta + output_meta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    fn test_config() -> SimConfig {
        let mut c = SimConfig::small(); // 16 PEs, 4×4 grid
        c.accel.num_clusters = 2;
        c
    }

    fn unit_stride_workload() -> Workload {
        let shape = ConvShape::new(32, 12, 12, 3, 16, 1, 1);
        workload(&shape, 0.4, 0.35, 21)
    }

    #[test]
    fn accounting_identity_holds() {
        let w = unit_stride_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        for v in [ScnnVariant::Full, ScnnVariant::OneSided, ScnnVariant::Dense] {
            let r = simulate_scnn(&w, &m, &cfg, v);
            assert!(r.accounting_holds(), "{}: accounting broken", r.scheme);
        }
    }

    #[test]
    fn variant_ordering_full_beats_one_sided_beats_dense() {
        let w = unit_stride_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let full = simulate_scnn(&w, &m, &cfg, ScnnVariant::Full);
        let one = simulate_scnn(&w, &m, &cfg, ScnnVariant::OneSided);
        let dense = simulate_scnn(&w, &m, &cfg, ScnnVariant::Dense);
        assert!(full.cycles() < one.cycles());
        assert!(one.cycles() < dense.cycles());
    }

    #[test]
    fn slow_pe_preserves_work_but_stretches_makespan() {
        let w = unit_stride_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let clean = simulate_scnn(&w, &m, &cfg, ScnnVariant::Full);
        let fault = UnitFaultSpec {
            cluster: 0, // flat PE index for SCNN
            unit: 0,
            fault: UnitFault::Slow(5),
        };
        let slow = simulate_scnn_faulted(&w, &m, &cfg, ScnnVariant::Full, &fault, None)
            .expect("slow PE is not a detection failure");
        assert_eq!(slow.breakdown.nonzero, clean.breakdown.nonzero);
        assert_eq!(slow.breakdown.zero, clean.breakdown.zero);
        assert!(slow.compute_cycles > clean.compute_cycles);
        assert!(slow.accounting_holds());
    }

    #[test]
    fn stuck_pe_with_work_is_detected() {
        let w = unit_stride_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let fault = UnitFaultSpec {
            cluster: 0,
            unit: 0,
            fault: UnitFault::Stuck,
        };
        let err = simulate_scnn_faulted(&w, &m, &cfg, ScnnVariant::Full, &fault, None)
            .expect_err("a stuck PE holding work must surface as an error");
        assert!(matches!(
            err,
            sparten_core::SimError::StuckUnit { cluster: 0, unit: 0 }
        ));
    }

    #[test]
    fn fault_on_absent_pe_is_masked() {
        let w = unit_stride_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let clean = simulate_scnn(&w, &m, &cfg, ScnnVariant::Full);
        let fault = UnitFaultSpec {
            cluster: 9999,
            unit: 0,
            fault: UnitFault::Stuck,
        };
        let faulted = simulate_scnn_faulted(&w, &m, &cfg, ScnnVariant::Full, &fault, None)
            .expect("a fault outside the PE grid cannot fire");
        assert_eq!(faulted.compute_cycles, clean.compute_cycles);
        assert_eq!(faulted.breakdown, clean.breakdown);
    }

    #[test]
    fn non_unit_stride_wastes_products() {
        // Stride 2: ~3/4 of the Cartesian product is discarded.
        let shape = ConvShape::new(32, 12, 12, 3, 16, 2, 1);
        let w = workload(&shape, 0.4, 0.35, 22);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_scnn(&w, &m, &cfg, ScnnVariant::Full);
        assert!(
            r.breakdown.zero as f64 > 2.0 * r.breakdown.nonzero as f64,
            "zero {} vs nonzero {}",
            r.breakdown.zero,
            r.breakdown.nonzero
        );
    }

    #[test]
    fn small_planes_idle_pes() {
        // A 3×3 plane on a 4×4 PE grid: at most 9 PEs can be busy.
        let shape = ConvShape::new(64, 3, 3, 1, 16, 1, 0);
        let w = workload(&shape, 0.5, 0.4, 23);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_scnn(&w, &m, &cfg, ScnnVariant::Full);
        // Inter-PE loss must be at least the 7 idle PEs' share.
        let idle_share = r.breakdown.inter as f64 / r.breakdown.total() as f64;
        assert!(idle_share > 0.3, "idle share {idle_share}");
    }

    #[test]
    fn products_match_channel_sums_unit_stride() {
        // For unit stride, total products = Σ_c input_nnz_c × weight_nnz_c
        // (all groups). Check via the breakdown identity.
        let w = unit_stride_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_scnn(&w, &m, &cfg, ScnnVariant::Full);
        let d = w.shape.in_channels;
        let mut in_c = vec![0u64; d];
        for y in 0..w.shape.in_width {
            for x in 0..w.shape.in_height {
                for (z, &v) in w.input.fiber(x, y).iter().enumerate() {
                    if v != 0.0 {
                        in_c[z] += 1;
                    }
                }
            }
        }
        let mut w_c = vec![0u64; d];
        for f in &w.filters {
            for fy in 0..3 {
                for fx in 0..3 {
                    for (z, &v) in f.weights().fiber(fx, fy).iter().enumerate() {
                        if v != 0.0 {
                            w_c[z] += 1;
                        }
                    }
                }
            }
        }
        let expect: u64 = (0..d).map(|c| in_c[c] * w_c[c]).sum();
        assert_eq!(r.breakdown.nonzero + r.breakdown.zero, expect);
    }

    #[test]
    fn one_by_one_filters_underutilize_multipliers() {
        // 1×1 filters: few weights per (channel, group) → heavy ⌈F/4⌉ waste.
        let shape = ConvShape::new(128, 12, 12, 1, 16, 1, 0);
        let w = workload(&shape, 0.5, 0.35, 24);
        let cfg = test_config();
        let m = MaskModel::new(&w, 128);
        let r = simulate_scnn(&w, &m, &cfg, ScnnVariant::Full);
        let intra_share = r.breakdown.intra as f64 / r.breakdown.total() as f64;
        assert!(intra_share > 0.2, "intra share {intra_share}");
    }
}
