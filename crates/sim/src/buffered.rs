//! Bounded-buffer simulation: does buffering fix the load imbalance?
//!
//! §2.1.1/§3.3 argue the reuse-imbalance tension is *fundamental*: "the PE
//! holding a denser map would repeatedly take longer with most filters ...
//! No amount of buffering would address this imbalance." This module tests
//! that claim mechanically. The broadcast buffer is given depth `B`: a unit
//! may run up to `B` chunks ahead of the slowest unit instead of
//! barrier-synchronizing on every chunk. Within one filter group the same
//! unit holds the same (denser or sparser) filter for *every* input chunk,
//! so its deficit is systematic — deeper buffers smooth chunk-level noise
//! but converge to the densest unit's total work, which only greedy
//! balancing reduces. Group boundaries drain the pipeline (filters swap).

use sparten_core::balance::{BalanceMode, LayerBalance};
use sparten_nn::generate::Workload;

use crate::config::SimConfig;
use crate::workmodel::MaskModel;

/// Buffer depth: `Bounded(1)` is the strict per-chunk barrier the main
/// simulator models; `Unbounded` removes the coupling entirely within a
/// group.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BufferDepth {
    /// The broadcast may run at most this many chunks ahead.
    Bounded(usize),
    /// Unlimited run-ahead within a group.
    Unbounded,
}

/// Result of a bounded-buffer run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BufferedResult {
    /// Cluster compute cycles (slowest cluster).
    pub cycles: u64,
    /// Useful MAC cycles (identical across depths).
    pub useful: u64,
}

impl BufferedResult {
    /// Utilization at this depth.
    pub fn utilization(&self, units: usize) -> f64 {
        self.useful as f64 / (self.cycles * units as u64) as f64
    }
}

/// Simulates one layer with broadcast-buffer depth `depth`.
///
/// # Panics
///
/// Panics if `depth` is `Bounded(0)`.
pub fn simulate_buffered(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    mode: BalanceMode,
    depth: BufferDepth,
) -> BufferedResult {
    if let BufferDepth::Bounded(b) = depth {
        assert!(b > 0, "buffer depth must be positive");
    }
    let shape = &workload.shape;
    let units = config.accel.cluster.compute_units;
    let chunk_size = config.accel.cluster.chunk_size;
    let num_clusters = config.accel.num_clusters;
    let balance = LayerBalance::new(&workload.filters, units, chunk_size, mode);
    let chunks = model.chunks_per_window();
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let positions = oh * ow;

    let mut makespan = 0u64;
    let mut useful = 0u64;
    for cluster in 0..num_clusters {
        let lo = positions * cluster / num_clusters;
        let hi = positions * (cluster + 1) / num_clusters;
        let mut cluster_time = 0u64;
        for group in &balance.groups {
            // Per-unit completion times of the in-flight window, plus the
            // per-item issue gating: item k may issue once every unit has
            // finished item k − B.
            let mut unit_time = vec![0u64; units];
            // Ring buffer of "all units done with item k" times.
            let window = match depth {
                BufferDepth::Bounded(b) => b,
                BufferDepth::Unbounded => usize::MAX,
            };
            let mut done_ring: Vec<u64> = Vec::new(); // completion maxes, in item order
            let mut item = 0usize;
            for p in lo..hi {
                let (ox, oy) = (p % oh, p / oh);
                for c in 0..chunks {
                    let issue = if window != usize::MAX && item >= window {
                        done_ring[item - window]
                    } else {
                        0
                    };
                    let per_unit: &[Vec<usize>] = if group.per_chunk_cu.is_empty() {
                        &group.per_cu
                    } else {
                        &group.per_chunk_cu[c]
                    };
                    let mut item_done = 0u64;
                    for (u, slots) in per_unit.iter().enumerate().take(units) {
                        let mut w = 0u64;
                        for &f in slots {
                            w += model.chunk_work(ox, oy, f, c) as u64;
                        }
                        useful += w;
                        unit_time[u] = unit_time[u].max(issue) + w + 1;
                        item_done = item_done.max(unit_time[u]);
                    }
                    if window != usize::MAX {
                        done_ring.push(item_done);
                    }
                    item += 1;
                }
            }
            // Group boundary: drain (filters swap in).
            cluster_time += unit_time.iter().copied().max().unwrap_or(0);
        }
        makespan = makespan.max(cluster_time);
    }
    BufferedResult {
        cycles: makespan,
        useful,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sparten::{simulate_sparten, Sparsity};
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    fn setup() -> (Workload, SimConfig, MaskModel) {
        let shape = ConvShape::new(96, 8, 8, 3, 16, 1, 1);
        let w = workload(&shape, 0.35, 0.35, 29);
        let mut cfg = SimConfig::small();
        cfg.accel.num_clusters = 2;
        cfg.accel.cluster.compute_units = 8;
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        (w, cfg, m)
    }

    #[test]
    fn depth_one_matches_the_barrier_simulator() {
        let (w, cfg, m) = setup();
        let buffered = simulate_buffered(&w, &m, &cfg, BalanceMode::None, BufferDepth::Bounded(1));
        let barrier = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::None);
        // Same semantics: issue gated on everyone finishing the previous
        // chunk; +1 per chunk matches CHUNK_OVERHEAD.
        assert_eq!(buffered.cycles, barrier.compute_cycles);
    }

    #[test]
    fn deeper_buffers_never_hurt() {
        let (w, cfg, m) = setup();
        let mut last = u64::MAX;
        for depth in [1usize, 2, 4, 8, 32] {
            let r = simulate_buffered(&w, &m, &cfg, BalanceMode::None, BufferDepth::Bounded(depth));
            assert!(r.cycles <= last, "depth {depth}: {} !<= {last}", r.cycles);
            last = r.cycles;
        }
        let unbounded = simulate_buffered(&w, &m, &cfg, BalanceMode::None, BufferDepth::Unbounded);
        assert!(unbounded.cycles <= last);
    }

    #[test]
    fn unbounded_buffering_cannot_beat_greedy_balancing() {
        // The paper's claim: the imbalance is systematic — even infinite
        // input buffering leaves no-GB behind GB-H at the per-chunk barrier.
        let (w, cfg, m) = setup();
        let no_gb_infinite =
            simulate_buffered(&w, &m, &cfg, BalanceMode::None, BufferDepth::Unbounded);
        let gbh_strict = simulate_buffered(&w, &m, &cfg, BalanceMode::GbH, BufferDepth::Bounded(1));
        assert!(
            gbh_strict.cycles < no_gb_infinite.cycles,
            "GB-H@B=1 {} !< no-GB@B=inf {}",
            gbh_strict.cycles,
            no_gb_infinite.cycles
        );
    }

    #[test]
    fn useful_work_is_depth_invariant() {
        let (w, cfg, m) = setup();
        let a = simulate_buffered(&w, &m, &cfg, BalanceMode::GbS, BufferDepth::Bounded(1));
        let b = simulate_buffered(&w, &m, &cfg, BalanceMode::GbS, BufferDepth::Unbounded);
        assert_eq!(a.useful, b.useful);
        assert!(b.utilization(16) >= a.utilization(16));
    }
}
