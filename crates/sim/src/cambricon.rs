//! A Cambricon-S-like baseline: coarse-grain structured sparsity.
//!
//! §6 and Table 1: Cambricon-S shares one offline-constructed bit mask
//! across a *group* of coarsely-pruned filters, which makes the hardware
//! regular (no load imbalance within a group — every unit does identical
//! work) but (a) stores and retrieves the feature maps dense ("No" on
//! avoiding zero transfer), (b) computes kept-position weights that are
//! individually zero ("No" on avoiding zero compute), and (c) costs
//! accuracy because clamping is group-wide ("No" on maintaining accuracy,
//! quantified here by the collateral report from
//! [`sparten_nn::structured::prune_coarse`]). Chunk work for both the
//! saturated and useful models comes from [`MaskModel`], whose inner loops
//! run on the word-parallel `sparten_arch::fast` kernels.

use sparten_nn::generate::Workload;
use sparten_nn::structured::{prune_coarse, CoarsePruneReport};
use sparten_telemetry::{ReconcileError, StallCause, Telemetry};

use crate::breakdown::{Breakdown, OpCounts, SimResult, Traffic};
use crate::config::SimConfig;
use crate::probe::{Probe, StallTally};
use crate::workmodel::MaskModel;

/// Per-chunk setup overhead, matching the SparTen-family model.
const CHUNK_OVERHEAD: u64 = 1;

/// Result of a Cambricon-S-like run: the timing plus the accuracy-relevant
/// pruning collateral.
#[derive(Debug, Clone, PartialEq)]
pub struct CambriconResult {
    /// The cycle-level result.
    pub sim: SimResult,
    /// What the structured pruning cost relative to unstructured pruning.
    pub prune_report: CoarsePruneReport,
}

/// Simulates a Cambricon-S-like accelerator on `workload`, re-pruning its
/// filters coarsely (shared mask per group of `units` filters) to the
/// layer's own density so the comparison is density-matched.
pub fn simulate_cambricon(workload: &Workload, config: &SimConfig) -> CambriconResult {
    simulate_cambricon_telemetry(workload, config, None)
}

/// [`simulate_cambricon`] with an optional telemetry session.
pub fn simulate_cambricon_telemetry(
    workload: &Workload,
    config: &SimConfig,
    tel: Option<&Telemetry>,
) -> CambriconResult {
    let shape = &workload.shape;
    let units = config.accel.cluster.compute_units;
    let chunk_size = config.accel.cluster.chunk_size;
    let num_clusters = config.accel.num_clusters;

    // Structure the filters: one shared mask per hardware group.
    let density = {
        let total: usize = workload.filters.iter().map(|f| f.weights().len()).sum();
        let nnz: usize = workload.filters.iter().map(|f| f.nnz()).sum();
        nnz as f64 / total as f64
    };
    let mut pruned = workload.clone();
    let prune_report = prune_coarse(&mut pruned.filters, units, density);

    // Saturated filters: every kept (shared-mask) position set non-zero, so
    // the mask model yields the *executed* work; the pruned model yields
    // the useful (both-non-zero) work.
    let mut saturated = pruned.clone();
    for group in saturated.filters.chunks_mut(units) {
        let weights = group[0].weights().len();
        let shared: Vec<bool> = (0..weights)
            .map(|p| group.iter().any(|f| f.weights().as_slice()[p] != 0.0))
            .collect();
        for f in group.iter_mut() {
            for (p, &kept) in shared.iter().enumerate() {
                f.weights_mut().as_mut_slice()[p] = if kept { 1.0 } else { 0.0 };
            }
        }
    }
    let executed_model = MaskModel::new(&saturated, chunk_size);
    let useful_model = MaskModel::new(&pruned, chunk_size);

    let (oh, ow) = (shape.out_height(), shape.out_width());
    let positions = oh * ow;
    let chunks = executed_model.chunks_per_window();
    let num_groups = shape.num_filters.div_ceil(units);

    let probe = tel.map(|t| Probe::new(t, "Cambricon-S-like"));
    let hist_chunk = probe.as_ref().map(|p| p.histogram("hist.chunk_work"));

    let mut cluster_cycles = vec![0u64; num_clusters];
    let mut cluster_busy = vec![0u64; num_clusters];
    for cluster in 0..num_clusters {
        let lo = positions * cluster / num_clusters;
        let hi = positions * (cluster + 1) / num_clusters;
        let mut cycles = 0u64;
        let mut busy = 0u64;
        let mut tally = StallTally::default();
        for p in lo..hi {
            let (ox, oy) = (p % oh, p / oh);
            for g in 0..num_groups {
                let group_filters = units.min(shape.num_filters - g * units) as u64;
                // Every unit in the group shares the mask, so the group's
                // chunk work is identical across units: use the first
                // filter's executed work.
                let lead = g * units;
                for c in 0..chunks {
                    let w = executed_model.chunk_work(ox, oy, lead, c) as u64;
                    cycles += w + CHUNK_OVERHEAD;
                    busy += w * group_filters;
                    if let Some(h) = &hist_chunk {
                        // Shared masks make every occupied unit identical:
                        // the only intra losses are the broadcast overhead
                        // and the partially filled last group.
                        tally.prefix_encoder_wait += CHUNK_OVERHEAD * units as u64;
                        tally.unit_underfill += w * (units as u64 - group_filters);
                        h.record(w);
                    }
                }
            }
        }
        cluster_cycles[cluster] = cycles;
        cluster_busy[cluster] = busy;
        if let Some(pr) = &probe {
            pr.thread(cluster as u32, &format!("cluster{cluster}"));
            pr.span(cluster as u32, "cluster", 0, cycles, &[("busy", busy)]);
            if cycles > 0 {
                pr.gauge(
                    "occupancy.cluster_util",
                    busy as f64 / (cycles * units as u64) as f64,
                );
            }
            tally.emit(pr);
            debug_assert_eq!(tally.intra(), cycles * units as u64 - busy);
        }
    }

    let makespan = cluster_cycles.iter().copied().max().unwrap_or(0);
    let total_units = (units * num_clusters) as u64;
    let total_macs: u64 = cluster_busy.iter().sum();
    let nonzero = useful_model.total_sparse_macs().min(total_macs);
    let zero = total_macs - nonzero;
    let mut intra = 0u64;
    let mut inter = 0u64;
    for c in 0..num_clusters {
        intra += cluster_cycles[c] * units as u64 - cluster_busy[c];
        inter += (makespan - cluster_cycles[c]) * units as u64;
    }

    let traffic = cambricon_traffic(&pruned, &executed_model, config);
    let memory_cycles = (traffic.total_bytes() / config.memory.bytes_per_cycle).ceil() as u64;

    if let Some(pr) = &probe {
        pr.work(nonzero, zero);
        pr.stall(StallCause::ClusterIdle, inter);
        pr.traffic(&traffic);
        pr.gauge("occupancy.makespan_cycles", makespan as f64);
        pr.count("prune.clamped_keepers", prune_report.clamped_keepers as u64);
    }

    CambriconResult {
        sim: SimResult {
            scheme: "Cambricon-S-like",
            compute_cycles: makespan,
            memory_cycles,
            total_units,
            breakdown: Breakdown {
                nonzero,
                zero,
                intra,
                inter,
            },
            traffic,
            ops: OpCounts {
                macs_nonzero: nonzero,
                macs_zero: zero,
                buffer_accesses: 3 * total_macs,
                prefix_ops: 0,
                encoder_ops: total_macs,
                permute_values: 0,
                compact_ops: 0,
                crossbar_ops: 0,
            },
        },
        prune_report,
    }
}

/// Runs the Cambricon-S-like simulator into a fresh telemetry session,
/// checks that the recorded counters reconcile exactly with the breakdown,
/// then folds the session into `session` under `track_prefix`.
pub fn simulate_cambricon_checked(
    workload: &Workload,
    config: &SimConfig,
    session: &Telemetry,
    track_prefix: &str,
) -> Result<CambriconResult, ReconcileError> {
    let local = Telemetry::new();
    let result = simulate_cambricon_telemetry(workload, config, Some(&local));
    crate::probe::reconcile_and_merge(local, &result.sim, session, track_prefix)?;
    Ok(result)
}

/// Cambricon-S traffic: feature maps travel *dense* (zeros included, no
/// masks); filters travel as shared masks (amortized across the group)
/// plus per-filter kept-position values — including the zeros the shared
/// mask forces each filter to store.
fn cambricon_traffic(pruned: &Workload, executed: &MaskModel, config: &SimConfig) -> Traffic {
    let shape = &pruned.shape;
    let elem = config.memory.element_bytes as f64;
    let batch = config.memory.batch as f64;
    let units = config.accel.cluster.compute_units;

    let input_cells = shape.input_cells() as f64;
    let input_nnz: f64 = pruned.input.nnz() as f64;
    let input_zero = input_cells - input_nnz;

    // Shared mask per group: one mask of window_len bits per ⌈n/units⌉
    // groups. Values: every filter stores all kept positions.
    let num_groups = shape.num_filters.div_ceil(units) as f64;
    let mask_bits = num_groups * shape.window_len() as f64;
    // executed.weight_nnz counts kept positions per filter (saturated).
    let stored_values = executed.weight_nnz() as f64;
    let per_filter_nnz: f64 = pruned.filters.iter().map(|f| f.nnz() as f64).sum();
    let filter_zero = (stored_values - per_filter_nnz) / batch;
    let filter_bytes = (stored_values * elem + mask_bits / 8.0) / batch;

    let out_cells = shape.num_outputs() as f64;
    Traffic {
        input_bytes: input_cells * elem,
        filter_bytes,
        output_bytes: out_cells * elem, // outputs also stored dense
        zero_value_bytes: (input_zero
            + filter_zero
            + out_cells * (1.0 - config.memory.output_density))
            * elem,
        metadata_bytes: mask_bits / 8.0 / batch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate_layer, Scheme};
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    fn test_setup() -> (Workload, SimConfig) {
        let shape = ConvShape::new(64, 8, 8, 3, 32, 1, 1);
        let w = workload(&shape, 0.35, 0.4, 77);
        let mut cfg = SimConfig::small();
        cfg.accel.num_clusters = 2;
        cfg.accel.cluster.compute_units = 8;
        (w, cfg)
    }

    #[test]
    fn accounting_identity_holds() {
        let (w, cfg) = test_setup();
        let r = simulate_cambricon(&w, &cfg);
        assert!(r.sim.accounting_holds());
    }

    #[test]
    fn no_intra_group_imbalance() {
        // Shared masks make all units in a group identical: intra loss only
        // comes from partially-filled groups and chunk overhead.
        let (w, cfg) = test_setup();
        let r = simulate_cambricon(&w, &cfg);
        let sparten_no_gb = {
            let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
            simulate_layer(&w, &model, &cfg, Scheme::SpartenNoGb)
        };
        let intra_frac = |r: &SimResult| r.breakdown.intra as f64 / r.breakdown.total() as f64;
        assert!(
            intra_frac(&r.sim) < intra_frac(&sparten_no_gb),
            "cambricon intra {} !< sparten-no-GB intra {}",
            intra_frac(&r.sim),
            intra_frac(&sparten_no_gb)
        );
    }

    #[test]
    fn computes_and_transfers_zeros() {
        // Table 1's two "No" rows: zero compute from clamped-kept weights,
        // zero transfer from dense feature maps.
        let (w, cfg) = test_setup();
        let r = simulate_cambricon(&w, &cfg);
        assert!(r.sim.breakdown.zero > 0, "kept-position zeros are computed");
        assert!(
            r.sim.traffic.zero_value_bytes > 0.0,
            "dense maps move zeros"
        );
    }

    #[test]
    fn accuracy_collateral_is_reported() {
        let (w, cfg) = test_setup();
        let r = simulate_cambricon(&w, &cfg);
        assert!(r.prune_report.clamped_keepers > 0);
        assert!(r.prune_report.collateral_fraction() > 0.0);
    }

    #[test]
    fn sparten_still_wins_on_traffic() {
        let (w, cfg) = test_setup();
        let cam = simulate_cambricon(&w, &cfg);
        let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let sparten = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH);
        assert!(sparten.traffic.total_bytes() < cam.sim.traffic.total_bytes());
    }
}
