//! Fast bit-mask work model for the SparTen-family simulators.
//!
//! The cycle-level simulators need, for every (output position, filter,
//! chunk) triple, the popcount of the ANDed SparseMaps — the compute unit's
//! MAC count for that chunk. Doing this through the functional engine (which
//! also multiplies values) would be needlessly slow at AlexNet/VGG scale, so
//! this model precomputes the input's per-fiber masks and every filter's
//! per-tap masks as packed `u64` words; a chunk's work is then a couple of
//! `AND` + `popcount` word operations. Integration tests verify the model
//! against the exact engine traces on small layers.

use std::sync::OnceLock;

use sparten_arch::fast::{and_popcount_words, popcount_words};
use sparten_core::chunking::padded_fiber_len;
use sparten_nn::generate::Workload;
use sparten_nn::ConvShape;

/// Measured per-layer densities (see [`MaskModel::measure`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerMeasurement {
    /// Fraction of non-zero input cells.
    pub input_density: f64,
    /// Fraction of non-zero weights, over all filters.
    pub filter_density: f64,
    /// Population standard deviation of the per-filter densities.
    pub filter_density_std: f64,
}

/// Packed sparsity masks of one layer's workload.
#[derive(Debug, Clone)]
pub struct MaskModel {
    shape: ConvShape,
    chunk_size: usize,
    words_per_fiber: usize,
    chunks_per_fiber: usize,
    words_per_chunk: usize,
    /// `input_words[(x + h·y) · words_per_fiber ..]` = padded fiber mask.
    input_words: Vec<u64>,
    /// `filter_words[((f·k² + tap) · words_per_fiber) ..]`, tap = fy·k + fx.
    filter_words: Vec<u64>,
    input_nnz: u64,
    weight_nnz: u64,
    zero_fiber: Vec<u64>,
    total_macs_cache: OnceLock<u64>,
}

impl MaskModel {
    /// Builds the mask model from a workload with the given chunk size.
    ///
    /// # Panics
    ///
    /// Panics if `chunk_size` is not a positive multiple of 64.
    pub fn new(workload: &Workload, chunk_size: usize) -> Self {
        assert!(
            chunk_size > 0 && chunk_size.is_multiple_of(64),
            "chunk size must be a positive multiple of 64"
        );
        let shape = workload.shape;
        let d = shape.in_channels;
        let padded = padded_fiber_len(d, chunk_size);
        let words_per_fiber = padded / 64;
        let chunks_per_fiber = padded / chunk_size;
        let words_per_chunk = chunk_size / 64;

        let (h, w) = (shape.in_height, shape.in_width);
        let mut input_words = vec![0u64; h * w * words_per_fiber];
        let mut input_nnz = 0u64;
        for y in 0..w {
            for x in 0..h {
                let base = (x + h * y) * words_per_fiber;
                for (z, &v) in workload.input.fiber(x, y).iter().enumerate() {
                    if v != 0.0 {
                        input_words[base + z / 64] |= 1 << (z % 64);
                        input_nnz += 1;
                    }
                }
            }
        }

        let k = shape.kernel;
        let mut filter_words = vec![0u64; shape.num_filters * k * k * words_per_fiber];
        let mut weight_nnz = 0u64;
        for (f, filter) in workload.filters.iter().enumerate() {
            for fy in 0..k {
                for fx in 0..k {
                    let tap = fy * k + fx;
                    let base = (f * k * k + tap) * words_per_fiber;
                    for (z, &v) in filter.weights().fiber(fx, fy).iter().enumerate() {
                        if v != 0.0 {
                            filter_words[base + z / 64] |= 1 << (z % 64);
                            weight_nnz += 1;
                        }
                    }
                }
            }
        }

        MaskModel {
            shape,
            chunk_size,
            words_per_fiber,
            chunks_per_fiber,
            words_per_chunk,
            input_words,
            filter_words,
            input_nnz,
            weight_nnz,
            zero_fiber: vec![0u64; words_per_fiber],
            total_macs_cache: OnceLock::new(),
        }
    }

    /// The layer shape.
    pub fn shape(&self) -> &ConvShape {
        &self.shape
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk_size
    }

    /// Chunks per window: `k² · ⌈d/chunk⌉`.
    pub fn chunks_per_window(&self) -> usize {
        self.shape.kernel * self.shape.kernel * self.chunks_per_fiber
    }

    /// Total non-zero input cells.
    pub fn input_nnz(&self) -> u64 {
        self.input_nnz
    }

    /// Total non-zero weights.
    pub fn weight_nnz(&self) -> u64 {
        self.weight_nnz
    }

    /// Input fiber mask words for the tap `(tap_x, tap_y)` of output
    /// `(ox, oy)`; the all-zero fiber when the tap is out of bounds.
    #[inline]
    fn tap_fiber(&self, ox: usize, oy: usize, tap_x: usize, tap_y: usize) -> &[u64] {
        let ix = (ox * self.shape.stride + tap_x) as isize - self.shape.pad as isize;
        let iy = (oy * self.shape.stride + tap_y) as isize - self.shape.pad as isize;
        if ix < 0
            || iy < 0
            || ix as usize >= self.shape.in_height
            || iy as usize >= self.shape.in_width
        {
            &self.zero_fiber
        } else {
            let base = (ix as usize + self.shape.in_height * iy as usize) * self.words_per_fiber;
            &self.input_words[base..base + self.words_per_fiber]
        }
    }

    /// Two-sided join work (MACs) of chunk `c` for output `(ox, oy)` and
    /// filter `f`. Chunk indices are tap-major: `c = tap · chunks_per_fiber
    /// + sub`.
    #[inline]
    pub fn chunk_work(&self, ox: usize, oy: usize, f: usize, c: usize) -> u32 {
        let k = self.shape.kernel;
        let (tap, sub) = (c / self.chunks_per_fiber, c % self.chunks_per_fiber);
        let (tap_y, tap_x) = (tap / k, tap % k);
        let fiber = self.tap_fiber(ox, oy, tap_x, tap_y);
        let fbase = (f * k * k + tap) * self.words_per_fiber + sub * self.words_per_chunk;
        let ibase = sub * self.words_per_chunk;
        and_popcount_words(
            &fiber[ibase..ibase + self.words_per_chunk],
            &self.filter_words[fbase..fbase + self.words_per_chunk],
        )
    }

    /// One-sided work of chunk `c` for output `(ox, oy)`: the input chunk's
    /// popcount (every non-zero input is multiplied when filters stay dense).
    #[inline]
    pub fn onesided_chunk_work(&self, ox: usize, oy: usize, c: usize) -> u32 {
        let k = self.shape.kernel;
        let (tap, sub) = (c / self.chunks_per_fiber, c % self.chunks_per_fiber);
        let (tap_y, tap_x) = (tap / k, tap % k);
        let fiber = self.tap_fiber(ox, oy, tap_x, tap_y);
        let ibase = sub * self.words_per_chunk;
        popcount_words(&fiber[ibase..ibase + self.words_per_chunk])
    }

    /// Two-sided join work of a whole window for filter `f`.
    pub fn window_work(&self, ox: usize, oy: usize, f: usize) -> u64 {
        (0..self.chunks_per_window())
            .map(|c| self.chunk_work(ox, oy, f, c) as u64)
            .sum()
    }

    /// One-sided work of a whole window (independent of the filter).
    pub fn onesided_window_work(&self, ox: usize, oy: usize) -> u64 {
        (0..self.chunks_per_window())
            .map(|c| self.onesided_chunk_work(ox, oy, c) as u64)
            .sum()
    }

    /// Total two-sided MACs of the layer — the true sparse compute volume.
    /// Cached after the first call (several simulators share it).
    pub fn total_sparse_macs(&self) -> u64 {
        *self.total_macs_cache.get_or_init(|| {
            let (oh, ow) = (self.shape.out_height(), self.shape.out_width());
            let mut total = 0u64;
            for oy in 0..ow {
                for ox in 0..oh {
                    for f in 0..self.shape.num_filters {
                        total += self.window_work(ox, oy, f);
                    }
                }
            }
            total
        })
    }

    /// Non-zero weights of filter `f` alone.
    pub fn filter_nnz(&self, f: usize) -> u64 {
        let k = self.shape.kernel;
        let base = f * k * k * self.words_per_fiber;
        let len = k * k * self.words_per_fiber;
        popcount_words(&self.filter_words[base..base + len]) as u64
    }

    /// Measured per-layer densities — the inputs the `sparten-model`
    /// analytical throughput model consumes. Input and filter densities are
    /// exact counts over the masks; `filter_density_std` is the population
    /// standard deviation of the per-filter densities, which drives the
    /// model's greedy-balance imbalance terms.
    pub fn measure(&self) -> LayerMeasurement {
        let cells_per_filter = (self.shape.window_len()) as f64;
        let nf = self.shape.num_filters;
        let densities: Vec<f64> = (0..nf)
            .map(|f| self.filter_nnz(f) as f64 / cells_per_filter)
            .collect();
        let mean = densities.iter().sum::<f64>() / nf as f64;
        let var = densities.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / nf as f64;
        LayerMeasurement {
            input_density: self.input_nnz as f64 / self.shape.input_cells() as f64,
            filter_density: self.weight_nnz as f64 / self.shape.weight_cells() as f64,
            filter_density_std: var.sqrt(),
        }
    }

    /// Per-chunk filter-mask popcounts for filter `f` — GB-H's sort key and
    /// the quantity Figure 14 plots.
    pub fn filter_chunk_nnz(&self, f: usize) -> Vec<u32> {
        let k = self.shape.kernel;
        (0..self.chunks_per_window())
            .map(|c| {
                let (tap, sub) = (c / self.chunks_per_fiber, c % self.chunks_per_fiber);
                let fbase = (f * k * k + tap) * self.words_per_fiber + sub * self.words_per_chunk;
                popcount_words(&self.filter_words[fbase..fbase + self.words_per_chunk])
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;

    fn small_workload() -> Workload {
        let shape = ConvShape::new(70, 6, 6, 3, 5, 1, 1);
        workload(&shape, 0.5, 0.4, 7)
    }

    #[test]
    fn nnz_counts_match_tensors() {
        let w = small_workload();
        let m = MaskModel::new(&w, 64);
        assert_eq!(m.input_nnz() as usize, w.input.nnz());
        let wn: usize = w.filters.iter().map(|f| f.nnz()).sum();
        assert_eq!(m.weight_nnz() as usize, wn);
    }

    #[test]
    fn chunk_work_matches_functional_chunks() {
        use sparten_core::chunking::{filter_to_chunks, linearize_window_padded};
        use sparten_tensor::SparseVector;
        let w = small_workload();
        let chunk_size = 64;
        let m = MaskModel::new(&w, chunk_size);
        for (ox, oy) in [(0, 0), (2, 3), (3, 3)] {
            let win = linearize_window_padded(&w.input, ox, oy, 3, 1, 1, chunk_size);
            let win = SparseVector::from_dense(&win, chunk_size);
            for f in 0..w.filters.len() {
                let fc = filter_to_chunks(&w.filters[f], chunk_size);
                for c in 0..m.chunks_per_window() {
                    let expect = win.chunks()[c].join_work(&fc.chunks()[c]) as u32;
                    assert_eq!(
                        m.chunk_work(ox, oy, f, c),
                        expect,
                        "mismatch at pos ({ox},{oy}), filter {f}, chunk {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn onesided_work_at_least_twosided() {
        let w = small_workload();
        let m = MaskModel::new(&w, 64);
        for f in 0..w.filters.len() {
            for c in 0..m.chunks_per_window() {
                assert!(m.onesided_chunk_work(1, 1, c) >= m.chunk_work(1, 1, f, c));
            }
        }
    }

    #[test]
    fn total_sparse_macs_matches_brute_force() {
        let w = small_workload();
        let m = MaskModel::new(&w, 64);
        let mut expect = 0u64;
        for oy in 0..w.shape.out_width() {
            for ox in 0..w.shape.out_height() {
                let win = w.input.window_vector(ox, oy, 3, 3, 1, 1);
                for f in &w.filters {
                    let lin = f.linearize();
                    expect += win
                        .iter()
                        .zip(&lin)
                        .filter(|(a, b)| **a != 0.0 && **b != 0.0)
                        .count() as u64;
                }
            }
        }
        assert_eq!(m.total_sparse_macs(), expect);
    }

    #[test]
    fn out_of_bounds_taps_contribute_zero() {
        let w = small_workload();
        let m = MaskModel::new(&w, 64);
        // Output (0,0) with pad 1: tap (0,0) reads input (-1,-1) → OOB.
        assert_eq!(m.onesided_chunk_work(0, 0, 0), 0);
    }

    #[test]
    fn stride_changes_window_work() {
        let shape = ConvShape::new(64, 9, 9, 3, 4, 2, 0);
        let w = workload(&shape, 0.5, 0.5, 3);
        let m = MaskModel::new(&w, 64);
        // Just exercise the path; correctness is covered by the engine
        // cross-check integration test.
        assert!(m.total_sparse_macs() > 0);
    }

    #[test]
    fn filter_chunk_nnz_sums_to_filter_nnz() {
        let w = small_workload();
        let m = MaskModel::new(&w, 64);
        for (f, filter) in w.filters.iter().enumerate() {
            let per_chunk: u32 = m.filter_chunk_nnz(f).iter().sum();
            assert_eq!(per_chunk as usize, filter.nnz());
        }
    }
}
