//! The design-goal matrix of Table 1.
//!
//! The paper positions SparTen against the semi-sparse architectures
//! (Cambricon-X, Cnvlutin, Cambricon-S) and SCNN along four goals:
//! avoiding transfer of all zeros, avoiding computation with all zeros,
//! maintaining accuracy, and efficient fully-sparse computation.

/// How an architecture fares on one design goal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GoalStatus {
    /// The goal is met.
    Yes,
    /// The goal is not met.
    No,
    /// The goal does not apply (semi-sparse schemes and G4).
    NotApplicable,
}

impl std::fmt::Display for GoalStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            GoalStatus::Yes => "Yes",
            GoalStatus::No => "No",
            GoalStatus::NotApplicable => "N/a",
        })
    }
}

/// One architecture's row in Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignGoals {
    /// Architecture name.
    pub architecture: &'static str,
    /// G1: avoid transfer of all zeros (feature maps *and* filters).
    pub avoid_zero_transfer: GoalStatus,
    /// G2: avoid computing with all zeros.
    pub avoid_zero_compute: GoalStatus,
    /// G3: maintain accuracy (no coarse pruning / merging losses).
    pub maintain_accuracy: GoalStatus,
    /// G4: efficient fully-sparse computation.
    pub efficient_fully_sparse: GoalStatus,
}

/// Table 1 verbatim.
pub fn design_goal_table() -> Vec<DesignGoals> {
    use GoalStatus::{No, NotApplicable, Yes};
    vec![
        DesignGoals {
            architecture: "Cambricon-X",
            avoid_zero_transfer: No,
            avoid_zero_compute: No,
            maintain_accuracy: Yes,
            efficient_fully_sparse: NotApplicable,
        },
        DesignGoals {
            architecture: "Cnvlutin",
            avoid_zero_transfer: No,
            avoid_zero_compute: No,
            maintain_accuracy: Yes,
            efficient_fully_sparse: NotApplicable,
        },
        DesignGoals {
            architecture: "Cambricon-S",
            avoid_zero_transfer: No,
            avoid_zero_compute: No,
            maintain_accuracy: No,
            efficient_fully_sparse: NotApplicable,
        },
        DesignGoals {
            architecture: "SCNN",
            avoid_zero_transfer: Yes,
            avoid_zero_compute: Yes,
            maintain_accuracy: Yes,
            efficient_fully_sparse: No,
        },
        DesignGoals {
            architecture: "SparTen",
            avoid_zero_transfer: Yes,
            avoid_zero_compute: Yes,
            maintain_accuracy: Yes,
            efficient_fully_sparse: Yes,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_architectures() {
        assert_eq!(design_goal_table().len(), 5);
    }

    #[test]
    fn only_sparten_meets_all_goals() {
        for row in design_goal_table() {
            let all_yes = row.avoid_zero_transfer == GoalStatus::Yes
                && row.avoid_zero_compute == GoalStatus::Yes
                && row.maintain_accuracy == GoalStatus::Yes
                && row.efficient_fully_sparse == GoalStatus::Yes;
            assert_eq!(all_yes, row.architecture == "SparTen");
        }
    }

    #[test]
    fn status_displays_like_the_paper() {
        assert_eq!(GoalStatus::NotApplicable.to_string(), "N/a");
    }
}
