//! A bit-serial baseline (Bit-Pragmatic / Bit-Laconic style, §6).
//!
//! Bit-serial schemes skip *zero bits* rather than zero values: each value
//! is Booth-recoded and the multiplier iterates only over its essential
//! (non-zero) digits, so a MAC of values with `e_a` and `e_w` essential
//! digits costs `e_a · e_w` digit-cycles. The paper's §6 critique, all
//! modelled here:
//!
//! 1. zero *values* still travel to and from memory (dense transfers);
//! 2. bit-level load imbalance remains and the per-group barrier exposes it
//!    (no greedy balancing exists at bit granularity);
//! 3. conservative buffering of full values before Booth encoding.
//!
//! Resources are matched at one serial lane per compute unit; one digit
//! pair per cycle per lane.

use sparten_nn::generate::Workload;
use sparten_nn::quant::QuantTensor;

use crate::breakdown::{Breakdown, OpCounts, SimResult, Traffic};
use crate::config::SimConfig;
use crate::workmodel::MaskModel;

/// Number of essential (non-zero) digits in the radix-4 Booth recoding of
/// an 8-bit value — the bit-serial work unit.
///
/// # Example
///
/// ```
/// use sparten_sim::bitserial::booth_digits;
///
/// assert_eq!(booth_digits(0), 0);
/// assert_eq!(booth_digits(1), 1);
/// // 0b01010101 recodes to alternating ±1 digits.
/// assert!(booth_digits(0b0101_0101) >= 3);
/// ```
pub fn booth_digits(v: i8) -> u32 {
    // Radix-4 Booth: digits d_i ∈ {-2,-1,0,1,2} from overlapping triplets
    // of (sign-extended) bits; count the non-zero digits.
    let x = v as i16;
    let mut count = 0u32;
    let mut prev = 0i16; // implicit bit to the right of bit 0
    for i in (0..8).step_by(2) {
        let b0 = (x >> i) & 1;
        let b1 = (x >> (i + 1)) & 1;
        // Classic radix-4 recode of the triplet (b1, b0, prev): −2·b1+b0+prev.
        let digit = b0 + prev - 2 * b1;
        if digit != 0 {
            count += 1;
        }
        prev = b1;
    }
    count
}

/// Per-chunk setup overhead, matching the SparTen-family model.
const CHUNK_OVERHEAD: u64 = 1;

/// Simulates the bit-serial baseline on `workload`.
///
/// Cycles are digit-cycles (one essential digit pair per lane per cycle);
/// comparing against MAC-cycle schemes assumes equal clock rates, which
/// favours the bit-serial scheme slightly (its lanes are simpler).
pub fn simulate_bitserial(workload: &Workload, config: &SimConfig) -> SimResult {
    let shape = &workload.shape;
    let units = config.accel.cluster.compute_units;
    let num_clusters = config.accel.num_clusters;
    let k = shape.kernel;
    let d = shape.in_channels;

    // Booth-digit tables from the quantized tensors.
    let qi = QuantTensor::quantize(&workload.input);
    let input_digits: Vec<u8> = qi.values().iter().map(|&v| booth_digits(v) as u8).collect();
    let filter_digits: Vec<Vec<u8>> = workload
        .filters
        .iter()
        .map(|f| {
            QuantTensor::quantize(f.weights())
                .values()
                .iter()
                .map(|&v| booth_digits(v) as u8)
                .collect()
        })
        .collect();

    let (oh, ow) = (shape.out_height(), shape.out_width());
    let positions = oh * ow;
    let num_groups = shape.num_filters.div_ceil(units);

    // Digit-work of one (output position, filter) pair: Σ over in-bounds
    // taps and channels of e_input · e_weight.
    let pair_work = |ox: usize, oy: usize, f: usize| -> u64 {
        let fd = &filter_digits[f];
        let mut acc = 0u64;
        for fy in 0..k {
            for fx in 0..k {
                let ix = (ox * shape.stride + fx) as isize - shape.pad as isize;
                let iy = (oy * shape.stride + fy) as isize - shape.pad as isize;
                if ix < 0
                    || iy < 0
                    || ix as usize >= shape.in_height
                    || iy as usize >= shape.in_width
                {
                    continue;
                }
                let ibase = (ix as usize + shape.in_height * iy as usize) * d;
                let fbase = (fx + k * fy) * d;
                for z in 0..d {
                    acc += input_digits[ibase + z] as u64 * fd[fbase + z] as u64;
                }
            }
        }
        acc
    };

    let mut cluster_cycles = vec![0u64; num_clusters];
    let mut cluster_busy = vec![0u64; num_clusters];
    for cluster in 0..num_clusters {
        let lo = positions * cluster / num_clusters;
        let hi = positions * (cluster + 1) / num_clusters;
        let mut cycles = 0u64;
        let mut busy = 0u64;
        for p in lo..hi {
            let (ox, oy) = (p % oh, p / oh);
            for g in 0..num_groups {
                // Barrier per (position, group): the slowest lane's digit
                // count — bit-level imbalance exposed (§6 issue 2).
                let mut group_max = 0u64;
                for u in 0..units {
                    let f = g * units + u;
                    if f >= shape.num_filters {
                        continue;
                    }
                    let w = pair_work(ox, oy, f);
                    busy += w;
                    group_max = group_max.max(w);
                }
                cycles += group_max + CHUNK_OVERHEAD;
            }
        }
        cluster_cycles[cluster] = cycles;
        cluster_busy[cluster] = busy;
    }

    let makespan = cluster_cycles.iter().copied().max().unwrap_or(0);
    let total_units = (units * num_clusters) as u64;
    let total_digit_work: u64 = cluster_busy.iter().sum();
    let mut intra = 0u64;
    let mut inter = 0u64;
    for c in 0..num_clusters {
        intra += cluster_cycles[c] * units as u64 - cluster_busy[c];
        inter += (makespan - cluster_cycles[c]) * units as u64;
    }

    // §6 issue 1: dense transfers — identical to the dense architecture's.
    let elem = config.memory.element_bytes as f64;
    let batch = config.memory.batch as f64;
    let model = MaskModel::new(workload, config.accel.cluster.chunk_size);
    let input_cells = shape.input_cells() as f64;
    let weight_cells = shape.weight_cells() as f64;
    let out_cells = shape.num_outputs() as f64;
    let traffic = Traffic {
        input_bytes: input_cells * elem,
        filter_bytes: weight_cells * elem / batch,
        output_bytes: out_cells * elem,
        zero_value_bytes: ((input_cells - model.input_nnz() as f64)
            + (weight_cells - model.weight_nnz() as f64) / batch
            + out_cells * (1.0 - config.memory.output_density))
            * elem,
        metadata_bytes: 0.0,
    };
    let memory_cycles = (traffic.total_bytes() / config.memory.bytes_per_cycle).ceil() as u64;

    SimResult {
        scheme: "Bit-serial",
        compute_cycles: makespan,
        memory_cycles,
        total_units,
        breakdown: Breakdown {
            nonzero: total_digit_work,
            zero: 0, // zero bits are skipped; zero values cost no digits
            intra,
            inter,
        },
        traffic,
        ops: OpCounts {
            macs_nonzero: total_digit_work,
            macs_zero: 0,
            buffer_accesses: 3 * total_digit_work,
            prefix_ops: 0,
            encoder_ops: total_digit_work, // digit selection per cycle
            permute_values: 0,
            compact_ops: 0,
            crossbar_ops: 0,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{simulate_layer, Scheme};
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    #[test]
    fn booth_zero_is_free() {
        assert_eq!(booth_digits(0), 0);
    }

    #[test]
    fn booth_powers_of_two_cost_at_most_two() {
        // Even powers of two align with a digit (one digit); odd powers
        // straddle a boundary and recode as (−2, +1) — two digits.
        for v in [1i8, 4, 16, 64] {
            assert_eq!(booth_digits(v), 1, "value {v}");
        }
        for v in [2i8, 8, 32] {
            assert_eq!(booth_digits(v), 2, "value {v}");
        }
        assert_eq!(booth_digits(-1), 1);
    }

    #[test]
    fn booth_counts_are_bounded_by_four() {
        for v in i8::MIN..=i8::MAX {
            assert!(booth_digits(v) <= 4, "value {v} → {}", booth_digits(v));
        }
    }

    #[test]
    fn booth_recoding_reconstructs_the_value() {
        // Verify the digit extraction against an explicit recode-and-sum.
        for v in i8::MIN..=i8::MAX {
            let x = v as i16;
            let mut sum = 0i32;
            let mut prev = 0i16;
            let mut nonzero = 0u32;
            for i in (0..8).step_by(2) {
                let b0 = (x >> i) & 1;
                let b1 = (x >> (i + 1)) & 1;
                let digit = (b0 + prev - 2 * b1) as i32;
                sum += digit << i;
                if digit != 0 {
                    nonzero += 1;
                }
                prev = b1;
            }
            // The top triplet's negative weight covers the i8 sign range,
            // so the digit sum reconstructs the value directly.
            assert_eq!(sum as i16, x, "value {v}");
            assert_eq!(nonzero, booth_digits(v), "value {v}");
        }
    }

    fn test_setup() -> (sparten_nn::Workload, SimConfig) {
        let shape = ConvShape::new(48, 6, 6, 3, 16, 1, 1);
        let w = workload(&shape, 0.35, 0.35, 91);
        let mut cfg = SimConfig::small();
        cfg.accel.num_clusters = 2;
        cfg.accel.cluster.compute_units = 4;
        (w, cfg)
    }

    #[test]
    fn accounting_identity_holds() {
        let (w, cfg) = test_setup();
        let r = simulate_bitserial(&w, &cfg);
        assert!(r.accounting_holds());
    }

    #[test]
    fn transfers_zero_values_like_dense() {
        let (w, cfg) = test_setup();
        let bits = simulate_bitserial(&w, &cfg);
        let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let dense = simulate_layer(&w, &model, &cfg, Scheme::Dense);
        assert_eq!(bits.traffic.total_bytes(), dense.traffic.total_bytes());
        assert!(bits.traffic.zero_value_bytes > 0.0);
    }

    #[test]
    fn digit_work_is_less_than_bit_count_times_macs() {
        // Booth caps digits at 4 per 8-bit value → ≤16 digit-cycles per
        // MAC pair, and typically far fewer.
        let (w, cfg) = test_setup();
        let r = simulate_bitserial(&w, &cfg);
        let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let macs = model.total_sparse_macs();
        assert!(r.breakdown.nonzero <= 16 * macs);
        assert!(
            r.breakdown.nonzero > macs,
            "serial work exceeds one cycle/MAC"
        );
    }

    #[test]
    fn bit_level_imbalance_exists() {
        let (w, cfg) = test_setup();
        let r = simulate_bitserial(&w, &cfg);
        assert!(r.breakdown.intra > 0);
    }
}
