//! Simulation results: cycles, execution-time breakdown, traffic, op counts.
//!
//! The Figure 10–12 breakdown splits each architecture's execution into
//! (a) non-zero computation, (b) zero computation, (c) intra-cluster loss
//! (load imbalance / underutilization within a cluster or PE), and
//! (d) inter-cluster loss (imbalance across clusters or PEs exposed by
//! barriers). All four are in *MAC-slot cycles*: their sum equals
//! `compute_cycles × total_mac_units`, so dividing by Dense's total gives
//! the paper's normalized stacked bars.

/// Execution-time breakdown in MAC-slot cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Slots spent multiplying two non-zero operands.
    pub nonzero: u64,
    /// Slots spent on multiplications involving a zero operand (or, for
    /// SCNN at non-unit stride, products computed then discarded).
    pub zero: u64,
    /// Slots lost to within-cluster (within-PE) imbalance/underutilization.
    pub intra: u64,
    /// Slots lost to across-cluster (across-PE) imbalance at barriers.
    pub inter: u64,
}

impl Breakdown {
    /// Total slots: must equal `compute_cycles × units`.
    pub fn total(&self) -> u64 {
        self.nonzero + self.zero + self.intra + self.inter
    }
}

/// Memory traffic in bytes (per image; filters amortized over the batch).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Traffic {
    /// Input feature-map bytes read from DRAM (values + any metadata).
    pub input_bytes: f64,
    /// Filter bytes read from DRAM, already divided by the batch size.
    pub filter_bytes: f64,
    /// Output feature-map bytes written to DRAM.
    pub output_bytes: f64,
    /// Of the above, bytes that are zero values (the "zero" memory energy
    /// component of Figure 13).
    pub zero_value_bytes: f64,
    /// Of the above, metadata bytes (SparseMaps, pointers, indices).
    pub metadata_bytes: f64,
}

impl Traffic {
    /// Total DRAM bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.input_bytes + self.filter_bytes + self.output_bytes
    }
}

/// Operation counts consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Multiply-accumulates on two non-zero operands.
    pub macs_nonzero: u64,
    /// Multiply-accumulates with a zero operand (dense/one-sided only).
    pub macs_zero: u64,
    /// Input/filter buffer accesses (operand reads + partial-sum update).
    pub buffer_accesses: u64,
    /// Prefix-sum circuit evaluations (two per chunk join: one per operand).
    pub prefix_ops: u64,
    /// Priority-encoder steps (one per inner-join MAC).
    pub encoder_ops: u64,
    /// Values routed through the GB-H permutation network.
    pub permute_values: u64,
    /// Output-compaction operations (one per produced output cell).
    pub compact_ops: u64,
    /// SCNN crossbar traversals (one per Cartesian product).
    pub crossbar_ops: u64,
}

/// The result of simulating one layer on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Architecture label (e.g. `"SparTen"`, `"SCNN"`).
    pub scheme: &'static str,
    /// Compute makespan in cycles (slowest cluster/PE chain).
    pub compute_cycles: u64,
    /// Memory-bound lower bound in cycles (total DRAM bytes / bandwidth).
    pub memory_cycles: u64,
    /// Total MAC units in the configuration.
    pub total_units: u64,
    /// Execution-time breakdown (sums to `compute_cycles × total_units`).
    pub breakdown: Breakdown,
    /// DRAM traffic.
    pub traffic: Traffic,
    /// Operation counts for the energy model.
    pub ops: OpCounts,
}

impl SimResult {
    /// The layer's execution time: compute unless memory-bound.
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.memory_cycles)
    }

    /// Whether the memory system is the bottleneck.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }

    /// Speedup of `self` over `other` (by total cycles).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        baseline.cycles() as f64 / self.cycles() as f64
    }

    /// Checks the accounting identity
    /// `nonzero + zero + intra + inter == compute_cycles × units`.
    pub fn accounting_holds(&self) -> bool {
        self.breakdown.total() == self.compute_cycles * self.total_units
    }

    /// The breakdown as fractions of this result's own compute slots.
    pub fn breakdown_fractions(&self) -> [f64; 4] {
        let t = self.breakdown.total().max(1) as f64;
        [
            self.breakdown.nonzero as f64 / t,
            self.breakdown.zero as f64 / t,
            self.breakdown.intra as f64 / t,
            self.breakdown.inter as f64 / t,
        ]
    }
}

/// Looks up (or interns) a scheme label as a `&'static str`, so records
/// read back from the on-disk cache can rebuild `SimResult::scheme`.
/// Known labels resolve without allocation; unknown labels are leaked once
/// each and memoized, bounding the leak to the set of distinct labels.
pub fn intern_scheme_label(label: &str) -> &'static str {
    const KNOWN: [&str; 11] = [
        "Dense",
        "One-sided",
        "SparTen-no-GB",
        "SparTen-GB-S",
        "SparTen",
        "SCNN",
        "SCNN-one-sided",
        "SCNN-dense",
        "Dense-naive",
        "Bit-serial",
        "Cambricon-S-like",
    ];
    if let Some(k) = KNOWN.iter().find(|k| **k == label) {
        return k;
    }
    use std::sync::Mutex;
    static EXTRA: Mutex<Vec<&'static str>> = Mutex::new(Vec::new());
    // Recover from a poisoned lock rather than cascading the panic: the
    // intern table is append-only, so a writer that panicked mid-push left
    // at worst a fully-written extra entry — always safe to keep reading.
    let mut extra = EXTRA.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(k) = extra.iter().find(|k| **k == label) {
        return k;
    }
    let leaked: &'static str = Box::leak(label.to_string().into_boxed_str());
    extra.push(leaked);
    leaked
}

impl SimResult {
    /// Serializes to the experiment cache's stable single-line record
    /// format: ordered `key=value` pairs. Floats use Rust's
    /// shortest-roundtrip formatting, so [`SimResult::from_record`]
    /// reconstructs the result *bit-identically* — the property the
    /// harness's determinism tests assert across cache round-trips.
    pub fn to_record(&self) -> String {
        format!(
            "scheme={} compute={} memory={} units={} nonzero={} zero={} intra={} inter={} \
             input_bytes={} filter_bytes={} output_bytes={} zero_value_bytes={} \
             metadata_bytes={} macs_nonzero={} macs_zero={} buffer_accesses={} \
             prefix_ops={} encoder_ops={} permute_values={} compact_ops={} crossbar_ops={}",
            self.scheme,
            self.compute_cycles,
            self.memory_cycles,
            self.total_units,
            self.breakdown.nonzero,
            self.breakdown.zero,
            self.breakdown.intra,
            self.breakdown.inter,
            self.traffic.input_bytes,
            self.traffic.filter_bytes,
            self.traffic.output_bytes,
            self.traffic.zero_value_bytes,
            self.traffic.metadata_bytes,
            self.ops.macs_nonzero,
            self.ops.macs_zero,
            self.ops.buffer_accesses,
            self.ops.prefix_ops,
            self.ops.encoder_ops,
            self.ops.permute_values,
            self.ops.compact_ops,
            self.ops.crossbar_ops,
        )
    }

    /// Parses a record produced by [`SimResult::to_record`]. Returns `None`
    /// on any malformed or missing field (a stale or corrupt cache entry —
    /// the harness treats that as a miss and recomputes).
    pub fn from_record(record: &str) -> Option<SimResult> {
        let mut fields = std::collections::HashMap::new();
        for pair in record.split_whitespace() {
            let (k, v) = pair.split_once('=')?;
            fields.insert(k, v);
        }
        let u = |k: &str| -> Option<u64> { fields.get(k)?.parse().ok() };
        let f = |k: &str| -> Option<f64> { fields.get(k)?.parse().ok() };
        Some(SimResult {
            scheme: intern_scheme_label(fields.get("scheme")?),
            compute_cycles: u("compute")?,
            memory_cycles: u("memory")?,
            total_units: u("units")?,
            breakdown: Breakdown {
                nonzero: u("nonzero")?,
                zero: u("zero")?,
                intra: u("intra")?,
                inter: u("inter")?,
            },
            traffic: Traffic {
                input_bytes: f("input_bytes")?,
                filter_bytes: f("filter_bytes")?,
                output_bytes: f("output_bytes")?,
                zero_value_bytes: f("zero_value_bytes")?,
                metadata_bytes: f("metadata_bytes")?,
            },
            ops: OpCounts {
                macs_nonzero: u("macs_nonzero")?,
                macs_zero: u("macs_zero")?,
                buffer_accesses: u("buffer_accesses")?,
                prefix_ops: u("prefix_ops")?,
                encoder_ops: u("encoder_ops")?,
                permute_values: u("permute_values")?,
                compact_ops: u("compact_ops")?,
                crossbar_ops: u("crossbar_ops")?,
            },
        })
    }
}

// The harness fans simulation work out across worker threads and clones
// results into the cache; these bounds are part of the crate's API
// contract, so breakages surface here rather than deep in the harness.
const _: fn() = || {
    fn assert_send_sync_clone<T: Send + Sync + Clone>() {}
    assert_send_sync_clone::<SimResult>();
    assert_send_sync_clone::<Breakdown>();
    assert_send_sync_clone::<Traffic>();
    assert_send_sync_clone::<OpCounts>();
};

/// Geometric mean of a slice of positive numbers, the paper's summary
/// statistic for per-layer speedups.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(compute: u64, memory: u64) -> SimResult {
        SimResult {
            scheme: "test",
            compute_cycles: compute,
            memory_cycles: memory,
            total_units: 4,
            breakdown: Breakdown {
                nonzero: compute * 4,
                ..Breakdown::default()
            },
            traffic: Traffic::default(),
            ops: OpCounts::default(),
        }
    }

    #[test]
    fn cycles_takes_memory_bound_into_account() {
        assert_eq!(result(100, 50).cycles(), 100);
        assert_eq!(result(100, 300).cycles(), 300);
        assert!(result(100, 300).is_memory_bound());
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = result(100, 0);
        let slow = result(400, 0);
        assert_eq!(fast.speedup_over(&slow), 4.0);
    }

    #[test]
    fn accounting_identity() {
        assert!(result(10, 0).accounting_holds());
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = SimResult {
            breakdown: Breakdown {
                nonzero: 10,
                zero: 20,
                intra: 30,
                inter: 40,
            },
            ..result(25, 0)
        };
        let f = r.breakdown_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }

    #[test]
    fn record_roundtrip_is_bit_identical() {
        let r = SimResult {
            scheme: "SparTen",
            compute_cycles: 123_456_789,
            memory_cycles: 42,
            total_units: 1024,
            breakdown: Breakdown {
                nonzero: 1,
                zero: 2,
                intra: 3,
                inter: 4,
            },
            traffic: Traffic {
                input_bytes: 0.1 + 0.2, // deliberately non-representable
                filter_bytes: 1e300,
                output_bytes: 7.0,
                zero_value_bytes: 0.0,
                metadata_bytes: 123.456,
            },
            ops: OpCounts {
                macs_nonzero: 9,
                macs_zero: 8,
                buffer_accesses: 7,
                prefix_ops: 6,
                encoder_ops: 5,
                permute_values: 4,
                compact_ops: 3,
                crossbar_ops: 2,
            },
        };
        let back = SimResult::from_record(&r.to_record()).expect("parses");
        assert_eq!(back, r);
        assert_eq!(back.traffic.input_bytes.to_bits(), (0.1 + 0.2f64).to_bits());
    }

    #[test]
    fn malformed_records_are_rejected() {
        assert!(SimResult::from_record("").is_none());
        assert!(SimResult::from_record("scheme=Dense compute=abc").is_none());
        let r = result(10, 0).to_record();
        assert!(SimResult::from_record(&r.replace("units=", "unitz=")).is_none());
    }

    #[test]
    fn known_labels_intern_without_leaking() {
        let a = intern_scheme_label("SparTen");
        assert_eq!(a, "SparTen");
        let b = intern_scheme_label("some-new-scheme");
        let c = intern_scheme_label("some-new-scheme");
        assert!(std::ptr::eq(b.as_ptr(), c.as_ptr()), "memoized leak");
    }
}
