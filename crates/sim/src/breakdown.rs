//! Simulation results: cycles, execution-time breakdown, traffic, op counts.
//!
//! The Figure 10–12 breakdown splits each architecture's execution into
//! (a) non-zero computation, (b) zero computation, (c) intra-cluster loss
//! (load imbalance / underutilization within a cluster or PE), and
//! (d) inter-cluster loss (imbalance across clusters or PEs exposed by
//! barriers). All four are in *MAC-slot cycles*: their sum equals
//! `compute_cycles × total_mac_units`, so dividing by Dense's total gives
//! the paper's normalized stacked bars.

/// Execution-time breakdown in MAC-slot cycles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Breakdown {
    /// Slots spent multiplying two non-zero operands.
    pub nonzero: u64,
    /// Slots spent on multiplications involving a zero operand (or, for
    /// SCNN at non-unit stride, products computed then discarded).
    pub zero: u64,
    /// Slots lost to within-cluster (within-PE) imbalance/underutilization.
    pub intra: u64,
    /// Slots lost to across-cluster (across-PE) imbalance at barriers.
    pub inter: u64,
}

impl Breakdown {
    /// Total slots: must equal `compute_cycles × units`.
    pub fn total(&self) -> u64 {
        self.nonzero + self.zero + self.intra + self.inter
    }
}

/// Memory traffic in bytes (per image; filters amortized over the batch).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Traffic {
    /// Input feature-map bytes read from DRAM (values + any metadata).
    pub input_bytes: f64,
    /// Filter bytes read from DRAM, already divided by the batch size.
    pub filter_bytes: f64,
    /// Output feature-map bytes written to DRAM.
    pub output_bytes: f64,
    /// Of the above, bytes that are zero values (the "zero" memory energy
    /// component of Figure 13).
    pub zero_value_bytes: f64,
    /// Of the above, metadata bytes (SparseMaps, pointers, indices).
    pub metadata_bytes: f64,
}

impl Traffic {
    /// Total DRAM bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.input_bytes + self.filter_bytes + self.output_bytes
    }
}

/// Operation counts consumed by the energy model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Multiply-accumulates on two non-zero operands.
    pub macs_nonzero: u64,
    /// Multiply-accumulates with a zero operand (dense/one-sided only).
    pub macs_zero: u64,
    /// Input/filter buffer accesses (operand reads + partial-sum update).
    pub buffer_accesses: u64,
    /// Prefix-sum circuit evaluations (two per chunk join: one per operand).
    pub prefix_ops: u64,
    /// Priority-encoder steps (one per inner-join MAC).
    pub encoder_ops: u64,
    /// Values routed through the GB-H permutation network.
    pub permute_values: u64,
    /// Output-compaction operations (one per produced output cell).
    pub compact_ops: u64,
    /// SCNN crossbar traversals (one per Cartesian product).
    pub crossbar_ops: u64,
}

/// The result of simulating one layer on one architecture.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Architecture label (e.g. `"SparTen"`, `"SCNN"`).
    pub scheme: &'static str,
    /// Compute makespan in cycles (slowest cluster/PE chain).
    pub compute_cycles: u64,
    /// Memory-bound lower bound in cycles (total DRAM bytes / bandwidth).
    pub memory_cycles: u64,
    /// Total MAC units in the configuration.
    pub total_units: u64,
    /// Execution-time breakdown (sums to `compute_cycles × total_units`).
    pub breakdown: Breakdown,
    /// DRAM traffic.
    pub traffic: Traffic,
    /// Operation counts for the energy model.
    pub ops: OpCounts,
}

impl SimResult {
    /// The layer's execution time: compute unless memory-bound.
    pub fn cycles(&self) -> u64 {
        self.compute_cycles.max(self.memory_cycles)
    }

    /// Whether the memory system is the bottleneck.
    pub fn is_memory_bound(&self) -> bool {
        self.memory_cycles > self.compute_cycles
    }

    /// Speedup of `self` over `other` (by total cycles).
    pub fn speedup_over(&self, baseline: &SimResult) -> f64 {
        baseline.cycles() as f64 / self.cycles() as f64
    }

    /// Checks the accounting identity
    /// `nonzero + zero + intra + inter == compute_cycles × units`.
    pub fn accounting_holds(&self) -> bool {
        self.breakdown.total() == self.compute_cycles * self.total_units
    }

    /// The breakdown as fractions of this result's own compute slots.
    pub fn breakdown_fractions(&self) -> [f64; 4] {
        let t = self.breakdown.total().max(1) as f64;
        [
            self.breakdown.nonzero as f64 / t,
            self.breakdown.zero as f64 / t,
            self.breakdown.intra as f64 / t,
            self.breakdown.inter as f64 / t,
        ]
    }
}

/// Geometric mean of a slice of positive numbers, the paper's summary
/// statistic for per-layer speedups.
///
/// # Panics
///
/// Panics if `values` is empty or any value is non-positive.
pub fn geometric_mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geometric mean of nothing");
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geometric mean needs positive values"
    );
    (values.iter().map(|v| v.ln()).sum::<f64>() / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(compute: u64, memory: u64) -> SimResult {
        SimResult {
            scheme: "test",
            compute_cycles: compute,
            memory_cycles: memory,
            total_units: 4,
            breakdown: Breakdown {
                nonzero: compute * 4,
                ..Breakdown::default()
            },
            traffic: Traffic::default(),
            ops: OpCounts::default(),
        }
    }

    #[test]
    fn cycles_takes_memory_bound_into_account() {
        assert_eq!(result(100, 50).cycles(), 100);
        assert_eq!(result(100, 300).cycles(), 300);
        assert!(result(100, 300).is_memory_bound());
    }

    #[test]
    fn speedup_is_cycle_ratio() {
        let fast = result(100, 0);
        let slow = result(400, 0);
        assert_eq!(fast.speedup_over(&slow), 4.0);
    }

    #[test]
    fn accounting_identity() {
        assert!(result(10, 0).accounting_holds());
    }

    #[test]
    fn fractions_sum_to_one() {
        let r = SimResult {
            breakdown: Breakdown {
                nonzero: 10,
                zero: 20,
                intra: 30,
                inter: 40,
            },
            ..result(25, 0)
        };
        let f = r.breakdown_fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_of_powers() {
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geometric_mean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geometric_mean_rejects_zero() {
        geometric_mean(&[1.0, 0.0]);
    }
}
