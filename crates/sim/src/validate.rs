//! Self-validation harness: one call that cross-checks every model.
//!
//! For a given layer configuration this runs (1) the dense reference
//! convolution, (2) the functional SparTen engine in every balance mode,
//! (3) the functional SCNN Cartesian engine, and (4) all cycle-level
//! simulators, and checks the invariants that tie them together:
//! numerical equality of the functional paths, work-count agreement
//! between the engine trace and the simulators, and the breakdown
//! accounting identity. Used by integration tests and the `validate`
//! binary as a one-shot health check.

use sparten_core::balance::BalanceMode;
use sparten_core::{AcceleratorConfig, ClusterConfig, SparTenEngine};
use sparten_nn::generate::{workload, Workload};
use sparten_nn::{conv2d, ConvShape};

use crate::config::SimConfig;
use crate::runner::{simulate_layer, Scheme};
use crate::scnn_engine::scnn_cartesian_conv;
use crate::sparten::{simulate_sparten, Sparsity};
use crate::workmodel::MaskModel;

/// The outcome of one validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// The layer shape validated.
    pub shape: ConvShape,
    /// Maximum |error| of the SparTen engine vs the dense reference,
    /// worst over all balance modes.
    pub engine_max_err: f32,
    /// Maximum |error| of the SCNN Cartesian engine vs the reference.
    pub scnn_max_err: f32,
    /// Whether the simulator's useful-MAC count equals the engine trace.
    pub mac_counts_agree: bool,
    /// Whether every scheme satisfied the breakdown accounting identity.
    pub accounting_holds: bool,
    /// Whether the scheme ordering Dense ≥ One-sided ≥ SparTen held on
    /// cycles (expected at sparse densities).
    pub ordering_holds: bool,
}

impl ValidationReport {
    /// Overall pass/fail at the given numerical tolerance.
    pub fn passed(&self, tolerance: f32) -> bool {
        self.engine_max_err < tolerance
            && self.scnn_max_err < tolerance
            && self.mac_counts_agree
            && self.accounting_holds
            && self.ordering_holds
    }
}

fn max_err(a: &sparten_tensor::Tensor3, b: &sparten_tensor::Tensor3) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Validates one layer configuration end to end.
pub fn validate_layer(
    shape: ConvShape,
    input_density: f64,
    filter_density: f64,
    seed: u64,
) -> ValidationReport {
    let w: Workload = workload(&shape, input_density, filter_density, seed);
    let reference = conv2d(&w.input, &w.filters, &shape);

    // Functional engine, all modes, against the reference.
    let accel = AcceleratorConfig {
        cluster: ClusterConfig {
            compute_units: 4,
            chunk_size: 64,
            bisection_limit: 4,
        },
        num_clusters: 2,
    };
    let engine = SparTenEngine::new(accel);
    let mut engine_max_err = 0.0f32;
    let mut engine_macs = None;
    for mode in [
        BalanceMode::None,
        BalanceMode::GbS,
        BalanceMode::GbH,
        BalanceMode::GbSNoColloc,
    ] {
        let run = engine.run_layer(&w, mode, false);
        engine_max_err = engine_max_err.max(max_err(&run.logical_output(), &reference));
        let macs = run.trace.total_macs();
        assert!(
            engine_macs.replace(macs).is_none_or(|prev| prev == macs),
            "balance modes must not change MAC counts"
        );
    }

    // SCNN Cartesian engine against the reference.
    let (scnn_out, _) = scnn_cartesian_conv(&w);
    let scnn_max_err = max_err(&scnn_out, &reference);

    // Simulators: accounting + work agreement + ordering.
    let mut cfg = SimConfig::small();
    cfg.accel = accel;
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let accounting_holds = Scheme::all()
        .iter()
        .all(|&s| simulate_layer(&w, &model, &cfg, s).accounting_holds());
    let sim = simulate_sparten(&w, &model, &cfg, Sparsity::TwoSided, BalanceMode::None);
    let mac_counts_agree = Some(sim.breakdown.nonzero) == engine_macs;
    let dense = simulate_layer(&w, &model, &cfg, Scheme::Dense).cycles();
    let one = simulate_layer(&w, &model, &cfg, Scheme::OneSided).cycles();
    let sparten = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH).cycles();
    // The Dense ≥ One-sided ≥ SparTen ordering is only expected on sparse
    // inputs; on dense shallow-channel layers (the VGG-Layer0 pathology)
    // the sparse datapaths legitimately pay chunk overheads for nothing.
    let ordering_expected = input_density < 0.9;
    let ordering_holds = !ordering_expected || (dense >= one && one >= sparten);

    ValidationReport {
        shape,
        engine_max_err,
        scnn_max_err,
        mac_counts_agree,
        accounting_holds,
        ordering_holds,
    }
}

/// A standard battery of validation shapes covering strides, kernels,
/// channel depths, and the shallow-channel edge case.
pub fn standard_battery() -> Vec<(ConvShape, f64, f64)> {
    vec![
        (ConvShape::new(32, 8, 8, 3, 12, 1, 1), 0.4, 0.35),
        (ConvShape::new(70, 6, 6, 3, 9, 1, 1), 0.5, 0.4),
        (ConvShape::new(16, 9, 9, 3, 8, 2, 1), 0.4, 0.4),
        (ConvShape::new(8, 13, 13, 5, 6, 4, 2), 0.5, 0.5),
        (ConvShape::new(96, 5, 5, 1, 20, 1, 0), 0.3, 0.35),
        (ConvShape::new(3, 10, 10, 3, 8, 1, 1), 1.0, 0.6),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_battery_passes() {
        for (i, (shape, di, df)) in standard_battery().into_iter().enumerate() {
            let report = validate_layer(shape, di, df, 1000 + i as u64);
            assert!(report.passed(1e-2), "battery case {i} failed: {report:?}");
        }
    }

    #[test]
    fn report_fields_are_meaningful() {
        let (shape, di, df) = standard_battery()[0];
        let r = validate_layer(shape, di, df, 1);
        assert!(r.engine_max_err < 1e-2);
        assert!(r.mac_counts_agree);
        assert!(r.accounting_holds);
    }
}
