//! Cycle-level simulator for the SparTen family (and its one-sided proxy).
//!
//! Model (§3.2–3.3): each cluster owns a contiguous slice of output spatial
//! positions and processes *all* filters for it, group by group (one or two
//! filters per compute unit). Every input-chunk broadcast is an implicit
//! barrier across the cluster's units: the cluster advances at the pace of
//! its slowest unit for that chunk. A unit's chunk work is the popcount of
//! the ANDed SparseMaps (one MAC per cycle), plus one cycle of broadcast
//! overhead per chunk. Intra-cluster loss is the gap between the barrier
//! time and the units' useful work (covering both density imbalance and
//! idle units when filters run short); inter-cluster loss is the gap to the
//! slowest cluster.
//!
//! Configured one-sided, filters are treated as dense: every unit's chunk
//! work is the input chunk's popcount (no imbalance, but all filter zeros
//! with a non-zero input are multiplied) — the paper's proxy for Cnvlutin,
//! Cambricon-X, and EIE's zero idling.
//!
//! Chunk work is obtained from [`MaskModel`], whose inner loops run on the
//! word-parallel kernels in `sparten_arch::fast` (AND + popcount per `u64`
//! word); the structural circuit models remain the oracle those kernels
//! are differentially tested against.

use sparten_core::balance::{BalanceMode, LayerBalance};
use sparten_core::SimError;
use sparten_faults::{UnitFault, UnitFaultSpec};
use sparten_nn::generate::Workload;
use sparten_telemetry::{StallCause, Telemetry};

use crate::breakdown::{Breakdown, OpCounts, SimResult, Traffic};
use crate::config::SimConfig;
use crate::probe::{Probe, StallTally, POSITION_SPAN_LIMIT};
use crate::workmodel::MaskModel;

/// Which sparsity the datapath exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sparsity {
    /// Feature-map sparsity only (filters stored and computed dense).
    OneSided,
    /// Full two-sided sparsity (the real SparTen).
    TwoSided,
}

/// Per-chunk broadcast/setup overhead in cycles.
const CHUNK_OVERHEAD: u64 = 1;

/// Simulates one layer on the SparTen microarchitecture.
///
/// `mode` is forced to [`BalanceMode::None`] for one-sided runs (filter
/// density is uniform when filters are dense, so GB is moot).
pub fn simulate_sparten(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    sparsity: Sparsity,
    mode: BalanceMode,
) -> SimResult {
    simulate_sparten_telemetry(workload, model, config, sparsity, mode, None)
}

/// [`simulate_sparten`] with an optional telemetry session: stall-cause
/// counters, occupancy gauges, chunk-barrier histograms, and sampled
/// per-cluster timeline spans are recorded when `tel` is `Some`.
pub fn simulate_sparten_telemetry(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    sparsity: Sparsity,
    mode: BalanceMode,
    tel: Option<&Telemetry>,
) -> SimResult {
    let units = config.accel.cluster.compute_units;
    let chunk_size = config.accel.cluster.chunk_size;
    let mode = match sparsity {
        Sparsity::OneSided => BalanceMode::None,
        Sparsity::TwoSided => mode,
    };
    let balance = LayerBalance::new(&workload.filters, units, chunk_size, mode);
    simulate_sparten_with_balance_telemetry(workload, model, config, sparsity, balance, tel)
}

/// [`simulate_sparten`] with a stuck/slow compute-unit fault injected.
///
/// A [`UnitFault::Slow`] straggler stretches only the victim's per-chunk
/// *latency*: its useful work (and every cycle-accounting identity) is
/// unchanged, the lost time shows up as barrier idle — so a slow unit is
/// survivable and the result stays work-equivalent to the clean run. A
/// [`UnitFault::Stuck`] unit that holds any nonzero work makes the layer
/// unrecoverable and returns [`SimError::StuckUnit`].
pub fn simulate_sparten_faulted(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    sparsity: Sparsity,
    mode: BalanceMode,
    fault: &UnitFaultSpec,
    tel: Option<&Telemetry>,
) -> Result<SimResult, SimError> {
    let units = config.accel.cluster.compute_units;
    let chunk_size = config.accel.cluster.chunk_size;
    let mode = match sparsity {
        Sparsity::OneSided => BalanceMode::None,
        Sparsity::TwoSided => mode,
    };
    let balance = LayerBalance::new(&workload.filters, units, chunk_size, mode);
    simulate_sparten_inner(workload, model, config, sparsity, balance, tel, Some(fault))
}

/// Simulates with an explicit balance assignment (e.g. k-way collocation
/// from [`LayerBalance::with_collocation`]).
pub fn simulate_sparten_with_balance(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    sparsity: Sparsity,
    balance: LayerBalance,
) -> SimResult {
    simulate_sparten_with_balance_telemetry(workload, model, config, sparsity, balance, None)
}

/// [`simulate_sparten_with_balance`] with an optional telemetry session.
pub fn simulate_sparten_with_balance_telemetry(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    sparsity: Sparsity,
    balance: LayerBalance,
    tel: Option<&Telemetry>,
) -> SimResult {
    simulate_sparten_inner(workload, model, config, sparsity, balance, tel, None)
        .expect("fault-free simulation cannot fail")
}

fn simulate_sparten_inner(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    sparsity: Sparsity,
    balance: LayerBalance,
    tel: Option<&Telemetry>,
    fault: Option<&UnitFaultSpec>,
) -> Result<SimResult, SimError> {
    let shape = &workload.shape;
    let units = config.accel.cluster.compute_units;
    let num_clusters = config.accel.num_clusters;
    let mode = balance.mode;
    let chunks = model.chunks_per_window();
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let positions = oh * ow;

    let mut cluster_cycles = vec![0u64; num_clusters];
    let mut cluster_busy = vec![0u64; num_clusters];
    let mut total_macs = 0u64; // MACs the datapath executes
    let mut permute_values = 0u64;
    let mut chunk_joins = 0u64;

    let probe = tel.map(|t| Probe::new(t, scheme_name(sparsity, mode)));
    let hist_barrier = probe.as_ref().map(|p| p.histogram("hist.chunk_barrier"));
    // Scratch: per-unit (work, statically-empty) for the chunk just timed,
    // filled only when probing.
    let mut unit_scratch: Vec<(u64, bool)> = Vec::new();

    for cluster in 0..num_clusters {
        let unit_fault = fault.filter(|f| f.cluster == cluster);
        let lo = positions * cluster / num_clusters;
        let hi = positions * (cluster + 1) / num_clusters;
        let mut cycles = 0u64;
        let mut busy = 0u64;
        let mut tally = StallTally::default();
        let mut sampled_spans = 0usize;
        for p in lo..hi {
            // One position is one chunk batch; a serve request whose
            // deadline expired (or whose last subscriber hung up) stops
            // here instead of finishing the layer.
            sparten_telemetry::cancel::checkpoint();
            let pos_start = cycles;
            let (ox, oy) = (p % oh, p / oh);
            for group in &balance.groups {
                let busy_units = group.busy_units() as u64;
                if busy_units == 0 {
                    continue;
                }
                for c in 0..chunks {
                    match sparsity {
                        Sparsity::OneSided => {
                            let w = model.onesided_chunk_work(ox, oy, c) as u64;
                            // The broadcast barrier advances at the victim's
                            // stretched latency; useful work is unchanged.
                            let mut barrier = w;
                            if let Some(fa) = unit_fault {
                                if (fa.unit as u64) < busy_units {
                                    match fa.fault {
                                        UnitFault::Slow(k) => barrier = w * k.max(1),
                                        UnitFault::Stuck => {
                                            if w > 0 {
                                                return Err(SimError::StuckUnit {
                                                    cluster,
                                                    unit: fa.unit,
                                                });
                                            }
                                        }
                                    }
                                }
                            }
                            cycles += barrier + CHUNK_OVERHEAD;
                            busy += w * busy_units;
                            chunk_joins += busy_units;
                            if let Some(h) = &hist_barrier {
                                // All busy units share the input's popcount;
                                // idle lanes, the broadcast overhead, and any
                                // straggler stretch are the intra losses.
                                tally.prefix_encoder_wait += CHUNK_OVERHEAD * units as u64;
                                tally.unit_underfill += barrier * (units as u64 - busy_units);
                                tally.chunk_barrier_idle += (barrier - w) * busy_units;
                                h.record(barrier);
                            }
                        }
                        Sparsity::TwoSided => {
                            let per_unit: &[Vec<usize>] = if group.per_chunk_cu.is_empty() {
                                &group.per_cu
                            } else {
                                &group.per_chunk_cu[c]
                            };
                            let probing = hist_barrier.is_some();
                            if probing {
                                unit_scratch.clear();
                            }
                            let mut chunk_max = 0u64;
                            for (u, slots) in per_unit.iter().enumerate() {
                                let mut w = 0u64;
                                for &f in slots {
                                    w += model.chunk_work(ox, oy, f, c) as u64;
                                }
                                busy += w;
                                // The barrier sees the unit's *latency*: its
                                // true work, stretched for a slow victim.
                                let mut latency = w;
                                if let Some(fa) = unit_fault {
                                    if fa.unit == u {
                                        match fa.fault {
                                            UnitFault::Slow(k) => latency = w * k.max(1),
                                            UnitFault::Stuck => {
                                                if w > 0 {
                                                    return Err(SimError::StuckUnit {
                                                        cluster,
                                                        unit: u,
                                                    });
                                                }
                                            }
                                        }
                                    }
                                }
                                chunk_max = chunk_max.max(latency);
                                chunk_joins += slots.len() as u64;
                                if probing {
                                    unit_scratch.push((w, slots.is_empty()));
                                }
                            }
                            cycles += chunk_max + CHUNK_OVERHEAD;
                            if !group.per_chunk_cu.is_empty() {
                                permute_values += group.num_filters() as u64;
                            }
                            if let Some(h) = &hist_barrier {
                                tally.prefix_encoder_wait += CHUNK_OVERHEAD * units as u64;
                                for &(w, empty_slot) in &unit_scratch {
                                    if empty_slot {
                                        // No filter assigned: idle lane.
                                        tally.unit_underfill += chunk_max;
                                    } else if w == 0 {
                                        // Held filters, but the mask AND
                                        // came up empty for this chunk.
                                        tally.empty_mask_and += chunk_max;
                                    } else {
                                        tally.chunk_barrier_idle += chunk_max - w;
                                    }
                                }
                                tally.unit_underfill +=
                                    (units as u64 - per_unit.len() as u64) * chunk_max;
                                h.record(chunk_max);
                            }
                        }
                    }
                }
            }
            if let Some(pr) = &probe {
                if sampled_spans < POSITION_SPAN_LIMIT {
                    pr.span(
                        cluster as u32,
                        "position",
                        pos_start,
                        cycles - pos_start,
                        &[("pos", p as u64)],
                    );
                    sampled_spans += 1;
                }
            }
        }
        cluster_cycles[cluster] = cycles;
        cluster_busy[cluster] = busy;
        total_macs += busy;
        if let Some(pr) = &probe {
            pr.thread(cluster as u32, &format!("cluster{cluster}"));
            pr.span(cluster as u32, "cluster", 0, cycles, &[("busy", busy)]);
            if cycles > 0 {
                pr.gauge(
                    "occupancy.cluster_util",
                    busy as f64 / (cycles * units as u64) as f64,
                );
            }
            tally.emit(pr);
            debug_assert_eq!(tally.intra(), cycles * units as u64 - busy);
        }
    }

    let makespan = cluster_cycles.iter().copied().max().unwrap_or(0);
    let total_units = (units * num_clusters) as u64;

    // Useful (both-non-zero) MACs: equal to the executed MACs for two-sided;
    // for one-sided the gap is zero computation.
    let nonzero_macs = match sparsity {
        Sparsity::TwoSided => total_macs,
        Sparsity::OneSided => model.total_sparse_macs(),
    };
    let zero_macs = total_macs - nonzero_macs;

    // Intra: within each cluster, barrier slots minus that cluster's busy
    // slots. Inter: slack of faster clusters against the makespan.
    let mut intra = 0u64;
    let mut inter = 0u64;
    for c in 0..num_clusters {
        intra += cluster_cycles[c] * units as u64 - cluster_busy[c];
        inter += (makespan - cluster_cycles[c]) * units as u64;
    }

    let traffic = sparten_traffic(workload, model, config, sparsity);
    let memory_cycles = (traffic.total_bytes() / config.memory.bytes_per_cycle).ceil() as u64;

    if let Some(pr) = &probe {
        pr.work(nonzero_macs, zero_macs);
        pr.stall(StallCause::ClusterIdle, inter);
        // Registered at zero: the analytic model assumes a perfect output
        // collector, but the taxonomy slot stays visible in reports.
        pr.stall(StallCause::OutputBackpressure, 0);
        pr.traffic(&traffic);
        pr.count("trace.chunk_joins", chunk_joins);
        pr.gauge("occupancy.makespan_cycles", makespan as f64);
    }

    let prefix_per_join = match sparsity {
        Sparsity::OneSided => 1,
        Sparsity::TwoSided => 2,
    };
    Ok(SimResult {
        scheme: scheme_name(sparsity, mode),
        compute_cycles: makespan,
        memory_cycles,
        total_units,
        breakdown: Breakdown {
            nonzero: nonzero_macs,
            zero: zero_macs,
            intra,
            inter,
        },
        traffic,
        ops: OpCounts {
            macs_nonzero: nonzero_macs,
            macs_zero: zero_macs,
            buffer_accesses: 3 * total_macs,
            prefix_ops: prefix_per_join * chunk_joins,
            encoder_ops: total_macs,
            permute_values,
            compact_ops: (positions * shape.num_filters) as u64,
            crossbar_ops: 0,
        },
    })
}

fn scheme_name(sparsity: Sparsity, mode: BalanceMode) -> &'static str {
    match (sparsity, mode) {
        (Sparsity::OneSided, _) => "One-sided",
        (Sparsity::TwoSided, BalanceMode::None) => "SparTen-no-GB",
        (Sparsity::TwoSided, BalanceMode::GbS) => "SparTen-GB-S",
        (Sparsity::TwoSided, BalanceMode::GbH) => "SparTen",
        (Sparsity::TwoSided, BalanceMode::GbSNoColloc) => "SparTen-GB-S-nocolloc",
    }
}

/// DRAM traffic for the SparTen family: sparse tensors move as packed
/// non-zero values plus per-chunk SparseMaps; one-sided keeps filters dense.
fn sparten_traffic(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    sparsity: Sparsity,
) -> Traffic {
    let shape = &workload.shape;
    let elem = config.memory.element_bytes as f64;
    let batch = config.memory.batch as f64;
    let chunk = config.accel.cluster.chunk_size;
    let mask_bytes_per_chunk = (chunk / 8) as f64;
    let chunks_per_fiber =
        sparten_core::chunking::padded_fiber_len(shape.in_channels, chunk) / chunk;

    let input_fibers = (shape.in_height * shape.in_width) as f64;
    let input_mask_bytes = input_fibers * chunks_per_fiber as f64 * mask_bytes_per_chunk;
    let input_bytes = model.input_nnz() as f64 * elem + input_mask_bytes;

    let weight_cells = shape.weight_cells() as f64;
    let filter_mask_bytes = (shape.num_filters * shape.kernel * shape.kernel * chunks_per_fiber)
        as f64
        * mask_bytes_per_chunk;
    let (filter_bytes, filter_zero_bytes, filter_meta) = match sparsity {
        Sparsity::TwoSided => (
            (model.weight_nnz() as f64 * elem + filter_mask_bytes) / batch,
            0.0,
            filter_mask_bytes / batch,
        ),
        // One-sided architectures store filters dense: zeros travel.
        Sparsity::OneSided => (
            weight_cells * elem / batch,
            (weight_cells - model.weight_nnz() as f64) * elem / batch,
            0.0,
        ),
    };

    let out_cells = shape.num_outputs() as f64;
    let out_nnz = out_cells * config.memory.output_density;
    let out_chunks = (shape.out_height() * shape.out_width()) as f64
        * (shape.num_filters.div_ceil(chunk)) as f64;
    let output_mask_bytes = out_chunks * mask_bytes_per_chunk;
    let output_bytes = out_nnz * elem + output_mask_bytes;

    Traffic {
        input_bytes,
        filter_bytes,
        output_bytes,
        zero_value_bytes: filter_zero_bytes,
        metadata_bytes: input_mask_bytes + filter_meta + output_mask_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    fn test_config() -> SimConfig {
        let mut c = SimConfig::small();
        c.accel.num_clusters = 2;
        c.accel.cluster.compute_units = 4;
        c
    }

    fn test_workload() -> Workload {
        let shape = ConvShape::new(70, 6, 6, 3, 8, 1, 1);
        workload(&shape, 0.4, 0.35, 11)
    }

    #[test]
    fn accounting_identity_holds_for_all_modes() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        for (s, mode) in [
            (Sparsity::OneSided, BalanceMode::None),
            (Sparsity::TwoSided, BalanceMode::None),
            (Sparsity::TwoSided, BalanceMode::GbS),
            (Sparsity::TwoSided, BalanceMode::GbH),
        ] {
            let r = simulate_sparten(&w, &m, &cfg, s, mode);
            assert!(r.accounting_holds(), "{}: accounting broken", r.scheme);
        }
    }

    #[test]
    fn two_sided_beats_one_sided() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let one = simulate_sparten(&w, &m, &cfg, Sparsity::OneSided, BalanceMode::None);
        let two = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        assert!(two.cycles() < one.cycles());
    }

    #[test]
    fn gb_improves_or_matches_makespan() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let none = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::None);
        let gbs = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbS);
        let gbh = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        assert!(gbs.compute_cycles <= none.compute_cycles);
        assert!(gbh.compute_cycles <= gbs.compute_cycles);
    }

    #[test]
    fn one_sided_has_zero_compute_component() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let one = simulate_sparten(&w, &m, &cfg, Sparsity::OneSided, BalanceMode::None);
        assert!(one.breakdown.zero > 0);
        let two = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        assert_eq!(two.breakdown.zero, 0);
        assert_eq!(one.breakdown.nonzero, two.breakdown.nonzero);
    }

    #[test]
    fn one_sided_transfers_filter_zeros() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let one = simulate_sparten(&w, &m, &cfg, Sparsity::OneSided, BalanceMode::None);
        let two = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        assert!(one.traffic.zero_value_bytes > 0.0);
        assert_eq!(two.traffic.zero_value_bytes, 0.0);
        assert!(two.traffic.filter_bytes < one.traffic.filter_bytes);
    }

    #[test]
    fn gbh_routes_permute_values() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let gbh = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        assert!(gbh.ops.permute_values > 0);
        let gbs = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbS);
        assert_eq!(gbs.ops.permute_values, 0);
    }

    #[test]
    fn slow_unit_preserves_work_but_stretches_latency() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let fault = UnitFaultSpec {
            cluster: 0,
            unit: 0,
            fault: UnitFault::Slow(4),
        };
        for sparsity in [Sparsity::OneSided, Sparsity::TwoSided] {
            let clean = simulate_sparten(&w, &m, &cfg, sparsity, BalanceMode::None);
            let slow = simulate_sparten_faulted(
                &w,
                &m,
                &cfg,
                sparsity,
                BalanceMode::None,
                &fault,
                None,
            )
            .expect("slow unit is not a detection failure");
            // The straggler stretches latency only: true work is untouched,
            // and the cycle-accounting identity still closes exactly.
            assert_eq!(slow.breakdown.nonzero, clean.breakdown.nonzero);
            assert_eq!(slow.breakdown.zero, clean.breakdown.zero);
            assert!(slow.compute_cycles > clean.compute_cycles);
            assert!(slow.accounting_holds());
        }
    }

    #[test]
    fn stuck_unit_with_work_is_detected() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let fault = UnitFaultSpec {
            cluster: 0,
            unit: 0,
            fault: UnitFault::Stuck,
        };
        let err = simulate_sparten_faulted(
            &w,
            &m,
            &cfg,
            Sparsity::TwoSided,
            BalanceMode::None,
            &fault,
            None,
        )
        .expect_err("a stuck unit holding work must surface as an error");
        assert!(matches!(
            err,
            sparten_core::SimError::StuckUnit { cluster: 0, unit: 0 }
        ));
    }

    #[test]
    fn fault_on_absent_cluster_is_masked() {
        let w = test_workload();
        let cfg = test_config();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let clean = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        let fault = UnitFaultSpec {
            cluster: 999,
            unit: 0,
            fault: UnitFault::Stuck,
        };
        let faulted = simulate_sparten_faulted(
            &w,
            &m,
            &cfg,
            Sparsity::TwoSided,
            BalanceMode::GbH,
            &fault,
            None,
        )
        .expect("a fault outside the array cannot fire");
        assert_eq!(faulted.compute_cycles, clean.compute_cycles);
        assert_eq!(faulted.breakdown, clean.breakdown);
    }

    #[test]
    fn fpga_bandwidth_can_make_memory_bound() {
        // A very sparse layer on the FPGA's thin memory: compute shrinks
        // quadratically, traffic only linearly.
        let shape = ConvShape::new(256, 8, 8, 3, 32, 1, 1);
        let w = workload(&shape, 0.1, 0.1, 13);
        let mut cfg = SimConfig::fpga();
        cfg.memory.bytes_per_cycle = 0.5;
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let r = simulate_sparten(&w, &m, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        assert!(r.is_memory_bound());
    }
}
