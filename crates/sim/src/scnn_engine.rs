//! Functional SCNN engine: the Cartesian-product dataflow computed exactly.
//!
//! §2.1: SCNN multiplies every non-zero input cell of a channel by every
//! non-zero filter weight of that channel and routes each product to the
//! output cell it belongs to (coordinate arithmetic instead of an inner
//! join). This module executes that dataflow numerically, which
//! (a) validates the premise the cycle-level SCNN model relies on — for
//! unit stride every product lands on a real output, so products ≈ true
//! MACs — and (b) demonstrates the §2.1.1 breakdown at non-unit strides,
//! where products falling between outputs are computed and discarded.

use sparten_nn::generate::Workload;
use sparten_telemetry::Telemetry;
use sparten_tensor::Tensor3;

/// Product accounting of one Cartesian-product run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CartesianStats {
    /// Products computed (all non-zero pairs sharing a channel).
    pub products: u64,
    /// Products accumulated into a real output cell.
    pub accumulated: u64,
    /// Products discarded: stride misses plus out-of-bounds (border) hits.
    pub discarded: u64,
}

impl CartesianStats {
    /// Fraction of computed products that were wasted.
    pub fn waste_fraction(&self) -> f64 {
        if self.products == 0 {
            0.0
        } else {
            self.discarded as f64 / self.products as f64
        }
    }
}

/// Runs the convolution as SCNN's Cartesian product and returns the output
/// tensor plus the product accounting.
///
/// For stride s > 1 the product set is unchanged (the dataflow cannot skip
/// pairs) but only products whose coordinates land on the stride grid are
/// accumulated — the §2.1.1 inapplicability made executable.
pub fn scnn_cartesian_conv(workload: &Workload) -> (Tensor3, CartesianStats) {
    scnn_cartesian_conv_telemetry(workload, None)
}

/// [`scnn_cartesian_conv`] with an optional telemetry session: records the
/// product accounting as `SCNN-engine/work.*` counters.
pub fn scnn_cartesian_conv_telemetry(
    workload: &Workload,
    tel: Option<&Telemetry>,
) -> (Tensor3, CartesianStats) {
    let (out, stats) = cartesian_conv_impl(workload);
    if let Some(t) = tel {
        t.metrics.counter("SCNN-engine/work.products").add(stats.products);
        t.metrics
            .counter("SCNN-engine/work.accumulated")
            .add(stats.accumulated);
        t.metrics
            .counter("SCNN-engine/work.discarded")
            .add(stats.discarded);
    }
    (out, stats)
}

fn cartesian_conv_impl(workload: &Workload) -> (Tensor3, CartesianStats) {
    let shape = &workload.shape;
    let (oh, ow) = (shape.out_height(), shape.out_width());
    let k = shape.kernel;
    let s = shape.stride as isize;
    let p = shape.pad as isize;
    let mut out = Tensor3::zeros(shape.num_filters, oh, ow);
    let mut stats = CartesianStats::default();

    // Per channel: gather non-zero inputs and non-zero weights, then take
    // the full Cartesian product.
    for z in 0..shape.in_channels {
        let mut inputs: Vec<(usize, usize, f32)> = Vec::new();
        for y in 0..shape.in_width {
            for x in 0..shape.in_height {
                let v = workload.input.get(z, x, y);
                if v != 0.0 {
                    inputs.push((x, y, v));
                }
            }
        }
        let mut weights: Vec<(usize, usize, usize, f32)> = Vec::new();
        for (f, filter) in workload.filters.iter().enumerate() {
            for fy in 0..k {
                for fx in 0..k {
                    let w = filter.weights().get(z, fx, fy);
                    if w != 0.0 {
                        weights.push((f, fx, fy, w));
                    }
                }
            }
        }
        for &(x, y, a) in &inputs {
            for &(f, fx, fy, w) in &weights {
                stats.products += 1;
                // Output coordinates from the coordinate difference
                // (SCNN's per-product address calculation).
                let num_x = x as isize - fx as isize + p;
                let num_y = y as isize - fy as isize + p;
                if num_x < 0 || num_y < 0 || num_x % s != 0 || num_y % s != 0 {
                    stats.discarded += 1;
                    continue;
                }
                let (ox, oy) = ((num_x / s) as usize, (num_y / s) as usize);
                if ox >= oh || oy >= ow {
                    stats.discarded += 1;
                    continue;
                }
                out.set(f, ox, oy, out.get(f, ox, oy) + a * w);
                stats.accumulated += 1;
            }
        }
    }
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workmodel::MaskModel;
    use sparten_nn::generate::workload;
    use sparten_nn::{conv2d, ConvShape};

    fn assert_close(a: &Tensor3, b: &Tensor3) {
        for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
            assert!(
                (x - y).abs() < 1e-2,
                "cell {i}: cartesian {x} vs reference {y}"
            );
        }
    }

    #[test]
    fn unit_stride_matches_reference_convolution() {
        let shape = ConvShape::new(12, 8, 8, 3, 6, 1, 1);
        let w = workload(&shape, 0.5, 0.4, 1);
        let (out, stats) = scnn_cartesian_conv(&w);
        assert_close(&out, &conv2d(&w.input, &w.filters, &shape));
        // Unit-stride waste is border-only: small.
        assert!(
            stats.waste_fraction() < 0.35,
            "waste {}",
            stats.waste_fraction()
        );
    }

    #[test]
    fn accumulated_products_equal_true_sparse_macs() {
        // The cycle-level model's premise: useful products == the inner
        // join's MAC count.
        let shape = ConvShape::new(16, 7, 7, 3, 5, 1, 1);
        let w = workload(&shape, 0.4, 0.4, 2);
        let (_, stats) = scnn_cartesian_conv(&w);
        let model = MaskModel::new(&w, 64);
        assert_eq!(stats.accumulated, model.total_sparse_macs());
    }

    #[test]
    fn stride_two_still_computes_correct_outputs() {
        // SCNN can compute strided convolutions *correctly* — it just
        // wastes ~1 − 1/s² of its products doing so.
        let shape = ConvShape::new(8, 9, 9, 3, 4, 2, 1);
        let w = workload(&shape, 0.5, 0.5, 3);
        let (out, stats) = scnn_cartesian_conv(&w);
        assert_close(&out, &conv2d(&w.input, &w.filters, &shape));
        assert!(
            stats.waste_fraction() > 0.6,
            "stride-2 waste {}",
            stats.waste_fraction()
        );
    }

    #[test]
    fn stride_four_wastes_about_fifteen_sixteenths() {
        let shape = ConvShape::new(4, 21, 21, 5, 2, 4, 2);
        let w = workload(&shape, 0.6, 0.6, 4);
        let (out, stats) = scnn_cartesian_conv(&w);
        assert_close(&out, &conv2d(&w.input, &w.filters, &shape));
        assert!(
            stats.waste_fraction() > 0.85,
            "stride-4 waste {}",
            stats.waste_fraction()
        );
    }

    #[test]
    fn products_match_channel_pair_count() {
        let shape = ConvShape::new(8, 6, 6, 3, 4, 1, 1);
        let w = workload(&shape, 0.4, 0.4, 5);
        let (_, stats) = scnn_cartesian_conv(&w);
        let mut expect = 0u64;
        for z in 0..8 {
            let mut i = 0u64;
            for y in 0..6 {
                for x in 0..6 {
                    if w.input.get(z, x, y) != 0.0 {
                        i += 1;
                    }
                }
            }
            let mut f = 0u64;
            for filter in &w.filters {
                for fy in 0..3 {
                    for fx in 0..3 {
                        if filter.weights().get(z, fx, fy) != 0.0 {
                            f += 1;
                        }
                    }
                }
            }
            expect += i * f;
        }
        assert_eq!(stats.products, expect);
        assert_eq!(stats.products, stats.accumulated + stats.discarded);
    }
}
