//! High-level simulation entry points: one call per (layer, scheme).

use sparten_core::balance::BalanceMode;
use sparten_core::SimError;
use sparten_faults::UnitFaultSpec;
use sparten_nn::generate::Workload;
use sparten_nn::LayerSpec;
use sparten_telemetry::{ReconcileError, Telemetry};

use crate::breakdown::SimResult;
use crate::config::SimConfig;
use crate::dense::{simulate_dense, simulate_dense_telemetry};
use crate::probe::reconcile_and_merge;
use crate::scnn::{simulate_scnn, simulate_scnn_faulted, simulate_scnn_telemetry, ScnnVariant};
use crate::sparten::{
    simulate_sparten, simulate_sparten_faulted, simulate_sparten_telemetry, Sparsity,
};
use crate::workmodel::MaskModel;

/// The eight architectures compared in §5.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheme {
    /// TPU-like dense accelerator.
    Dense,
    /// Feature-map-only sparsity on the SparTen datapath (Cnvlutin proxy).
    OneSided,
    /// Two-sided SparTen without greedy balancing.
    SpartenNoGb,
    /// SparTen with software-only greedy balancing.
    SpartenGbS,
    /// SparTen with hybrid greedy balancing (the full design).
    SpartenGbH,
    /// SCNN with two-sided sparsity.
    Scnn,
    /// SCNN restricted to input-map sparsity (sanity variant).
    ScnnOneSided,
    /// SCNN with dense tensors (sanity variant).
    ScnnDense,
}

impl Scheme {
    /// All schemes in the paper's plotting order.
    pub fn all() -> [Scheme; 8] {
        [
            Scheme::Dense,
            Scheme::OneSided,
            Scheme::SpartenNoGb,
            Scheme::SpartenGbS,
            Scheme::SpartenGbH,
            Scheme::Scnn,
            Scheme::ScnnOneSided,
            Scheme::ScnnDense,
        ]
    }

    /// The inverse of [`Scheme::label`], for rebuilding schemes from cache
    /// records and CLI filters.
    pub fn from_label(label: &str) -> Option<Scheme> {
        Scheme::all().into_iter().find(|s| s.label() == label)
    }

    /// The label used in the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            Scheme::Dense => "Dense",
            Scheme::OneSided => "One-sided",
            Scheme::SpartenNoGb => "SparTen-no-GB",
            Scheme::SpartenGbS => "SparTen-GB-S",
            Scheme::SpartenGbH => "SparTen",
            Scheme::Scnn => "SCNN",
            Scheme::ScnnOneSided => "SCNN-one-sided",
            Scheme::ScnnDense => "SCNN-dense",
        }
    }
}

/// Simulates one layer workload on one scheme, reusing a prebuilt mask
/// model (share the model across schemes — it caches the true MAC count).
pub fn simulate_layer(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    scheme: Scheme,
) -> SimResult {
    match scheme {
        Scheme::Dense => simulate_dense(workload, model, config),
        Scheme::OneSided => simulate_sparten(
            workload,
            model,
            config,
            Sparsity::OneSided,
            BalanceMode::None,
        ),
        Scheme::SpartenNoGb => simulate_sparten(
            workload,
            model,
            config,
            Sparsity::TwoSided,
            BalanceMode::None,
        ),
        Scheme::SpartenGbS => simulate_sparten(
            workload,
            model,
            config,
            Sparsity::TwoSided,
            BalanceMode::GbS,
        ),
        Scheme::SpartenGbH => simulate_sparten(
            workload,
            model,
            config,
            Sparsity::TwoSided,
            BalanceMode::GbH,
        ),
        Scheme::Scnn => simulate_scnn(workload, model, config, ScnnVariant::Full),
        Scheme::ScnnOneSided => simulate_scnn(workload, model, config, ScnnVariant::OneSided),
        Scheme::ScnnDense => simulate_scnn(workload, model, config, ScnnVariant::Dense),
    }
}

/// Fallible [`simulate_layer`]: simulates with an optional injected compute
/// unit fault and surfaces detection as a typed [`SimError`] instead of a
/// panic. With `fault: None` this is exactly `Ok(simulate_layer(..))`.
///
/// Fault targeting follows the scheme's unit topology: SparTen-family
/// schemes interpret `fault.cluster`/`fault.unit` directly; SCNN variants
/// treat `fault.cluster` as the flat PE index (`fault.unit` is ignored);
/// the Dense scheme has no sparse compute units to perturb, so faults are
/// documented no-ops there.
pub fn try_simulate_layer(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    scheme: Scheme,
    fault: Option<&UnitFaultSpec>,
) -> Result<SimResult, SimError> {
    let Some(fault) = fault else {
        return Ok(simulate_layer(workload, model, config, scheme));
    };
    let sparten = |sparsity, mode| {
        simulate_sparten_faulted(workload, model, config, sparsity, mode, fault, None)
    };
    let scnn = |variant| simulate_scnn_faulted(workload, model, config, variant, fault, None);
    match scheme {
        Scheme::Dense => Ok(simulate_dense(workload, model, config)),
        Scheme::OneSided => sparten(Sparsity::OneSided, BalanceMode::None),
        Scheme::SpartenNoGb => sparten(Sparsity::TwoSided, BalanceMode::None),
        Scheme::SpartenGbS => sparten(Sparsity::TwoSided, BalanceMode::GbS),
        Scheme::SpartenGbH => sparten(Sparsity::TwoSided, BalanceMode::GbH),
        Scheme::Scnn => scnn(ScnnVariant::Full),
        Scheme::ScnnOneSided => scnn(ScnnVariant::OneSided),
        Scheme::ScnnDense => scnn(ScnnVariant::Dense),
    }
}

/// Fallible [`simulate_layer_telemetry`]: same contract, but reconcile
/// failures come back as [`SimError::Invariant`] so callers can thread one
/// error type through both simulation and telemetry checks.
pub fn try_simulate_layer_telemetry(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    scheme: Scheme,
    session: &Telemetry,
    track_prefix: &str,
) -> Result<SimResult, SimError> {
    simulate_layer_telemetry(workload, model, config, scheme, session, track_prefix)
        .map_err(|e| SimError::invariant("telemetry reconcile", e))
}

/// [`simulate_layer`] with telemetry: runs the scheme's instrumented
/// simulator into a fresh local session, checks that the recorded stall
/// and work counters reconcile *exactly* with the returned breakdown
/// (`nonzero + zero + intra + inter == compute_cycles × units`), and only
/// then folds the session into `session` (Perfetto tracks prefixed with
/// `track_prefix`, e.g. `"conv1:"`).
///
/// The local-session-then-merge dance keeps the invariant exact even when
/// many layers record into one shared session from worker threads.
pub fn simulate_layer_telemetry(
    workload: &Workload,
    model: &MaskModel,
    config: &SimConfig,
    scheme: Scheme,
    session: &Telemetry,
    track_prefix: &str,
) -> Result<SimResult, ReconcileError> {
    let local = Telemetry::new();
    let tel = Some(&local);
    let result = match scheme {
        Scheme::Dense => simulate_dense_telemetry(workload, model, config, tel),
        Scheme::OneSided => simulate_sparten_telemetry(
            workload,
            model,
            config,
            Sparsity::OneSided,
            BalanceMode::None,
            tel,
        ),
        Scheme::SpartenNoGb => simulate_sparten_telemetry(
            workload,
            model,
            config,
            Sparsity::TwoSided,
            BalanceMode::None,
            tel,
        ),
        Scheme::SpartenGbS => simulate_sparten_telemetry(
            workload,
            model,
            config,
            Sparsity::TwoSided,
            BalanceMode::GbS,
            tel,
        ),
        Scheme::SpartenGbH => simulate_sparten_telemetry(
            workload,
            model,
            config,
            Sparsity::TwoSided,
            BalanceMode::GbH,
            tel,
        ),
        Scheme::Scnn => simulate_scnn_telemetry(workload, model, config, ScnnVariant::Full, tel),
        Scheme::ScnnOneSided => {
            simulate_scnn_telemetry(workload, model, config, ScnnVariant::OneSided, tel)
        }
        Scheme::ScnnDense => {
            simulate_scnn_telemetry(workload, model, config, ScnnVariant::Dense, tel)
        }
    };
    reconcile_and_merge(local, &result, session, track_prefix)?;
    Ok(result)
}

/// Generates a Table 3 layer's synthetic workload and simulates it.
pub fn simulate_spec(spec: &LayerSpec, config: &SimConfig, scheme: Scheme, seed: u64) -> SimResult {
    let workload = spec.workload(seed);
    let model = MaskModel::new(&workload, config.accel.cluster.chunk_size);
    simulate_layer(&workload, &model, config, scheme)
}

/// A mini-batch simulation: one result per image, filters held stationary
/// across the batch (§4 uses batch 16).
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-image results in batch order.
    pub images: Vec<SimResult>,
}

impl BatchResult {
    /// Total execution cycles across the batch (images run back to back;
    /// filters stay resident, so only per-image compute/memory repeats).
    pub fn total_cycles(&self) -> u64 {
        self.images.iter().map(SimResult::cycles).sum()
    }

    /// Relative spread of per-image cycles — how much input-sparsity
    /// variation moves the layer's runtime across a batch.
    pub fn cycle_spread(&self) -> f64 {
        let cycles: Vec<u64> = self.images.iter().map(SimResult::cycles).collect();
        let min = *cycles.iter().min().expect("non-empty batch") as f64;
        let max = *cycles.iter().max().expect("non-empty batch") as f64;
        (max - min) / max
    }
}

/// Simulates a whole mini-batch of a Table 3 layer: one filter set, `batch`
/// independent inputs at the layer's density.
pub fn simulate_spec_batch(
    spec: &LayerSpec,
    config: &SimConfig,
    scheme: Scheme,
    seed: u64,
    batch: usize,
) -> BatchResult {
    let images = sparten_nn::generate::workload_batch(
        &spec.shape,
        spec.input_density,
        spec.filter_density,
        seed,
        batch,
    )
    .iter()
    .map(|w| {
        let model = MaskModel::new(w, config.accel.cluster.chunk_size);
        simulate_layer(w, &model, config, scheme)
    })
    .collect();
    BatchResult { images }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten_nn::generate::workload;
    use sparten_nn::ConvShape;

    #[test]
    fn all_schemes_run_and_account() {
        let shape = ConvShape::new(40, 8, 8, 3, 12, 1, 1);
        let w = workload(&shape, 0.4, 0.35, 31);
        let mut cfg = SimConfig::small();
        cfg.accel.num_clusters = 2;
        cfg.accel.cluster.compute_units = 4;
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        for scheme in Scheme::all() {
            let r = simulate_layer(&w, &m, &cfg, scheme);
            assert!(r.accounting_holds(), "{}", r.scheme);
            assert!(r.cycles() > 0, "{}", r.scheme);
        }
    }

    #[test]
    fn paper_ordering_on_a_sparse_layer() {
        // SparTen > One-sided > Dense, and SCNN > its sanity variants.
        let shape = ConvShape::new(64, 12, 12, 3, 32, 1, 1);
        let w = workload(&shape, 0.3, 0.35, 32);
        let cfg = SimConfig::small();
        let m = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let cycles = |s| simulate_layer(&w, &m, &cfg, s).cycles();
        assert!(cycles(Scheme::SpartenGbH) < cycles(Scheme::OneSided));
        assert!(cycles(Scheme::OneSided) < cycles(Scheme::Dense));
        assert!(cycles(Scheme::Scnn) < cycles(Scheme::ScnnOneSided));
        assert!(cycles(Scheme::ScnnOneSided) < cycles(Scheme::ScnnDense));
    }

    #[test]
    fn batch_simulation_varies_per_image() {
        let spec = sparten_nn::LayerSpec {
            name: "test",
            shape: ConvShape::new(48, 6, 6, 3, 8, 1, 1),
            input_density: 0.3,
            filter_density: 0.35,
        };
        let mut cfg = SimConfig::small();
        cfg.accel.num_clusters = 2;
        cfg.accel.cluster.compute_units = 4;
        let b = simulate_spec_batch(&spec, &cfg, Scheme::SpartenGbH, 7, 4);
        assert_eq!(b.images.len(), 4);
        assert!(b.total_cycles() > b.images[0].cycles());
        // Input sparsity varies per image, so cycles should too (a little).
        assert!(b.cycle_spread() > 0.0);
        assert!(b.cycle_spread() < 0.5);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            Scheme::all().iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), 8);
    }
}
