//! Design-space sweeps: density response curves and strong scaling.
//!
//! Two questions the paper's evaluation raises but answers only pointwise:
//! how does each architecture's advantage move with sparsity (the density
//! product drives SparTen's quadratic win, §1), and how far does SparTen
//! scale before inter-cluster losses and memory bandwidth flatten it
//! (Table 2 stops at 32 clusters)?

use sparten_nn::generate::workload;
use sparten_nn::ConvShape;

use crate::breakdown::SimResult;
use crate::config::SimConfig;
use crate::runner::{simulate_layer, Scheme};
use crate::workmodel::MaskModel;

/// One point of a density sweep.
#[derive(Debug, Clone)]
pub struct DensityPoint {
    /// The input/filter density used (both sides swept together).
    pub density: f64,
    /// Results per scheme, in the order passed to [`density_sweep`].
    pub results: Vec<SimResult>,
}

impl DensityPoint {
    /// Speedups over the first scheme.
    pub fn speedups(&self) -> Vec<f64> {
        let base = self.results[0].cycles() as f64;
        self.results
            .iter()
            .map(|r| base / r.cycles() as f64)
            .collect()
    }
}

/// Sweeps both tensor densities across `densities` on a fixed layer shape.
pub fn density_sweep(
    shape: &ConvShape,
    densities: &[f64],
    schemes: &[Scheme],
    config: &SimConfig,
    seed: u64,
) -> Vec<DensityPoint> {
    densities
        .iter()
        .map(|&density| {
            let w = workload(shape, density, density, seed);
            let model = MaskModel::new(&w, config.accel.cluster.chunk_size);
            DensityPoint {
                density,
                results: schemes
                    .iter()
                    .map(|&s| simulate_layer(&w, &model, config, s))
                    .collect(),
            }
        })
        .collect()
}

/// One point of a strong-scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Cluster count.
    pub clusters: usize,
    /// The result at that size.
    pub result: SimResult,
    /// Parallel efficiency versus the single-cluster run
    /// (`t1 / (clusters · tN)`).
    pub efficiency: f64,
}

/// Strong scaling: the same layer on 1, 2, 4, … `max_clusters` clusters.
pub fn scaling_sweep(
    shape: &ConvShape,
    scheme: Scheme,
    base_config: &SimConfig,
    max_clusters: usize,
    seed: u64,
) -> Vec<ScalingPoint> {
    let w = workload(shape, 0.3, 0.35, seed);
    let model = MaskModel::new(&w, base_config.accel.cluster.chunk_size);
    let mut t1 = None;
    let mut out = Vec::new();
    let mut clusters = 1usize;
    while clusters <= max_clusters {
        let mut cfg = *base_config;
        cfg.accel.num_clusters = clusters;
        let result = simulate_layer(&w, &model, &cfg, scheme);
        let t1v = *t1.get_or_insert(result.cycles());
        let efficiency = t1v as f64 / (clusters as f64 * result.cycles() as f64);
        out.push(ScalingPoint {
            clusters,
            result,
            efficiency,
        });
        clusters *= 2;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape() -> ConvShape {
        ConvShape::new(64, 10, 10, 3, 32, 1, 1)
    }

    #[test]
    fn sparten_advantage_grows_as_density_falls() {
        let mut cfg = SimConfig::small();
        cfg.accel.num_clusters = 2;
        let points = density_sweep(
            &shape(),
            &[0.6, 0.3, 0.15],
            &[Scheme::Dense, Scheme::SpartenGbH],
            &cfg,
            3,
        );
        let speedups: Vec<f64> = points.iter().map(|p| p.speedups()[1]).collect();
        assert!(speedups[1] > speedups[0], "{speedups:?}");
        assert!(speedups[2] > speedups[1], "{speedups:?}");
    }

    #[test]
    fn one_sided_advantage_is_linear_not_quadratic() {
        // Halving both densities should help SparTen (quadratic) much more
        // than One-sided (linear in input density only).
        let mut cfg = SimConfig::small();
        cfg.accel.num_clusters = 2;
        let points = density_sweep(
            &shape(),
            &[0.6, 0.3],
            &[Scheme::Dense, Scheme::OneSided, Scheme::SpartenGbH],
            &cfg,
            4,
        );
        let gain = |s: usize| points[1].speedups()[s] / points[0].speedups()[s];
        assert!(
            gain(2) > gain(1) * 1.3,
            "sparten {} vs one-sided {}",
            gain(2),
            gain(1)
        );
    }

    #[test]
    fn scaling_efficiency_decays_but_speedup_grows() {
        let cfg = SimConfig::small();
        let points = scaling_sweep(&shape(), Scheme::SpartenGbH, &cfg, 8, 5);
        assert_eq!(points.len(), 4); // 1, 2, 4, 8
        assert!((points[0].efficiency - 1.0).abs() < 1e-9);
        for pair in points.windows(2) {
            assert!(
                pair[1].result.cycles() <= pair[0].result.cycles(),
                "more clusters must not slow down"
            );
            assert!(pair[1].efficiency <= pair[0].efficiency + 1e-9);
        }
    }
}
