//! Simulation configurations: compute resources plus the memory system.
//!
//! The paper matches compute units, on-chip buffering, and memory bandwidth
//! across architectures so differences are purely architectural (§4). The
//! FPGA configuration models the Cyclone IV prototype: one 32-unit cluster
//! at 50 MHz against a 2.8 Gbps SDRAM, which is what makes some layers
//! memory-bound in §5.5.

use sparten_core::AcceleratorConfig;

/// Memory-system parameters shared by all simulated architectures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemoryConfig {
    /// Sustained DRAM bandwidth in bytes per accelerator cycle.
    pub bytes_per_cycle: f64,
    /// Bytes per tensor element (the paper uses 8-bit values).
    pub element_bytes: usize,
    /// Mini-batch size: filter traffic is amortized across the batch
    /// because filters are reused for every image (§4 uses 16).
    pub batch: usize,
    /// Assumed output-map density after ReLU, used for output traffic when
    /// the simulator runs from a spec rather than real values.
    pub output_density: f64,
}

impl MemoryConfig {
    /// ASIC-class memory: ample bandwidth (64 B/cycle), batch 16.
    pub fn asic() -> Self {
        MemoryConfig {
            bytes_per_cycle: 64.0,
            element_bytes: 1,
            batch: 16,
            output_density: 0.5,
        }
    }

    /// The FPGA prototype's memory: 2.8 Gbps SDRAM against a 50 MHz clock
    /// gives 2.8e9 / 8 / 50e6 = 7 bytes per cycle.
    pub fn fpga() -> Self {
        MemoryConfig {
            bytes_per_cycle: 7.0,
            element_bytes: 1,
            batch: 16,
            output_density: 0.5,
        }
    }
}

/// SCNN configuration (Table 2 plus §4's tile search result).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScnnConfig {
    /// Number of processing elements (64 large, 16 small).
    pub num_pes: usize,
    /// Multiplier-array edge F = I (4×4 = 16 multipliers per PE).
    pub mult_edge: usize,
    /// Input tile edge (6×6 performs best in the paper's search).
    pub tile: usize,
    /// Filters per output group (8).
    pub output_group: usize,
}

impl ScnnConfig {
    /// Table 2 "large": 64 PEs × 16 multipliers.
    pub fn large() -> Self {
        ScnnConfig {
            num_pes: 64,
            mult_edge: 4,
            tile: 6,
            output_group: 8,
        }
    }

    /// Table 2 "small": 16 PEs × 16 multipliers.
    pub fn small() -> Self {
        ScnnConfig {
            num_pes: 16,
            mult_edge: 4,
            tile: 6,
            output_group: 8,
        }
    }

    /// Total multipliers.
    pub fn total_mults(&self) -> usize {
        self.num_pes * self.mult_edge * self.mult_edge
    }
}

/// A complete simulation configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// SparTen/Dense/One-sided compute resources.
    pub accel: AcceleratorConfig,
    /// SCNN compute resources (kept resource-matched).
    pub scnn: ScnnConfig,
    /// Memory system.
    pub memory: MemoryConfig,
}

impl SimConfig {
    /// The aggressive configuration used for AlexNet and VGGNet.
    pub fn large() -> Self {
        SimConfig {
            accel: AcceleratorConfig::large(),
            scnn: ScnnConfig::large(),
            memory: MemoryConfig::asic(),
        }
    }

    /// The scaled-down configuration used for GoogLeNet.
    pub fn small() -> Self {
        SimConfig {
            accel: AcceleratorConfig::small(),
            scnn: ScnnConfig::small(),
            memory: MemoryConfig::asic(),
        }
    }

    /// The FPGA prototype: one cluster, SDRAM bandwidth.
    pub fn fpga() -> Self {
        SimConfig {
            accel: AcceleratorConfig::fpga(),
            scnn: ScnnConfig::small(),
            memory: MemoryConfig::fpga(),
        }
    }

    /// A stable, human-readable digest of every parameter that can change
    /// simulation results. The experiment cache hashes this string into its
    /// keys, so two runs share cache entries exactly when their configs are
    /// identical — and any config change invalidates the right entries.
    pub fn fingerprint(&self) -> String {
        format!(
            "accel(cu={},chunk={},bisect={},clusters={}) \
             scnn(pes={},edge={},tile={},group={}) \
             mem(bpc={},eb={},batch={},outd={})",
            self.accel.cluster.compute_units,
            self.accel.cluster.chunk_size,
            self.accel.cluster.bisection_limit,
            self.accel.num_clusters,
            self.scnn.num_pes,
            self.scnn.mult_edge,
            self.scnn.tile,
            self.scnn.output_group,
            self.memory.bytes_per_cycle,
            self.memory.element_bytes,
            self.memory.batch,
            self.memory.output_density,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_matching_large() {
        // Dense/SparTen 1024 MACs vs SCNN 64 PEs × 16 = 1024 multipliers.
        let c = SimConfig::large();
        assert_eq!(c.accel.total_macs(), c.scnn.total_mults());
    }

    #[test]
    fn resource_matching_small() {
        let c = SimConfig::small();
        assert_eq!(c.accel.total_macs(), c.scnn.total_mults());
    }

    #[test]
    fn fpga_bandwidth_is_seven_bytes_per_cycle() {
        assert!((MemoryConfig::fpga().bytes_per_cycle - 7.0).abs() < 1e-12);
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = SimConfig::large().fingerprint();
        let b = SimConfig::small().fingerprint();
        let c = SimConfig::fpga().fingerprint();
        assert_ne!(a, b);
        assert_ne!(b, c);
        assert_eq!(a, SimConfig::large().fingerprint());
        let mut tweaked = SimConfig::large();
        tweaked.memory.batch = 17;
        assert_ne!(a, tweaked.fingerprint());
    }
}
