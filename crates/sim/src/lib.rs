#![warn(missing_docs)]

//! Cycle-level performance simulators for the SparTen paper's evaluation.
//!
//! Four architectures are modelled on matched resources (Table 2):
//!
//! * **Dense** — a TPU-like dense accelerator that computes every MAC,
//!   zeros included, with no sparse-computation overheads ([`dense`]);
//! * **One-sided** — the SparTen datapath restricted to feature-map
//!   sparsity (a proxy for Cnvlutin/Cambricon-X/EIE idling) ([`sparten`]);
//! * **SparTen** — two-sided sparsity with no GB, GB-S, or GB-H ([`sparten`]);
//! * **SCNN** — the Cartesian-product dataflow with its intra-PE
//!   underutilization, inter-PE barriers, tile-edge truncation, and
//!   compute-and-discard behaviour on non-unit strides ([`scnn`]).
//!
//! Each simulator returns a [`SimResult`]: cycles, the Figure 10–12
//! execution-time breakdown (non-zero compute, zero compute, intra-cluster
//! loss, inter-cluster loss), memory traffic, and the operation counts the
//! energy model consumes. The SparTen-family work accounting is
//! cross-checked against the exact functional engine in `sparten-core` by
//! integration tests.

pub mod bitserial;
pub mod breakdown;
pub mod buffered;
pub mod cambricon;
pub mod config;
pub mod dense;
pub mod goals;
pub mod probe;
pub mod runner;
pub mod scnn;
pub mod scnn_engine;
pub mod sparten;
pub mod sweeps;
pub mod trace;
pub mod validate;
pub mod workmodel;

pub use bitserial::{booth_digits, simulate_bitserial};
pub use breakdown::{intern_scheme_label, Breakdown, OpCounts, SimResult, Traffic};
pub use buffered::{simulate_buffered, BufferDepth, BufferedResult};
pub use cambricon::{simulate_cambricon, simulate_cambricon_checked, CambriconResult};
pub use config::{MemoryConfig, ScnnConfig, SimConfig};
pub use goals::{design_goal_table, DesignGoals};
pub use probe::{reconcile_and_merge, Probe, StallTally};
pub use runner::{
    simulate_layer, simulate_layer_telemetry, simulate_spec, simulate_spec_batch,
    try_simulate_layer, try_simulate_layer_telemetry, BatchResult, Scheme,
};
pub use scnn::simulate_scnn_faulted;
pub use sparten::simulate_sparten_faulted;
pub use scnn_engine::{scnn_cartesian_conv, scnn_cartesian_conv_telemetry, CartesianStats};
pub use sweeps::{density_sweep, scaling_sweep, DensityPoint, ScalingPoint};
pub use trace::{trace_cluster, trace_cluster_telemetry, ChunkEvent, ClusterTraceLog};
pub use validate::{standard_battery, validate_layer, ValidationReport};
pub use workmodel::{LayerMeasurement, MaskModel};
