//! Golden and determinism tests for the `harness bench` artifact.
//!
//! The `BENCH_sim.json` schema is a cross-PR contract: CI's
//! `--check-schema` smoke, the baseline comparison, and any external
//! tooling all parse it. These tests pin the schema tag, the key layout,
//! and the registry contents, and check that two runs with identical
//! options differ only in their timing fields.

use sparten_bench::json::Json;
use sparten_bench::{
    check_schema, non_timing_fingerprint, run_benchmarks, BenchOptions, BenchReport, ExtraBench,
    BENCH_SCHEMA, DEFAULT_THRESHOLD,
};

fn quick_opts() -> BenchOptions {
    BenchOptions {
        quick: true,
        filter: None,
        threshold: DEFAULT_THRESHOLD,
    }
}

fn quick_run() -> BenchReport {
    run_benchmarks(&quick_opts(), Vec::new())
}

/// Golden: the artifact parses back through the same hand-rolled JSON
/// parser the harness uses and satisfies the pinned schema.
#[test]
fn artifact_parses_back_and_passes_schema_check() {
    let report = quick_run();
    let text = report.to_json().pretty();
    let doc = Json::parse(&text).expect("BENCH_sim.json must round-trip through bench::json");
    check_schema(&doc).expect("artifact must satisfy the pinned schema");
}

/// Golden: the schema tag, top-level key order, and registry contents
/// are pinned. Renaming a benchmark or reordering keys breaks baseline
/// comparisons across commits, so it must show up as a test diff here.
#[test]
fn artifact_schema_and_registry_are_pinned() {
    let report = quick_run();
    let text = report.to_json().pretty();

    assert_eq!(BENCH_SCHEMA, "sparten-bench/v1");
    assert!(
        text.starts_with("{\n  \"schema\": \"sparten-bench/v1\","),
        "schema tag must be the first key:\n{text}"
    );
    for key in ["\"mode\"", "\"threshold\"", "\"kernels\"", "\"macros\""] {
        assert!(text.contains(key), "missing top-level key {key}:\n{text}");
    }

    let kernel_names: Vec<&str> = report.kernels.iter().map(|k| k.name.as_str()).collect();
    assert_eq!(
        kernel_names,
        [
            "kernel/prefix-sklansky-128",
            "kernel/prefix-koggestone-128",
            "kernel/inner-join-128",
            "kernel/compact-32",
        ],
        "kernel registry changed — update the golden list AND the baseline"
    );
    let macro_names: Vec<&str> = report.macros.iter().map(|m| m.name.as_str()).collect();
    assert_eq!(
        macro_names,
        [
            "layer/Dense",
            "layer/SparTen",
            "layer/SCNN",
            "engine/run-layer",
            "model/eval-point",
            "dse/1k-sweep",
        ],
        "macro registry changed — update the golden list AND the baseline"
    );

    for k in &report.kernels {
        assert!(
            k.structural_ns.is_finite() && k.structural_ns > 0.0,
            "{}: bad structural_ns",
            k.name
        );
        assert!(k.fast_ns.is_finite() && k.fast_ns > 0.0, "{}: bad fast_ns", k.name);
        assert!(k.speedup.is_finite() && k.speedup > 0.0, "{}: bad speedup", k.name);
    }
    for m in &report.macros {
        assert!(
            m.ns_per_iter.is_finite() && m.ns_per_iter > 0.0,
            "{}: bad ns_per_iter",
            m.name
        );
    }
}

/// Two runs with identical options agree on every non-timing field:
/// schema, mode, threshold, and the ordered benchmark names.
#[test]
fn two_runs_agree_on_all_non_timing_fields() {
    let first = quick_run().to_json().pretty();
    let second = quick_run().to_json().pretty();
    let fp_a = non_timing_fingerprint(&Json::parse(&first).expect("first run parses"));
    let fp_b = non_timing_fingerprint(&Json::parse(&second).expect("second run parses"));
    assert_eq!(fp_a, fp_b, "non-timing fields must be deterministic");
    assert!(fp_a.contains("sparten-bench/v1"));
    assert!(fp_a.contains("kernel/inner-join-128"));
    assert!(fp_a.contains("engine/run-layer"));
}

/// Injected extra benches land after the built-in macros, in order, so
/// the harness cache-hit path keeps a stable position in the artifact.
#[test]
fn extras_extend_the_fingerprint_deterministically() {
    let opts = BenchOptions {
        quick: true,
        filter: Some("harness/".into()),
        threshold: DEFAULT_THRESHOLD,
    };
    let run = |calls: &mut u64| {
        let extras = vec![ExtraBench {
            name: "harness/cache-hit".into(),
            run: Box::new(|| *calls += 1),
        }];
        let doc = Json::parse(&run_benchmarks(&opts, extras).to_json().pretty()).expect("parses");
        check_schema(&doc).expect("schema");
        non_timing_fingerprint(&doc)
    };
    let (mut c1, mut c2) = (0u64, 0u64);
    let (fp_a, fp_b) = (run(&mut c1), run(&mut c2));
    assert!(c1 > 0 && c2 > 0, "extra bench must actually run");
    assert_eq!(fp_a, fp_b);
    assert!(fp_a.ends_with("macros: harness/cache-hit\n"), "got: {fp_a:?}");
}
