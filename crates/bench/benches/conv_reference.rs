//! Reference-convolution throughput: the window-vector form vs the direct
//! nested loops, and the functional SparTen engine on the same layer.

use sparten::core::{AcceleratorConfig, BalanceMode, SparTenEngine};
use sparten::nn::generate::workload;
use sparten::nn::{conv2d, conv2d_direct, ConvShape};
use sparten_bench::timing;

fn main() {
    let mut group = timing::group("conv_reference");
    group.budget_ms(300);
    let shape = ConvShape::new(32, 14, 14, 3, 32, 1, 1);
    let w = workload(&shape, 0.4, 0.35, 1);

    group.bench("conv2d_window", || {
        std::hint::black_box(conv2d(&w.input, &w.filters, &shape))
    });
    group.bench("conv2d_direct", || {
        std::hint::black_box(conv2d_direct(&w.input, &w.filters, &shape))
    });

    let engine = SparTenEngine::new(AcceleratorConfig::small());
    group.bench("functional_engine_gbh", || {
        std::hint::black_box(engine.run_layer(&w, BalanceMode::GbH, false))
    });
    group.finish();
}
