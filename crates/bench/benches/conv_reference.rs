//! Reference-convolution throughput: the window-vector form vs the direct
//! nested loops, and the functional SparTen engine on the same layer.

use criterion::{criterion_group, criterion_main, Criterion};
use sparten::core::{AcceleratorConfig, BalanceMode, SparTenEngine};
use sparten::nn::generate::workload;
use sparten::nn::{conv2d, conv2d_direct, ConvShape};

fn bench_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_reference");
    group.sample_size(10);
    let shape = ConvShape::new(32, 14, 14, 3, 32, 1, 1);
    let w = workload(&shape, 0.4, 0.35, 1);

    group.bench_function("conv2d_window", |bench| {
        bench.iter(|| std::hint::black_box(conv2d(&w.input, &w.filters, &shape)))
    });
    group.bench_function("conv2d_direct", |bench| {
        bench.iter(|| std::hint::black_box(conv2d_direct(&w.input, &w.filters, &shape)))
    });

    let engine = SparTenEngine::new(AcceleratorConfig::small());
    group.bench_function("functional_engine_gbh", |bench| {
        bench.iter(|| std::hint::black_box(engine.run_layer(&w, BalanceMode::GbH, false)))
    });
    group.finish();
}

criterion_group!(benches, bench_conv);
criterion_main!(benches);
