//! Microbenchmark: the three prefix-sum circuit models over the 128-bit
//! SparseMap width (the paper's chunk size) and wider.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparten::arch::{BrentKung, KoggeStone, PrefixCircuit, Ripple, Sklansky};
use sparten::tensor::SparseMap;

fn bench_prefix(c: &mut Criterion) {
    let mut group = c.benchmark_group("prefix_sum");
    for width in [128usize, 512] {
        let bools: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        let mask = SparseMap::from_bools(&bools);
        let circuits: [&dyn PrefixCircuit; 4] = [&Ripple, &Sklansky, &KoggeStone, &BrentKung];
        for circuit in circuits {
            group.bench_with_input(
                BenchmarkId::new(circuit.name(), width),
                &mask,
                |bench, m| bench.iter(|| std::hint::black_box(circuit.prefix_sums(m))),
            );
        }
        group.bench_with_input(
            BenchmarkId::new("word_popcount", width),
            &mask,
            |bench, m| bench.iter(|| std::hint::black_box(m.prefix_count(width - 1))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_prefix);
criterion_main!(benches);
