//! Microbenchmark: the three prefix-sum circuit models over the 128-bit
//! SparseMap width (the paper's chunk size) and wider.

use sparten::arch::{BrentKung, KoggeStone, PrefixCircuit, Ripple, Sklansky};
use sparten::tensor::SparseMap;
use sparten_bench::timing;

fn main() {
    let mut group = timing::group("prefix_sum");
    for width in [128usize, 512] {
        let bools: Vec<bool> = (0..width).map(|i| i % 3 == 0).collect();
        let mask = SparseMap::from_bools(&bools);
        let circuits: [&dyn PrefixCircuit; 4] = [&Ripple, &Sklansky, &KoggeStone, &BrentKung];
        for circuit in circuits {
            group.bench(&format!("{}/{width}", circuit.name()), || {
                std::hint::black_box(circuit.prefix_sums(&mask))
            });
        }
        group.bench(&format!("word_popcount/{width}"), || {
            std::hint::black_box(mask.prefix_count(width - 1))
        });
    }
    group.finish();
}
