//! Microbenchmark: the offline cost of greedy balancing (GB-S and GB-H
//! sorting/pairing, and the next-layer unshuffle) — the cost the paper
//! amortizes "over numerous input images".

use sparten::core::balance::{unshuffle_next_layer, BalanceMode, LayerBalance};
use sparten::nn::generate::random_filters;
use sparten::nn::ConvShape;
use sparten_bench::timing;

fn main() {
    let mut group = timing::group("greedy_balancing");
    group.budget_ms(200);
    // AlexNet Layer2-sized filter set: 384 filters of 3x3x192.
    let shape = ConvShape::new(192, 27, 27, 3, 384, 1, 1);
    let filters = random_filters(&shape, 0.35, 0.5, 1);
    for mode in [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH] {
        group.bench(&format!("assign/{mode:?}"), || {
            std::hint::black_box(LayerBalance::new(&filters, 32, 128, mode))
        });
    }

    let balance = LayerBalance::new(&filters, 32, 128, BalanceMode::GbS);
    let next_shape = ConvShape::new(384, 13, 13, 3, 64, 1, 1);
    let next = random_filters(&next_shape, 0.37, 0.4, 2);
    group.bench("unshuffle_next_layer", || {
        let mut fs = next.clone();
        unshuffle_next_layer(&mut fs, &balance.produced_channels);
        std::hint::black_box(fs)
    });
    group.finish();
}
