//! Microbenchmark: the bit-mask inner join (§3.1) against the CSR merge
//! join and a dense dot product, across densities.

use sparten::tensor::{IndexVector, SparseVector};
use sparten_bench::timing;

const LEN: usize = 4096;

fn vector(density: f64, phase: usize) -> Vec<f32> {
    let period = (1.0 / density).round() as usize;
    (0..LEN)
        .map(|i| {
            if (i + phase).is_multiple_of(period) {
                (i % 13 + 1) as f32
            } else {
                0.0
            }
        })
        .collect()
}

fn main() {
    let mut group = timing::group("inner_join");
    for density in [0.1, 0.33, 0.5] {
        let a = vector(density, 0);
        let b = vector(density, 1);

        let sa = SparseVector::from_dense(&a, 128);
        let sb = SparseVector::from_dense(&b, 128);
        group.bench(&format!("bitmask/{density:.2}"), || {
            std::hint::black_box(sa.dot(&sb))
        });

        let ia = IndexVector::from_dense(&a);
        let ib = IndexVector::from_dense(&b);
        group.bench(&format!("csr_merge/{density:.2}"), || {
            std::hint::black_box(ia.dot(&ib))
        });

        group.bench(&format!("dense/{density:.2}"), || {
            let dot: f32 = a.iter().zip(b.iter()).map(|(p, q)| p * q).sum();
            std::hint::black_box(dot)
        });
    }
    group.finish();
}
