//! Microbenchmark: the bit-mask inner join (§3.1) against the CSR merge
//! join and a dense dot product, across densities.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparten::tensor::{IndexVector, SparseVector};

const LEN: usize = 4096;

fn vector(density: f64, phase: usize) -> Vec<f32> {
    let period = (1.0 / density).round() as usize;
    (0..LEN)
        .map(|i| {
            if (i + phase).is_multiple_of(period) {
                (i % 13 + 1) as f32
            } else {
                0.0
            }
        })
        .collect()
}

fn bench_inner_join(c: &mut Criterion) {
    let mut group = c.benchmark_group("inner_join");
    for density in [0.1, 0.33, 0.5] {
        let a = vector(density, 0);
        let b = vector(density, 1);

        let sa = SparseVector::from_dense(&a, 128);
        let sb = SparseVector::from_dense(&b, 128);
        group.bench_with_input(
            BenchmarkId::new("bitmask", format!("{density:.2}")),
            &(&sa, &sb),
            |bench, (x, y)| bench.iter(|| std::hint::black_box(x.dot(y))),
        );

        let ia = IndexVector::from_dense(&a);
        let ib = IndexVector::from_dense(&b);
        group.bench_with_input(
            BenchmarkId::new("csr_merge", format!("{density:.2}")),
            &(&ia, &ib),
            |bench, (x, y)| bench.iter(|| std::hint::black_box(x.dot(y))),
        );

        group.bench_with_input(
            BenchmarkId::new("dense", format!("{density:.2}")),
            &(&a, &b),
            |bench, (x, y)| {
                bench.iter(|| {
                    let dot: f32 = x.iter().zip(y.iter()).map(|(p, q)| p * q).sum();
                    std::hint::black_box(dot)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_inner_join);
criterion_main!(benches);
