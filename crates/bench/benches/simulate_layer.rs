//! End-to-end simulator throughput: one scaled AlexNet-Layer2-like layer
//! through each architecture model.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparten::nn::generate::workload;
use sparten::nn::ConvShape;
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};

fn bench_simulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_layer");
    group.sample_size(10);
    let shape = ConvShape::new(192, 14, 14, 3, 128, 1, 1);
    let w = workload(&shape, 0.24, 0.35, 1);
    let cfg = SimConfig::small();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    model.total_sparse_macs(); // warm the cache so schemes are comparable
    for scheme in [
        Scheme::Dense,
        Scheme::OneSided,
        Scheme::SpartenNoGb,
        Scheme::SpartenGbH,
        Scheme::Scnn,
    ] {
        group.bench_with_input(
            BenchmarkId::new("scheme", scheme.label()),
            &scheme,
            |bench, &s| bench.iter(|| std::hint::black_box(simulate_layer(&w, &model, &cfg, s))),
        );
    }
    group.bench_function("mask_model_build", |bench| {
        bench.iter(|| std::hint::black_box(MaskModel::new(&w, 128)))
    });
    group.finish();
}

criterion_group!(benches, bench_simulate);
criterion_main!(benches);
