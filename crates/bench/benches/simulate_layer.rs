//! End-to-end simulator throughput: one scaled AlexNet-Layer2-like layer
//! through each architecture model.

use sparten::nn::generate::workload;
use sparten::nn::ConvShape;
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};
use sparten_bench::timing;

fn main() {
    let mut group = timing::group("simulate_layer");
    group.budget_ms(300);
    let shape = ConvShape::new(192, 14, 14, 3, 128, 1, 1);
    let w = workload(&shape, 0.24, 0.35, 1);
    let cfg = SimConfig::small();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    model.total_sparse_macs(); // warm the cache so schemes are comparable
    for scheme in [
        Scheme::Dense,
        Scheme::OneSided,
        Scheme::SpartenNoGb,
        Scheme::SpartenGbH,
        Scheme::Scnn,
    ] {
        group.bench(&format!("scheme/{}", scheme.label()), || {
            std::hint::black_box(simulate_layer(&w, &model, &cfg, scheme))
        });
    }
    group.bench("mask_model_build", || {
        std::hint::black_box(MaskModel::new(&w, 128))
    });
    group.finish();
}
