//! Microbenchmark: on-the-fly output compaction (Figure 5) vs the plain
//! software conversion, across output widths.

use sparten::arch::OutputCompactor;
use sparten::tensor::SparseChunk;
use sparten_bench::timing;

fn main() {
    let mut group = timing::group("compaction");
    for width in [32usize, 128] {
        let values: Vec<f32> = (0..width)
            .map(|i| if i % 2 == 0 { (i + 1) as f32 } else { 0.0 })
            .collect();
        let compactor = OutputCompactor::new(width);
        group.bench(&format!("hardware_model/{width}"), || {
            std::hint::black_box(compactor.compact(&values))
        });
        group.bench(&format!("software/{width}"), || {
            std::hint::black_box(SparseChunk::from_dense(&values))
        });
    }
    group.finish();
}
