//! Microbenchmark: on-the-fly output compaction (Figure 5) vs the plain
//! software conversion, across output widths.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sparten::arch::OutputCompactor;
use sparten::tensor::SparseChunk;

fn bench_compaction(c: &mut Criterion) {
    let mut group = c.benchmark_group("compaction");
    for width in [32usize, 128] {
        let values: Vec<f32> = (0..width)
            .map(|i| if i % 2 == 0 { (i + 1) as f32 } else { 0.0 })
            .collect();
        let compactor = OutputCompactor::new(width);
        group.bench_with_input(
            BenchmarkId::new("hardware_model", width),
            &values,
            |bench, v| bench.iter(|| std::hint::black_box(compactor.compact(v))),
        );
        group.bench_with_input(BenchmarkId::new("software", width), &values, |bench, v| {
            bench.iter(|| std::hint::black_box(SparseChunk::from_dense(v)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compaction);
criterion_main!(benches);
