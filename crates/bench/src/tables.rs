//! Plain-text table and series rendering for the harness binaries.

/// Prints a table: a header row followed by data rows, columns padded to
/// the widest cell.
pub fn print_table(header: &[&str], rows: &[Vec<String>]) {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "ragged table row");
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, cell) in cells.iter().enumerate() {
            s.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        crate::outln!("{}", s.trim_end());
    };
    line(header.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Prints a named numeric series (one figure curve) as `label: v1 v2 …`.
pub fn print_series(label: &str, values: &[f64]) {
    let rendered: Vec<String> = values.iter().map(|v| format!("{v:.3}")).collect();
    crate::outln!("{label}: {}", rendered.join(" "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn print_table_handles_rows() {
        // Smoke test: must not panic.
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_panic() {
        print_table(&["a"], &[vec!["1".into(), "2".into()]]);
    }
}
