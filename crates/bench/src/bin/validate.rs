//! One-shot health check: runs the standard validation battery — dense
//! reference vs SparTen engine (all modes) vs SCNN Cartesian engine vs the
//! cycle-level simulators — and prints a pass/fail table.

fn main() -> std::process::ExitCode {
    sparten_bench::exps::validate::run_checked()
}
