//! Regenerates the paper's headline numbers (§1/§7): mean SparTen speedups
//! over Dense, One-sided, and SCNN in simulation, and over Dense and
//! One-sided on the FPGA configuration.

fn main() {
    sparten_bench::exps::summary_headline::run();
}
