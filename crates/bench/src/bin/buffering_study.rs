//! Buffering study: "No amount of buffering would address this systematic
//! load imbalance" (§2.1.1/§3.3), tested mechanically.
//!
//! Sweeps the broadcast-buffer depth from the strict per-chunk barrier
//! (B = 1) to unbounded run-ahead, with and without greedy balancing, on an
//! AlexNet-Layer2-shaped layer. Buffering smooths chunk-level noise but
//! converges to the densest unit's total work; GB-H at even B = 1 beats
//! no-GB at B = ∞.

fn main() {
    sparten_bench::exps::buffering_study::run();
}
