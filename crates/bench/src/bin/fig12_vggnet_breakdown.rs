//! Regenerates Figure 12: VGGNet execution-time breakdown (Layer0 has high
//! intra-cluster loss from the shallow 3-channel input, as §5.2 notes).

fn main() {
    sparten_bench::exps::fig12_vggnet_breakdown::run();
}
