//! Regenerates Figure 12: VGGNet execution-time breakdown (Layer0 has high
//! intra-cluster loss from the shallow 3-channel input, as §5.2 notes).

use sparten::nn::vggnet;
use sparten::sim::Scheme;
use sparten_bench::{dump_json, network_config, print_breakdown_figure, run_network};

const SCHEMES: [Scheme; 6] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbS,
    Scheme::SpartenGbH,
    Scheme::Scnn,
];

fn main() {
    let net = vggnet();
    let cfg = network_config(&net);
    let layers = run_network(&net, &SCHEMES, &cfg);
    print_breakdown_figure(
        "Figure 12: VGGNet Execution Time Breakdown",
        &layers,
        &SCHEMES,
        &[],
    );
    dump_json("fig12_vggnet_breakdown", &layers, &SCHEMES);
}
