//! The §3.1 representation-size analysis, measured on concrete encodings:
//! sweeps density from HPC-extreme (0.1 %) to CNN-typical (50 %) and prints
//! the bits each format actually uses, the analytic formulas, and the
//! crossover point — plus the SpMV join work each representation implies.

fn main() {
    sparten_bench::exps::hpc_crossover::run();
}
