//! Regenerates Figure 9: VGGNet speedups over Dense. As in the paper, the
//! mean excludes Layer0 (dense 3-channel input hurts SparTen there).

use sparten::nn::vggnet;
use sparten::sim::Scheme;
use sparten_bench::{dump_json, network_config, print_speedup_figure, run_network};

fn main() {
    let net = vggnet();
    let cfg = network_config(&net);
    let schemes = Scheme::all();
    let layers = run_network(&net, &schemes, &cfg);
    let excl: &[&str] = &["Layer0"];
    print_speedup_figure(
        "Figure 9: VGGNet Speedup (normalized to Dense)",
        &layers,
        &schemes,
        &[
            ("One-sided", excl),
            ("SparTen-no-GB", excl),
            ("SparTen-GB-S", excl),
            ("SparTen", excl),
            ("SCNN", excl),
            ("SCNN-one-sided", excl),
            ("SCNN-dense", excl),
        ],
    );
    dump_json("fig9_vggnet_speedup", &layers, &schemes);
}
