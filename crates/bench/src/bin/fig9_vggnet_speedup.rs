//! Regenerates Figure 9: VGGNet speedups over Dense. As in the paper, the
//! mean excludes Layer0 (dense 3-channel input hurts SparTen there).

fn main() {
    sparten_bench::exps::fig9_vggnet_speedup::run();
}
