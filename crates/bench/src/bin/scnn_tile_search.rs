//! SCNN tile-size search: §4 sets the input tile to 6×6 after "a search of
//! the tile size space". This sweep reruns that search in our model:
//! smaller tiles waste multiplier slots on the ⌈I/4⌉ quantization of tiny
//! per-channel non-zero counts; larger tiles exceed the 1K-accumulator
//! budget (tile+halo squared × output group).

fn main() {
    sparten_bench::exps::scnn_tile_search::run();
}
