//! Ablation: the SparseMap chunk size (the paper fixes n = 128).
//!
//! Smaller chunks mean finer-grained barriers (less imbalance exposure per
//! barrier but more per-chunk overheads and more mask storage per value);
//! larger chunks amortize overheads but grow the prefix-sum/priority-encoder
//! hardware superlinearly (Table 4 scaling). This sweep quantifies both
//! sides on a representative layer.

fn main() {
    sparten_bench::exps::ablation_chunk_size::run();
}
