//! Regenerates Table 2: hardware parameters of the compared architectures.

fn main() {
    sparten_bench::exps::table2_hw_params::run();
}
