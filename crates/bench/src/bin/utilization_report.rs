//! Utilization report: the §3.3 motivation, measured on Table 3.
//!
//! The paper motivates greedy balancing with ResNet-152 filters whose
//! no-balancing utilization "would vary from 52% to 65% at best". This
//! report computes the same quantity — useful MAC cycles over
//! barrier-bounded cycles — for every Table 3 layer under no GB, GB-S, and
//! GB-H, from the recorded per-chunk traces.

fn main() {
    sparten_bench::exps::utilization_report::run();
}
