//! Regenerates Figure 15: AlexNet speedups on the FPGA prototype (one
//! 32-unit cluster against 2.8 Gbps SDRAM — layers can go memory-bound).

use sparten::nn::alexnet;
use sparten::sim::{Scheme, SimConfig};
use sparten_bench::{dump_json, print_speedup_figure, run_network};

const SCHEMES: [Scheme; 4] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbH,
];

fn main() {
    let net = alexnet();
    let cfg = SimConfig::fpga();
    let layers = run_network(&net, &SCHEMES, &cfg);
    print_speedup_figure("Figure 15: AlexNet Speedup on FPGA", &layers, &SCHEMES, &[]);
    dump_json("fig15_alexnet_fpga", &layers, &SCHEMES);
}
