//! Regenerates Figure 15: AlexNet speedups on the FPGA prototype (one
//! 32-unit cluster against 2.8 Gbps SDRAM — layers can go memory-bound).

fn main() {
    sparten_bench::exps::fig15_alexnet_fpga::run();
}
