//! Accuracy proxy: how much do the lossy schemes distort a network's
//! outputs at matched density?
//!
//! Table 1 marks Cambricon-S "No" on accuracy and §6 criticizes column
//! combining's conflict pruning; neither loss is observable without a
//! model. This study uses output perturbation as the proxy: run a fixed
//! two-layer CNN, then re-run with the filters modified by (a) unstructured
//! magnitude pruning, (b) Cambricon-S-style coarse pruning at several group
//! sizes, and (c) column combining, all at the same weight budget, and
//! report the relative L2 distortion of the logits. Unstructured pruning is
//! the baseline every scheme is normalized against.

fn main() {
    sparten_bench::exps::accuracy_proxy::run();
}
