//! Ablation: collocation depth k — an extension beyond the paper's k = 2.
//!
//! Deeper collocation averages more filters per unit (better balance) at
//! the cost of k× the filter and output buffering (§3.3's buffering
//! arithmetic scales with k). This sweep runs k ∈ {1, 2, 4, 8} with
//! whole-filter (GB-S-style) and per-chunk (GB-H-style) sorting on a
//! high-spread layer, reporting cycles and per-cluster buffer bytes.

fn main() {
    sparten_bench::exps::ablation_collocation_depth::run();
}
