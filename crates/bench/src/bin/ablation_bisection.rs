//! Ablation: permutation-network bisection bandwidth (§3.3).
//!
//! The paper thins the GB-H unshuffle network to 4 values per cycle across
//! the bisection — 1/8 of full provisioning — arguing the latency hides
//! under the next chunk's compute. This sweep routes every real GB-H
//! per-chunk mapping of an AlexNet-Layer2-sized filter set through networks
//! of varying bisection budget and compares the worst-case routing waves to
//! the per-chunk compute time they must hide under.

fn main() {
    sparten_bench::exps::ablation_bisection::run();
}
