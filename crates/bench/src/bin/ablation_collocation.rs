//! Ablation: GB-S with vs without whole-filter collocation.
//!
//! §5.1: "Removing the whole-filter collocation from SparTen-GB-S results in
//! worse performance in most other benchmarks (not shown)" — the exceptions
//! being the GoogLeNet 5x5_reduce layers whose 16/48 filter counts interact
//! badly with pairing. This binary shows both sides of that claim.

fn main() {
    sparten_bench::exps::ablation_collocation::run();
}
