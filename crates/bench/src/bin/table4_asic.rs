//! Regenerates Table 4: ASIC area and power for one SparTen cluster (45 nm).

fn main() {
    sparten_bench::exps::table4_asic::run();
}
