//! Regenerates Figure 14: the impact of greedy balancing on AlexNet
//! Layer2's per-chunk filter densities — the sorted single-filter densities
//! (red curve) versus the collocated pair densities after GB-H (blue curve).

fn main() {
    sparten_bench::exps::fig14_gb_impact::run();
}
