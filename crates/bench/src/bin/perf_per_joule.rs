//! Performance per Joule: §5.3's closing argument, computed per network.
//!
//! "SparTen is better than Dense in performance per Joule (4.7x better in
//! performance and 2x worse in compute energy, ignoring SparTen's memory
//! energy advantage)." This report combines the speedups of Figures 7–9
//! with the energies of Figure 13 into throughput-per-energy, with and
//! without the memory component, plus the SRAM-offset area note.

fn main() {
    sparten_bench::exps::perf_per_joule::run();
}
