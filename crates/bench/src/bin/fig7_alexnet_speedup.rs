//! Regenerates Figure 7: AlexNet speedups over Dense for all eight schemes.
//! As in the paper, SCNN-family means exclude Layer0 (non-unit stride).

fn main() {
    sparten_bench::exps::fig7_alexnet_speedup::run();
}
