//! Regenerates Figure 7: AlexNet speedups over Dense for all eight schemes.
//! As in the paper, SCNN-family means exclude Layer0 (non-unit stride).

use sparten::nn::alexnet;
use sparten::sim::Scheme;
use sparten_bench::{dump_json, network_config, print_speedup_figure, run_network};

fn main() {
    let net = alexnet();
    let cfg = network_config(&net);
    let schemes = Scheme::all();
    let layers = run_network(&net, &schemes, &cfg);
    let excl: &[&str] = &["Layer0"];
    print_speedup_figure(
        "Figure 7: AlexNet Speedup (normalized to Dense)",
        &layers,
        &schemes,
        &[
            ("SCNN", excl),
            ("SCNN-one-sided", excl),
            ("SCNN-dense", excl),
        ],
    );
    dump_json("fig7_alexnet_speedup", &layers, &schemes);
}
