//! Empirical backing for Table 1 and §6: SparTen against the semi-sparse
//! alternatives built in this repo — a Cambricon-S-like structured-sparsity
//! design and a Bit-Pragmatic/Laconic-like bit-serial design — on
//! representative layers of each network.

fn main() {
    sparten_bench::exps::related_work::run();
}
