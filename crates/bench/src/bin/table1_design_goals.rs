//! Regenerates Table 1: the design-goal matrix.

fn main() {
    sparten_bench::exps::table1_design_goals::run();
}
