//! Regenerates Table 3: the benchmark layers with measured densities of the
//! generated synthetic workloads next to the paper's targets.

fn main() {
    sparten_bench::exps::table3_benchmarks::run();
}
