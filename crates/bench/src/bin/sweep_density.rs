//! Density-response sweep: how each architecture's speedup over Dense moves
//! as both tensors get sparser. SparTen's advantage is quadratic in the
//! density product; One-sided's is linear in input density (§1).

fn main() {
    sparten_bench::exps::sweep_density::run();
}
