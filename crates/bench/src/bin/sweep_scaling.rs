//! Strong-scaling sweep: SparTen from 1 to 64 clusters on one layer, with
//! parallel efficiency and the memory-bound ceiling.

fn main() {
    sparten_bench::exps::sweep_scaling::run();
}
