//! Stride study: SparTen vs SCNN on non-unit-stride convolutions.
//!
//! §2.1.1: the Cartesian product "is not applicable to non-unit-stride
//! convolutions" — mechanically, it computes the full unit-stride product
//! set and discards the (1 − 1/s²) of it that falls between outputs. This
//! study runs ResNet-style stride-2 layers and AlexNet's stride-4 Layer0,
//! reporting each scheme's wasted-compute fraction and speedup, plus the
//! functional Cartesian engine's exact waste accounting.

fn main() {
    sparten_bench::exps::stride_study::run();
}
