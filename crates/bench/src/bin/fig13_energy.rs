//! Regenerates Figure 13: compute and memory energy, split into zero and
//! non-zero components, normalized to Dense-naive, averaged per network.
//!
//! Dense-naive is Dense with SparTen-sized buffering; Dense keeps its lean
//! 8 B/MAC buffers. SCNN is omitted as in the paper (§5.3).

fn main() {
    sparten_bench::exps::fig13_energy::run();
}
