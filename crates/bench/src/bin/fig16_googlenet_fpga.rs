//! Regenerates Figure 16: GoogLeNet speedups on the FPGA prototype.

fn main() {
    sparten_bench::exps::fig16_googlenet_fpga::run();
}
