//! Regenerates Figure 16: GoogLeNet speedups on the FPGA prototype.

use sparten::nn::googlenet;
use sparten::sim::{Scheme, SimConfig};
use sparten_bench::{dump_json, print_speedup_figure, run_network};

const SCHEMES: [Scheme; 4] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbH,
];

fn main() {
    let net = googlenet();
    let cfg = SimConfig::fpga();
    let layers = run_network(&net, &SCHEMES, &cfg);
    print_speedup_figure(
        "Figure 16: GoogLeNet Speedup on FPGA",
        &layers,
        &SCHEMES,
        &[],
    );
    dump_json("fig16_googlenet_fpga", &layers, &SCHEMES);
}
