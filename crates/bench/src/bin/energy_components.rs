//! Energy component breakdown: where SparTen's compute energy actually
//! goes — §5.3's "extra buffering, inner-join and output compaction (to a
//! much smaller extent) incur more energy than Dense's simple
//! multiply-accumulate", quantified per component and scheme.

fn main() {
    sparten_bench::exps::energy_components::run();
}
