//! Regenerates Figure 17: VGGNet speedups on the FPGA prototype.

use sparten::nn::vggnet;
use sparten::sim::{Scheme, SimConfig};
use sparten_bench::{dump_json, print_speedup_figure, run_network};

const SCHEMES: [Scheme; 4] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbH,
];

fn main() {
    let net = vggnet();
    let cfg = SimConfig::fpga();
    let layers = run_network(&net, &SCHEMES, &cfg);
    print_speedup_figure("Figure 17: VGGNet Speedup on FPGA", &layers, &SCHEMES, &[]);
    dump_json("fig17_vggnet_fpga", &layers, &SCHEMES);
}
