//! Regenerates Figure 17: VGGNet speedups on the FPGA prototype.

fn main() {
    sparten_bench::exps::fig17_vggnet_fpga::run();
}
