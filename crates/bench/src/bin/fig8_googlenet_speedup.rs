//! Regenerates Figure 8: GoogLeNet speedups over Dense (small config).

use sparten::nn::googlenet;
use sparten::sim::Scheme;
use sparten_bench::{dump_json, network_config, print_speedup_figure, run_network};

fn main() {
    let net = googlenet();
    let cfg = network_config(&net);
    let schemes = Scheme::all();
    let layers = run_network(&net, &schemes, &cfg);
    print_speedup_figure(
        "Figure 8: GoogLeNet Speedup (normalized to Dense)",
        &layers,
        &schemes,
        &[],
    );
    dump_json("fig8_googlenet_speedup", &layers, &schemes);
}
