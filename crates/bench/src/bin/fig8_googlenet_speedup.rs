//! Regenerates Figure 8: GoogLeNet speedups over Dense (small config).

fn main() {
    sparten_bench::exps::fig8_googlenet_speedup::run();
}
