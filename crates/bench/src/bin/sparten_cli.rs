//! `sparten_cli` — a command-line front end for the reproduction.
//!
//! ```text
//! sparten_cli goals
//! sparten_cli asic [--units N] [--chunk N]
//! sparten_cli simulate --network alexnet [--layer Layer2] [--scheme sparten]
//!                      [--config large|small|fpga] [--seed N]
//! sparten_cli energy --network vggnet [--config large|small|fpga]
//! ```
//!
//! Argument parsing is deliberately dependency-free (std only).

use std::collections::HashMap;
use std::process::ExitCode;

use sparten::core::ClusterConfig;
use sparten::energy::{cluster_asic_estimate, EnergyModel};
use sparten::nn::{alexnet, googlenet, vggnet, Network};
use sparten::sim::{design_goal_table, simulate_spec, Scheme, SimConfig};
use sparten_bench::print_table;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        usage();
        return ExitCode::FAILURE;
    };
    let flags = parse_flags(&args[1..]);
    match command.as_str() {
        "goals" => cmd_goals(),
        "asic" => cmd_asic(&flags),
        "simulate" => cmd_simulate(&flags),
        "energy" => cmd_energy(&flags),
        "trace" => cmd_trace(&flags),
        "validate" => cmd_validate(),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command: {other}");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "usage: sparten_cli <command> [flags]\n\
         \n\
         commands:\n\
           goals                       print the Table 1 design-goal matrix\n\
           asic [--units N] [--chunk N]\n\
                                       per-cluster ASIC area/power estimate\n\
           simulate --network <alexnet|googlenet|vggnet>\n\
                    [--layer NAME] [--scheme NAME] [--config large|small|fpga]\n\
                    [--seed N]         simulate Table 3 layers\n\
           energy --network <name> [--config ...]\n\
                                       per-layer energy table\n\
           trace --network <name> --layer NAME [--mode none|gb-s|gb-h]\n\
                                       Figure-6-style per-chunk occupancy strips\n\
           validate                    run the model-consistency battery\n\
         \n\
         schemes: dense, one-sided, no-gb, gb-s, sparten, scnn,\n\
                  scnn-one-sided, scnn-dense (default: all)"
    );
}

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(name) = args[i].strip_prefix("--") {
            let value = args.get(i + 1).cloned().unwrap_or_default();
            flags.insert(name.to_string(), value);
            i += 2;
        } else {
            eprintln!("ignoring stray argument: {}", args[i]);
            i += 1;
        }
    }
    flags
}

fn network_by_name(name: &str) -> Option<Network> {
    match name.to_ascii_lowercase().as_str() {
        "alexnet" => Some(alexnet()),
        "googlenet" => Some(googlenet()),
        "vggnet" | "vgg" => Some(vggnet()),
        _ => None,
    }
}

fn scheme_by_name(name: &str) -> Option<Scheme> {
    match name.to_ascii_lowercase().as_str() {
        "dense" => Some(Scheme::Dense),
        "one-sided" | "onesided" => Some(Scheme::OneSided),
        "no-gb" | "sparten-no-gb" => Some(Scheme::SpartenNoGb),
        "gb-s" | "sparten-gb-s" => Some(Scheme::SpartenGbS),
        "sparten" | "gb-h" => Some(Scheme::SpartenGbH),
        "scnn" => Some(Scheme::Scnn),
        "scnn-one-sided" => Some(Scheme::ScnnOneSided),
        "scnn-dense" => Some(Scheme::ScnnDense),
        _ => None,
    }
}

fn config_by_name(name: &str) -> Option<SimConfig> {
    match name.to_ascii_lowercase().as_str() {
        "large" => Some(SimConfig::large()),
        "small" => Some(SimConfig::small()),
        "fpga" => Some(SimConfig::fpga()),
        _ => None,
    }
}

fn cmd_goals() -> ExitCode {
    let rows: Vec<Vec<String>> = design_goal_table()
        .into_iter()
        .map(|g| {
            vec![
                g.architecture.to_string(),
                g.avoid_zero_transfer.to_string(),
                g.avoid_zero_compute.to_string(),
                g.maintain_accuracy.to_string(),
                g.efficient_fully_sparse.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "Architecture",
            "No zero transfer",
            "No zero compute",
            "Accuracy",
            "Efficient sparse",
        ],
        &rows,
    );
    ExitCode::SUCCESS
}

fn cmd_asic(flags: &HashMap<String, String>) -> ExitCode {
    let units = flags
        .get("units")
        .map(|v| v.parse().expect("--units must be a number"))
        .unwrap_or(32);
    let chunk = flags
        .get("chunk")
        .map(|v| v.parse().expect("--chunk must be a number"))
        .unwrap_or(128);
    let est = cluster_asic_estimate(&ClusterConfig {
        compute_units: units,
        chunk_size: chunk,
        bisection_limit: 4,
    });
    let mut rows: Vec<Vec<String>> = est
        .components
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.4}", c.area_mm2),
                format!("{:.2}", c.power_mw),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".into(),
        format!("{:.3}", est.total_area_mm2()),
        format!("{:.2}", est.total_power_mw()),
    ]);
    println!(
        "{units}-unit cluster, {chunk}-wide chunks, 45 nm @ {} MHz:",
        est.clock_mhz
    );
    print_table(&["Component", "Area (mm^2)", "Power (mW)"], &rows);
    ExitCode::SUCCESS
}

fn selected_schemes(flags: &HashMap<String, String>) -> Option<Vec<Scheme>> {
    match flags.get("scheme") {
        None => Some(Scheme::all().to_vec()),
        Some(name) => scheme_by_name(name).map(|s| vec![s]),
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> ExitCode {
    let Some(net) = flags.get("network").and_then(|n| network_by_name(n)) else {
        eprintln!("simulate requires --network alexnet|googlenet|vggnet");
        return ExitCode::FAILURE;
    };
    let Some(schemes) = selected_schemes(flags) else {
        eprintln!("unknown --scheme (see `sparten_cli help`)");
        return ExitCode::FAILURE;
    };
    let config = match flags.get("config") {
        None => {
            if net.name == "GoogLeNet" {
                SimConfig::small()
            } else {
                SimConfig::large()
            }
        }
        Some(name) => match config_by_name(name) {
            Some(c) => c,
            None => {
                eprintln!("unknown --config (large|small|fpga)");
                return ExitCode::FAILURE;
            }
        },
    };
    let seed = flags
        .get("seed")
        .map(|v| v.parse().expect("--seed must be a number"))
        .unwrap_or(2019u64);
    let layers: Vec<_> = match flags.get("layer") {
        None => net.layers.iter().collect(),
        Some(name) => match net.layer(name) {
            Some(l) => vec![l],
            None => {
                eprintln!("{} has no layer {name}", net.name);
                return ExitCode::FAILURE;
            }
        },
    };

    let mut rows = Vec::new();
    for spec in layers {
        let dense = simulate_spec(spec, &config, Scheme::Dense, seed);
        for &scheme in &schemes {
            let r = simulate_spec(spec, &config, scheme, seed);
            rows.push(vec![
                spec.name.to_string(),
                r.scheme.to_string(),
                r.cycles().to_string(),
                format!("{:.2}x", r.speedup_over(&dense)),
                r.is_memory_bound().to_string(),
            ]);
        }
    }
    print_table(
        &["Layer", "Scheme", "cycles", "speedup", "memory-bound"],
        &rows,
    );
    ExitCode::SUCCESS
}

fn cmd_trace(flags: &HashMap<String, String>) -> ExitCode {
    use sparten::core::balance::BalanceMode;
    use sparten::sim::trace_cluster;
    let Some(net) = flags.get("network").and_then(|n| network_by_name(n)) else {
        eprintln!("trace requires --network alexnet|googlenet|vggnet");
        return ExitCode::FAILURE;
    };
    let Some(spec) = flags.get("layer").and_then(|l| net.layer(l)) else {
        eprintln!("trace requires --layer <Table 3 name>");
        return ExitCode::FAILURE;
    };
    let mode = match flags.get("mode").map(String::as_str) {
        None | Some("gb-h") => BalanceMode::GbH,
        Some("gb-s") => BalanceMode::GbS,
        Some("none") => BalanceMode::None,
        Some(other) => {
            eprintln!("unknown --mode {other} (none|gb-s|gb-h)");
            return ExitCode::FAILURE;
        }
    };
    let w = spec.workload(2019);
    let cfg = if net.name == "GoogLeNet" {
        SimConfig::small()
    } else {
        SimConfig::large()
    };
    let log = trace_cluster(&w, &cfg, mode, 1);
    println!(
        "{} {} under {mode:?}: utilization {:.0}%",
        net.name,
        spec.name,
        log.utilization() * 100.0
    );
    print!("{}", log.render(4, 48));
    ExitCode::SUCCESS
}

fn cmd_validate() -> ExitCode {
    use sparten::sim::validate::{standard_battery, validate_layer};
    let mut ok = true;
    for (i, (shape, di, df)) in standard_battery().into_iter().enumerate() {
        let r = validate_layer(shape, di, df, 4242 + i as u64);
        let pass = r.passed(1e-2);
        ok &= pass;
        println!(
            "case {i}: engine err {:.1e}, scnn err {:.1e}, macs {}, accounting {}, ordering {} → {}",
            r.engine_max_err,
            r.scnn_max_err,
            r.mac_counts_agree,
            r.accounting_holds,
            r.ordering_holds,
            if pass { "PASS" } else { "FAIL" }
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_energy(flags: &HashMap<String, String>) -> ExitCode {
    let Some(net) = flags.get("network").and_then(|n| network_by_name(n)) else {
        eprintln!("energy requires --network alexnet|googlenet|vggnet");
        return ExitCode::FAILURE;
    };
    let config = flags
        .get("config")
        .and_then(|n| config_by_name(n))
        .unwrap_or_else(|| {
            if net.name == "GoogLeNet" {
                SimConfig::small()
            } else {
                SimConfig::large()
            }
        });
    let model = EnergyModel::nm45();
    let mut rows = Vec::new();
    for spec in &net.layers {
        for scheme in [Scheme::Dense, Scheme::OneSided, Scheme::SpartenGbH] {
            let r = simulate_spec(spec, &config, scheme, 2019);
            let buffer = if scheme == Scheme::Dense { 8 } else { 992 };
            let e = model.layer_energy(&r, buffer);
            rows.push(vec![
                spec.name.to_string(),
                r.scheme.to_string(),
                format!("{:.2}", e.compute_pj() / 1e6),
                format!("{:.2}", e.memory_pj() / 1e6),
                format!("{:.2}", e.total_pj() / 1e6),
            ]);
        }
    }
    print_table(
        &["Layer", "Scheme", "compute uJ", "memory uJ", "total uJ"],
        &rows,
    );
    ExitCode::SUCCESS
}
