//! Regenerates Figure 11: GoogLeNet execution-time breakdown.

use sparten::nn::googlenet;
use sparten::sim::Scheme;
use sparten_bench::{dump_json, network_config, print_breakdown_figure, run_network};

const SCHEMES: [Scheme; 6] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbS,
    Scheme::SpartenGbH,
    Scheme::Scnn,
];

fn main() {
    let net = googlenet();
    let cfg = network_config(&net);
    let layers = run_network(&net, &SCHEMES, &cfg);
    print_breakdown_figure(
        "Figure 11: GoogLeNet Execution Time Breakdown",
        &layers,
        &SCHEMES,
        &[],
    );
    dump_json("fig11_googlenet_breakdown", &layers, &SCHEMES);
}
