//! Regenerates Figure 11: GoogLeNet execution-time breakdown.

fn main() {
    sparten_bench::exps::fig11_googlenet_breakdown::run();
}
