//! Regenerates Figure 10: AlexNet execution-time breakdown, normalized to
//! Dense. Layer0 is omitted (SCNN's non-unit-stride pathology, §5.2).

use sparten::nn::alexnet;
use sparten::sim::Scheme;
use sparten_bench::{dump_json, network_config, print_breakdown_figure, run_network};

const SCHEMES: [Scheme; 6] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbS,
    Scheme::SpartenGbH,
    Scheme::Scnn,
];

fn main() {
    let net = alexnet();
    let cfg = network_config(&net);
    let layers = run_network(&net, &SCHEMES, &cfg);
    print_breakdown_figure(
        "Figure 10: AlexNet Execution Time Breakdown",
        &layers,
        &SCHEMES,
        &["Layer0"],
    );
    dump_json("fig10_alexnet_breakdown", &layers, &SCHEMES);
}
