//! Regenerates Figure 10: AlexNet execution-time breakdown, normalized to
//! Dense. Layer0 is omitted (SCNN's non-unit-stride pathology, §5.2).

fn main() {
    sparten_bench::exps::fig10_alexnet_breakdown::run();
}
