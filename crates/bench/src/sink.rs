//! Capturable output sink for the experiment drivers.
//!
//! Every table/figure driver writes its human-readable output through
//! [`crate::outln!`]/[`crate::out!`] and its file artifacts (JSON rows)
//! through [`artifact`]. By default both go where they always did — stdout
//! and `results/` — so the standalone binaries behave unchanged. When the
//! orchestration harness runs an experiment it installs a thread-local
//! capture first, and the exact bytes the binary would have printed are
//! collected instead: that is what gets cached, diffed, and written with
//! deterministic ordering regardless of worker-thread interleaving.

use std::cell::RefCell;
use std::fmt;

/// Everything one experiment run emitted: the stdout text plus any file
/// artifacts (path, contents) it produced.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Capture {
    /// The bytes the experiment would have written to stdout.
    pub text: String,
    /// File artifacts as `(repo-relative path, contents)` pairs, in the
    /// order they were produced.
    pub artifacts: Vec<(String, String)>,
}

thread_local! {
    static ACTIVE: RefCell<Option<Capture>> = const { RefCell::new(None) };
}

/// Starts capturing this thread's experiment output.
///
/// # Panics
///
/// Panics if a capture is already active on this thread — captures do not
/// nest; the harness runs one experiment point per thread at a time.
pub fn begin_capture() {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        assert!(slot.is_none(), "output capture already active");
        *slot = Some(Capture::default());
    });
}

/// Stops capturing and returns everything collected since
/// [`begin_capture`].
///
/// # Panics
///
/// Panics if no capture is active.
pub fn end_capture() -> Capture {
    ACTIVE.with(|a| a.borrow_mut().take().expect("no active output capture"))
}

/// Whether this thread is currently capturing.
pub fn is_capturing() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

/// Writes a line (plus `\n`) to the capture, or stdout if none is active.
/// Use via [`crate::outln!`].
pub fn outln_args(args: fmt::Arguments<'_>) {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        match slot.as_mut() {
            Some(c) => {
                fmt::write(&mut c.text, args).expect("string write");
                c.text.push('\n');
            }
            None => println!("{args}"),
        }
    });
}

/// Writes without a newline to the capture, or stdout if none is active.
/// Use via [`crate::out!`].
pub fn out_args(args: fmt::Arguments<'_>) {
    ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        match slot.as_mut() {
            Some(c) => fmt::write(&mut c.text, args).expect("string write"),
            None => print!("{args}"),
        }
    });
}

/// Records a file artifact. Captured runs collect it; standalone runs write
/// it to disk immediately (creating parent directories) and note the path
/// on stderr, exactly as the old binaries did.
pub fn artifact(path: &str, contents: &str) {
    let captured = ACTIVE.with(|a| {
        let mut slot = a.borrow_mut();
        if let Some(c) = slot.as_mut() {
            c.artifacts.push((path.to_string(), contents.to_string()));
            true
        } else {
            false
        }
    });
    if !captured {
        // Atomic (tmp + fsync + rename) so a kill mid-experiment can never
        // leave a half-written artifact behind.
        if crate::fsutil::atomic_write(path, contents).is_ok() {
            eprintln!("(wrote {path})");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_text_and_artifacts() {
        begin_capture();
        crate::outln!("hello {}", 7);
        crate::out!("a");
        crate::out!("b");
        crate::outln!();
        artifact("results/test.json", "[]");
        let c = end_capture();
        assert_eq!(c.text, "hello 7\nab\n");
        assert_eq!(c.artifacts, vec![("results/test.json".into(), "[]".into())]);
        assert!(!is_capturing());
    }

    #[test]
    fn captures_are_per_thread() {
        begin_capture();
        crate::outln!("outer");
        let inner = std::thread::spawn(|| {
            begin_capture();
            crate::outln!("inner");
            end_capture().text
        })
        .join()
        .unwrap();
        let outer = end_capture();
        assert_eq!(outer.text, "outer\n");
        assert_eq!(inner, "inner\n");
    }
}
