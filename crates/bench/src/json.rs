//! A minimal hand-rolled JSON writer and parser.
//!
//! The workspace builds offline, so the figure binaries cannot depend on
//! `serde_json`. This covers exactly what the result dumps need: objects
//! with preserved key order, arrays, strings, integers, floats, and bools,
//! pretty-printed with two-space indentation. The parser ([`Json::parse`])
//! exists for the crash-only machinery: the harness's write-ahead run
//! journal is JSONL that must be replayed after a kill, and `fsck` needs
//! to tell a well-formed `results/*.json` artifact from a truncated one.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so dumps are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (cycle counts exceed `i64` comfortably late).
    UInt(u64),
    /// A float, serialized via Rust's shortest-roundtrip `Display`.
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body (mirrors `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Serializes on a single line with no whitespace — the JSONL form the
    /// harness's run journal appends one record per line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    /// Parses a JSON document. Accepts exactly what [`pretty`](Self::pretty)
    /// and [`compact`](Self::compact) produce (plus arbitrary inter-token
    /// whitespace); trailing non-whitespace is an error. Numbers without a
    /// fraction or exponent parse as [`Json::UInt`]/[`Json::Int`], all
    /// others as [`Json::Float`].
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(text, bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload of a [`Json::Str`].
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A non-negative integer value ([`Json::UInt`] or in-range
    /// [`Json::Int`]).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            Json::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// A numeric value as `f64` ([`Json::Float`], [`Json::UInt`], or
    /// [`Json::Int`]).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Float(v) => Some(*v),
            Json::UInt(v) => Some(*v as f64),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The boolean payload of a [`Json::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items of a [`Json::Arr`].
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep integral floats recognizably floats, as
                    // serde_json does ("2.0", not "2").
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect_byte(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {}", want as char, pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect_byte(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'"') => parse_string(text, bytes, pos).map(Json::Str),
        Some(b't') if text[*pos..].starts_with("true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if text[*pos..].starts_with("false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if text[*pos..].starts_with("null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut fractional = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                fractional = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let token = &text[start..*pos];
    if token.is_empty() || token == "-" {
        return Err(format!("bad value at byte {start}"));
    }
    if !fractional {
        if let Ok(v) = token.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
        if let Ok(v) = token.parse::<i64>() {
            return Ok(Json::Int(v));
        }
    }
    token
        .parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number `{token}` at byte {start}"))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect_byte(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let rest = &text[*pos..];
        let mut chars = rest.char_indices();
        let (_, c) = chars.next().ok_or("unterminated string")?;
        match c {
            '"' => {
                *pos += 1;
                return Ok(out);
            }
            '\\' => {
                let (_, esc) = chars.next().ok_or("unterminated escape")?;
                *pos += 1 + esc.len_utf8();
                match esc {
                    '"' | '\\' | '/' => out.push(esc),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hex = text
                            .get(*pos..*pos + 4)
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                        *pos += 4;
                        // Our writer only emits \u for control characters,
                        // so lone surrogates are rejected rather than paired.
                        out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                    }
                    other => return Err(format!("unknown escape `\\{other}`")),
                }
            }
            c if (c as u32) < 0x20 => return Err("raw control character in string".into()),
            c => {
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Json::Arr(vec![Json::obj([
            ("layer", Json::str("Layer0")),
            ("cycles", Json::UInt(12345)),
            ("speedup", Json::Float(2.5)),
            ("memory_bound", Json::Bool(false)),
            ("inner", Json::obj([("zero", Json::Int(0))])),
        ])]);
        let s = v.pretty();
        assert_eq!(
            s,
            "[\n  {\n    \"layer\": \"Layer0\",\n    \"cycles\": 12345,\n    \
             \"speedup\": 2.5,\n    \"memory_bound\": false,\n    \"inner\": {\n      \
             \"zero\": 0\n    }\n  }\n]"
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).pretty(), "2.0");
        assert_eq!(Json::Float(0.125).pretty(), "0.125");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn compact_is_single_line() {
        let v = Json::obj([
            ("a", Json::UInt(1)),
            ("b", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("c", Json::str("x\ny")),
        ]);
        assert_eq!(v.compact(), "{\"a\":1,\"b\":[true,null],\"c\":\"x\\ny\"}");
    }

    #[test]
    fn parse_round_trips_pretty_and_compact() {
        let v = Json::Arr(vec![Json::obj([
            ("layer", Json::str("Layer0")),
            ("cycles", Json::UInt(12345)),
            ("speedup", Json::Float(2.5)),
            ("neg", Json::Int(-3)),
            ("memory_bound", Json::Bool(false)),
            ("nothing", Json::Null),
            ("tricky", Json::str("a\"b\\c\nd\te\u{1}")),
            ("inner", Json::obj([("zero", Json::UInt(0))])),
        ])]);
        for text in [v.pretty(), v.compact()] {
            let back = Json::parse(&text).expect("parses");
            assert_eq!(back, v, "round trip through {text}");
        }
    }

    #[test]
    fn parse_classifies_numbers() {
        assert_eq!(Json::parse("7").unwrap(), Json::UInt(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("2.5").unwrap(), Json::Float(2.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::UInt(u64::MAX)
        );
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "\"unterminated",
            "{\"a\":1} trailing",
            "{'single':1}",
            "nul",
            "[1 2]",
            "\"bad \\q escape\"",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let v = Json::parse("{\"name\":\"fig7\",\"point\":3,\"ok\":true,\"xs\":[1,2]}").unwrap();
        assert_eq!(v.get("name").and_then(Json::as_str), Some("fig7"));
        assert_eq!(v.get("point").and_then(Json::as_u64), Some(3));
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("xs").and_then(Json::as_arr).map(<[Json]>::len), Some(2));
        assert!(v.get("missing").is_none());
        assert!(Json::UInt(1).get("x").is_none());
    }
}
