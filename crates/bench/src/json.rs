//! A minimal hand-rolled JSON writer.
//!
//! The workspace builds offline, so the figure binaries cannot depend on
//! `serde_json`. This covers exactly what the result dumps need: objects
//! with preserved key order, arrays, strings, integers, floats, and bools,
//! pretty-printed with two-space indentation.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so dumps are stable.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (serialized without a decimal point).
    Int(i64),
    /// An unsigned integer (cycle counts exceed `i64` comfortably late).
    UInt(u64),
    /// A float, serialized via Rust's shortest-roundtrip `Display`.
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Pretty-prints with two-space indentation and a trailing newline-free
    /// body (mirrors `serde_json::to_string_pretty`).
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    // Keep integral floats recognizably floats, as
                    // serde_json does ("2.0", not "2").
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        let v = Json::Arr(vec![Json::obj([
            ("layer", Json::str("Layer0")),
            ("cycles", Json::UInt(12345)),
            ("speedup", Json::Float(2.5)),
            ("memory_bound", Json::Bool(false)),
            ("inner", Json::obj([("zero", Json::Int(0))])),
        ])]);
        let s = v.pretty();
        assert_eq!(
            s,
            "[\n  {\n    \"layer\": \"Layer0\",\n    \"cycles\": 12345,\n    \
             \"speedup\": 2.5,\n    \"memory_bound\": false,\n    \"inner\": {\n      \
             \"zero\": 0\n    }\n  }\n]"
        );
    }

    #[test]
    fn integral_floats_keep_a_decimal_point() {
        assert_eq!(Json::Float(2.0).pretty(), "2.0");
        assert_eq!(Json::Float(0.125).pretty(), "0.125");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(Json::str("a\"b\\c\nd").pretty(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn empty_collections_are_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }
}
