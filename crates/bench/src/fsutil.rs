//! Crash-safe filesystem helpers shared by the experiment drivers and the
//! orchestration harness.
//!
//! Everything the evaluation writes under `results/` goes through
//! [`atomic_write`]: the contents land in a `*.tmp` sibling first, are
//! fsync'd, and are renamed into place, so a kill at any instant leaves
//! either the old file, the new file, or an orphaned `*.tmp` — never a
//! half-written artifact that a later run (or a human) silently trusts.
//! Orphaned temp files are swept by `sparten-harness clean` and flagged by
//! `sparten-harness fsck`.

use std::fs;
use std::io::{self, Write as _};
use std::path::Path;

/// Atomically replaces the file at `path` with `contents`, creating parent
/// directories as needed.
///
/// The write goes to `<filename>.tmp` in the same directory (same
/// filesystem, so the rename is atomic), the temp file is flushed and
/// fsync'd before the rename, and the parent directory is fsync'd after it
/// so the new directory entry survives a power cut.
pub fn atomic_write(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    let path = path.as_ref();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            fs::create_dir_all(p)?;
            Some(p)
        }
        _ => None,
    };
    let mut file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = parent {
        // Directory fsync is advisory on some filesystems; a failure there
        // does not un-write the data.
        if let Ok(dir) = fs::File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparten-fsutil-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn atomic_write_creates_parents_and_replaces() {
        let dir = scratch("basic");
        let path = dir.join("nested/out.json");
        atomic_write(&path, "[1]").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "[1]");
        atomic_write(&path, "[2]").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "[2]");
        // No temp residue after a successful write.
        let leftovers: Vec<_> = fs::read_dir(dir.join("nested"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn atomic_write_rejects_directory_targets() {
        assert!(atomic_write("/", "x").is_err());
    }
}
