//! Crash-safe filesystem helpers shared by the experiment drivers and the
//! orchestration harness.
//!
//! Everything the evaluation writes under `results/` goes through
//! [`atomic_write`]: the contents land in a `*.tmp` sibling first, are
//! fsync'd, and are renamed into place, so a kill at any instant leaves
//! either the old file, the new file, or an orphaned `*.tmp` — never a
//! half-written artifact that a later run (or a human) silently trusts.
//! Orphaned temp files are swept by `sparten-harness clean` and flagged by
//! `sparten-harness fsck`.

use crate::vfs::{atomic_write_with, RealFs};
use std::io;
use std::path::Path;

/// Atomically replaces the file at `path` with `contents`, creating parent
/// directories as needed.
///
/// The write goes to `<filename>.tmp` in the same directory (same
/// filesystem, so the rename is atomic), the temp file is flushed and
/// fsync'd before the rename, and the parent directory is fsync'd after it
/// so the new directory entry survives a power cut.
///
/// This is [`atomic_write_with`] over the passthrough [`RealFs`]; code
/// that threads an injectable filesystem (the harness's durable-state
/// paths) calls the `_with` form directly.
pub fn atomic_write(path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    atomic_write_with(&RealFs, path, contents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn scratch(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "sparten-fsutil-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn atomic_write_creates_parents_and_replaces() {
        let dir = scratch("basic");
        let path = dir.join("nested/out.json");
        atomic_write(&path, "[1]").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "[1]");
        atomic_write(&path, "[2]").unwrap();
        assert_eq!(fs::read_to_string(&path).unwrap(), "[2]");
        // No temp residue after a successful write.
        let leftovers: Vec<_> = fs::read_dir(dir.join("nested"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty());
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn atomic_write_rejects_directory_targets() {
        assert!(atomic_write("/", "x").is_err());
    }
}
