//! The experiment registry: every figure, table, sweep, and ablation of
//! the reproduction as a named, schedulable job.
//!
//! The orchestration harness (`sparten-harness`) consumes this list to
//! build its job graph. Each entry either runs as one unit
//! ([`Runner::Whole`]) or — for the per-network figures, the expensive
//! majority of the evaluation — exposes per-layer points
//! ([`Runner::PerLayer`]) that independent workers simulate concurrently
//! and a deterministic render step recombines in layer order. The serial
//! `src/bin/` wrappers drive the *same* compute and render code, which is
//! what guarantees harness output is byte-identical to the standalone
//! binaries.

use crate::experiments::{run_layer, run_layer_telemetry, LayerResult};
use crate::exps;
use sparten::nn::Network;
use sparten::sim::{Scheme, SimConfig, SimResult};
use sparten::telemetry::Telemetry;

/// What kind of artifact an experiment regenerates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentKind {
    /// A numbered paper figure.
    Figure,
    /// A numbered paper table.
    Table,
    /// A parameter sweep beyond the paper's figures.
    Sweep,
    /// A design-ablation study.
    Ablation,
    /// A supporting study or report.
    Study,
    /// The simulator-vs-engine validation battery.
    Validation,
}

impl ExperimentKind {
    /// Short lowercase label for CLI listings.
    pub fn label(self) -> &'static str {
        match self {
            ExperimentKind::Figure => "figure",
            ExperimentKind::Table => "table",
            ExperimentKind::Sweep => "sweep",
            ExperimentKind::Ablation => "ablation",
            ExperimentKind::Study => "study",
            ExperimentKind::Validation => "validation",
        }
    }
}

/// A figure computed layer-by-layer over one benchmark network.
#[derive(Clone, Copy)]
pub struct NetworkFigure {
    /// Builds the benchmark network.
    pub network: fn() -> Network,
    /// Chooses the simulation configuration for the network.
    pub config: fn(&Network) -> SimConfig,
    /// The schemes this figure compares, in plotting order.
    pub schemes: fn() -> Vec<Scheme>,
    /// Renders the final figure (table + JSON artifact) from per-layer
    /// results in layer order.
    pub render: fn(&[LayerResult]),
}

impl NetworkFigure {
    /// Number of independent per-layer points.
    pub fn num_points(&self) -> usize {
        (self.network)().layers.len()
    }

    /// Simulates point `i` (one layer across all of this figure's schemes).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn compute_point(&self, i: usize) -> LayerResult {
        let net = (self.network)();
        let cfg = (self.config)(&net);
        run_layer(&net.layers[i], &(self.schemes)(), &cfg)
    }

    /// [`compute_point`](Self::compute_point) with telemetry: counters and
    /// timeline spans for every scheme land in `session`, reconciled
    /// exactly against the returned breakdowns.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or a scheme's counters fail to
    /// reconcile (an instrumentation bug).
    pub fn compute_point_telemetry(&self, i: usize, session: &Telemetry) -> LayerResult {
        let net = (self.network)();
        let cfg = (self.config)(&net);
        run_layer_telemetry(&net.layers[i], &(self.schemes)(), &cfg, session)
    }

    /// The cache-key fingerprint shared by all of this figure's points:
    /// network, per-layer specs, schemes, and simulation config.
    pub fn fingerprint(&self) -> String {
        let net = (self.network)();
        let cfg = (self.config)(&net);
        let schemes: Vec<&str> = (self.schemes)().iter().map(|s| s.label()).collect();
        let layers: Vec<String> = net
            .layers
            .iter()
            .map(|l| {
                format!(
                    "{}:{}x{}x{}k{}n{}s{}p{}@{}/{}",
                    l.name,
                    l.shape.in_channels,
                    l.shape.in_height,
                    l.shape.in_width,
                    l.shape.kernel,
                    l.shape.num_filters,
                    l.shape.stride,
                    l.shape.pad,
                    l.input_density,
                    l.filter_density,
                )
            })
            .collect();
        format!(
            "net={} layers=[{}] schemes=[{}] cfg={}",
            net.name,
            layers.join(","),
            schemes.join(","),
            cfg.fingerprint(),
        )
    }

    /// Serial fallback used by the standalone binaries: compute every
    /// point in order, then render.
    pub fn run_serial(&self) {
        let layers: Vec<LayerResult> = (0..self.num_points())
            .map(|i| self.compute_point(i))
            .collect();
        (self.render)(&layers);
    }
}

/// How an experiment executes.
#[derive(Clone, Copy)]
pub enum Runner {
    /// One indivisible job.
    Whole(fn()),
    /// One job per network layer plus a deterministic render step.
    PerLayer(NetworkFigure),
}

/// One registered experiment.
#[derive(Clone, Copy)]
pub struct ExperimentSpec {
    /// Unique name; matches the `src/bin/` binary and `results/` basename.
    pub name: &'static str,
    /// Artifact kind.
    pub kind: ExperimentKind,
    /// Names of experiments whose *output* must be finalized first. These
    /// are reporting-order dependencies (summaries read like the paper when
    /// they come after the figures they summarize); the scheduler runs a
    /// job only when all of its dependencies have rendered.
    pub deps: &'static [&'static str],
    /// How to execute it.
    pub runner: Runner,
}

/// Serializes a [`LayerResult`] to the cache's record format: one
/// [`SimResult::to_record`] line per scheme.
pub fn layer_record(layer: &LayerResult) -> String {
    let mut out = String::new();
    for r in &layer.results {
        out.push_str(&r.to_record());
        out.push('\n');
    }
    out
}

/// Parses a [`layer_record`] blob back, attaching the layer `name` (known
/// statically from the network spec). Returns `None` on any malformed line
/// — the harness treats that as a cache miss.
pub fn layer_from_record(name: &'static str, blob: &str) -> Option<LayerResult> {
    let results: Option<Vec<SimResult>> = blob
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(SimResult::from_record)
        .collect();
    let results = results?;
    if results.is_empty() {
        return None;
    }
    Some(LayerResult {
        layer: name,
        results,
    })
}

macro_rules! whole {
    ($name:ident, $kind:expr) => {
        whole!($name, $kind, &[])
    };
    ($name:ident, $kind:expr, $deps:expr) => {
        ExperimentSpec {
            name: stringify!($name),
            kind: $kind,
            deps: $deps,
            runner: Runner::Whole(exps::$name::run),
        }
    };
}

macro_rules! per_layer {
    ($name:ident, $deps:expr) => {
        ExperimentSpec {
            name: stringify!($name),
            kind: ExperimentKind::Figure,
            deps: $deps,
            runner: Runner::PerLayer(exps::$name::figure()),
        }
    };
}

/// Every experiment in the reproduction, in the paper's presentation
/// order (which is also the harness's deterministic reporting order).
pub fn all_experiments() -> Vec<ExperimentSpec> {
    use ExperimentKind as K;
    vec![
        whole!(table1_design_goals, K::Table),
        whole!(table2_hw_params, K::Table),
        whole!(table3_benchmarks, K::Table),
        per_layer!(fig7_alexnet_speedup, &[]),
        per_layer!(fig8_googlenet_speedup, &[]),
        per_layer!(fig9_vggnet_speedup, &[]),
        per_layer!(fig10_alexnet_breakdown, &[]),
        per_layer!(fig11_googlenet_breakdown, &[]),
        per_layer!(fig12_vggnet_breakdown, &[]),
        whole!(fig13_energy, K::Figure),
        whole!(fig14_gb_impact, K::Figure),
        per_layer!(fig15_alexnet_fpga, &[]),
        per_layer!(fig16_googlenet_fpga, &[]),
        per_layer!(fig17_vggnet_fpga, &[]),
        whole!(table4_asic, K::Table),
        whole!(sweep_density, K::Sweep),
        whole!(sweep_scaling, K::Sweep),
        whole!(ablation_bisection, K::Ablation),
        whole!(ablation_chunk_size, K::Ablation),
        whole!(ablation_collocation, K::Ablation),
        whole!(ablation_collocation_depth, K::Ablation),
        whole!(buffering_study, K::Study),
        whole!(stride_study, K::Study),
        whole!(scnn_tile_search, K::Study),
        whole!(hpc_crossover, K::Study),
        whole!(accuracy_proxy, K::Study),
        whole!(energy_components, K::Study, &["fig13_energy"]),
        whole!(
            perf_per_joule,
            K::Study,
            &["fig7_alexnet_speedup", "fig13_energy"]
        ),
        whole!(utilization_report, K::Study),
        whole!(related_work, K::Study),
        whole!(validate, K::Validation),
        whole!(
            summary_headline,
            K::Study,
            &[
                "fig7_alexnet_speedup",
                "fig8_googlenet_speedup",
                "fig9_vggnet_speedup"
            ]
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_deps_resolve() {
        let exps = all_experiments();
        let names: std::collections::HashSet<_> = exps.iter().map(|e| e.name).collect();
        assert_eq!(names.len(), exps.len(), "duplicate experiment names");
        for e in &exps {
            for d in e.deps {
                assert!(names.contains(d), "{}: unknown dep {d}", e.name);
                assert_ne!(d, &e.name, "{}: self-dependency", e.name);
            }
        }
    }

    #[test]
    fn registry_covers_every_results_binary() {
        // One registered experiment per non-CLI binary in src/bin/.
        assert_eq!(all_experiments().len(), 32);
    }

    #[test]
    fn per_layer_figures_have_points_and_stable_fingerprints() {
        for e in all_experiments() {
            if let Runner::PerLayer(f) = e.runner {
                assert!(f.num_points() > 0, "{}", e.name);
                assert_eq!(f.fingerprint(), f.fingerprint(), "{}", e.name);
            }
        }
    }

    #[test]
    fn layer_record_roundtrips() {
        let exps = all_experiments();
        let fig = exps
            .iter()
            .find_map(|e| match e.runner {
                Runner::PerLayer(f) => Some(f),
                _ => None,
            })
            .expect("a per-layer figure exists");
        let l = fig.compute_point(0);
        let back = layer_from_record(l.layer, &layer_record(&l)).expect("parses");
        assert_eq!(back.layer, l.layer);
        assert_eq!(back.results, l.results);
        assert!(layer_from_record("x", "garbage").is_none());
        assert!(layer_from_record("x", "").is_none());
    }
}
