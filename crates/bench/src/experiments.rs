//! Experiment drivers shared by the figure binaries.

use sparten::nn::{LayerSpec, Network};
use sparten::sim::{simulate_layer, simulate_layer_telemetry, MaskModel, Scheme, SimConfig, SimResult};
use sparten::telemetry::Telemetry;

/// The seed every harness run uses, for reproducible tables.
pub const SEED: u64 = 2019;

/// One layer's results across a set of schemes.
#[derive(Debug, Clone)]
pub struct LayerResult {
    /// The layer's Table 3 name.
    pub layer: &'static str,
    /// Results in the same order as the schemes passed to [`run_network`].
    pub results: Vec<SimResult>,
}

impl LayerResult {
    /// Speedups over the first scheme (conventionally Dense).
    pub fn speedups(&self) -> Vec<f64> {
        let base = &self.results[0];
        self.results.iter().map(|r| r.speedup_over(base)).collect()
    }
}

/// The simulation configuration the paper uses for each network: the large
/// setup for AlexNet and VGGNet, the small one for GoogLeNet (§4).
pub fn network_config(network: &Network) -> SimConfig {
    if network.name == "GoogLeNet" {
        SimConfig::small()
    } else {
        SimConfig::large()
    }
}

/// Runs every layer of a network through the given schemes, reusing one
/// mask model per layer.
pub fn run_network(network: &Network, schemes: &[Scheme], config: &SimConfig) -> Vec<LayerResult> {
    network
        .layers
        .iter()
        .map(|spec| run_layer(spec, schemes, config))
        .collect()
}

/// Runs one Table 3 layer through the given schemes. This is the unit of
/// work the harness parallelizes: independent layers of one figure run on
/// different workers and are recombined in layer order.
pub fn run_layer(spec: &LayerSpec, schemes: &[Scheme], config: &SimConfig) -> LayerResult {
    let workload = spec.workload(SEED);
    let model = MaskModel::new(&workload, config.accel.cluster.chunk_size);
    LayerResult {
        layer: spec.name,
        results: schemes
            .iter()
            .map(|&s| simulate_layer(&workload, &model, config, s))
            .collect(),
    }
}

/// [`run_layer`] with telemetry: every scheme's simulation records
/// work/stall counters and timeline spans into `session` (Perfetto tracks
/// prefixed `"<layer>:"`), with the stall counters reconciled *exactly*
/// against each returned breakdown before they are merged in.
///
/// # Panics
///
/// Panics if any scheme's counters fail to reconcile with its breakdown —
/// that is a simulator-instrumentation bug, never a data condition, and
/// the harness surfaces it as a failed job.
pub fn run_layer_telemetry(
    spec: &LayerSpec,
    schemes: &[Scheme],
    config: &SimConfig,
    session: &Telemetry,
) -> LayerResult {
    let workload = spec.workload(SEED);
    let model = MaskModel::new(&workload, config.accel.cluster.chunk_size);
    let prefix = format!("{}:", spec.name);
    LayerResult {
        layer: spec.name,
        results: schemes
            .iter()
            .map(|&s| {
                simulate_layer_telemetry(&workload, &model, config, s, session, &prefix)
                    .unwrap_or_else(|e| panic!("{}: {e}", spec.name))
            })
            .collect(),
    }
}

/// Geometric mean over layers of per-layer values, optionally excluding
/// named layers (the paper excludes AlexNet/VGGNet Layer0 from some means).
pub fn geomean_excluding(
    layers: &[LayerResult],
    per_layer: impl Fn(&LayerResult) -> f64,
    exclude: &[&str],
) -> f64 {
    let vals: Vec<f64> = layers
        .iter()
        .filter(|l| !exclude.contains(&l.layer))
        .map(per_layer)
        .collect();
    sparten::sim::breakdown::geometric_mean(&vals)
}

/// Writes per-layer results as JSON rows next to the printed table, under
/// `results/<name>.json`, so plots can be regenerated without re-running.
/// Under the harness the rows are captured as an artifact instead of
/// written directly, so cached and live runs produce identical files.
pub fn dump_json(name: &str, layers: &[LayerResult], schemes: &[Scheme]) {
    use crate::json::Json;
    let rows = Json::Arr(
        layers
            .iter()
            .map(|l| {
                let per_scheme = Json::Arr(
                    schemes
                        .iter()
                        .zip(&l.results)
                        .map(|(s, r)| {
                            Json::obj([
                                ("scheme", Json::str(s.label())),
                                ("cycles", Json::UInt(r.cycles())),
                                ("compute_cycles", Json::UInt(r.compute_cycles)),
                                ("memory_cycles", Json::UInt(r.memory_cycles)),
                                ("memory_bound", Json::Bool(r.is_memory_bound())),
                                (
                                    "breakdown",
                                    Json::obj([
                                        ("nonzero", Json::UInt(r.breakdown.nonzero)),
                                        ("zero", Json::UInt(r.breakdown.zero)),
                                        ("intra", Json::UInt(r.breakdown.intra)),
                                        ("inter", Json::UInt(r.breakdown.inter)),
                                    ]),
                                ),
                            ])
                        })
                        .collect(),
                );
                Json::obj([("layer", Json::str(l.layer)), ("results", per_scheme)])
            })
            .collect(),
    );
    crate::sink::artifact(&format!("results/{name}.json"), &rows.pretty());
}

/// Prints a speedup figure: per-layer speedups over Dense for each scheme,
/// then geometric means (optionally excluding layers, as the paper does for
/// SCNN on AlexNet Layer0 and for VGGNet Layer0).
pub fn print_speedup_figure(
    title: &str,
    layers: &[LayerResult],
    schemes: &[Scheme],
    mean_excludes: &[(&str, &[&str])],
) {
    crate::outln!("== {title} ==");
    let header: Vec<&str> = std::iter::once("Layer")
        .chain(schemes.iter().map(|s| s.label()))
        .collect();
    let rows: Vec<Vec<String>> = layers
        .iter()
        .map(|l| {
            std::iter::once(l.layer.to_string())
                .chain(l.speedups().iter().map(|v| format!("{v:.2}")))
                .collect()
        })
        .collect();
    crate::tables::print_table(&header, &rows);
    crate::outln!();
    for (si, s) in schemes.iter().enumerate() {
        let exclude = mean_excludes
            .iter()
            .find(|(label, _)| *label == s.label())
            .map(|(_, e)| *e)
            .unwrap_or(&[]);
        let mean = geomean_excluding(layers, |l| l.speedups()[si], exclude);
        let note = if exclude.is_empty() {
            String::new()
        } else {
            format!(" (mean excludes {})", exclude.join(", "))
        };
        crate::outln!("geomean {:<16} {:.2}x{}", s.label(), mean, note);
    }
    crate::outln!();
}

/// Prints a breakdown figure: each scheme's execution-time components
/// normalized to Dense's total slots for that layer (Figures 10–12).
pub fn print_breakdown_figure(
    title: &str,
    layers: &[LayerResult],
    schemes: &[Scheme],
    skip_layers: &[&str],
) {
    crate::outln!("== {title} ==");
    crate::outln!("(components normalized to Dense = 1.0: nonzero/zero/intra/inter)");
    let header: Vec<&str> = std::iter::once("Layer")
        .chain(schemes.iter().map(|s| s.label()))
        .collect();
    let rows: Vec<Vec<String>> = layers
        .iter()
        .filter(|l| !skip_layers.contains(&l.layer))
        .map(|l| {
            let dense_slots = l.results[0].breakdown.total().max(1) as f64;
            std::iter::once(l.layer.to_string())
                .chain(l.results.iter().map(|r| {
                    let b = &r.breakdown;
                    format!(
                        "{:.2}/{:.2}/{:.2}/{:.2}",
                        b.nonzero as f64 / dense_slots,
                        b.zero as f64 / dense_slots,
                        b.intra as f64 / dense_slots,
                        b.inter as f64 / dense_slots,
                    )
                }))
                .collect()
        })
        .collect();
    crate::tables::print_table(&header, &rows);
    crate::outln!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use sparten::nn::googlenet;

    #[test]
    fn config_selection_matches_paper() {
        assert_eq!(network_config(&googlenet()), SimConfig::small());
        assert_eq!(network_config(&sparten::nn::alexnet()), SimConfig::large());
    }

    #[test]
    fn run_single_small_layer() {
        // One small GoogLeNet layer end to end through two schemes.
        let net = googlenet();
        let spec = net.layer("Inc5a_5x5").expect("layer exists");
        let cfg = SimConfig::small();
        let r = run_layer(spec, &[Scheme::Dense, Scheme::SpartenGbH], &cfg);
        assert_eq!(r.results.len(), 2);
        let sp = r.speedups();
        assert_eq!(sp[0], 1.0);
        assert!(sp[1] > 1.0, "SparTen speedup {}", sp[1]);
    }
}
