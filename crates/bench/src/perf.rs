//! The `harness bench` perf-regression registry.
//!
//! A deterministic micro + macro benchmark suite that establishes the
//! repo's perf trajectory:
//!
//! * **kernel benches** time each word-parallel fast-path kernel against
//!   its structural-circuit oracle (prefix networks, inner-join
//!   sequencer, output compactor) and report the speedup;
//! * **macro benches** time representative end-to-end paths: one
//!   cycle-simulated layer per architecture and one functional-engine
//!   layer (the harness adds its cache hit path on top).
//!
//! `harness bench` renders the speedup table, emits `BENCH_sim.json`
//! via `atomic_write`, and — when a previous `BENCH_sim.json` exists —
//! compares the new timings against it, flagging any benchmark that got
//! slower than `threshold ×` its baseline. Workloads and iteration
//! structure are seeded and fixed, so two runs differ only in the timing
//! fields; [`non_timing_fingerprint`] captures everything else for the
//! determinism test and the `--check-schema` smoke.

use std::time::Duration;

use crate::json::Json;
use crate::timing::{measure, Measurement};

/// Schema tag pinned by the golden-value test.
pub const BENCH_SCHEMA: &str = "sparten-bench/v1";

/// Default regression threshold: fail a benchmark that runs slower than
/// `1.5 ×` its recorded baseline.
pub const DEFAULT_THRESHOLD: f64 = 1.5;

/// Default output artifact path (repo root, next to the other top-level
/// reports).
pub const DEFAULT_OUT_PATH: &str = "BENCH_sim.json";

/// Options for one `harness bench` run.
#[derive(Debug, Clone)]
pub struct BenchOptions {
    /// Quick mode: ~5 ms budget per measurement instead of ~60 ms.
    pub quick: bool,
    /// Only run benchmarks whose name contains this substring.
    pub filter: Option<String>,
    /// Regression threshold (new/old ratio) against the baseline.
    pub threshold: f64,
}

impl Default for BenchOptions {
    fn default() -> Self {
        BenchOptions {
            quick: false,
            filter: None,
            threshold: DEFAULT_THRESHOLD,
        }
    }
}

impl BenchOptions {
    fn budget(&self) -> Duration {
        if self.quick {
            Duration::from_millis(5)
        } else {
            Duration::from_millis(60)
        }
    }

    fn selected(&self, name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| name.contains(f))
    }
}

/// One structural-vs-fast kernel measurement.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Benchmark name (`kernel/...`).
    pub name: String,
    /// ns/iter of the structural-circuit oracle path.
    pub structural_ns: f64,
    /// ns/iter of the word-parallel fast path.
    pub fast_ns: f64,
    /// `structural_ns / fast_ns`.
    pub speedup: f64,
}

/// One end-to-end path measurement.
#[derive(Debug, Clone)]
pub struct MacroResult {
    /// Benchmark name (`layer/...`, `engine/...`, `harness/...`).
    pub name: String,
    /// ns/iter of the path.
    pub ns_per_iter: f64,
}

/// The full result of one bench run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// `"quick"` or `"full"`.
    pub mode: &'static str,
    /// The regression threshold the run was configured with.
    pub threshold: f64,
    /// Kernel (structural vs fast) results, in registry order.
    pub kernels: Vec<KernelResult>,
    /// Macro results, in registry order.
    pub macros: Vec<MacroResult>,
}

/// An extra macro benchmark injected by the caller (the harness adds its
/// cache hit path, which this crate cannot depend on).
pub struct ExtraBench<'a> {
    /// Benchmark name.
    pub name: String,
    /// The workload to time.
    pub run: Box<dyn FnMut() + 'a>,
}

/// A regression against the previous baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// Benchmark name.
    pub name: String,
    /// Baseline ns/iter.
    pub old_ns: f64,
    /// Current ns/iter.
    pub new_ns: f64,
    /// `new_ns / old_ns`.
    pub ratio: f64,
}

/// Runs the registry (kernels, macros, and any injected extras) and
/// returns the report. Deterministic in everything but the timings: the
/// workloads are seeded and the registry order is fixed.
pub fn run_benchmarks(opts: &BenchOptions, extras: Vec<ExtraBench<'_>>) -> BenchReport {
    use sparten::arch::fast;
    use sparten::arch::prefix::{
        exclusive_from_inclusive, KoggeStone, PrefixCircuit, Sklansky,
    };
    use sparten::arch::{InnerJoinSequencer, OutputCompactor};
    use sparten::core::BalanceMode;
    use sparten::nn::generate::workload;
    use sparten::nn::ConvShape;
    use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};
    use sparten::tensor::{Rng64, SparseChunk};

    let budget = opts.budget();
    let mut kernels = Vec::new();
    let mut macros = Vec::new();

    // ---- Kernel fixtures: the paper's 128-wide chunk at ~35% density. ----
    let mut rng = Rng64::seed_from_u64(crate::SEED);
    let chunk_pair = |rng: &mut Rng64| -> (SparseChunk, SparseChunk) {
        let dense = |rng: &mut Rng64| -> Vec<f32> {
            (0..128)
                .map(|_| {
                    if rng.gen_bool(0.35) {
                        rng.gen_range_f64(0.5, 2.0) as f32
                    } else {
                        0.0
                    }
                })
                .collect()
        };
        (
            SparseChunk::from_dense(&dense(rng)),
            SparseChunk::from_dense(&dense(rng)),
        )
    };
    let (a, b) = chunk_pair(&mut rng);

    let mut kernel = |name: &str, structural: &mut dyn FnMut(), fast_f: &mut dyn FnMut()| {
        if !opts.selected(name) {
            return;
        }
        let s: Measurement = measure(budget, structural);
        let f: Measurement = measure(budget, fast_f);
        kernels.push(KernelResult {
            name: name.to_string(),
            structural_ns: s.ns_per_iter,
            fast_ns: f.ns_per_iter,
            speedup: s.ns_per_iter / f.ns_per_iter.max(f64::MIN_POSITIVE),
        });
    };

    kernel(
        "kernel/prefix-sklansky-128",
        &mut || {
            let inc = Sklansky.prefix_sums(a.mask());
            std::hint::black_box(exclusive_from_inclusive(&inc, a.mask()));
        },
        &mut || {
            std::hint::black_box(fast::exclusive_offsets(a.mask()));
        },
    );
    kernel(
        "kernel/prefix-koggestone-128",
        &mut || {
            let inc = KoggeStone.prefix_sums(b.mask());
            std::hint::black_box(exclusive_from_inclusive(&inc, b.mask()));
        },
        &mut || {
            std::hint::black_box(fast::exclusive_offsets(b.mask()));
        },
    );
    kernel(
        "kernel/inner-join-128",
        &mut || {
            std::hint::black_box(InnerJoinSequencer::new(&a, &b).run());
        },
        &mut || {
            std::hint::black_box(fast::join_eval(&a, &b));
        },
    );
    let cells: Vec<f32> = {
        let mut r = Rng64::seed_from_u64(crate::SEED + 1);
        (0..32)
            .map(|_| {
                if r.gen_bool(0.6) {
                    r.gen_range_f64(-1.0, 1.0) as f32
                } else {
                    0.0
                }
            })
            .collect()
    };
    kernel(
        "kernel/compact-32",
        &mut || {
            std::hint::black_box(OutputCompactor::new(32).compact(&cells));
        },
        &mut || {
            std::hint::black_box(fast::compact_values(&cells));
        },
    );

    // ---- Macro fixtures: a small seeded layer shared by all schemes. ----
    let shape = ConvShape::new(64, 8, 8, 3, 8, 1, 1);
    let w = workload(&shape, 0.35, 0.3, crate::SEED);
    let config = SimConfig::small();
    let model = MaskModel::new(&w, config.accel.cluster.chunk_size);
    model.total_sparse_macs(); // warm the shared cache outside the timers

    let mut macro_bench = |name: &str, f: &mut dyn FnMut()| {
        if !opts.selected(name) {
            return;
        }
        let m = measure(budget, f);
        macros.push(MacroResult {
            name: name.to_string(),
            ns_per_iter: m.ns_per_iter,
        });
    };

    for scheme in [Scheme::Dense, Scheme::SpartenGbH, Scheme::Scnn] {
        let name = format!("layer/{}", scheme.label());
        macro_bench(&name, &mut || {
            std::hint::black_box(simulate_layer(&w, &model, &config, scheme));
        });
    }
    macro_bench("engine/run-layer", &mut || {
        let engine = sparten::core::SparTenEngine::new(config.accel);
        std::hint::black_box(engine.run_layer(&w, BalanceMode::GbH, false));
    });

    // ---- Analytical-model paths: one closed-form layer evaluation (the
    // per-point cost the DSE pays in place of a simulated layer), and a
    // ~1k-configuration slice of the `dse --quick` grid (two executor
    // batches, exactly what one sweep point computes). ----
    use sparten::model::dse::{DseAxes, DseGrid};
    let eval_params = sparten::model::LayerParams::new(shape, 0.35, 0.3);
    let eval_buf =
        sparten::model::scheme_buffer_bytes_per_mac(Scheme::SpartenGbH, &config.accel.cluster);
    macro_bench("model/eval-point", &mut || {
        std::hint::black_box(sparten::model::evaluate(
            &eval_params,
            &config,
            Scheme::SpartenGbH,
            eval_buf,
        ));
    });
    let dse_grid = DseGrid::new(DseAxes::quick());
    macro_bench("dse/1k-sweep", &mut || {
        std::hint::black_box(dse_grid.batch_record(0));
        std::hint::black_box(dse_grid.batch_record(1));
    });

    for mut extra in extras {
        let name = extra.name.clone();
        macro_bench(&name, &mut *extra.run);
    }

    BenchReport {
        mode: if opts.quick { "quick" } else { "full" },
        threshold: opts.threshold,
        kernels,
        macros,
    }
}

impl BenchReport {
    /// Serializes the report into the pinned `BENCH_sim.json` schema.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema", Json::str(BENCH_SCHEMA)),
            ("mode", Json::str(self.mode)),
            ("threshold", Json::Float(self.threshold)),
            (
                "kernels",
                Json::Arr(
                    self.kernels
                        .iter()
                        .map(|k| {
                            Json::obj([
                                ("name", Json::str(k.name.clone())),
                                ("structural_ns", Json::Float(k.structural_ns)),
                                ("fast_ns", Json::Float(k.fast_ns)),
                                ("speedup", Json::Float(k.speedup)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "macros",
                Json::Arr(
                    self.macros
                        .iter()
                        .map(|m| {
                            Json::obj([
                                ("name", Json::str(m.name.clone())),
                                ("ns_per_iter", Json::Float(m.ns_per_iter)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Renders the human-readable speedup table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("bench mode: {}\n\n", self.mode));
        out.push_str(&format!(
            "{:<30} {:>14} {:>14} {:>9}\n",
            "kernel (structural vs fast)", "structural ns", "fast ns", "speedup"
        ));
        for k in &self.kernels {
            out.push_str(&format!(
                "{:<30} {:>14.0} {:>14.0} {:>8.1}x\n",
                k.name, k.structural_ns, k.fast_ns, k.speedup
            ));
        }
        out.push('\n');
        out.push_str(&format!("{:<30} {:>14}\n", "macro path", "ns/iter"));
        for m in &self.macros {
            out.push_str(&format!("{:<30} {:>14.0}\n", m.name, m.ns_per_iter));
        }
        out
    }

    /// Every (name, representative ns) pair the baseline comparison keys
    /// on: kernels compare their fast-path time, macros their ns/iter.
    fn timings(&self) -> Vec<(String, f64)> {
        self.kernels
            .iter()
            .map(|k| (k.name.clone(), k.fast_ns))
            .chain(self.macros.iter().map(|m| (m.name.clone(), m.ns_per_iter)))
            .collect()
    }

    /// Compares this run against a previously-written `BENCH_sim.json`
    /// document, returning every benchmark slower than `threshold ×` its
    /// baseline. Benchmarks absent from the baseline are skipped (new
    /// benchmarks are not regressions).
    pub fn compare_with_baseline(&self, baseline: &Json) -> Vec<Regression> {
        let mut old = std::collections::HashMap::new();
        for (section, field) in [("kernels", "fast_ns"), ("macros", "ns_per_iter")] {
            let Some(items) = baseline.get(section).and_then(Json::as_arr) else {
                continue;
            };
            for item in items {
                if let (Some(name), Some(ns)) = (
                    item.get("name").and_then(Json::as_str),
                    item.get(field).and_then(Json::as_f64),
                ) {
                    old.insert(name.to_string(), ns);
                }
            }
        }
        self.timings()
            .into_iter()
            .filter_map(|(name, new_ns)| {
                let &old_ns = old.get(&name)?;
                if old_ns <= 0.0 {
                    return None;
                }
                let ratio = new_ns / old_ns;
                (ratio > self.threshold).then_some(Regression {
                    name,
                    old_ns,
                    new_ns,
                    ratio,
                })
            })
            .collect()
    }
}

/// Validates a parsed `BENCH_sim.json` document against the pinned
/// schema: tag, mode, threshold, and per-entry fields all present, all
/// timings finite and positive, names non-empty.
pub fn check_schema(doc: &Json) -> Result<(), String> {
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("missing `schema`")?;
    if schema != BENCH_SCHEMA {
        return Err(format!("schema `{schema}`, expected `{BENCH_SCHEMA}`"));
    }
    let mode = doc
        .get("mode")
        .and_then(Json::as_str)
        .ok_or("missing `mode`")?;
    if mode != "quick" && mode != "full" {
        return Err(format!("mode `{mode}` is neither `quick` nor `full`"));
    }
    let threshold = doc
        .get("threshold")
        .and_then(Json::as_f64)
        .ok_or("missing `threshold`")?;
    if !threshold.is_finite() || threshold <= 0.0 {
        return Err(format!("threshold {threshold} must be finite and positive"));
    }
    let timing_ok = |v: f64| v.is_finite() && v > 0.0;
    let kernels = doc
        .get("kernels")
        .and_then(Json::as_arr)
        .ok_or("missing `kernels` array")?;
    for k in kernels {
        let name = k
            .get("name")
            .and_then(Json::as_str)
            .filter(|n| !n.is_empty())
            .ok_or("kernel entry missing `name`")?;
        for field in ["structural_ns", "fast_ns", "speedup"] {
            let v = k
                .get(field)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("kernel `{name}` missing `{field}`"))?;
            if !timing_ok(v) {
                return Err(format!("kernel `{name}` has bad `{field}`: {v}"));
            }
        }
    }
    let macros = doc
        .get("macros")
        .and_then(Json::as_arr)
        .ok_or("missing `macros` array")?;
    for m in macros {
        let name = m
            .get("name")
            .and_then(Json::as_str)
            .filter(|n| !n.is_empty())
            .ok_or("macro entry missing `name`")?;
        let v = m
            .get("ns_per_iter")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("macro `{name}` missing `ns_per_iter`"))?;
        if !timing_ok(v) {
            return Err(format!("macro `{name}` has bad `ns_per_iter`: {v}"));
        }
    }
    Ok(())
}

/// The non-timing content of a `BENCH_sim.json` document: schema, mode,
/// threshold, and the ordered benchmark names. Two runs with identical
/// options must produce identical fingerprints — only timings may vary.
pub fn non_timing_fingerprint(doc: &Json) -> String {
    let mut out = String::new();
    for field in ["schema", "mode"] {
        out.push_str(doc.get(field).and_then(Json::as_str).unwrap_or("?"));
        out.push('\n');
    }
    out.push_str(&format!(
        "threshold={}\n",
        doc.get("threshold").and_then(Json::as_f64).unwrap_or(-1.0)
    ));
    for section in ["kernels", "macros"] {
        out.push_str(section);
        out.push(':');
        if let Some(items) = doc.get(section).and_then(Json::as_arr) {
            for item in items {
                out.push(' ');
                out.push_str(item.get("name").and_then(Json::as_str).unwrap_or("?"));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_report() -> BenchReport {
        let opts = BenchOptions {
            quick: true,
            filter: Some("kernel/compact-32".into()),
            threshold: DEFAULT_THRESHOLD,
        };
        run_benchmarks(&opts, Vec::new())
    }

    #[test]
    fn filtered_run_times_only_selected_benchmarks() {
        let r = tiny_report();
        assert_eq!(r.kernels.len(), 1);
        assert_eq!(r.kernels[0].name, "kernel/compact-32");
        assert!(r.macros.is_empty());
        assert!(r.kernels[0].structural_ns.is_finite());
        assert!(r.kernels[0].fast_ns > 0.0);
    }

    #[test]
    fn report_json_passes_its_own_schema_check() {
        let r = tiny_report();
        let doc = Json::parse(&r.to_json().pretty()).expect("round-trip");
        check_schema(&doc).expect("schema");
    }

    #[test]
    fn baseline_comparison_flags_only_true_regressions() {
        let mut r = tiny_report();
        r.kernels[0].fast_ns = 100.0;
        let mut old = r.clone();
        // Identical baseline: no regressions.
        assert!(r.compare_with_baseline(&old.to_json()).is_empty());
        // Baseline 3× faster than current: regression at threshold 1.5.
        old.kernels[0].fast_ns = 100.0 / 3.0;
        let regs = r.compare_with_baseline(&old.to_json());
        assert_eq!(regs.len(), 1);
        assert!((regs[0].ratio - 3.0).abs() < 1e-9);
        // Baseline slightly slower: still fine.
        old.kernels[0].fast_ns = 120.0;
        assert!(r.compare_with_baseline(&old.to_json()).is_empty());
    }

    #[test]
    fn extra_benches_are_appended_and_filtered() {
        let opts = BenchOptions {
            quick: true,
            filter: Some("harness/".into()),
            threshold: DEFAULT_THRESHOLD,
        };
        let mut calls = 0u64;
        let extras = vec![ExtraBench {
            name: "harness/noop".into(),
            run: Box::new(|| calls += 1),
        }];
        let r = run_benchmarks(&opts, extras);
        assert!(calls > 0, "injected bench must have been driven");
        assert!(r.kernels.is_empty());
        assert_eq!(r.macros.len(), 1);
        assert_eq!(r.macros[0].name, "harness/noop");
    }
}
