//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index). This library holds the common pieces:
//! table formatting, per-network experiment drivers, and JSON row dumps.

pub mod experiments;
pub mod tables;

pub use experiments::{
    dump_json, geomean_excluding, network_config, print_breakdown_figure, print_speedup_figure,
    run_network, LayerResult, SEED,
};
pub use tables::{print_series, print_table};
