//! Shared helpers for the benchmark harness binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the paper
//! (see DESIGN.md §4 for the index); the binaries are thin wrappers around
//! the experiment modules in [`exps`], which the parallel orchestration
//! harness (`sparten-harness`) drives directly. This library holds the
//! common pieces: table formatting, per-network experiment drivers, the
//! capturable output sink, a hand-rolled JSON writer, the std-only
//! micro-benchmark timer, and the experiment registry.

pub mod exps;
pub mod experiments;
pub mod fsutil;
pub mod json;
pub mod perf;
pub mod registry;
pub mod sink;
pub mod tables;
pub mod timing;
pub mod vfs;

pub use experiments::{
    dump_json, geomean_excluding, network_config, print_breakdown_figure, print_speedup_figure,
    run_layer, run_layer_telemetry, run_network, LayerResult, SEED,
};
pub use fsutil::atomic_write;
pub use vfs::{
    atomic_write_with, materialize_prefix, Append, FaultConfig, FaultFs, FsOp, RealFs, Vfs,
    VfsDirEntry, VfsFile,
};
pub use perf::{
    check_schema, non_timing_fingerprint, run_benchmarks, BenchOptions, BenchReport, ExtraBench,
    BENCH_SCHEMA, DEFAULT_OUT_PATH, DEFAULT_THRESHOLD,
};
pub use registry::{all_experiments, ExperimentKind, ExperimentSpec};
pub use sink::{artifact, begin_capture, end_capture, Capture};
pub use tables::{print_series, print_table};

/// Writes a line of experiment output: to the active capture if the
/// harness installed one on this thread, to stdout otherwise.
#[macro_export]
macro_rules! outln {
    () => { $crate::sink::outln_args(format_args!("")) };
    ($($arg:tt)*) => { $crate::sink::outln_args(format_args!($($arg)*)) };
}

/// Writes experiment output without a trailing newline (see [`outln!`]).
#[macro_export]
macro_rules! out {
    ($($arg:tt)*) => { $crate::sink::out_args(format_args!($($arg)*)) };
}
