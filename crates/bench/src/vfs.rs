//! Virtual filesystem seam for every durable-state operation.
//!
//! The harness's durability story (atomic artifact writes, the run
//! journal, the result cache, the events sink, fsck) silently assumed
//! the filesystem cooperates: `fsync` succeeds, writes never tear, the
//! disk never fills, `rename` never fails, bytes read back as written.
//! Real disks break every one of those promises, so — in the style of
//! SQLite's test VFS and FoundationDB's simulator — everything that
//! touches durable state now goes through the [`Vfs`] trait:
//!
//! * [`RealFs`] is the zero-cost passthrough to `std::fs` used in
//!   production (the default everywhere; no behavior change);
//! * [`FaultFs`] wraps a real directory tree, injects seeded faults
//!   (ENOSPC after a byte budget, short writes, fsync failures, rename
//!   failures, read-side bit rot) per a [`FaultConfig`], and records
//!   every mutating operation in an op log ([`FsOp`]);
//! * [`materialize_prefix`] is the power-cut simulator: it replays an
//!   arbitrary prefix of the op log into a fresh tree, keeping bytes
//!   that were fsync'd and seeded-tearing bytes that were not, so the
//!   recovery path (`fsck --repair` + `run --resume`) can be checked
//!   against every possible crash instant.
//!
//! The crash model is `data=ordered`-like: metadata operations (create,
//! rename, remove) in the applied prefix are durable as ordered, while
//! file *data* past the last successful fsync may survive in full, be
//! truncated back to the synced length, tear at an arbitrary byte, or —
//! for never-synced files — vanish entirely.

use sparten::faults::FaultRng;
use std::collections::BTreeMap;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::SystemTime;

/// An open file handle obtained from a [`Vfs`].
///
/// Only the operations the durable-state paths actually use: buffered
/// appends are the callers' business; this is the raw write/sync/trim
/// surface where faults can be injected.
pub trait VfsFile: Send {
    /// Writes the whole buffer (the journal's append granularity).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Flushes file *data* to stable storage (`fdatasync`).
    fn sync_data(&mut self) -> io::Result<()>;
    /// Flushes data and metadata to stable storage (`fsync`).
    fn sync_all(&mut self) -> io::Result<()>;
    /// Truncates the file to `len` bytes (used to roll back a torn
    /// append so the file never carries interior garbage).
    fn truncate(&mut self, len: u64) -> io::Result<()>;
}

/// How [`Vfs::open_append`] treats a missing or pre-existing file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Append {
    /// Open an existing file; error if it does not exist.
    Existing,
    /// Open the file, creating it if missing.
    OrCreate,
    /// Create the file; error if it already exists.
    New,
}

/// One directory entry returned by [`Vfs::read_dir`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VfsDirEntry {
    /// Full path of the entry.
    pub path: PathBuf,
    /// Whether the entry is a regular file.
    pub is_file: bool,
}

/// Every durable-state filesystem operation, behind one seam.
///
/// `Send + Sync` so an `Arc<dyn Vfs>` can be shared across the executor's
/// worker threads; `Debug` so option structs holding one keep deriving
/// `Debug`.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Creates `path` and all missing parents.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;
    /// Opens `path` for writing, truncating or creating it.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;
    /// Opens `path` for appending per `mode`.
    fn open_append(&self, path: &Path, mode: Append) -> io::Result<Box<dyn VfsFile>>;
    /// Reads the whole file as bytes.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Reads the whole file as UTF-8 text.
    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        String::from_utf8(self.read(path)?)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file is not valid UTF-8"))
    }
    /// Renames `from` to `to` (the commit step of every atomic write).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
    /// Removes the file at `path`.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Lists `path`'s entries, sorted by path for determinism.
    fn read_dir(&self, path: &Path) -> io::Result<Vec<VfsDirEntry>>;
    /// The entry's last-modification time.
    fn modified(&self, path: &Path) -> io::Result<SystemTime>;
    /// Fsyncs the *directory* at `path` so a new or renamed entry
    /// survives a power cut. Advisory on some filesystems; callers
    /// ignore the result.
    fn sync_dir(&self, path: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// RealFs: the production passthrough.
// ---------------------------------------------------------------------------

/// The passthrough [`Vfs`]: every operation maps 1:1 onto `std::fs`, so
/// the hot path pays nothing beyond a vtable dispatch per durable-state
/// operation (which is itself a syscall).
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

impl VfsFile for fs::File {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        io::Write::write_all(self, buf)
    }

    fn sync_data(&mut self) -> io::Result<()> {
        fs::File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        fs::File::sync_all(self)
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.set_len(len)
    }
}

impl Vfs for RealFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(fs::File::create(path)?))
    }

    fn open_append(&self, path: &Path, mode: Append) -> io::Result<Box<dyn VfsFile>> {
        let mut opts = fs::OpenOptions::new();
        opts.append(true);
        match mode {
            Append::Existing => {}
            Append::OrCreate => {
                opts.create(true);
            }
            Append::New => {
                opts.create_new(true);
            }
        }
        Ok(Box::new(opts.open(path)?))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_to_string(&self, path: &Path) -> io::Result<String> {
        fs::read_to_string(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<VfsDirEntry>> {
        let mut entries = Vec::new();
        for entry in fs::read_dir(path)? {
            let entry = entry?;
            let is_file = entry.file_type()?.is_file();
            entries.push(VfsDirEntry {
                path: entry.path(),
                is_file,
            });
        }
        entries.sort_by(|a, b| a.path.cmp(&b.path));
        Ok(entries)
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        fs::metadata(path)?.modified()
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        fs::File::open(path)?.sync_all()
    }
}

/// Atomically replaces the file at `path` with `contents` through `vfs`.
///
/// Same contract as [`crate::atomic_write`] (which is this function over
/// [`RealFs`]): write to a `*.tmp` sibling, fsync, rename into place,
/// advisory-fsync the parent directory. On failure the target is
/// untouched; at worst an orphaned `*.tmp` remains for `clean`/`fsck`.
pub fn atomic_write_with(vfs: &dyn Vfs, path: impl AsRef<Path>, contents: &str) -> io::Result<()> {
    let path = path.as_ref();
    let parent = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => {
            vfs.create_dir_all(p)?;
            Some(p)
        }
        _ => None,
    };
    let mut file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?
        .to_os_string();
    file_name.push(".tmp");
    let tmp = path.with_file_name(file_name);
    {
        let mut file = vfs.create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    vfs.rename(&tmp, path)?;
    if let Some(parent) = parent {
        // Directory fsync is advisory on some filesystems; a failure there
        // does not un-write the data.
        let _ = vfs.sync_dir(parent);
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// FaultFs: seeded fault injection + op log.
// ---------------------------------------------------------------------------

/// Which faults a [`FaultFs`] injects, and how often.
///
/// Rates are per-mille (out of 1000) so integer seeded draws stay exact.
/// The default config injects nothing — a `FaultFs` with default knobs
/// is a logging passthrough.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultConfig {
    /// After this many content bytes have been written, every further
    /// write fails with ENOSPC (a short prefix may land first, as on a
    /// real full disk).
    pub enospc_after_bytes: Option<u64>,
    /// Per-mille chance that a write persists only a strict prefix and
    /// reports an error.
    pub short_write_per_mille: u32,
    /// Per-mille chance that `sync_data`/`sync_all` fails; the bytes it
    /// would have made durable stay at risk.
    pub fsync_fail_per_mille: u32,
    /// Per-mille chance that a rename fails (and performs nothing).
    pub rename_fail_per_mille: u32,
    /// Per-mille chance that a read returns the file with one bit
    /// flipped (the file on disk is untouched).
    pub read_bitrot_per_mille: u32,
}

/// One mutating filesystem operation, as recorded by [`FaultFs`].
///
/// The op log is the ground truth the power-cut simulator replays;
/// reads are deliberately absent (they don't change durable state).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOp {
    /// `create_dir_all(path)`.
    CreateDirAll {
        /// Directory created (with parents).
        path: PathBuf,
    },
    /// A file was opened for writing; `truncate` empties it.
    Open {
        /// File opened or created.
        path: PathBuf,
        /// Whether the open truncated existing contents.
        truncate: bool,
    },
    /// Bytes appended to the file (possibly a torn prefix of a larger
    /// intended write — the log records what reached the disk).
    Write {
        /// File written.
        path: PathBuf,
        /// Bytes that landed.
        data: Vec<u8>,
    },
    /// A successful data fsync: everything written so far is durable.
    SyncData {
        /// File synced.
        path: PathBuf,
    },
    /// The file was truncated to `len` bytes.
    Truncate {
        /// File truncated.
        path: PathBuf,
        /// New length.
        len: u64,
    },
    /// `rename(from, to)` succeeded.
    Rename {
        /// Source path.
        from: PathBuf,
        /// Destination path.
        to: PathBuf,
    },
    /// `remove_file(path)` succeeded.
    Remove {
        /// File removed.
        path: PathBuf,
    },
    /// The directory was fsync'd.
    SyncDir {
        /// Directory synced.
        path: PathBuf,
    },
}

struct FaultState {
    rng: FaultRng,
    config: FaultConfig,
    bytes_written: u64,
    ops: Vec<FsOp>,
    injected: u64,
    enospc: u64,
}

impl FaultState {
    fn hit(&mut self, per_mille: u32) -> bool {
        per_mille > 0 && self.rng.gen_range(1000) < u64::from(per_mille)
    }
}

/// A fault-injecting [`Vfs`] over a real directory tree.
///
/// Operations are performed against the real filesystem (so the system
/// under test sees consistent state), faults are injected per the
/// seeded [`FaultConfig`], and every mutating operation that reached
/// the disk is recorded in the op log for [`materialize_prefix`].
#[derive(Clone)]
pub struct FaultFs {
    state: Arc<Mutex<FaultState>>,
}

impl fmt::Debug for FaultFs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = self.state.lock().expect("fault state lock");
        f.debug_struct("FaultFs")
            .field("config", &state.config)
            .field("ops", &state.ops.len())
            .field("injected", &state.injected)
            .finish()
    }
}

impl FaultFs {
    /// A fault-injecting VFS with a private RNG stream seeded by `seed`.
    pub fn new(seed: u64, config: FaultConfig) -> Self {
        FaultFs {
            state: Arc::new(Mutex::new(FaultState {
                rng: FaultRng::seed_from_u64(seed),
                config,
                bytes_written: 0,
                ops: Vec::new(),
                injected: 0,
                enospc: 0,
            })),
        }
    }

    /// A snapshot of the op log so far.
    pub fn ops(&self) -> Vec<FsOp> {
        self.state.lock().expect("fault state lock").ops.clone()
    }

    /// Total faults injected so far (all kinds).
    pub fn injected(&self) -> u64 {
        self.state.lock().expect("fault state lock").injected
    }

    /// ENOSPC failures injected so far.
    pub fn enospc_hits(&self) -> u64 {
        self.state.lock().expect("fault state lock").enospc
    }

    fn log(&self, op: FsOp) {
        self.state.lock().expect("fault state lock").ops.push(op);
    }
}

fn enospc_error() -> io::Error {
    io::Error::new(io::ErrorKind::StorageFull, "simulated ENOSPC: disk full")
}

struct FaultFile {
    path: PathBuf,
    inner: fs::File,
    state: Arc<Mutex<FaultState>>,
}

impl VfsFile for FaultFile {
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state lock");
        // Disk-full check first (not a random draw, so the RNG stream
        // stays aligned across classes).
        if let Some(budget) = state.config.enospc_after_bytes {
            let remaining = budget.saturating_sub(state.bytes_written) as usize;
            if remaining < buf.len() {
                let prefix = &buf[..remaining];
                io::Write::write_all(&mut self.inner, prefix)?;
                state.bytes_written += prefix.len() as u64;
                if !prefix.is_empty() {
                    let op = FsOp::Write {
                        path: self.path.clone(),
                        data: prefix.to_vec(),
                    };
                    state.ops.push(op);
                }
                state.injected += 1;
                state.enospc += 1;
                return Err(enospc_error());
            }
        }
        let short_pm = state.config.short_write_per_mille;
        if buf.len() > 1 && short_pm > 0 && state.hit(short_pm) {
            let cut = 1 + state.rng.gen_range(buf.len() as u64 - 1) as usize;
            let prefix = &buf[..cut];
            io::Write::write_all(&mut self.inner, prefix)?;
            state.bytes_written += prefix.len() as u64;
            state.ops.push(FsOp::Write {
                path: self.path.clone(),
                data: prefix.to_vec(),
            });
            state.injected += 1;
            return Err(io::Error::other("simulated torn write"));
        }
        io::Write::write_all(&mut self.inner, buf)?;
        state.bytes_written += buf.len() as u64;
        state.ops.push(FsOp::Write {
            path: self.path.clone(),
            data: buf.to_vec(),
        });
        Ok(())
    }

    fn sync_data(&mut self) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state lock");
        let pm = state.config.fsync_fail_per_mille;
        if state.hit(pm) {
            state.injected += 1;
            return Err(io::Error::other("simulated fsync failure"));
        }
        self.inner.sync_data()?;
        state.ops.push(FsOp::SyncData {
            path: self.path.clone(),
        });
        Ok(())
    }

    fn sync_all(&mut self) -> io::Result<()> {
        let mut state = self.state.lock().expect("fault state lock");
        let pm = state.config.fsync_fail_per_mille;
        if state.hit(pm) {
            state.injected += 1;
            return Err(io::Error::other("simulated fsync failure"));
        }
        self.inner.sync_all()?;
        state.ops.push(FsOp::SyncData {
            path: self.path.clone(),
        });
        Ok(())
    }

    fn truncate(&mut self, len: u64) -> io::Result<()> {
        self.inner.set_len(len)?;
        self.state
            .lock()
            .expect("fault state lock")
            .ops
            .push(FsOp::Truncate {
                path: self.path.clone(),
                len,
            });
        Ok(())
    }
}

impl Vfs for FaultFs {
    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)?;
        self.log(FsOp::CreateDirAll {
            path: path.to_path_buf(),
        });
        Ok(())
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        let inner = fs::File::create(path)?;
        self.log(FsOp::Open {
            path: path.to_path_buf(),
            truncate: true,
        });
        Ok(Box::new(FaultFile {
            path: path.to_path_buf(),
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn open_append(&self, path: &Path, mode: Append) -> io::Result<Box<dyn VfsFile>> {
        let mut opts = fs::OpenOptions::new();
        opts.append(true);
        match mode {
            Append::Existing => {}
            Append::OrCreate => {
                opts.create(true);
            }
            Append::New => {
                opts.create_new(true);
            }
        }
        let inner = opts.open(path)?;
        self.log(FsOp::Open {
            path: path.to_path_buf(),
            truncate: false,
        });
        Ok(Box::new(FaultFile {
            path: path.to_path_buf(),
            inner,
            state: Arc::clone(&self.state),
        }))
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut data = fs::read(path)?;
        let mut state = self.state.lock().expect("fault state lock");
        let pm = state.config.read_bitrot_per_mille;
        if !data.is_empty() && state.hit(pm) {
            let byte = state.rng.gen_range(data.len() as u64) as usize;
            let bit = state.rng.gen_range(8) as u8;
            data[byte] ^= 1 << bit;
            state.injected += 1;
        }
        Ok(data)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        {
            let mut state = self.state.lock().expect("fault state lock");
            let pm = state.config.rename_fail_per_mille;
            if state.hit(pm) {
                state.injected += 1;
                return Err(io::Error::other("simulated rename failure"));
            }
        }
        fs::rename(from, to)?;
        self.log(FsOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
        });
        Ok(())
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)?;
        self.log(FsOp::Remove {
            path: path.to_path_buf(),
        });
        Ok(())
    }

    fn read_dir(&self, path: &Path) -> io::Result<Vec<VfsDirEntry>> {
        RealFs.read_dir(path)
    }

    fn modified(&self, path: &Path) -> io::Result<SystemTime> {
        RealFs.modified(path)
    }

    fn sync_dir(&self, path: &Path) -> io::Result<()> {
        RealFs.sync_dir(path)?;
        self.log(FsOp::SyncDir {
            path: path.to_path_buf(),
        });
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Power-cut simulation: replay an op-log prefix into a fresh tree.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ModelFile {
    content: Vec<u8>,
    synced_len: usize,
}

/// Materializes the durable state after a power cut at op `cut`.
///
/// Replays `ops[..cut]` through an in-memory filesystem model and writes
/// the surviving tree under `to_root`, rebasing every path from
/// `from_root`. Bytes up to each file's last successful fsync always
/// survive; for the unsynced tail the seeded `rng` picks a fate per file
/// (in sorted path order): survive in full, truncate to the synced
/// length, tear at an arbitrary intermediate byte, or — if nothing was
/// ever synced — vanish entirely. Metadata operations (create, rename,
/// remove) in the prefix are applied as ordered, matching an
/// `ext4 data=ordered`-style journal.
pub fn materialize_prefix(
    ops: &[FsOp],
    cut: usize,
    rng: &mut FaultRng,
    from_root: &Path,
    to_root: &Path,
) -> io::Result<()> {
    let mut files: BTreeMap<PathBuf, ModelFile> = BTreeMap::new();
    let mut dirs: Vec<PathBuf> = Vec::new();
    for op in &ops[..cut.min(ops.len())] {
        match op {
            FsOp::CreateDirAll { path } => dirs.push(path.clone()),
            FsOp::Open { path, truncate } => {
                let entry = files.entry(path.clone()).or_default();
                if *truncate {
                    entry.content.clear();
                    entry.synced_len = 0;
                }
            }
            FsOp::Write { path, data } => {
                files
                    .entry(path.clone())
                    .or_default()
                    .content
                    .extend_from_slice(data);
            }
            FsOp::SyncData { path } => {
                if let Some(f) = files.get_mut(path) {
                    f.synced_len = f.content.len();
                }
            }
            FsOp::Truncate { path, len } => {
                if let Some(f) = files.get_mut(path) {
                    f.content.truncate(*len as usize);
                    f.synced_len = f.synced_len.min(f.content.len());
                }
            }
            FsOp::Rename { from, to } => {
                if let Some(f) = files.remove(from) {
                    files.insert(to.clone(), f);
                }
            }
            FsOp::Remove { path } => {
                files.remove(path);
            }
            FsOp::SyncDir { .. } => {}
        }
    }

    let rebase = |path: &Path| -> io::Result<PathBuf> {
        let rel = path.strip_prefix(from_root).map_err(|_| {
            io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("op path escapes the faulted root: {}", path.display()),
            )
        })?;
        Ok(to_root.join(rel))
    };

    for dir in &dirs {
        fs::create_dir_all(rebase(dir)?)?;
    }
    // BTreeMap iteration order is sorted by path, so the per-file fate
    // draws consume the RNG stream deterministically.
    for (path, file) in &files {
        let mut content = file.content.clone();
        if file.synced_len < content.len() {
            let unsynced = (content.len() - file.synced_len) as u64;
            match rng.gen_range(3) {
                0 => {} // the tail made it to the platter anyway
                1 => {
                    if file.synced_len == 0 {
                        // Never synced, directory entry never forced:
                        // the file vanishes entirely.
                        continue;
                    }
                    content.truncate(file.synced_len);
                }
                _ => {
                    let keep = file.synced_len + rng.gen_range(unsynced) as usize;
                    content.truncate(keep);
                }
            }
        }
        let dest = rebase(path)?;
        if let Some(parent) = dest.parent() {
            fs::create_dir_all(parent)?;
        }
        fs::write(&dest, &content)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sparten-vfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn realfs_roundtrips_and_lists_sorted() {
        let dir = scratch("real");
        let vfs = RealFs;
        atomic_write_with(&vfs, dir.join("b.txt"), "bee").unwrap();
        atomic_write_with(&vfs, dir.join("a.txt"), "ay").unwrap();
        assert_eq!(vfs.read_to_string(&dir.join("a.txt")).unwrap(), "ay");
        assert_eq!(vfs.read(&dir.join("b.txt")).unwrap(), b"bee");
        let names: Vec<_> = vfs
            .read_dir(&dir)
            .unwrap()
            .into_iter()
            .map(|e| e.path.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert_eq!(names, ["a.txt", "b.txt"]);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn faultfs_default_config_is_a_logging_passthrough() {
        let dir = scratch("passthrough");
        let vfs = FaultFs::new(7, FaultConfig::default());
        atomic_write_with(&vfs, dir.join("out.json"), "[1,2]").unwrap();
        assert_eq!(vfs.read(&dir.join("out.json")).unwrap(), b"[1,2]");
        assert_eq!(vfs.injected(), 0);
        // The log saw the tmp-write/fsync/rename commit protocol.
        let ops = vfs.ops();
        assert!(ops
            .iter()
            .any(|op| matches!(op, FsOp::Write { data, .. } if data == b"[1,2]")));
        assert!(ops.iter().any(|op| matches!(op, FsOp::Rename { .. })));
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn faultfs_enospc_fails_after_budget_with_prefix() {
        let dir = scratch("enospc");
        let vfs = FaultFs::new(7, FaultConfig {
            enospc_after_bytes: Some(4),
            ..FaultConfig::default()
        });
        let path = dir.join("x.bin");
        let mut f = vfs.create(&path).unwrap();
        let err = f.write_all(b"0123456789").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        drop(f);
        // The short prefix landed on the real disk, as on a full disk.
        assert_eq!(fs::read(&path).unwrap(), b"0123");
        assert_eq!(vfs.enospc_hits(), 1);
        assert_eq!(vfs.injected(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn faultfs_rename_failure_leaves_source_in_place() {
        let dir = scratch("rename");
        let vfs = FaultFs::new(3, FaultConfig {
            rename_fail_per_mille: 1000,
            ..FaultConfig::default()
        });
        fs::write(dir.join("src"), b"x").unwrap();
        assert!(vfs.rename(&dir.join("src"), &dir.join("dst")).is_err());
        assert!(dir.join("src").exists());
        assert!(!dir.join("dst").exists());
        assert_eq!(vfs.injected(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn faultfs_bitrot_flips_exactly_one_bit_in_memory_only() {
        let dir = scratch("bitrot");
        let vfs = FaultFs::new(11, FaultConfig {
            read_bitrot_per_mille: 1000,
            ..FaultConfig::default()
        });
        let path = dir.join("data");
        fs::write(&path, b"abcdef").unwrap();
        let rotted = vfs.read(&path).unwrap();
        let clean = fs::read(&path).unwrap();
        assert_eq!(clean, b"abcdef", "rot must not touch the disk");
        let flipped: u32 = rotted
            .iter()
            .zip(&clean)
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(flipped, 1, "exactly one bit flips");
        assert_eq!(vfs.injected(), 1);
        let _ = fs::remove_dir_all(dir);
    }

    #[test]
    fn power_cut_keeps_synced_bytes_and_respects_metadata_order() {
        let from = PathBuf::from("/virt");
        let ops = vec![
            FsOp::CreateDirAll {
                path: from.join("d"),
            },
            FsOp::Open {
                path: from.join("d/a.tmp"),
                truncate: true,
            },
            FsOp::Write {
                path: from.join("d/a.tmp"),
                data: b"hello".to_vec(),
            },
            FsOp::SyncData {
                path: from.join("d/a.tmp"),
            },
            FsOp::Rename {
                from: from.join("d/a.tmp"),
                to: from.join("d/a"),
            },
            FsOp::Open {
                path: from.join("d/b"),
                truncate: true,
            },
            FsOp::Write {
                path: from.join("d/b"),
                data: b"unsynced".to_vec(),
            },
        ];
        // Cut after everything: `a` is fully synced and renamed — it must
        // survive verbatim no matter the seed; `b` was never synced, so
        // any of its fates is legal.
        for seed in 0..16 {
            let to = scratch(&format!("cut-{seed}"));
            let mut rng = FaultRng::seed_from_u64(seed);
            materialize_prefix(&ops, ops.len(), &mut rng, &from, &to).unwrap();
            assert_eq!(fs::read(to.join("d/a")).unwrap(), b"hello");
            assert!(!to.join("d/a.tmp").exists());
            if to.join("d/b").exists() {
                let b = fs::read(to.join("d/b")).unwrap();
                assert!(b"unsynced".starts_with(&b[..]), "b is a prefix");
            }
            let _ = fs::remove_dir_all(to);
        }
        // Cut before the rename: only the tmp side of `a` can exist.
        let to = scratch("cut-pre-rename");
        let mut rng = FaultRng::seed_from_u64(1);
        materialize_prefix(&ops, 4, &mut rng, &from, &to).unwrap();
        assert!(!to.join("d/a").exists());
        assert_eq!(fs::read(to.join("d/a.tmp")).unwrap(), b"hello");
        let _ = fs::remove_dir_all(to);
    }

    #[test]
    fn power_cut_is_deterministic_per_seed() {
        let from = PathBuf::from("/virt");
        let ops = vec![
            FsOp::Open {
                path: from.join("f"),
                truncate: true,
            },
            FsOp::Write {
                path: from.join("f"),
                data: b"0123".to_vec(),
            },
            FsOp::SyncData {
                path: from.join("f"),
            },
            FsOp::Write {
                path: from.join("f"),
                data: b"456789".to_vec(),
            },
        ];
        let mut first: Option<Vec<u8>> = None;
        for round in 0..2 {
            let to = scratch(&format!("det-{round}"));
            let mut rng = FaultRng::seed_from_u64(99);
            materialize_prefix(&ops, ops.len(), &mut rng, &from, &to).unwrap();
            let got = fs::read(to.join("f")).unwrap();
            assert!(got.len() >= 4, "synced prefix always survives");
            assert!(b"0123456789".starts_with(&got[..]));
            match &first {
                None => first = Some(got),
                Some(prev) => assert_eq!(prev, &got, "same seed, same fate"),
            }
            let _ = fs::remove_dir_all(to);
        }
    }
}
