//! Regenerates Figure 15: AlexNet speedups on the FPGA prototype (one
//! 32-unit cluster against 2.8 Gbps SDRAM — layers can go memory-bound).

use crate::registry::NetworkFigure;
use crate::{dump_json, print_speedup_figure, LayerResult};
use sparten::nn::alexnet;
use sparten::sim::{Scheme, SimConfig};

const SCHEMES: [Scheme; 4] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbH,
];

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: alexnet,
        config: |_| SimConfig::fpga(),
        schemes: || SCHEMES.to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    print_speedup_figure("Figure 15: AlexNet Speedup on FPGA", layers, &SCHEMES, &[]);
    dump_json("fig15_alexnet_fpga", layers, &SCHEMES);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
