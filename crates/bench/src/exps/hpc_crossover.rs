//! The §3.1 representation-size analysis, measured on concrete encodings:
//! sweeps density from HPC-extreme (0.1 %) to CNN-typical (50 %) and prints
//! the bits each format actually uses, the analytic formulas, and the
//! crossover point — plus the SpMV join work each representation implies.

use sparten::tensor::size::{bitmask_bits, crossover_density, pointer_bits};
use sparten::tensor::{IndexVector, RleVector, SparseVector};
use crate::print_table;

const N: usize = 1 << 16; // 65 536 positions → crossover at 1/16 = 6.25 %

fn vector_at(density: f64) -> Vec<f32> {
    let period = (1.0 / density).round().max(1.0) as usize;
    (0..N)
        .map(|i| if i % period == 0 { 1.0 } else { 0.0 })
        .collect()
}

pub fn run() {
    crate::outln!("== Representation-size crossover (n = {N}, 8-bit values) ==");
    crate::outln!(
        "analytic crossover density: {:.4} (pointer wins below, bit mask above)\n",
        crossover_density(N)
    );
    let mut rows = Vec::new();
    for density in [0.001, 0.01, 0.03, crossover_density(N), 0.1, 0.33, 0.5] {
        let dense = vector_at(density);
        let f = dense.iter().filter(|&&v| v != 0.0).count() as f64 / N as f64;
        let bitmask = SparseVector::from_dense(&dense, N); // single-chunk mask
        let pointer = IndexVector::from_dense(&dense);
        let rle = RleVector::from_dense(&dense, 4);
        let winner = if pointer.storage_bits(8) < bitmask.storage_bits(8) {
            "pointer"
        } else {
            "bitmask"
        };
        rows.push(vec![
            format!("{f:.4}"),
            bitmask.storage_bits(8).to_string(),
            pointer.storage_bits(8).to_string(),
            rle.storage_bits(8).to_string(),
            format!("{:.0}", bitmask_bits(N, f, 8)),
            format!("{:.0}", pointer_bits(N, f, 8)),
            winner.to_string(),
        ]);
    }
    print_table(
        &[
            "density",
            "bitmask bits",
            "pointer bits",
            "rle4 bits",
            "formula bitmask",
            "formula pointer",
            "smaller",
        ],
        &rows,
    );
    crate::outln!("\nCNN densities (33-50%) sit far above the crossover: the bit mask wins,");
    crate::outln!("which is the paper's case for SparseMaps over HPC's CSR/CSC (§3.1).");
}
