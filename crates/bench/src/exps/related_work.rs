//! Empirical backing for Table 1 and §6: SparTen against the semi-sparse
//! alternatives built in this repo — a Cambricon-S-like structured-sparsity
//! design and a Bit-Pragmatic/Laconic-like bit-serial design — on
//! representative layers of each network.

use sparten::nn::all_networks;
use sparten::sim::{
    simulate_bitserial, simulate_cambricon, simulate_layer, MaskModel, Scheme, SimConfig,
};
use crate::{network_config, print_table, SEED};

pub fn run() {
    crate::outln!("== Related-work comparison (one representative layer per network) ==\n");
    let picks = [
        ("AlexNet", "Layer2"),
        ("GoogLeNet", "Inc3a_3x3"),
        ("VGGNet", "Layer8"),
    ];
    let mut rows = Vec::new();
    for net in all_networks() {
        let Some((_, layer_name)) = picks.iter().find(|(n, _)| *n == net.name) else {
            continue;
        };
        let spec = net.layer(layer_name).expect("layer exists");
        let cfg: SimConfig = network_config(&net);
        let w = spec.workload(SEED);
        let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);

        let dense = simulate_layer(&w, &model, &cfg, Scheme::Dense);
        let sparten = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH);
        let cam = simulate_cambricon(&w, &cfg);
        let bits = simulate_bitserial(&w, &cfg);

        for (label, r, accuracy) in [
            ("Dense", &dense, "yes".to_string()),
            ("SparTen", &sparten, "yes".to_string()),
            (
                "Cambricon-S-like",
                &cam.sim,
                format!(
                    "no ({:.0}% keepers clamped)",
                    cam.prune_report.collateral_fraction() * 100.0
                ),
            ),
            ("Bit-serial", &bits, "yes".to_string()),
        ] {
            rows.push(vec![
                format!("{} {}", net.name, layer_name),
                label.to_string(),
                r.cycles().to_string(),
                format!("{:.2}x", r.speedup_over(&dense)),
                format!("{:.0}", r.traffic.zero_value_bytes / 1024.0),
                format!("{:.0}", r.traffic.total_bytes() / 1024.0),
                accuracy,
            ]);
        }
    }
    print_table(
        &[
            "Layer",
            "Scheme",
            "cycles",
            "speedup",
            "zero KB moved",
            "total KB",
            "accuracy kept",
        ],
        &rows,
    );
    crate::outln!("\nNotes: bit-serial cycles are digit-cycles at one digit pair/lane/cycle;");
    crate::outln!("Cambricon-S-like is density-matched via group-shared coarse pruning;");
    crate::outln!("its clamped-keeper fraction proxies the accuracy cost of structure (§6).");
}
