//! Buffering study: "No amount of buffering would address this systematic
//! load imbalance" (§2.1.1/§3.3), tested mechanically.
//!
//! Sweeps the broadcast-buffer depth from the strict per-chunk barrier
//! (B = 1) to unbounded run-ahead, with and without greedy balancing, on an
//! AlexNet-Layer2-shaped layer. Buffering smooths chunk-level noise but
//! converges to the densest unit's total work; GB-H at even B = 1 beats
//! no-GB at B = ∞.

use sparten::core::balance::BalanceMode;
use sparten::nn::alexnet;
use sparten::sim::{simulate_buffered, BufferDepth, MaskModel, SimConfig};
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Buffering vs greedy balancing (AlexNet Layer2) ==\n");
    let net = alexnet();
    let spec = net.layer("Layer2").expect("Layer2 exists");
    let w = spec.workload(SEED);
    let cfg = SimConfig::large();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let units = cfg.accel.total_macs();

    let depths = [
        ("B=1 (barrier)", BufferDepth::Bounded(1)),
        ("B=2 (double)", BufferDepth::Bounded(2)),
        ("B=4", BufferDepth::Bounded(4)),
        ("B=16", BufferDepth::Bounded(16)),
        ("B=inf", BufferDepth::Unbounded),
    ];
    let mut rows = Vec::new();
    for (label, depth) in depths {
        let mut row = vec![label.to_string()];
        for mode in [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH] {
            let r = simulate_buffered(&w, &model, &cfg, mode, depth);
            row.push(format!(
                "{} ({:.0}%)",
                r.cycles,
                r.utilization(units) * 100.0
            ));
        }
        rows.push(row);
    }
    print_table(
        &["buffer depth", "no GB cycles (util)", "GB-S", "GB-H"],
        &rows,
    );

    let no_gb_inf = simulate_buffered(&w, &model, &cfg, BalanceMode::None, BufferDepth::Unbounded);
    let gbh_b1 = simulate_buffered(&w, &model, &cfg, BalanceMode::GbH, BufferDepth::Bounded(1));
    crate::outln!(
        "\nGB-H with a strict barrier ({} cycles) beats no-GB with infinite \
         buffering ({} cycles): the imbalance is systematic, as §3.3 argues.",
        gbh_b1.cycles, no_gb_inf.cycles
    );
}
