//! Accuracy proxy: how much do the lossy schemes distort a network's
//! outputs at matched density?
//!
//! Table 1 marks Cambricon-S "No" on accuracy and §6 criticizes column
//! combining's conflict pruning; neither loss is observable without a
//! model. This study uses output perturbation as the proxy: run a fixed
//! two-layer CNN, then re-run with the filters modified by (a) unstructured
//! magnitude pruning, (b) Cambricon-S-style coarse pruning at several group
//! sizes, and (c) column combining, all at the same weight budget, and
//! report the relative L2 distortion of the logits. Unstructured pruning is
//! the baseline every scheme is normalized against.

use sparten::core::column_combine::combine_columns;
use sparten::nn::generate::{random_filters, random_tensor};
use sparten::nn::structured::prune_coarse;
use sparten::nn::{conv2d, prune_to_density, ConvShape, Filter};
use crate::print_table;

const TARGET_DENSITY: f64 = 0.35;

fn logits(input: &sparten::tensor::Tensor3, f1: &[Filter], f2: &[Filter]) -> Vec<f32> {
    let c1 = ConvShape::new(16, 12, 12, 3, 24, 1, 1);
    let c2 = ConvShape::new(24, 12, 12, 3, 10, 1, 1);
    let mut h = conv2d(input, f1, &c1);
    h.relu();
    let out = conv2d(&h, f2, &c2);
    // Global average per output channel = the class logits.
    (0..10)
        .map(|z| {
            let mut acc = 0.0f32;
            for y in 0..out.width() {
                for x in 0..out.height() {
                    acc += out.get(z, x, y);
                }
            }
            acc / (out.height() * out.width()) as f32
        })
        .collect()
}

fn rel_l2(a: &[f32], b: &[f32]) -> f64 {
    let num: f64 = a
        .iter()
        .zip(b)
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum::<f64>()
        .sqrt();
    let den: f64 = a.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt();
    num / den.max(1e-9)
}

fn apply_cc(filters: &[Filter], group: usize) -> Vec<Filter> {
    // Column combining prunes conflicting weights; reconstruct the
    // surviving per-filter weights from the combine report.
    let report = combine_columns(filters, group);
    let mut out = filters.to_vec();
    for col in &report.columns {
        for (p, owner) in col.owner.iter().enumerate() {
            for (m, &f) in col.members.iter().enumerate() {
                if *owner != Some(m) {
                    out[f].weights_mut().as_mut_slice()[p] = 0.0;
                }
            }
        }
    }
    out
}

pub fn run() {
    crate::outln!("== Accuracy proxy: logit distortion at matched weight budget ==\n");
    let c1 = ConvShape::new(16, 12, 12, 3, 24, 1, 1);
    let c2 = ConvShape::new(24, 12, 12, 3, 10, 1, 1);
    let dense_f1 = random_filters(&c1, 1.0, 0.0, 1);
    let f2 = {
        let mut f = random_filters(&c2, 1.0, 0.0, 2);
        prune_to_density(&mut f, TARGET_DENSITY);
        f
    };

    // Average distortion over a batch of inputs.
    let inputs: Vec<_> = (0..8)
        .map(|i| random_tensor(16, 12, 12, 0.6, 10 + i))
        .collect();
    let reference: Vec<Vec<f32>> = inputs.iter().map(|x| logits(x, &dense_f1, &f2)).collect();

    let variants: Vec<(&str, Vec<Filter>)> = vec![
        ("unstructured (Han et al.)", {
            let mut f = dense_f1.clone();
            prune_to_density(&mut f, TARGET_DENSITY);
            f
        }),
        ("coarse, group 4", {
            let mut f = dense_f1.clone();
            prune_coarse(&mut f, 4, TARGET_DENSITY);
            f
        }),
        ("coarse, group 8 (Cambricon-S)", {
            let mut f = dense_f1.clone();
            prune_coarse(&mut f, 8, TARGET_DENSITY);
            f
        }),
        ("coarse, group 24", {
            let mut f = dense_f1.clone();
            prune_coarse(&mut f, 24, TARGET_DENSITY);
            f
        }),
        ("column combining, 3-way", {
            let mut f = dense_f1.clone();
            prune_to_density(&mut f, TARGET_DENSITY);
            apply_cc(&f, 3)
        }),
    ];

    let mut rows = Vec::new();
    let mut unstructured_distortion = None;
    for (label, f1) in &variants {
        let distortion: f64 = inputs
            .iter()
            .zip(&reference)
            .map(|(x, r)| rel_l2(r, &logits(x, f1, &f2)))
            .sum::<f64>()
            / inputs.len() as f64;
        let base = *unstructured_distortion.get_or_insert(distortion);
        let density: f64 = f1.iter().map(Filter::density).sum::<f64>() / f1.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("{:.1}%", density * 100.0),
            format!("{:.3}", distortion),
            format!("{:.2}x", distortion / base),
        ]);
    }
    print_table(
        &[
            "pruning scheme",
            "density",
            "logit rel-L2 error",
            "vs unstructured",
        ],
        &rows,
    );
    crate::outln!("\nGreedy balancing itself appears nowhere in this table: it permutes");
    crate::outln!("filters without touching a single weight (distortion exactly 0).");
}
