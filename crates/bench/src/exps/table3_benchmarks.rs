//! Regenerates Table 3: the benchmark layers with measured densities of the
//! generated synthetic workloads next to the paper's targets.

use sparten::nn::all_networks;
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Table 3: Benchmarks (target vs generated density) ==");
    let mut rows = Vec::new();
    for net in all_networks() {
        for l in &net.layers {
            let s = &l.shape;
            let w = l.workload(SEED);
            rows.push(vec![
                net.name.to_string(),
                l.name.to_string(),
                format!("{}x{}x{}", s.in_height, s.in_width, s.in_channels),
                format!("{:.0}%", l.input_density * 100.0),
                format!("{:.1}%", w.input_density() * 100.0),
                format!("{0}x{0}x{1}", s.kernel, s.in_channels),
                s.num_filters.to_string(),
                format!("{:.0}%", l.filter_density * 100.0),
                format!("{:.1}%", w.filter_density() * 100.0),
                s.stride.to_string(),
            ]);
        }
    }
    print_table(
        &[
            "Network",
            "Layer",
            "input",
            "in-dens (paper)",
            "in-dens (gen)",
            "filter",
            "#filters",
            "f-dens (paper)",
            "f-dens (gen)",
            "stride",
        ],
        &rows,
    );
}
