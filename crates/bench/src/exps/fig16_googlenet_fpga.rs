//! Regenerates Figure 16: GoogLeNet speedups on the FPGA prototype.

use crate::registry::NetworkFigure;
use crate::{dump_json, print_speedup_figure, LayerResult};
use sparten::nn::googlenet;
use sparten::sim::{Scheme, SimConfig};

const SCHEMES: [Scheme; 4] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbH,
];

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: googlenet,
        config: |_| SimConfig::fpga(),
        schemes: || SCHEMES.to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    print_speedup_figure(
        "Figure 16: GoogLeNet Speedup on FPGA",
        layers,
        &SCHEMES,
        &[],
    );
    dump_json("fig16_googlenet_fpga", layers, &SCHEMES);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
