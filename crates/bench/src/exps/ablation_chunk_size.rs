//! Ablation: the SparseMap chunk size (the paper fixes n = 128).
//!
//! Smaller chunks mean finer-grained barriers (less imbalance exposure per
//! barrier but more per-chunk overheads and more mask storage per value);
//! larger chunks amortize overheads but grow the prefix-sum/priority-encoder
//! hardware superlinearly (Table 4 scaling). This sweep quantifies both
//! sides on a representative layer.

use sparten::core::balance::BalanceMode;
use sparten::core::ClusterConfig;
use sparten::energy::cluster_asic_estimate;
use sparten::nn::alexnet;
use sparten::sim::sparten::{simulate_sparten, Sparsity};
use sparten::sim::{MaskModel, SimConfig};
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Ablation: chunk size (AlexNet Layer2, SparTen GB-H) ==\n");
    let net = alexnet();
    let spec = net.layer("Layer2").expect("Layer2 exists");
    let w = spec.workload(SEED);

    let mut rows = Vec::new();
    for chunk in [64usize, 128, 256, 512] {
        let mut cfg = SimConfig::large();
        cfg.accel.cluster.chunk_size = chunk;
        let model = MaskModel::new(&w, chunk);
        let r = simulate_sparten(&w, &model, &cfg, Sparsity::TwoSided, BalanceMode::GbH);
        let cluster = ClusterConfig {
            compute_units: 32,
            chunk_size: chunk,
            bisection_limit: 4,
        };
        let asic = cluster_asic_estimate(&cluster);
        rows.push(vec![
            chunk.to_string(),
            r.cycles().to_string(),
            format!("{:.3}", r.traffic.metadata_bytes / 1024.0),
            format!("{:.3}", asic.total_area_mm2()),
            format!("{:.1}", asic.total_power_mw()),
        ]);
    }
    print_table(
        &[
            "chunk",
            "cycles",
            "mask KB moved",
            "cluster area mm^2",
            "cluster power mW",
        ],
        &rows,
    );
    crate::outln!("\nThe paper's 128 balances per-chunk overhead against join-circuit area.");
}
