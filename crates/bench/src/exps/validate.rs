//! One-shot health check: runs the standard validation battery — dense
//! reference vs SparTen engine (all modes) vs SCNN Cartesian engine vs the
//! cycle-level simulators — and prints a pass/fail table.

use sparten::sim::validate::{standard_battery, validate_layer};
use crate::print_table;
use std::process::ExitCode;

/// Runs the battery for the harness; the verdict is part of the output.
pub fn run() {
    run_checked();
}

/// Runs the battery and reports failure through the process exit status
/// (used by the standalone binary).
pub fn run_checked() -> ExitCode {
    crate::outln!("== Validation battery ==\n");
    let mut rows = Vec::new();
    let mut all_ok = true;
    for (i, (shape, di, df)) in standard_battery().into_iter().enumerate() {
        let r = validate_layer(shape, di, df, 4242 + i as u64);
        let ok = r.passed(1e-2);
        all_ok &= ok;
        rows.push(vec![
            format!(
                "{}x{}x{} k{} s{} n{}",
                shape.in_channels,
                shape.in_height,
                shape.in_width,
                shape.kernel,
                shape.stride,
                shape.num_filters
            ),
            format!("{:.1e}", r.engine_max_err),
            format!("{:.1e}", r.scnn_max_err),
            r.mac_counts_agree.to_string(),
            r.accounting_holds.to_string(),
            r.ordering_holds.to_string(),
            if ok { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    print_table(
        &[
            "layer",
            "engine err",
            "scnn err",
            "macs agree",
            "accounting",
            "ordering",
            "verdict",
        ],
        &rows,
    );
    if all_ok {
        crate::outln!("\nall validation cases passed");
        ExitCode::SUCCESS
    } else {
        crate::outln!("\nVALIDATION FAILURES PRESENT");
        ExitCode::FAILURE
    }
}
