//! Energy component breakdown: where SparTen's compute energy actually
//! goes — §5.3's "extra buffering, inner-join and output compaction (to a
//! much smaller extent) incur more energy than Dense's simple
//! multiply-accumulate", quantified per component and scheme.

use sparten::energy::EnergyModel;
use sparten::nn::alexnet;
use sparten::sim::{simulate_layer, MaskModel, Scheme, SimConfig};
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Compute-energy components (AlexNet Layer2, % of scheme total) ==\n");
    let net = alexnet();
    let spec = net.layer("Layer2").expect("Layer2 exists");
    let w = spec.workload(SEED);
    let cfg = SimConfig::large();
    let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
    let energy = EnergyModel::nm45();

    let mut rows = Vec::new();
    for scheme in [
        Scheme::Dense,
        Scheme::OneSided,
        Scheme::SpartenGbH,
        Scheme::Scnn,
    ] {
        let r = simulate_layer(&w, &model, &cfg, scheme);
        let buffer = if scheme == Scheme::Dense { 8 } else { 992 };
        let c = energy.component_energy(&r, buffer);
        let pct = |v: f64| format!("{:.0}%", 100.0 * v / c.total_pj());
        rows.push(vec![
            r.scheme.to_string(),
            format!("{:.1}", c.total_pj() / 1e6),
            pct(c.mac_pj),
            pct(c.buffer_pj),
            pct(c.prefix_pj),
            pct(c.encoder_pj),
            pct(c.permute_pj),
            pct(c.compact_pj),
            pct(c.crossbar_pj),
        ]);
    }
    print_table(
        &[
            "Scheme", "total uJ", "MACs", "buffers", "prefix", "encoder", "permute", "compact",
            "crossbar",
        ],
        &rows,
    );
    crate::outln!("\nDense is MAC/buffer only; SparTen pays for the inner join (prefix +");
    crate::outln!("encoder) and big buffers but on far fewer operations; compaction and the");
    crate::outln!("GB-H permutation network are minor, as §5.3 observes.");
}
