//! Regenerates Table 1: the design-goal matrix.

use sparten::sim::design_goal_table;
use crate::print_table;

pub fn run() {
    crate::outln!("== Table 1: Design Goals ==");
    let rows: Vec<Vec<String>> = design_goal_table()
        .into_iter()
        .map(|g| {
            vec![
                g.architecture.to_string(),
                g.avoid_zero_transfer.to_string(),
                g.avoid_zero_compute.to_string(),
                g.maintain_accuracy.to_string(),
                g.efficient_fully_sparse.to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "Architecture",
            "Avoid transfer of all zeros",
            "Avoid computing with all zeros",
            "Maintain accuracy",
            "Efficient fully-sparse",
        ],
        &rows,
    );
}
