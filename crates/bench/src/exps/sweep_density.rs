//! Density-response sweep: how each architecture's speedup over Dense moves
//! as both tensors get sparser. SparTen's advantage is quadratic in the
//! density product; One-sided's is linear in input density (§1).

use sparten::nn::ConvShape;
use sparten::sim::{density_sweep, Scheme, SimConfig};
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Density sweep (AlexNet-Layer2-shaped layer, speedup over Dense) ==\n");
    let shape = ConvShape::new(192, 27, 27, 3, 128, 1, 1);
    let schemes = [
        Scheme::Dense,
        Scheme::OneSided,
        Scheme::SpartenNoGb,
        Scheme::SpartenGbH,
        Scheme::Scnn,
    ];
    let densities = [0.9, 0.7, 0.5, 0.35, 0.25, 0.15, 0.1, 0.05];
    let cfg = SimConfig::large();
    let points = density_sweep(&shape, &densities, &schemes, &cfg, SEED);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let mut row = vec![format!("{:.2}", p.density)];
            row.extend(p.speedups().iter().map(|v| format!("{v:.2}")));
            row
        })
        .collect();
    let header: Vec<&str> = std::iter::once("density")
        .chain(schemes.iter().map(|s| s.label()))
        .collect();
    print_table(&header, &rows);
    crate::outln!("\nSparTen's win grows ~quadratically as density falls; One-sided's ~linearly.");
}
