//! Regenerates Table 2: hardware parameters of the compared architectures.

use sparten::sim::SimConfig;
use crate::print_table;

pub fn run() {
    crate::outln!("== Table 2: Hardware parameters ==");
    let large = SimConfig::large();
    let small = SimConfig::small();
    let rows = vec![
        vec![
            "Dense".to_string(),
            large.accel.cluster.compute_units.to_string(),
            small.accel.cluster.compute_units.to_string(),
            large.accel.num_clusters.to_string(),
            small.accel.num_clusters.to_string(),
            "8 B".to_string(),
        ],
        vec![
            "SCNN".to_string(),
            (large.scnn.mult_edge * large.scnn.mult_edge).to_string(),
            (small.scnn.mult_edge * small.scnn.mult_edge).to_string(),
            large.scnn.num_pes.to_string(),
            small.scnn.num_pes.to_string(),
            "1.63 KB".to_string(),
        ],
        vec![
            "SparTen".to_string(),
            large.accel.cluster.compute_units.to_string(),
            small.accel.cluster.compute_units.to_string(),
            large.accel.num_clusters.to_string(),
            small.accel.num_clusters.to_string(),
            format!(
                "{:.2} KB",
                large.accel.cluster.buffer_bytes_collocated() as f64
                    / large.accel.cluster.compute_units as f64
                    / 1024.0
            ),
        ],
    ];
    print_table(
        &[
            "Architecture",
            "MACs/cluster (large)",
            "MACs/cluster (small)",
            "#clusters (large)",
            "#clusters (small)",
            "buffer/MAC",
        ],
        &rows,
    );
    crate::outln!(
        "\nTotal MACs: large = {}, small = {} (matched across architectures)",
        large.accel.total_macs(),
        small.accel.total_macs()
    );
}
