//! Ablation: permutation-network bisection bandwidth (§3.3).
//!
//! The paper thins the GB-H unshuffle network to 4 values per cycle across
//! the bisection — 1/8 of full provisioning — arguing the latency hides
//! under the next chunk's compute. This sweep routes every real GB-H
//! per-chunk mapping of an AlexNet-Layer2-sized filter set through networks
//! of varying bisection budget and compares the worst-case routing waves to
//! the per-chunk compute time they must hide under.

use sparten::arch::PermutationNetwork;
use sparten::core::balance::{BalanceMode, LayerBalance};
use sparten::nn::alexnet;
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Ablation: GB-H permutation-network bisection bandwidth ==\n");
    let net = alexnet();
    let spec = net.layer("Layer2").expect("Layer2 exists");
    let w = spec.workload(SEED);
    let units = 32;
    let balance = LayerBalance::new(&w.filters, units, 128, BalanceMode::GbH);

    // Per-chunk compute the routing must hide under: expected pair work at
    // the layer's density product over a 128-chunk ≈ 2·128·d_in·d_f cycles.
    let hide_budget = (2.0 * 128.0 * spec.input_density * spec.filter_density).round() as usize;
    crate::outln!("compute time to hide under: ≈{hide_budget} cycles per chunk\n");

    let mut rows = Vec::new();
    for bisection in [1usize, 2, 4, 8, 16, 32, 64] {
        let net = PermutationNetwork::new(2 * units, bisection);
        let (mut worst, mut total, mut crossings) = (0usize, 0usize, 0usize);
        let mut mappings = 0usize;
        for g in &balance.groups {
            for c in 0..g.per_chunk_cu.len() {
                let stats = net.route(&g.chunk_routing(c));
                worst = worst.max(stats.waves);
                total += stats.waves;
                crossings += stats.bisection_crossings;
                mappings += 1;
            }
        }
        let mean = total as f64 / mappings.max(1) as f64;
        rows.push(vec![
            bisection.to_string(),
            format!("{mean:.1}"),
            worst.to_string(),
            (worst <= hide_budget).to_string(),
            format!("{:.1}", crossings as f64 / mappings.max(1) as f64),
        ]);
    }
    print_table(
        &[
            "bisection/cycle",
            "mean waves",
            "worst waves",
            "hidden?",
            "mean crossings",
        ],
        &rows,
    );
    crate::outln!("\nPaper claim: bisection 4 (1/8 provisioning) is 'more than adequate'.");
}
