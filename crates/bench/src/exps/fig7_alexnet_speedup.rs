//! Regenerates Figure 7: AlexNet speedups over Dense for all eight schemes.
//! As in the paper, SCNN-family means exclude Layer0 (non-unit stride).

use crate::registry::NetworkFigure;
use crate::{dump_json, network_config, print_speedup_figure, LayerResult};
use sparten::nn::alexnet;
use sparten::sim::Scheme;

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: alexnet,
        config: network_config,
        schemes: || Scheme::all().to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    let schemes = Scheme::all();
    let excl: &[&str] = &["Layer0"];
    print_speedup_figure(
        "Figure 7: AlexNet Speedup (normalized to Dense)",
        layers,
        &schemes,
        &[
            ("SCNN", excl),
            ("SCNN-one-sided", excl),
            ("SCNN-dense", excl),
        ],
    );
    dump_json("fig7_alexnet_speedup", layers, &schemes);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
