//! Regenerates the paper's headline numbers (§1/§7): mean SparTen speedups
//! over Dense, One-sided, and SCNN in simulation, and over Dense and
//! One-sided on the FPGA configuration.

use sparten::nn::all_networks;
use sparten::sim::breakdown::geometric_mean;
use sparten::sim::{Scheme, SimConfig};
use crate::{network_config, run_network};

const SCHEMES: [Scheme; 4] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenGbH,
    Scheme::Scnn,
];

pub fn run() {
    crate::outln!("== Headline means (geometric, across all benchmark layers) ==\n");

    let mut vs_dense = Vec::new();
    let mut vs_one = Vec::new();
    let mut vs_scnn = Vec::new();
    for net in all_networks() {
        let cfg = network_config(&net);
        for layer in run_network(&net, &SCHEMES, &cfg) {
            let dense = layer.results[0].cycles() as f64;
            let one = layer.results[1].cycles() as f64;
            let sparten = layer.results[2].cycles() as f64;
            let scnn = layer.results[3].cycles() as f64;
            vs_dense.push(dense / sparten);
            vs_one.push(one / sparten);
            // The paper excludes AlexNet Layer0 from SCNN comparisons.
            if !(net.name == "AlexNet" && layer.layer == "Layer0") {
                vs_scnn.push(scnn / sparten);
            }
        }
    }
    crate::outln!("Simulation (paper: 4.7x / 1.8x / 3x):");
    crate::outln!("  SparTen vs Dense     : {:.2}x", geometric_mean(&vs_dense));
    crate::outln!("  SparTen vs One-sided : {:.2}x", geometric_mean(&vs_one));
    crate::outln!(
        "  SparTen vs SCNN      : {:.2}x (excl. AlexNet Layer0)",
        geometric_mean(&vs_scnn)
    );

    let mut f_dense = Vec::new();
    let mut f_one = Vec::new();
    let fpga = SimConfig::fpga();
    for net in all_networks() {
        for layer in run_network(&net, &SCHEMES[..3], &fpga) {
            let dense = layer.results[0].cycles() as f64;
            let one = layer.results[1].cycles() as f64;
            let sparten = layer.results[2].cycles() as f64;
            f_dense.push(dense / sparten);
            f_one.push(one / sparten);
        }
    }
    crate::outln!("\nFPGA configuration (paper: 4.3x / 1.9x):");
    crate::outln!("  SparTen vs Dense     : {:.2}x", geometric_mean(&f_dense));
    crate::outln!("  SparTen vs One-sided : {:.2}x", geometric_mean(&f_one));
}
