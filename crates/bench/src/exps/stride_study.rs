//! Stride study: SparTen vs SCNN on non-unit-stride convolutions.
//!
//! §2.1.1: the Cartesian product "is not applicable to non-unit-stride
//! convolutions" — mechanically, it computes the full unit-stride product
//! set and discards the (1 − 1/s²) of it that falls between outputs. This
//! study runs ResNet-style stride-2 layers and AlexNet's stride-4 Layer0,
//! reporting each scheme's wasted-compute fraction and speedup, plus the
//! functional Cartesian engine's exact waste accounting.

use sparten::nn::networks::resnet_samples;
use sparten::nn::{alexnet, LayerSpec};
use sparten::sim::{scnn_cartesian_conv, simulate_layer, MaskModel, Scheme, SimConfig};
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Stride study: SparTen vs SCNN beyond unit stride ==\n");
    let alex = alexnet();
    let resnet = resnet_samples();
    let mut layers: Vec<(&str, &LayerSpec)> = vec![("AlexNet", alex.layer("Layer0").unwrap())];
    for l in &resnet.layers {
        layers.push(("ResNet", l));
    }
    // A unit-stride control.
    layers.push(("AlexNet", alex.layer("Layer2").unwrap()));

    let cfg = SimConfig::large();
    let mut rows = Vec::new();
    for (net, spec) in layers {
        let w = spec.workload(SEED);
        let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
        let dense = simulate_layer(&w, &model, &cfg, Scheme::Dense);
        let sparten = simulate_layer(&w, &model, &cfg, Scheme::SpartenGbH);
        let scnn = simulate_layer(&w, &model, &cfg, Scheme::Scnn);
        let scnn_waste =
            scnn.breakdown.zero as f64 / (scnn.breakdown.zero + scnn.breakdown.nonzero) as f64;
        rows.push(vec![
            format!("{net} {}", spec.name),
            spec.shape.stride.to_string(),
            format!("{:.2}x", sparten.speedup_over(&dense)),
            format!("{:.2}x", scnn.speedup_over(&dense)),
            format!("{:.0}%", scnn_waste * 100.0),
            "0%".to_string(), // SparTen never computes a zero pair
        ]);
    }
    print_table(
        &[
            "Layer",
            "stride",
            "SparTen speedup",
            "SCNN speedup",
            "SCNN wasted compute",
            "SparTen wasted",
        ],
        &rows,
    );

    // Exact functional check on a scaled-down stride-2 layer.
    let shape = sparten::nn::ConvShape::new(32, 14, 14, 3, 16, 2, 1);
    let w = sparten::nn::generate::workload(&shape, 0.35, 0.35, SEED);
    let (_, stats) = scnn_cartesian_conv(&w);
    crate::outln!(
        "\nfunctional Cartesian product at stride 2: {} products, {:.0}% discarded",
        stats.products,
        stats.waste_fraction() * 100.0
    );
    crate::outln!("(the result is still numerically correct — only the work is wasted)");
}
