//! Regenerates Figure 11: GoogLeNet execution-time breakdown.

use crate::registry::NetworkFigure;
use crate::{dump_json, network_config, print_breakdown_figure, LayerResult};
use sparten::nn::googlenet;
use sparten::sim::Scheme;

const SCHEMES: [Scheme; 6] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbS,
    Scheme::SpartenGbH,
    Scheme::Scnn,
];

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: googlenet,
        config: network_config,
        schemes: || SCHEMES.to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    print_breakdown_figure(
        "Figure 11: GoogLeNet Execution Time Breakdown",
        layers,
        &SCHEMES,
        &[],
    );
    dump_json("fig11_googlenet_breakdown", layers, &SCHEMES);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
