//! Regenerates Figure 13: compute and memory energy, split into zero and
//! non-zero components, normalized to Dense-naive, averaged per network.
//!
//! Dense-naive is Dense with SparTen-sized buffering; Dense keeps its lean
//! 8 B/MAC buffers. SCNN is omitted as in the paper (§5.3).

use sparten::energy::{EnergyModel, EnergyReport};
use sparten::nn::all_networks;
use sparten::sim::Scheme;
use crate::{network_config, print_table, run_network};

const SCHEMES: [Scheme; 5] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbS,
    Scheme::SpartenGbH,
];

pub fn run() {
    crate::outln!("== Figure 13: Energy (normalized to Dense-naive, per network) ==");
    crate::outln!("(columns: compute nonzero / compute zero | memory nonzero / memory zero)");
    let model = EnergyModel::nm45();
    let sparse_buffer = 992; // §3.3: per-MAC buffering with collocation
    let mut rows = Vec::new();
    for net in all_networks() {
        let cfg = network_config(&net);
        let layers = run_network(&net, &SCHEMES, &cfg);

        // Average (sum) energy across layers per scheme.
        let mut naive = EnergyReport::default();
        let mut per_scheme = vec![EnergyReport::default(); SCHEMES.len()];
        for layer in &layers {
            for (si, r) in layer.results.iter().enumerate() {
                let buffer = if SCHEMES[si] == Scheme::Dense {
                    8
                } else {
                    sparse_buffer
                };
                per_scheme[si] = per_scheme[si].add(&model.layer_energy(r, buffer));
            }
            // Dense-naive: the Dense result charged at sparse buffering.
            naive = naive.add(&model.layer_energy(&layer.results[0], sparse_buffer));
        }

        let norm_c = naive.compute_pj();
        let norm_m = naive.memory_pj();
        let fmt = |e: &EnergyReport| {
            format!(
                "{:.2}/{:.2} | {:.2}/{:.2}",
                e.compute_nonzero_pj / norm_c,
                e.compute_zero_pj / norm_c,
                e.memory_nonzero_pj / norm_m,
                e.memory_zero_pj / norm_m,
            )
        };
        rows.push(vec![
            net.name.to_string(),
            "Dense-naive".into(),
            fmt(&naive),
        ]);
        for (si, s) in SCHEMES.iter().enumerate() {
            rows.push(vec![
                net.name.to_string(),
                s.label().to_string(),
                fmt(&per_scheme[si]),
            ]);
        }

        let sparten = &per_scheme[4];
        let dense = &per_scheme[0];
        let one = &per_scheme[1];
        crate::outln!(
            "{}: SparTen compute = {:.2}x Dense, {:.2}x lower than One-sided; \
             memory = {:.2}x lower than Dense, {:.2}x lower than One-sided",
            net.name,
            sparten.compute_pj() / dense.compute_pj(),
            one.compute_pj() / sparten.compute_pj(),
            dense.memory_pj() / sparten.memory_pj(),
            one.memory_pj() / sparten.memory_pj(),
        );
    }
    crate::outln!();
    print_table(&["Network", "Scheme", "compute nz/z | memory nz/z"], &rows);
    crate::outln!("\nPaper reference: SparTen ≈ 2x Dense compute energy, 1.5x lower than One-sided;");
    crate::outln!("1.4x lower memory energy than Dense, 1.3x lower than One-sided.");
}
