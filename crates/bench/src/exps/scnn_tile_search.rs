//! SCNN tile-size search: §4 sets the input tile to 6×6 after "a search of
//! the tile size space". This sweep reruns that search in our model:
//! smaller tiles waste multiplier slots on the ⌈I/4⌉ quantization of tiny
//! per-channel non-zero counts; larger tiles exceed the 1K-accumulator
//! budget (tile+halo squared × output group).

use sparten::nn::alexnet;
use sparten::sim::scnn::{simulate_scnn, ScnnVariant};
use sparten::sim::{MaskModel, SimConfig};
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== SCNN input-tile-size search (AlexNet Layer2) ==\n");
    let net = alexnet();
    let spec = net.layer("Layer2").expect("Layer2 exists");
    let w = spec.workload(SEED);
    let cfg_base = SimConfig::large();
    let model = MaskModel::new(&w, cfg_base.accel.cluster.chunk_size);

    let mut rows = Vec::new();
    for tile in [2usize, 3, 4, 6, 8, 10] {
        let mut cfg = cfg_base;
        cfg.scnn.tile = tile;
        let r = simulate_scnn(&w, &model, &cfg, ScnnVariant::Full);
        // Accumulator demand: (tile + k − 1)² outputs × output group of 8.
        let k = spec.shape.kernel;
        let accumulators = (tile + k - 1) * (tile + k - 1) * cfg.scnn.output_group;
        let f = r.breakdown_fractions();
        rows.push(vec![
            format!("{tile}x{tile}"),
            r.cycles().to_string(),
            format!("{:.0}%", f[2] * 100.0),
            format!("{:.0}%", f[3] * 100.0),
            accumulators.to_string(),
            (accumulators <= 1024).to_string(),
        ]);
    }
    print_table(
        &[
            "tile",
            "cycles",
            "intra-PE loss",
            "inter-PE loss",
            "accumulators needed",
            "fits 1K budget",
        ],
        &rows,
    );
    crate::outln!("\n6x6 is the largest tile that fits the 1K-accumulator budget for 3x3");
    crate::outln!("filters — matching the paper's search result.");
}
