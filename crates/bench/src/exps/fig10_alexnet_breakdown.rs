//! Regenerates Figure 10: AlexNet execution-time breakdown, normalized to
//! Dense. Layer0 is omitted (SCNN's non-unit-stride pathology, §5.2).

use crate::registry::NetworkFigure;
use crate::{dump_json, network_config, print_breakdown_figure, LayerResult};
use sparten::nn::alexnet;
use sparten::sim::Scheme;

const SCHEMES: [Scheme; 6] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbS,
    Scheme::SpartenGbH,
    Scheme::Scnn,
];

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: alexnet,
        config: network_config,
        schemes: || SCHEMES.to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    print_breakdown_figure(
        "Figure 10: AlexNet Execution Time Breakdown",
        layers,
        &SCHEMES,
        &["Layer0"],
    );
    dump_json("fig10_alexnet_breakdown", layers, &SCHEMES);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
