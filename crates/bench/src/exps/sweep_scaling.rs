//! Strong-scaling sweep: SparTen from 1 to 64 clusters on one layer, with
//! parallel efficiency and the memory-bound ceiling.

use sparten::nn::ConvShape;
use sparten::sim::{scaling_sweep, Scheme, SimConfig};
use crate::{print_table, SEED};

pub fn run() {
    crate::outln!("== Strong scaling (VGG-Layer8-shaped layer, SparTen GB-H) ==\n");
    let shape = ConvShape::new(512, 28, 28, 3, 512, 1, 1);
    let cfg = SimConfig::large();
    let points = scaling_sweep(&shape, Scheme::SpartenGbH, &cfg, 64, SEED);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.clusters.to_string(),
                p.result.cycles().to_string(),
                format!(
                    "{:.2}",
                    points[0].result.cycles() as f64 / p.result.cycles() as f64
                ),
                format!("{:.0}%", p.efficiency * 100.0),
                p.result.is_memory_bound().to_string(),
            ]
        })
        .collect();
    print_table(
        &[
            "clusters",
            "cycles",
            "speedup",
            "efficiency",
            "memory-bound",
        ],
        &rows,
    );
    crate::outln!("\nEfficiency falls as inter-cluster slack and the bandwidth ceiling bite.");
}
