//! Ablation: GB-S with vs without whole-filter collocation.
//!
//! §5.1: "Removing the whole-filter collocation from SparTen-GB-S results in
//! worse performance in most other benchmarks (not shown)" — the exceptions
//! being the GoogLeNet 5x5_reduce layers whose 16/48 filter counts interact
//! badly with pairing. This binary shows both sides of that claim.

use sparten::core::balance::BalanceMode;
use sparten::nn::all_networks;
use sparten::sim::breakdown::geometric_mean;
use sparten::sim::sparten::{simulate_sparten, Sparsity};
use sparten::sim::{MaskModel, SimConfig};
use crate::{network_config, print_table, SEED};

pub fn run() {
    crate::outln!("== Ablation: GB-S collocation (speedup over Dense-equivalent GB-S run) ==");
    crate::outln!(
        "(ratio = GB-S cycles without collocation / with collocation; >1 means collocation wins)\n"
    );
    let mut rows = Vec::new();
    let mut all_ratios = Vec::new();
    for net in all_networks() {
        let cfg: SimConfig = network_config(&net);
        let mut ratios = Vec::new();
        for spec in &net.layers {
            let w = spec.workload(SEED);
            let model = MaskModel::new(&w, cfg.accel.cluster.chunk_size);
            let with = simulate_sparten(&w, &model, &cfg, Sparsity::TwoSided, BalanceMode::GbS);
            let without = simulate_sparten(
                &w,
                &model,
                &cfg,
                Sparsity::TwoSided,
                BalanceMode::GbSNoColloc,
            );
            let ratio = without.cycles() as f64 / with.cycles() as f64;
            ratios.push(ratio);
            rows.push(vec![
                net.name.to_string(),
                spec.name.to_string(),
                format!("{:>10}", with.cycles()),
                format!("{:>10}", without.cycles()),
                format!("{ratio:.2}"),
            ]);
        }
        all_ratios.extend_from_slice(&ratios);
        crate::outln!(
            "{}: collocation helps on {}/{} layers (geomean ratio {:.2})",
            net.name,
            ratios.iter().filter(|&&r| r > 1.0).count(),
            ratios.len(),
            geometric_mean(&ratios)
        );
    }
    crate::outln!(
        "overall geomean ratio: {:.2} (collocation wins on average)\n",
        geometric_mean(&all_ratios)
    );
    print_table(
        &[
            "Network",
            "Layer",
            "GB-S cycles",
            "no-colloc cycles",
            "ratio",
        ],
        &rows,
    );
}
