//! Regenerates Figure 12: VGGNet execution-time breakdown (Layer0 has high
//! intra-cluster loss from the shallow 3-channel input, as §5.2 notes).

use crate::registry::NetworkFigure;
use crate::{dump_json, network_config, print_breakdown_figure, LayerResult};
use sparten::nn::vggnet;
use sparten::sim::Scheme;

const SCHEMES: [Scheme; 6] = [
    Scheme::Dense,
    Scheme::OneSided,
    Scheme::SpartenNoGb,
    Scheme::SpartenGbS,
    Scheme::SpartenGbH,
    Scheme::Scnn,
];

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: vggnet,
        config: network_config,
        schemes: || SCHEMES.to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    print_breakdown_figure(
        "Figure 12: VGGNet Execution Time Breakdown",
        layers,
        &SCHEMES,
        &[],
    );
    dump_json("fig12_vggnet_breakdown", layers, &SCHEMES);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
