//! Utilization report: the §3.3 motivation, measured on Table 3.
//!
//! The paper motivates greedy balancing with ResNet-152 filters whose
//! no-balancing utilization "would vary from 52% to 65% at best". This
//! report computes the same quantity — useful MAC cycles over
//! barrier-bounded cycles — for every Table 3 layer under no GB, GB-S, and
//! GB-H, from the recorded per-chunk traces.

use sparten::core::balance::BalanceMode;
use sparten::nn::all_networks;
use sparten::sim::{trace_cluster, SimConfig};
use crate::{network_config, print_table, SEED};

pub fn run() {
    crate::outln!("== Compute-unit utilization at the chunk barriers (first 4 positions/layer) ==\n");
    let mut rows = Vec::new();
    let mut worst_no_gb = 1.0f64;
    let mut best_no_gb = 0.0f64;
    for net in all_networks() {
        let cfg: SimConfig = network_config(&net);
        for spec in &net.layers {
            let w = spec.workload(SEED);
            let utils: Vec<f64> = [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH]
                .iter()
                .map(|&mode| trace_cluster(&w, &cfg, mode, 4).utilization())
                .collect();
            worst_no_gb = worst_no_gb.min(utils[0]);
            best_no_gb = best_no_gb.max(utils[0]);
            rows.push(vec![
                net.name.to_string(),
                spec.name.to_string(),
                format!("{:.0}%", utils[0] * 100.0),
                format!("{:.0}%", utils[1] * 100.0),
                format!("{:.0}%", utils[2] * 100.0),
            ]);
        }
    }
    print_table(&["Network", "Layer", "no GB", "GB-S", "GB-H"], &rows);
    crate::outln!(
        "\nwithout GB, utilization spans {:.0}%–{:.0}% across layers",
        worst_no_gb * 100.0,
        best_no_gb * 100.0
    );
    crate::outln!("(the paper quotes 52%–65% for its ResNet-152 filter collection)");
}
