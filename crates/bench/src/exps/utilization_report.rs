//! Utilization report: the §3.3 motivation, measured on Table 3.
//!
//! The paper motivates greedy balancing with ResNet-152 filters whose
//! no-balancing utilization "would vary from 52% to 65% at best". This
//! report computes the same quantity — useful MAC cycles over
//! barrier-bounded cycles — for every Table 3 layer under no GB, GB-S, and
//! GB-H, read back from the telemetry counters the chunk tracer records
//! (`trace.useful_slots` / `trace.barrier_slots`) rather than from ad-hoc
//! accumulators, with the across-layer spread tracked by a high/low-water
//! gauge.

use crate::{network_config, print_table, SEED};
use sparten::core::balance::BalanceMode;
use sparten::nn::all_networks;
use sparten::nn::generate::Workload;
use sparten::sim::{trace_cluster_telemetry, SimConfig};
use sparten::telemetry::Telemetry;

/// Traces one (layer, mode) pair into a fresh telemetry session and reads
/// the utilization off its counters. The ratio equals
/// `ClusterTraceLog::utilization` exactly: both divide the same u64 slot
/// totals (a fully idle trace counts as 100%, matching the log).
fn traced_utilization(w: &Workload, cfg: &SimConfig, mode: BalanceMode) -> f64 {
    let tel = Telemetry::new();
    trace_cluster_telemetry(w, cfg, mode, 4, Some(&tel));
    let snap = tel.metrics.snapshot();
    let sum_suffix = |suffix: &str| -> u64 {
        snap.entries
            .iter()
            .filter_map(|(name, value)| match value {
                sparten::telemetry::MetricValue::Counter(c) if name.ends_with(suffix) => Some(*c),
                _ => None,
            })
            .sum()
    };
    let useful = sum_suffix("/trace.useful_slots");
    let barrier = sum_suffix("/trace.barrier_slots");
    if barrier == 0 {
        1.0
    } else {
        useful as f64 / barrier as f64
    }
}

pub fn run() {
    crate::outln!("== Compute-unit utilization at the chunk barriers (first 4 positions/layer) ==\n");
    let spread = Telemetry::new();
    let no_gb = spread.metrics.gauge("report/utilization.no_gb");
    let mut rows = Vec::new();
    for net in all_networks() {
        let cfg: SimConfig = network_config(&net);
        for spec in &net.layers {
            let w = spec.workload(SEED);
            let utils: Vec<f64> = [BalanceMode::None, BalanceMode::GbS, BalanceMode::GbH]
                .iter()
                .map(|&mode| traced_utilization(&w, &cfg, mode))
                .collect();
            no_gb.observe(utils[0]);
            rows.push(vec![
                net.name.to_string(),
                spec.name.to_string(),
                format!("{:.0}%", utils[0] * 100.0),
                format!("{:.0}%", utils[1] * 100.0),
                format!("{:.0}%", utils[2] * 100.0),
            ]);
        }
    }
    print_table(&["Network", "Layer", "no GB", "GB-S", "GB-H"], &rows);
    crate::outln!(
        "\nwithout GB, utilization spans {:.0}%–{:.0}% across layers",
        no_gb.lo().unwrap_or(1.0) * 100.0,
        no_gb.hi().unwrap_or(0.0) * 100.0
    );
    crate::outln!("(the paper quotes 52%–65% for its ResNet-152 filter collection)");
}
