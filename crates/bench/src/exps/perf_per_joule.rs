//! Performance per Joule: §5.3's closing argument, computed per network.
//!
//! "SparTen is better than Dense in performance per Joule (4.7x better in
//! performance and 2x worse in compute energy, ignoring SparTen's memory
//! energy advantage)." This report combines the speedups of Figures 7–9
//! with the energies of Figure 13 into throughput-per-energy, with and
//! without the memory component, plus the SRAM-offset area note.

use sparten::energy::{sram_offset, EnergyModel, EnergyReport};
use sparten::nn::all_networks;
use sparten::sim::Scheme;
use crate::{network_config, print_table, run_network};

const SCHEMES: [Scheme; 3] = [Scheme::Dense, Scheme::OneSided, Scheme::SpartenGbH];

pub fn run() {
    crate::outln!("== Performance per Joule (normalized to Dense, per network) ==\n");
    let model = EnergyModel::nm45();
    let mut rows = Vec::new();
    for net in all_networks() {
        let cfg = network_config(&net);
        let layers = run_network(&net, &SCHEMES, &cfg);
        let mut cycles = [0u64; 3];
        let mut energy = [EnergyReport::default(); 3];
        for layer in &layers {
            for (si, r) in layer.results.iter().enumerate() {
                cycles[si] += r.cycles();
                let buffer = if SCHEMES[si] == Scheme::Dense { 8 } else { 992 };
                energy[si] = energy[si].add(&model.layer_energy(r, buffer));
            }
        }
        // Throughput per Joule relative to Dense: (t_d / t_s) · (E_d / E_s).
        for (si, scheme) in SCHEMES.iter().enumerate() {
            let speedup = cycles[0] as f64 / cycles[si] as f64;
            let compute_ratio = energy[0].compute_pj() / energy[si].compute_pj();
            let total_ratio = energy[0].total_pj() / energy[si].total_pj();
            rows.push(vec![
                net.name.to_string(),
                scheme.label().to_string(),
                format!("{speedup:.2}x"),
                format!("{:.2}x", speedup * compute_ratio),
                format!("{:.2}x", speedup * total_ratio),
            ]);
        }
    }
    print_table(
        &[
            "Network",
            "Scheme",
            "speedup",
            "perf/J (compute only)",
            "perf/J (incl. memory)",
        ],
        &rows,
    );

    let offset = sram_offset(1024, 20.0, 0.72);
    crate::outln!(
        "\nSRAM offset (§5.3): a TPU-scale 20 MB SRAM stored sparse saves \
         {:.1} mm^2,\nagainst {:.1} mm^2 of SparTen buffer bloat — net {:.1} mm^2 \
         in SparTen's favour.",
        offset.dense_sram_mm2 - offset.sparten_sram_mm2,
        offset.buffer_bloat_mm2,
        -offset.net_mm2()
    );
}
