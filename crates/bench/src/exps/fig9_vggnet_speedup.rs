//! Regenerates Figure 9: VGGNet speedups over Dense. As in the paper, the
//! mean excludes Layer0 (dense 3-channel input hurts SparTen there).

use crate::registry::NetworkFigure;
use crate::{dump_json, network_config, print_speedup_figure, LayerResult};
use sparten::nn::vggnet;
use sparten::sim::Scheme;

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: vggnet,
        config: network_config,
        schemes: || Scheme::all().to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    let schemes = Scheme::all();
    let excl: &[&str] = &["Layer0"];
    print_speedup_figure(
        "Figure 9: VGGNet Speedup (normalized to Dense)",
        layers,
        &schemes,
        &[
            ("One-sided", excl),
            ("SparTen-no-GB", excl),
            ("SparTen-GB-S", excl),
            ("SparTen", excl),
            ("SCNN", excl),
            ("SCNN-one-sided", excl),
            ("SCNN-dense", excl),
        ],
    );
    dump_json("fig9_vggnet_speedup", layers, &schemes);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
