//! Regenerates Table 4: ASIC area and power for one SparTen cluster (45 nm).

use sparten::core::ClusterConfig;
use sparten::energy::cluster_asic_estimate;
use crate::print_table;

pub fn run() {
    crate::outln!("== Table 4: ASIC Area and Power for SparTen (45nm) ==");
    let est = cluster_asic_estimate(&ClusterConfig::paper());
    let mut rows: Vec<Vec<String>> = est
        .components
        .iter()
        .map(|c| {
            vec![
                c.name.to_string(),
                format!("{:.4}", c.area_mm2),
                format!("{:.2}", c.power_mw),
            ]
        })
        .collect();
    rows.push(vec![
        "Total".to_string(),
        format!("{:.3}", est.total_area_mm2()),
        format!("{:.2}", est.total_power_mw()),
    ]);
    print_table(&["Component", "Area (mm^2)", "Power (mW)"], &rows);
    crate::outln!("\nSynthesis clock: {} MHz", est.clock_mhz);
    crate::outln!("Paper reference totals: 0.766 mm^2, 118.30 mW @ 800 MHz");
}
