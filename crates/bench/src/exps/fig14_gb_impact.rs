//! Regenerates Figure 14: the impact of greedy balancing on AlexNet
//! Layer2's per-chunk filter densities — the sorted single-filter densities
//! (red curve) versus the collocated pair densities after GB-H (blue curve).

use sparten::core::balance::paired_chunk_densities;
use sparten::core::chunking::filter_to_chunks;
use sparten::nn::alexnet;
use crate::{print_series, SEED};

pub fn run() {
    crate::outln!("== Figure 14: Impact of Greedy Balancing (AlexNet Layer2, chunk 0) ==");
    let net = alexnet();
    let spec = net.layer("Layer2").expect("Layer2 exists");
    let w = spec.workload(SEED);
    let chunk = 128;

    let mut singles: Vec<f64> = w
        .filters
        .iter()
        .map(|f| filter_to_chunks(f, chunk).chunks()[0].density())
        .collect();
    singles.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let mut pairs = paired_chunk_densities(&w.filters, chunk, 0);
    pairs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    let stats = |v: &[f64]| {
        let min = v.iter().cloned().fold(f64::MAX, f64::min);
        let max = v.iter().cloned().fold(f64::MIN, f64::max);
        let median = v[v.len() / 2];
        (min, median, max)
    };
    let (smin, smed, smax) = stats(&singles);
    let (pmin, pmed, pmax) = stats(&pairs);
    crate::outln!(
        "{} filters:     min {:.3}  median {:.3}  max {:.3}  (spread {:.3})",
        singles.len(),
        smin,
        smed,
        smax,
        smax - smin
    );
    crate::outln!(
        "{} filter-pairs: min {:.3}  median {:.3}  max {:.3}  (spread {:.3})",
        pairs.len(),
        pmin,
        pmed,
        pmax,
        pmax - pmin
    );
    crate::outln!(
        "GB-H cuts the density spread by {:.1}x\n",
        (smax - smin) / (pmax - pmin)
    );
    print_series("filters (sorted)", &singles);
    crate::outln!();
    print_series("filter-pairs (sorted)", &pairs);
}
