//! The experiment bodies behind every figure/table binary.
//!
//! Each module regenerates one table, figure, sweep, or ablation of the
//! paper and is shared between its thin `src/bin/` wrapper (serial, prints
//! to stdout) and the parallel orchestration harness (`sparten-harness`),
//! which runs the same code under an output capture. All output must go
//! through [`crate::outln!`]/[`crate::out!`] and [`crate::sink::artifact`]
//! so both paths produce byte-identical results.

pub mod ablation_bisection;
pub mod ablation_chunk_size;
pub mod ablation_collocation;
pub mod ablation_collocation_depth;
pub mod accuracy_proxy;
pub mod buffering_study;
pub mod energy_components;
pub mod fig10_alexnet_breakdown;
pub mod fig11_googlenet_breakdown;
pub mod fig12_vggnet_breakdown;
pub mod fig13_energy;
pub mod fig14_gb_impact;
pub mod fig15_alexnet_fpga;
pub mod fig16_googlenet_fpga;
pub mod fig17_vggnet_fpga;
pub mod fig7_alexnet_speedup;
pub mod fig8_googlenet_speedup;
pub mod fig9_vggnet_speedup;
pub mod hpc_crossover;
pub mod perf_per_joule;
pub mod related_work;
pub mod scnn_tile_search;
pub mod stride_study;
pub mod summary_headline;
pub mod sweep_density;
pub mod sweep_scaling;
pub mod table1_design_goals;
pub mod table2_hw_params;
pub mod table3_benchmarks;
pub mod table4_asic;
pub mod utilization_report;
pub mod validate;
