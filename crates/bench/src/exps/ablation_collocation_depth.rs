//! Ablation: collocation depth k — an extension beyond the paper's k = 2.
//!
//! Deeper collocation averages more filters per unit (better balance) at
//! the cost of k× the filter and output buffering (§3.3's buffering
//! arithmetic scales with k). This sweep runs k ∈ {1, 2, 4, 8} with
//! whole-filter (GB-S-style) and per-chunk (GB-H-style) sorting on a
//! high-spread layer, reporting cycles and per-cluster buffer bytes.

use sparten::core::balance::LayerBalance;
use sparten::nn::alexnet;
use sparten::sim::sparten::{simulate_sparten_with_balance, Sparsity};
use sparten::sim::{MaskModel, SimConfig};
use crate::{print_table, SEED};

/// §3.3 buffering generalized to k collocated filters per unit.
fn buffer_bytes(units: usize, chunk: usize, k: usize) -> usize {
    let mask_bytes = chunk / 8;
    let data_bytes = chunk;
    let input = data_bytes + mask_bytes;
    let filters = k * (data_bytes + mask_bytes);
    let outputs = k * units;
    (input + filters + outputs) * units * 2
}

pub fn run() {
    crate::outln!("== Ablation: collocation depth k (AlexNet Layer2) ==\n");
    let net = alexnet();
    let spec = net.layer("Layer2").expect("Layer2 exists");
    let w = spec.workload(SEED);
    let cfg = SimConfig::large();
    let units = cfg.accel.cluster.compute_units;
    let chunk = cfg.accel.cluster.chunk_size;
    let model = MaskModel::new(&w, chunk);

    let mut rows = Vec::new();
    for k in [1usize, 2, 4, 8] {
        for (style, per_chunk) in [("whole-filter", false), ("per-chunk", true)] {
            let balance = LayerBalance::with_collocation(&w.filters, units, chunk, k, per_chunk);
            let r = simulate_sparten_with_balance(&w, &model, &cfg, Sparsity::TwoSided, balance);
            rows.push(vec![
                k.to_string(),
                style.to_string(),
                r.cycles().to_string(),
                format!("{:.1}", buffer_bytes(units, chunk, k) as f64 / 1024.0),
            ]);
        }
    }
    print_table(
        &["k", "sort granularity", "cycles", "buffer KB/cluster"],
        &rows,
    );
    crate::outln!("\nThe paper's k = 2 captures most of the balance win at 31 KB; k = 4 buys a");
    crate::outln!("little more for 1.7x the buffering, and k = 8 *loses* ground: groups of k x units");
    crate::outln!(
        "filters stop dividing the layer evenly, idling units (the 5x5red pathology at scale)."
    );
}
