//! Regenerates Figure 8: GoogLeNet speedups over Dense (small config).

use crate::registry::NetworkFigure;
use crate::{dump_json, network_config, print_speedup_figure, LayerResult};
use sparten::nn::googlenet;
use sparten::sim::Scheme;

/// The per-layer description the harness parallelizes.
pub fn figure() -> NetworkFigure {
    NetworkFigure {
        network: googlenet,
        config: network_config,
        schemes: || Scheme::all().to_vec(),
        render,
    }
}

fn render(layers: &[LayerResult]) {
    let schemes = Scheme::all();
    print_speedup_figure(
        "Figure 8: GoogLeNet Speedup (normalized to Dense)",
        layers,
        &schemes,
        &[],
    );
    dump_json("fig8_googlenet_speedup", layers, &schemes);
}

/// Serial entry point used by the standalone binary.
pub fn run() {
    figure().run_serial();
}
