//! A std-only micro-benchmark harness for the `benches/` targets.
//!
//! The workspace builds offline, so the benches cannot use `criterion`.
//! This is the minimal replacement: warm up, run timed batches until a
//! fixed wall-clock budget is spent, and report the per-iteration time for
//! the fastest batch (the usual low-noise estimator for micro-benchmarks).
//! Targets keep `harness = false` and call [`group`] from `main`.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// One timed measurement: the best-batch per-iteration estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Nanoseconds per iteration for the fastest batch.
    pub ns_per_iter: f64,
    /// Total iterations executed across all batches.
    pub iters: u64,
}

/// Measures `f` under a wall-clock budget and returns the estimate
/// instead of printing it — the programmatic core shared by the
/// `benches/` targets (via [`Group::bench`]) and the `harness bench`
/// perf-regression registry.
pub fn measure<T, F: FnMut() -> T>(budget: Duration, mut f: F) -> Measurement {
    // Warm-up: one untimed call, then size the batch so a batch takes
    // roughly 1/10 of the budget.
    let t0 = Instant::now();
    black_box(f());
    let once = t0.elapsed().max(Duration::from_nanos(1));
    let batch = ((budget.as_nanos() / 10 / once.as_nanos()).max(1)) as u64;

    let mut best_ns_per_iter = f64::INFINITY;
    let mut iters = 0u64;
    let start = Instant::now();
    while start.elapsed() < budget {
        let b0 = Instant::now();
        for _ in 0..batch {
            black_box(f());
        }
        let ns = b0.elapsed().as_nanos() as f64 / batch as f64;
        best_ns_per_iter = best_ns_per_iter.min(ns);
        iters += batch;
    }
    Measurement {
        ns_per_iter: best_ns_per_iter,
        iters,
    }
}

/// One named benchmark group; prints results as `group/id  …` lines.
pub struct Group {
    name: String,
    budget: Duration,
}

/// Opens a benchmark group with the default 100 ms per-benchmark budget.
pub fn group(name: &str) -> Group {
    Group {
        name: name.to_string(),
        budget: Duration::from_millis(100),
    }
}

impl Group {
    /// Overrides the per-benchmark measurement budget.
    pub fn budget_ms(&mut self, ms: u64) -> &mut Self {
        self.budget = Duration::from_millis(ms);
        self
    }

    /// Measures `f`, reporting nanoseconds per iteration under `id`.
    pub fn bench<T, F: FnMut() -> T>(&mut self, id: &str, f: F) {
        let m = measure(self.budget, f);
        println!(
            "{}/{:<32} {:>14} ns/iter  ({} iters)",
            self.name,
            id,
            format_ns(m.ns_per_iter),
            m.iters,
        );
    }

    /// Ends the group (prints a separator, mirrors the criterion API).
    pub fn finish(self) {
        println!();
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2}e9", ns / 1e9)
    } else {
        let v = ns.round() as u64;
        // Thousands separators for readability.
        let s = v.to_string();
        let mut out = String::new();
        for (i, c) in s.chars().enumerate() {
            if i > 0 && (s.len() - i).is_multiple_of(3) {
                out.push(',');
            }
            out.push(c);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts_iters() {
        let mut g = group("t");
        g.budget_ms(5);
        let mut calls = 0u64;
        g.bench("noop", || calls += 1);
        assert!(calls > 0);
        g.finish();
    }

    #[test]
    fn measure_returns_finite_estimate() {
        let m = measure(Duration::from_millis(5), || 2u64 + 2);
        assert!(m.ns_per_iter.is_finite() && m.ns_per_iter >= 0.0);
        assert!(m.iters > 0);
    }

    #[test]
    fn formats_thousands() {
        assert_eq!(format_ns(1234567.0), "1,234,567");
        assert_eq!(format_ns(12.0), "12");
    }
}
