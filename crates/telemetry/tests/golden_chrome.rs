//! Golden-file snapshot of the Chrome trace exporter.
//!
//! The trace-event format is consumed by an external tool (Perfetto), so
//! accidental format drift would only surface as a silently broken viewer.
//! This test pins the exporter's exact bytes on a small deterministic
//! session. To bless an intentional format change:
//!
//! ```text
//! BLESS=1 cargo test -p sparten-telemetry --test golden_chrome
//! ```

use sparten_telemetry::{chrome_trace, Telemetry};

const GOLDEN_PATH: &str = "tests/golden/chrome_small.json";

/// A fixed session exercising every event kind the exporter emits:
/// process/thread metadata, spans with and without args, instants, all
/// three metric types, and characters needing JSON escaping.
fn golden_session() -> Telemetry {
    let tel = Telemetry::new();
    let pid = tel.recorder.alloc_process("SparTen \"golden\"");
    tel.recorder.name_thread(pid, 0, "cluster0");
    tel.recorder.name_thread(pid, 1, "cluster1");
    tel.recorder.span(pid, 0, "cluster", 0, 128, &[("busy", 100), ("units", 32)]);
    tel.recorder.span(pid, 1, "cluster", 0, 96, &[]);
    tel.recorder.span(pid, 0, "position", 0, 17, &[("pos", 0)]);
    tel.recorder.instant(pid, 0, "barrier", 17, &[("chunk", 3)]);

    tel.metrics.counter("SparTen/work.nonzero").add(1234);
    tel.metrics.counter("SparTen/stall.intra.chunk_barrier_idle").add(56);
    tel.metrics.gauge("SparTen/occupancy.cluster_util").observe(0.5);
    tel.metrics.gauge("SparTen/occupancy.cluster_util").observe(0.75);
    let h = tel.metrics.histogram("SparTen/hist.chunk_barrier");
    for v in [0, 1, 2, 7, 130] {
        h.record(v);
    }
    tel
}

#[test]
fn chrome_trace_matches_the_committed_golden_file() {
    let tel = golden_session();
    let json = chrome_trace(&tel.metrics.snapshot(), &tel.recorder);

    if std::env::var_os("BLESS").is_some() {
        std::fs::create_dir_all("tests/golden").expect("mkdir golden");
        std::fs::write(GOLDEN_PATH, &json).expect("write golden");
        return;
    }

    let golden = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file exists (regenerate with BLESS=1)");
    assert_eq!(
        json, golden,
        "Chrome trace output drifted from {GOLDEN_PATH}; if intentional, \
         re-bless with BLESS=1 and eyeball the diff in Perfetto"
    );
}

#[test]
fn golden_file_is_balanced_json_with_expected_structure() {
    // Structural sanity on the committed bytes themselves, so a bad bless
    // cannot slip through: braces/brackets balance outside strings and the
    // top-level keys exist.
    let text = std::fs::read_to_string(GOLDEN_PATH).expect("golden file exists");
    let (mut depth, mut max_depth) = (0i64, 0i64);
    let (mut in_str, mut esc) = (false, false);
    for c in text.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
    }
    assert_eq!(depth, 0, "unbalanced braces/brackets");
    assert!(max_depth >= 3, "suspiciously flat trace");
    assert!(!in_str, "unterminated string");
    for key in ["\"displayTimeUnit\"", "\"traceEvents\"", "\"otherData\"", "\"metrics\""] {
        assert!(text.contains(key), "missing {key}");
    }
}
