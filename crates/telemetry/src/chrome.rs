//! Hand-rolled Chrome trace-event JSON writer.
//!
//! The output is the JSON-object flavour of the Trace Event Format:
//! `{"traceEvents": [...], "otherData": {...}}`. Open it at
//! <https://ui.perfetto.dev> (or `chrome://tracing`) — both accept this
//! format directly. Timestamps map **one simulated cycle to one
//! microsecond**, so Perfetto's time axis reads in cycles.
//!
//! Metadata events (`ph: "M"`) name the process and thread tracks;
//! counters, gauges, and histograms ride along under `otherData` where
//! Perfetto's JSON importer ignores them but the plain-text tooling (and
//! any post-processor) can still read one self-contained file.

use crate::metrics::{MetricValue, Snapshot};
use crate::recorder::{Phase, Recorder};
use std::fmt::Write as _;

/// Serializes a telemetry session as a Chrome trace-event JSON document.
pub fn chrome_trace(snapshot: &Snapshot, recorder: &Recorder) -> String {
    let mut out = String::new();
    out.push_str("{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n");
    let mut first = true;

    // Track-name metadata first, so viewers label tracks before events.
    for (pid, name) in recorder.process_names().iter().enumerate() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":{}}}}}",
            json_string(name)
        );
        // Sort index keeps processes in allocation (layer/scheme) order.
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_sort_index\",\"args\":{{\"sort_index\":{pid}}}}}"
        );
    }
    for (pid, tid, name) in recorder.thread_names() {
        sep(&mut out, &mut first);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
            json_string(&name)
        );
    }

    for e in recorder.events() {
        sep(&mut out, &mut first);
        match e.phase {
            Phase::Span => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"name\":{}",
                    e.pid,
                    e.tid,
                    e.ts,
                    e.dur,
                    json_string(e.name)
                );
            }
            Phase::Instant => {
                let _ = write!(
                    out,
                    "{{\"ph\":\"i\",\"pid\":{},\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":{}",
                    e.pid,
                    e.tid,
                    e.ts,
                    json_string(e.name)
                );
            }
        }
        if e.args.is_empty() {
            out.push('}');
        } else {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:{v}", json_string(k));
            }
            out.push_str("}}");
        }
    }
    out.push_str("\n],\n\"otherData\": {\n");
    let _ = writeln!(out, "\"droppedEvents\": {},", recorder.dropped());
    out.push_str("\"metrics\": {");
    for (i, (name, value)) in snapshot.entries.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  ");
        let _ = write!(out, "{}: ", json_string(name));
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{v}");
            }
            MetricValue::Gauge { hi, lo, last, count } => {
                let _ = write!(
                    out,
                    "{{\"hi\": {}, \"lo\": {}, \"last\": {}, \"count\": {count}}}",
                    json_f64(*hi),
                    json_f64(*lo),
                    json_f64(*last)
                );
            }
            MetricValue::Histogram { buckets, sum } => {
                let _ = write!(out, "{{\"sum\": {sum}, \"buckets\": [");
                let top = buckets.iter().rposition(|&b| b > 0).map_or(0, |i| i + 1);
                for (i, b) in buckets[..top].iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{b}");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n}\n}\n");
    out
}

fn sep(out: &mut String, first: &mut bool) {
    if *first {
        *first = false;
    } else {
        out.push_str(",\n");
    }
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v.fract() == 0.0 && v.abs() < 1e15 {
            format!("{v:.1}")
        } else {
            format!("{v}")
        }
    } else {
        "null".to_string()
    }
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Telemetry;

    fn session() -> Telemetry {
        let t = Telemetry::new();
        t.metrics.counter("S/work.nonzero").add(42);
        t.metrics.gauge("S/occupancy.cluster").observe(3.5);
        t.metrics.histogram("S/hist.chunk_work").record(5);
        let pid = t.recorder.alloc_process("SparTen");
        t.recorder.name_thread(pid, 0, "cluster0");
        t.recorder.span(pid, 0, "cluster", 0, 100, &[("busy", 80)]);
        t.recorder.instant(pid, 0, "barrier", 50, &[]);
        t
    }

    #[test]
    fn trace_contains_events_metadata_and_metrics() {
        let t = session();
        let json = chrome_trace(&t.metrics.snapshot(), &t.recorder);
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"process_name\""));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"S/work.nonzero\": 42"));
        assert!(json.contains("\"busy\":80"));
        assert!(json.contains("\"droppedEvents\": 0"));
    }

    #[test]
    fn trace_is_structurally_valid_json() {
        // A tiny structural check: balanced braces/brackets outside
        // strings, and no trailing commas before closers.
        let t = session();
        let json = chrome_trace(&t.metrics.snapshot(), &t.recorder);
        let (mut depth, mut in_str, mut esc) = (0i64, false, false);
        let mut prev_non_ws = ' ';
        for c in json.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    assert_ne!(prev_non_ws, ',', "trailing comma before closer");
                    depth -= 1;
                }
                _ => {}
            }
            if !c.is_whitespace() {
                prev_non_ws = c;
            }
        }
        assert_eq!(depth, 0, "unbalanced braces");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
