//! The stall-cause taxonomy shared by every simulator.
//!
//! Each cause is a leaf under `stall.intra.*` or `stall.inter.*` in the
//! metric naming scheme, in units of *MAC-slot cycles* — the same unit as
//! the Figure 10–12 breakdown, which is what lets the invariant checker
//! reconcile them exactly. Not every cause applies to every architecture
//! (SCNN has no mask-AND; Dense has no prefix sums): absent causes simply
//! never register a counter.

/// Why a MAC slot went idle (or was spent on overhead) instead of doing a
/// useful multiply.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCause {
    /// Intra: a unit's ANDed SparseMap chunk was empty while a sibling
    /// unit still had work — the whole chunk barrier passed with zero
    /// MACs on this unit.
    EmptyMaskAnd,
    /// Intra: per-chunk prefix-sum / priority-encoder / broadcast setup
    /// cycles during which no unit multiplies (SparTen's chunk overhead).
    PrefixEncoderWait,
    /// Intra: a unit had work for the chunk but less than the barrier —
    /// classic within-cluster density imbalance.
    ChunkBarrierIdle,
    /// Intra: units idle because the filter group is partially filled
    /// (fewer filters than compute units), or because a one-sided /
    /// shared-mask datapath leaves lanes unoccupied.
    UnitUnderfill,
    /// Intra: idle multiplier-array slots from SCNN's `⌈I/4⌉·⌈F/4⌉`
    /// quantization when a tile or filter group has too few non-zeros.
    MultiplierQuantization,
    /// Intra: the output collector / accumulator bank could not accept
    /// results, back-pressuring the datapath. Zero in the current
    /// analytic models (they assume perfect collectors), but part of the
    /// taxonomy so a future queued model reports through the same name.
    OutputBackpressure,
    /// Inter: slack of faster clusters against the slowest cluster's
    /// makespan at the layer barrier.
    ClusterIdle,
    /// Inter: slack of faster PEs at SCNN's per-(channel, filter-group)
    /// broadcast barriers, including wholly idle PEs on small planes.
    PeBarrierIdle,
}

impl StallCause {
    /// Whether the cause is within-cluster (`stall.intra.*`) or
    /// across-cluster (`stall.inter.*`).
    pub fn is_intra(self) -> bool {
        !matches!(self, StallCause::ClusterIdle | StallCause::PeBarrierIdle)
    }

    /// The leaf metric name.
    pub fn leaf(self) -> &'static str {
        match self {
            StallCause::EmptyMaskAnd => "empty_mask_and",
            StallCause::PrefixEncoderWait => "prefix_encoder_wait",
            StallCause::ChunkBarrierIdle => "chunk_barrier_idle",
            StallCause::UnitUnderfill => "unit_underfill",
            StallCause::MultiplierQuantization => "multiplier_quantization",
            StallCause::OutputBackpressure => "output_backpressure",
            StallCause::ClusterIdle => "cluster_idle",
            StallCause::PeBarrierIdle => "pe_barrier_idle",
        }
    }

    /// The full metric name under `scope`, e.g.
    /// `SparTen/stall.intra.chunk_barrier_idle`.
    pub fn metric_name(self, scope: &str) -> String {
        let side = if self.is_intra() { "intra" } else { "inter" };
        format!("{scope}/stall.{side}.{}", self.leaf())
    }

    /// Every cause, in documentation order.
    pub fn all() -> [StallCause; 8] {
        [
            StallCause::EmptyMaskAnd,
            StallCause::PrefixEncoderWait,
            StallCause::ChunkBarrierIdle,
            StallCause::UnitUnderfill,
            StallCause::MultiplierQuantization,
            StallCause::OutputBackpressure,
            StallCause::ClusterIdle,
            StallCause::PeBarrierIdle,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_sided() {
        let names: std::collections::HashSet<String> = StallCause::all()
            .iter()
            .map(|c| c.metric_name("X"))
            .collect();
        assert_eq!(names.len(), StallCause::all().len());
        assert_eq!(
            StallCause::ChunkBarrierIdle.metric_name("SparTen"),
            "SparTen/stall.intra.chunk_barrier_idle"
        );
        assert_eq!(
            StallCause::ClusterIdle.metric_name("Dense"),
            "Dense/stall.inter.cluster_idle"
        );
        assert!(!StallCause::PeBarrierIdle.is_intra());
        assert!(StallCause::OutputBackpressure.is_intra());
    }
}
