//! Standard server-side counters for the simulation service.
//!
//! The serve daemon reports through the same metric [`Registry`] the
//! simulators use, so one `/metrics` scrape (or one `parse_report` call in
//! a test) sees the whole stack. This module pins the *names*: every
//! server counter lives under the `serve/` scope, following the crate's
//! `<scope>/<area>.<detail>` convention, and is bundled into one
//! [`ServerMetrics`] value so the daemon cannot typo a name and split a
//! series.
//!
//! | metric                        | kind      | meaning                              |
//! |-------------------------------|-----------|--------------------------------------|
//! | `serve/http.requests`         | counter   | HTTP requests parsed                 |
//! | `serve/http.bad_request`      | counter   | malformed requests answered 400      |
//! | `serve/exec.runs`             | counter   | executor runs started (unique keys)  |
//! | `serve/exec.failures`         | counter   | executor runs that failed            |
//! | `serve/coalesced`             | counter   | requests attached to an in-flight run|
//! | `serve/cache.full_hits`       | counter   | jobs served whole from the cache     |
//! | `serve/rejected.saturated`    | counter   | submissions answered 429             |
//! | `serve/rejected.unknown_job`  | counter   | submissions answered 404             |
//! | `serve/deadline.expired`      | counter   | requests answered 504 (budget spent) |
//! | `serve/queue.timeout`         | counter   | queue waits answered 503             |
//! | `serve/exec.cancelled`        | counter   | runs cancelled cooperatively         |
//! | `serve/retried.requests`      | counter   | requests marked as client retries    |
//! | `serve/queue.wait_us`         | histogram | admission-queue wait per run         |
//! | `serve/latency.cache_hit_us`  | histogram | time to first byte on the hit path   |
//! | `serve/sessions.inflight`     | gauge     | concurrently open sessions           |

use crate::metrics::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// The serve daemon's counter bundle, interned once over a [`Registry`].
///
/// Handles are shared atomics: cloning the struct (or the `Arc`s inside)
/// never forks a series.
#[derive(Debug, Clone)]
pub struct ServerMetrics {
    /// HTTP requests successfully parsed off a connection.
    pub requests: Arc<Counter>,
    /// Requests rejected as malformed (400).
    pub bad_requests: Arc<Counter>,
    /// Executor runs started — exactly one per unique admitted cache key.
    pub exec_runs: Arc<Counter>,
    /// Executor runs that returned an error.
    pub exec_failures: Arc<Counter>,
    /// Requests that shared another request's in-flight execution.
    pub coalesced: Arc<Counter>,
    /// Jobs answered entirely from the result cache (executor untouched).
    pub cache_full_hits: Arc<Counter>,
    /// Submissions bounced with 429 + Retry-After (admission queue full).
    pub rejected_saturated: Arc<Counter>,
    /// Submissions for names not in the registry (404).
    pub rejected_unknown_job: Arc<Counter>,
    /// Requests whose deadline budget was already (or became) spent,
    /// answered 504 without reaching the executor.
    pub deadline_expired: Arc<Counter>,
    /// Admitted runs whose queue wait outlived the deadline (503).
    pub queue_timeouts: Arc<Counter>,
    /// Executor runs stopped cooperatively (deadline expiry mid-run or
    /// every subscriber gone).
    pub exec_cancelled: Arc<Counter>,
    /// Requests carrying a `Retry-Attempt` header — the client-side retry
    /// loop announcing a re-submission.
    pub retried_requests: Arc<Counter>,
    /// Microseconds an admitted run waited for an execution slot.
    pub queue_wait_us: Arc<Histogram>,
    /// Microseconds to serve a whole-job cache hit.
    pub cache_hit_latency_us: Arc<Histogram>,
    /// Open sessions high/low-water gauge.
    pub sessions_inflight: Arc<Gauge>,
}

impl ServerMetrics {
    /// Interns every server metric in `registry` and returns the bundle.
    pub fn new(registry: &Registry) -> Self {
        ServerMetrics {
            requests: registry.counter("serve/http.requests"),
            bad_requests: registry.counter("serve/http.bad_request"),
            exec_runs: registry.counter("serve/exec.runs"),
            exec_failures: registry.counter("serve/exec.failures"),
            coalesced: registry.counter("serve/coalesced"),
            cache_full_hits: registry.counter("serve/cache.full_hits"),
            rejected_saturated: registry.counter("serve/rejected.saturated"),
            rejected_unknown_job: registry.counter("serve/rejected.unknown_job"),
            deadline_expired: registry.counter("serve/deadline.expired"),
            queue_timeouts: registry.counter("serve/queue.timeout"),
            exec_cancelled: registry.counter("serve/exec.cancelled"),
            retried_requests: registry.counter("serve/retried.requests"),
            queue_wait_us: registry.histogram("serve/queue.wait_us"),
            cache_hit_latency_us: registry.histogram("serve/latency.cache_hit_us"),
            sessions_inflight: registry.gauge("serve/sessions.inflight"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_intern_under_the_serve_scope() {
        let registry = Registry::new();
        let m = ServerMetrics::new(&registry);
        m.requests.add(3);
        m.exec_runs.inc();
        m.sessions_inflight.observe(2.0);
        m.queue_wait_us.record(150);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("serve/http.requests"), Some(3));
        assert_eq!(snap.counter("serve/exec.runs"), Some(1));
        assert_eq!(snap.counter_sum("serve/"), 4);
        // All handles are shared: a second bundle sees the same series.
        let again = ServerMetrics::new(&registry);
        again.requests.inc();
        assert_eq!(registry.snapshot().counter("serve/http.requests"), Some(4));
    }
}
