//! Cooperative cancellation: a shared flag plus an optional deadline,
//! checked at natural work boundaries instead of preempting threads.
//!
//! A [`CancelToken`] is the unit of cancellation the serve gate, the
//! executor, and the simulator hot loops all agree on. The flag is an
//! `Arc<AtomicBool>` so every clone observes a `cancel()` from any owner
//! (deadline watchdog, last-subscriber-gone detection in the gate, a
//! draining server); the deadline is a plain `Instant` carried by value so
//! [`CancelToken::is_cancelled`] needs no clock read until a deadline is
//! actually attached.
//!
//! Two check sites cooperate:
//!
//! * **point boundaries** — the executor polls the token directly before
//!   dispatching or computing each point;
//! * **chunk-batch boundaries** — the simulator hot loop is many layers
//!   below the executor and takes no token parameter. Instead the worker
//!   thread installs its token as the *current* token
//!   ([`set_current`]) for the duration of one point, and the hot loop
//!   calls [`checkpoint`] every chunk batch. When the current token has
//!   fired, `checkpoint` unwinds with the [`Cancelled`] marker payload;
//!   the executor's existing panic fence catches it and classifies the
//!   attempt as `cancelled` (never a retryable `panic`).
//!
//! With no current token installed, [`checkpoint`] is a thread-local read
//! and an `Option` test — cheap enough for the hot loop and invisible to
//! the kernel benchmarks.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cooperative cancellation handle: shared fired-flag plus an optional
/// deadline. Clones share the flag; the deadline is copied by value.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A fresh, unfired token with no deadline.
    pub fn new() -> CancelToken {
        CancelToken::default()
    }

    /// This token with `deadline` attached: [`is_cancelled`] also fires
    /// once the deadline passes, without anyone calling [`cancel`].
    ///
    /// [`is_cancelled`]: CancelToken::is_cancelled
    /// [`cancel`]: CancelToken::cancel
    pub fn with_deadline(mut self, deadline: Instant) -> CancelToken {
        self.deadline = Some(deadline);
        self
    }

    /// Fires the token: every clone sharing this flag observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::SeqCst);
    }

    /// True once [`cancel`] has been called on any clone *or* the attached
    /// deadline has passed. Reads the clock only when a deadline exists.
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn is_cancelled(&self) -> bool {
        if self.flag.load(Ordering::SeqCst) {
            return true;
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// True only if [`cancel`] was called explicitly (deadline ignored) —
    /// lets callers distinguish "cancelled" from "deadline expired".
    ///
    /// [`cancel`]: CancelToken::cancel
    pub fn fired_explicitly(&self) -> bool {
        self.flag.load(Ordering::SeqCst)
    }

    /// The attached deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Time left until the deadline (`None` when no deadline is attached;
    /// `Some(ZERO)` once it has passed).
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }
}

thread_local! {
    /// The token the current thread's in-flight point runs under.
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Unwind payload produced by [`checkpoint`]: a marker type the executor
/// downcasts to tell a cooperative cancellation apart from a real panic.
#[derive(Debug)]
pub struct Cancelled;

/// Clears the thread's current token when the installing scope ends, even
/// if the point unwinds.
pub struct CancelScope {
    previous: Option<CancelToken>,
}

impl Drop for CancelScope {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.previous.take());
    }
}

/// Installs `token` as the current thread's token for the returned scope's
/// lifetime; [`checkpoint`] observes it from any depth of the call stack.
#[must_use = "the token is uninstalled when the scope drops"]
pub fn set_current(token: CancelToken) -> CancelScope {
    let previous = CURRENT.with(|c| c.borrow_mut().replace(token));
    CancelScope { previous }
}

/// True when the current thread's installed token (if any) has fired.
pub fn current_cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

/// The hot-loop check: if the current thread's token has fired, unwinds
/// with the [`Cancelled`] marker. A no-op (one thread-local read) when no
/// token is installed.
pub fn checkpoint() {
    if current_cancelled() {
        std::panic::panic_any(Cancelled);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled());
        assert!(a.fired_explicitly());
    }

    #[test]
    fn deadlines_fire_without_cancel() {
        let t = CancelToken::new().with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        assert!(!t.fired_explicitly());
        assert_eq!(t.remaining(), Some(Duration::ZERO));
        let far = CancelToken::new().with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!far.is_cancelled());
        assert!(far.remaining().unwrap() > Duration::from_secs(3500));
    }

    #[test]
    fn checkpoint_unwinds_only_under_a_fired_current_token() {
        // No token installed: a plain no-op.
        checkpoint();
        let token = CancelToken::new();
        {
            let _scope = set_current(token.clone());
            checkpoint(); // unfired: still a no-op
            token.cancel();
            let unwound = std::panic::catch_unwind(checkpoint)
                .expect_err("fired token must unwind");
            assert!(unwound.downcast_ref::<Cancelled>().is_some());
        }
        // Scope dropped: the fired token is no longer observed.
        assert!(!current_cancelled());
        checkpoint();
    }

    #[test]
    fn scopes_restore_the_previous_token() {
        let outer = CancelToken::new();
        let _a = set_current(outer.clone());
        {
            let inner = CancelToken::new();
            let _b = set_current(inner);
            assert!(!current_cancelled());
        }
        outer.cancel();
        assert!(current_cancelled());
    }
}
