//! Whole-session serialization: export a [`Telemetry`] session to a stable
//! text form and import it back, state-identical.
//!
//! The harness's crash-only execution layer journals every completed
//! experiment point to a write-ahead log so an interrupted `--telemetry`
//! run can resume without recomputing. Counters alone are not enough —
//! resumed runs must rebuild the *full* per-point session (metrics, track
//! names, timeline events, drop counts) so the merged per-job Chrome trace
//! is structured exactly as an uninterrupted run's. This module is that
//! round trip.
//!
//! The format is line-oriented; any name that may contain spaces (metric,
//! track, and event names) is the *last* field of its line:
//!
//! ```text
//! # sparten-telemetry session v1
//! counter 1234 SparTen/work.nonzero
//! gauge 4 1 2 3 SparTen/occupancy.cluster
//! hist 41 0:3,2:6 SparTen/hist.chunk_work
//! process 0 P0:SparTen
//! thread 0 2 cluster2
//! event 0 2 S 0 10 1 busy=80 chunk
//! dropped 0
//! ```
//!
//! Event and argument names are `&'static str` on the hot path; import
//! re-materializes them through a small global intern table (bounded by
//! the recorder's fixed vocabulary, so the leak is a one-time cost).

use crate::metrics::{MetricValue, HISTOGRAM_BUCKETS};
use crate::recorder::{Phase, TraceEvent};
use crate::Telemetry;
use std::collections::HashSet;
use std::fmt::Write as _;
use std::sync::{Mutex, OnceLock};

const HEADER: &str = "# sparten-telemetry session v1";

/// Serializes a session: every metric, every track name, every retained
/// event in recording order, and the drop count.
pub fn export_session(t: &Telemetry) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    for (name, value) in &t.metrics.snapshot().entries {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "counter {v} {name}");
            }
            MetricValue::Gauge { hi, lo, last, count } => {
                let _ = writeln!(out, "gauge {hi} {lo} {last} {count} {name}");
            }
            MetricValue::Histogram { buckets, sum } => {
                let _ = write!(out, "hist {sum} ");
                let mut any = false;
                for (i, b) in buckets.iter().enumerate() {
                    if *b > 0 {
                        if any {
                            out.push(',');
                        }
                        let _ = write!(out, "{i}:{b}");
                        any = true;
                    }
                }
                if !any {
                    out.push('-');
                }
                let _ = writeln!(out, " {name}");
            }
        }
    }
    for (pid, name) in t.recorder.process_names().iter().enumerate() {
        let _ = writeln!(out, "process {pid} {name}");
    }
    for (pid, tid, name) in t.recorder.thread_names() {
        let _ = writeln!(out, "thread {pid} {tid} {name}");
    }
    for e in t.recorder.events() {
        let phase = match e.phase {
            Phase::Span => 'S',
            Phase::Instant => 'I',
        };
        let _ = write!(
            out,
            "event {} {} {phase} {} {} {}",
            e.pid,
            e.tid,
            e.ts,
            e.dur,
            e.args.len()
        );
        for (k, v) in &e.args {
            let _ = write!(out, " {k}={v}");
        }
        let _ = writeln!(out, " {}", e.name);
    }
    let _ = writeln!(out, "dropped {}", t.recorder.dropped());
    out
}

/// Parses text produced by [`export_session`] back into a session whose
/// exports (text report, Chrome trace) are byte-identical to the
/// original's. Returns a human-readable error naming the offending line.
pub fn import_session(text: &str) -> Result<Telemetry, String> {
    let mut lines = text.lines().enumerate();
    match lines.next() {
        Some((_, l)) if l == HEADER => {}
        other => {
            return Err(format!(
                "missing `{HEADER}` header, found {:?}",
                other.map(|(_, l)| l)
            ))
        }
    }
    let t = Telemetry::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let bad = |what: &str| format!("line {lineno}: {what}: `{line}`");
        let (kind, rest) = line.split_once(' ').ok_or_else(|| bad("missing fields"))?;
        match kind {
            "counter" => {
                let (v, name) = rest.split_once(' ').ok_or_else(|| bad("missing name"))?;
                let v: u64 = v.parse().map_err(|_| bad("bad counter value"))?;
                t.metrics.counter(name).add(v);
            }
            "gauge" => {
                let mut it = rest.splitn(5, ' ');
                let mut num = |what| {
                    it.next()
                        .and_then(|v| v.parse::<f64>().ok())
                        .ok_or_else(|| bad(what))
                };
                let hi = num("bad gauge hi")?;
                let lo = num("bad gauge lo")?;
                let last = num("bad gauge last")?;
                let count = num("bad gauge count")? as u64;
                let name = it.next().ok_or_else(|| bad("missing gauge name"))?;
                t.metrics.gauge(name).restore_raw(hi, lo, last, count);
            }
            "hist" => {
                let mut it = rest.splitn(3, ' ');
                let sum: u64 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad hist sum"))?;
                let spec = it.next().ok_or_else(|| bad("missing hist buckets"))?;
                let name = it.next().ok_or_else(|| bad("missing hist name"))?;
                let mut buckets = [0u64; HISTOGRAM_BUCKETS];
                if spec != "-" {
                    for pair in spec.split(',') {
                        let (i, c) = pair.split_once(':').ok_or_else(|| bad("bad bucket pair"))?;
                        let i: usize = i.parse().map_err(|_| bad("bad bucket index"))?;
                        if i >= HISTOGRAM_BUCKETS {
                            return Err(bad("bucket index out of range"));
                        }
                        buckets[i] = c.parse().map_err(|_| bad("bad bucket count"))?;
                    }
                }
                t.metrics.histogram(name).add_raw(&buckets, sum);
            }
            "process" => {
                let (pid, name) = rest.split_once(' ').ok_or_else(|| bad("missing name"))?;
                let pid: u32 = pid.parse().map_err(|_| bad("bad pid"))?;
                // Processes serialize in pid order, so re-allocation must
                // hand back the same ids for events to stay attached.
                let got = t.recorder.alloc_process(name);
                if got != pid {
                    return Err(bad("process records out of order"));
                }
            }
            "thread" => {
                let mut it = rest.splitn(3, ' ');
                let pid: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad thread pid"))?;
                let tid: u32 = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or_else(|| bad("bad thread tid"))?;
                let name = it.next().ok_or_else(|| bad("missing thread name"))?;
                t.recorder.name_thread(pid, tid, name);
            }
            "event" => {
                let mut it = rest.splitn(6, ' ');
                let mut num = |what| {
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| bad(what))
                };
                let pid = num("bad event pid")? as u32;
                let tid = num("bad event tid")? as u32;
                let phase = match it.next() {
                    Some("S") => Phase::Span,
                    Some("I") => Phase::Instant,
                    _ => return Err(bad("bad event phase")),
                };
                let mut num = |what| {
                    it.next()
                        .and_then(|v| v.parse::<u64>().ok())
                        .ok_or_else(|| bad(what))
                };
                let ts = num("bad event ts")?;
                let dur = num("bad event dur")?;
                let tail = it.next().ok_or_else(|| bad("missing event name"))?;
                // `nargs` space-separated `k=v` pairs, then the name.
                let (nargs, mut tail) =
                    tail.split_once(' ').ok_or_else(|| bad("missing event name"))?;
                let nargs: usize = nargs.parse().map_err(|_| bad("bad event arg count"))?;
                let mut args = Vec::with_capacity(nargs);
                for _ in 0..nargs {
                    let (pair, rest) =
                        tail.split_once(' ').ok_or_else(|| bad("truncated event args"))?;
                    let (k, v) = pair.split_once('=').ok_or_else(|| bad("bad event arg"))?;
                    let v: u64 = v.parse().map_err(|_| bad("bad event arg value"))?;
                    args.push((intern(k), v));
                    tail = rest;
                }
                t.recorder.push_raw(TraceEvent {
                    pid,
                    tid,
                    name: intern(tail),
                    ts,
                    dur,
                    phase,
                    args,
                });
            }
            "dropped" => {
                let n: u64 = rest.parse().map_err(|_| bad("bad dropped count"))?;
                t.recorder.add_dropped(n);
            }
            _ => return Err(bad("unknown record kind")),
        }
    }
    Ok(t)
}

/// Interns a string as `&'static str`. Event and argument names come from
/// a small fixed vocabulary (the recorder takes `&'static str` so the hot
/// path never allocates), so the table — and the one-time leak backing it —
/// stays bounded.
fn intern(s: &str) -> &'static str {
    static TABLE: OnceLock<Mutex<HashSet<&'static str>>> = OnceLock::new();
    let table = TABLE.get_or_init(|| Mutex::new(HashSet::new()));
    let mut table = table.lock().expect("intern table");
    if let Some(hit) = table.get(s) {
        return hit;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    table.insert(leaked);
    leaked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{chrome_trace, text_report};

    fn sample_session() -> Telemetry {
        let t = Telemetry::new();
        t.metrics.counter("S/work.nonzero").add(1234);
        t.metrics.counter("S/stall.intra.chunk_barrier_idle").add(55);
        let g = t.metrics.gauge("S/occupancy.cluster");
        g.observe(1.25);
        g.observe(4.5);
        g.observe(2.0);
        let h = t.metrics.histogram("S/hist.chunk_work");
        h.record(0);
        h.record(3);
        h.record(1024);
        let pid = t.recorder.alloc_process("P0:SparTen");
        t.recorder.name_thread(pid, 0, "cluster0");
        t.recorder.span(pid, 0, "chunk", 0, 10, &[("busy", 8), ("w", 3)]);
        t.recorder.instant(pid, 0, "barrier", 10, &[]);
        t
    }

    #[test]
    fn session_round_trip_is_export_identical() {
        let original = sample_session();
        let text = export_session(&original);
        let back = import_session(&text).expect("imports");
        // Strongest check available: every exporter output is identical.
        assert_eq!(export_session(&back), text);
        assert_eq!(
            text_report("j", &back.metrics.snapshot(), &back.recorder),
            text_report("j", &original.metrics.snapshot(), &original.recorder),
        );
        assert_eq!(
            chrome_trace(&back.metrics.snapshot(), &back.recorder),
            chrome_trace(&original.metrics.snapshot(), &original.recorder),
        );
    }

    #[test]
    fn merged_imports_equal_merged_originals() {
        // The resume path: per-point sessions are imported from the journal
        // and merged in point order; the merged exports must match a merge
        // of the live sessions.
        let live = Telemetry::new();
        live.merge(sample_session(), "P0:");
        live.merge(sample_session(), "P1:");

        let resumed = Telemetry::new();
        for prefix in ["P0:", "P1:"] {
            let text = export_session(&sample_session());
            resumed.merge(import_session(&text).expect("imports"), prefix);
        }
        assert_eq!(
            chrome_trace(&resumed.metrics.snapshot(), &resumed.recorder),
            chrome_trace(&live.metrics.snapshot(), &live.recorder),
        );
    }

    #[test]
    fn drop_counts_survive_the_round_trip() {
        let t = Telemetry::new();
        let small = crate::Recorder::with_capacity(1);
        let pid = small.alloc_process("x");
        small.span(pid, 0, "e", 0, 1, &[]);
        small.span(pid, 0, "e", 1, 1, &[]); // dropped
        t.recorder.merge(small, "");
        let back = import_session(&export_session(&t)).expect("imports");
        assert_eq!(back.recorder.dropped(), 1);
    }

    #[test]
    fn malformed_sessions_name_their_line() {
        for (bad, needle) in [
            ("no header\n", "header"),
            ("# sparten-telemetry session v1\ncounter notanumber x\n", "line 2"),
            ("# sparten-telemetry session v1\nprocess 5 late\n", "out of order"),
            ("# sparten-telemetry session v1\nwhat 1 2\n", "unknown record"),
            ("# sparten-telemetry session v1\nevent 0 0 S 1 2 1 k=v\n", "truncated event args"),
        ] {
            let err = import_session(bad).expect_err("must fail");
            assert!(err.contains(needle), "{bad:?} -> {err}");
        }
    }
}
