//! The hierarchical metric registry: atomic counters, high/low-water
//! gauges, and power-of-two-bucketed histograms.
//!
//! Metrics are interned by name on first use and shared thereafter, so the
//! hot path (a `Counter::add` inside a simulator loop) is one atomic
//! fetch-add with no locking. Snapshots are sorted by name, which makes
//! every exporter's output deterministic.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge tracking the highest and lowest observed `f64` values (and the
/// most recent one). Values are stored as bit patterns and updated with
/// compare-and-swap, so observation is lock-free.
#[derive(Debug)]
pub struct Gauge {
    hi: AtomicU64,
    lo: AtomicU64,
    last: AtomicU64,
    seen: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            hi: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
            lo: AtomicU64::new(f64::INFINITY.to_bits()),
            last: AtomicU64::new(0f64.to_bits()),
            seen: AtomicU64::new(0),
        }
    }
}

impl Gauge {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        self.last.store(v.to_bits(), Ordering::Relaxed);
        self.seen.fetch_add(1, Ordering::Relaxed);
        update_extreme(&self.hi, v, |cur, new| new > cur);
        update_extreme(&self.lo, v, |cur, new| new < cur);
    }

    /// Highest observed value, or `None` before any observation.
    pub fn hi(&self) -> Option<f64> {
        self.checked(&self.hi)
    }

    /// Lowest observed value, or `None` before any observation.
    pub fn lo(&self) -> Option<f64> {
        self.checked(&self.lo)
    }

    /// Most recent observation, or `None` before any observation.
    pub fn last(&self) -> Option<f64> {
        self.checked(&self.last)
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.seen.load(Ordering::Relaxed)
    }

    fn checked(&self, cell: &AtomicU64) -> Option<f64> {
        if self.count() == 0 {
            None
        } else {
            Some(f64::from_bits(cell.load(Ordering::Relaxed)))
        }
    }

    /// Restores a gauge from exported state (session import): widens the
    /// water marks with `hi`/`lo`, sets `last`, and *adds* `count` to the
    /// observation count, so a round-tripped session is indistinguishable
    /// from the original.
    pub(crate) fn restore_raw(&self, hi: f64, lo: f64, last: f64, count: u64) {
        if count == 0 {
            return;
        }
        update_extreme(&self.hi, hi, |cur, new| new > cur);
        update_extreme(&self.lo, lo, |cur, new| new < cur);
        self.last.store(last.to_bits(), Ordering::Relaxed);
        self.seen.fetch_add(count, Ordering::Relaxed);
    }
}

fn update_extreme(cell: &AtomicU64, v: f64, wins: impl Fn(f64, f64) -> bool) {
    let mut cur = cell.load(Ordering::Relaxed);
    while wins(f64::from_bits(cur), v) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(now) => cur = now,
        }
    }
}

/// Number of histogram buckets: bucket `i` counts values in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros and ones; the last bucket is
/// open-ended).
pub const HISTOGRAM_BUCKETS: usize = 32;

/// A fixed-shape power-of-two histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [(); HISTOGRAM_BUCKETS].map(|()| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, v: u64) {
        let b = (64 - v.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1);
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Per-bucket counts.
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        let mut out = [0u64; HISTOGRAM_BUCKETS];
        for (o, b) in out.iter_mut().zip(&self.buckets) {
            *o = b.load(Ordering::Relaxed);
        }
        out
    }

    /// Total number of samples.
    pub fn count(&self) -> u64 {
        self.buckets().iter().sum()
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the power-of-two buckets. `None` before any sample.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        bucket_quantile(&self.buckets(), q)
    }

    /// Adds pre-bucketed counts and a sample sum (merge and session-import
    /// paths).
    pub(crate) fn add_raw(&self, buckets: &[u64; HISTOGRAM_BUCKETS], sum: u64) {
        for (cell, &count) in self.buckets.iter().zip(buckets) {
            if count > 0 {
                cell.fetch_add(count, Ordering::Relaxed);
            }
        }
        self.sum.fetch_add(sum, Ordering::Relaxed);
    }
}

/// Estimates the `q`-quantile of a power-of-two bucket array by linear
/// interpolation inside the bucket the quantile rank lands in.
///
/// Bucket 0 holds exactly the value 0 and bucket 1 exactly the value 1,
/// so those estimates are exact; bucket `i >= 2` holds `[2^(i-1), 2^i)`
/// and the estimate interpolates the rank's position across that range
/// (the open-ended last bucket is treated as one more octave). `q` is
/// clamped to `0.0..=1.0`. Returns `None` for an empty histogram.
///
/// This is the shared engine behind [`Histogram::quantile`] and the
/// `harness report` summaries, which only have parsed bucket arrays.
pub fn bucket_quantile(buckets: &[u64; HISTOGRAM_BUCKETS], q: f64) -> Option<f64> {
    let count: u64 = buckets.iter().sum();
    if count == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // The 1-based rank of the sample the quantile names: ceil(q * n),
    // clamped so q=0 asks for the first sample.
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for (i, &n) in buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let before = cumulative;
        cumulative += n;
        if rank <= cumulative {
            return Some(match i {
                0 => 0.0,
                1 => 1.0,
                _ => {
                    let lo = (1u64 << (i - 1)) as f64;
                    let hi = (1u64 << i) as f64;
                    let pos = (rank - before) as f64 / n as f64;
                    lo + pos * (hi - lo)
                }
            });
        }
    }
    unreachable!("rank is clamped to the total count")
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Lookup interns the name; the returned
/// handles are shared and lock-free to update.
#[derive(Default)]
pub struct Registry {
    metrics: Mutex<HashMap<String, Metric>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.metrics.lock().expect("registry lock").len();
        write!(f, "Registry({n} metrics)")
    }
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Returns (creating if needed) the counter named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a gauge or histogram.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Returns (creating if needed) the gauge named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a counter or histogram.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Returns (creating if needed) the histogram named `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` already names a counter or gauge.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock().expect("registry lock");
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Folds `other`'s metrics into `self`: counters add, gauges widen,
    /// histograms add bucket-wise (bucket sums approximate the merged sum
    /// exactly, since both track true sums).
    pub fn merge(&self, other: &Registry) {
        for (name, value) in other.snapshot().entries {
            match value {
                MetricValue::Counter(v) => self.counter(&name).add(v),
                MetricValue::Gauge { hi, lo, last, count } => {
                    if count > 0 {
                        let g = self.gauge(&name);
                        g.observe(lo);
                        g.observe(hi);
                        g.observe(last);
                    }
                }
                MetricValue::Histogram { buckets, sum } => {
                    self.histogram(&name).add_raw(&buckets, sum);
                }
            }
        }
    }

    /// A consistent, name-sorted view of every metric's current value.
    pub fn snapshot(&self) -> Snapshot {
        let m = self.metrics.lock().expect("registry lock");
        let mut entries: Vec<(String, MetricValue)> = m
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge {
                        hi: g.hi().unwrap_or(0.0),
                        lo: g.lo().unwrap_or(0.0),
                        last: g.last().unwrap_or(0.0),
                        count: g.count(),
                    },
                    Metric::Histogram(h) => MetricValue::Histogram {
                        buckets: h.buckets(),
                        sum: h.sum(),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}

/// A point-in-time value of one metric.
///
/// The histogram variant carries its bucket array inline (256 bytes);
/// snapshots are small, short-lived, and iterated in place, so the size
/// skew is preferable to boxing every bucket read.
#[derive(Debug, Clone, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's high/low water marks, last observation, and count.
    Gauge {
        /// Highest observation (0 if none).
        hi: f64,
        /// Lowest observation (0 if none).
        lo: f64,
        /// Most recent observation (0 if none).
        last: f64,
        /// Number of observations.
        count: u64,
    },
    /// A histogram's buckets and exact sample sum.
    Histogram {
        /// Per-bucket sample counts.
        buckets: [u64; HISTOGRAM_BUCKETS],
        /// Exact sum of all samples.
        sum: u64,
    },
}

/// A sorted, immutable snapshot of a [`Registry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs sorted by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up a counter's value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find_map(|(n, v)| match v {
            MetricValue::Counter(c) if n == name => Some(*c),
            _ => None,
        })
    }

    /// Sums every counter whose name starts with `prefix`.
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.entries
            .iter()
            .filter_map(|(n, v)| match v {
                MetricValue::Counter(c) if n.starts_with(prefix) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// The counters under `prefix` as `(suffix, value)` pairs, sorted.
    pub fn counters_under(&self, prefix: &str) -> Vec<(&str, u64)> {
        self.entries
            .iter()
            .filter_map(|(n, v)| match v {
                MetricValue::Counter(c) => {
                    n.strip_prefix(prefix).map(|suffix| (suffix, *c))
                }
                _ => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_intern() {
        let r = Registry::new();
        r.counter("a.b").add(3);
        let same = r.counter("a.b");
        same.inc();
        assert_eq!(r.snapshot().counter("a.b"), Some(4));
    }

    #[test]
    fn gauges_track_extremes() {
        let r = Registry::new();
        let g = r.gauge("occ");
        assert_eq!(g.hi(), None);
        g.observe(3.5);
        g.observe(-1.0);
        g.observe(2.0);
        assert_eq!(g.hi(), Some(3.5));
        assert_eq!(g.lo(), Some(-1.0));
        assert_eq!(g.last(), Some(2.0));
        assert_eq!(g.count(), 3);
    }

    #[test]
    fn histogram_buckets_powers_of_two() {
        let h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        let b = h.buckets();
        assert_eq!(b[0], 1); // 0
        assert_eq!(b[1], 1); // 1
        assert_eq!(b[2], 2); // 2..3
        assert_eq!(b[11], 1); // 1024
        assert_eq!(h.count(), 5);
        assert_eq!(h.sum(), 1030);
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.counter("z").inc();
        r.counter("a").inc();
        r.gauge("m").observe(1.0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn merge_preserves_sums_and_extremes() {
        let a = Registry::new();
        a.counter("c").add(10);
        a.gauge("g").observe(5.0);
        a.histogram("h").record(7);
        let b = Registry::new();
        b.counter("c").add(32);
        b.gauge("g").observe(-2.0);
        b.histogram("h").record(9);
        a.merge(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), Some(42));
        assert_eq!(a.gauge("g").hi(), Some(5.0));
        assert_eq!(a.gauge("g").lo(), Some(-2.0));
        assert_eq!(a.histogram("h").count(), 2);
        assert_eq!(a.histogram("h").sum(), 16);
    }

    #[test]
    fn prefix_sums_select_counters() {
        let r = Registry::new();
        r.counter("S/stall.intra.a").add(1);
        r.counter("S/stall.intra.b").add(2);
        r.counter("S/stall.inter.c").add(4);
        let snap = r.snapshot();
        assert_eq!(snap.counter_sum("S/stall.intra."), 3);
        assert_eq!(snap.counter_sum("S/stall."), 7);
        assert_eq!(
            snap.counters_under("S/stall.intra."),
            vec![("a", 1), ("b", 2)]
        );
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_is_rejected() {
        let r = Registry::new();
        r.gauge("x");
        r.counter("x");
    }

    /// Pins the quantile estimates on a known distribution: 10 zeros,
    /// 10 ones, and 80 samples of 100 (bucket 7, range [64, 128)).
    #[test]
    fn quantiles_interpolate_the_known_distribution() {
        let h = Histogram::default();
        for _ in 0..10 {
            h.record(0);
        }
        for _ in 0..10 {
            h.record(1);
        }
        for _ in 0..80 {
            h.record(100);
        }
        // p05 → rank 5 lands in bucket 0: exactly 0.
        assert_eq!(h.quantile(0.05), Some(0.0));
        // p15 → rank 15 lands in bucket 1: exactly 1.
        assert_eq!(h.quantile(0.15), Some(1.0));
        // p50 → rank 50, position (50-20)/80 across [64, 128) = 88.
        assert_eq!(h.quantile(0.50), Some(88.0));
        // p95 → rank 95, position (95-20)/80 across [64, 128) = 124.
        assert_eq!(h.quantile(0.95), Some(124.0));
        // p99 → rank 99, position (99-20)/80 across [64, 128) = 127.2.
        let p99 = h.quantile(0.99).expect("nonempty");
        assert!((p99 - 127.2).abs() < 1e-9, "p99 = {p99}");
        // q clamps; extremes are the first and last occupied buckets.
        assert_eq!(h.quantile(0.0), Some(0.0));
        assert_eq!(h.quantile(1.0), Some(128.0));
        // Empty histograms have no quantiles.
        assert_eq!(Histogram::default().quantile(0.5), None);
    }
}
