//! Prometheus text exposition (format version 0.0.4) for a metric
//! [`Snapshot`].
//!
//! The repo's native `/metrics` format is [`crate::report::text_report`];
//! this module is the content-negotiated alternative so a stock
//! Prometheus scraper can ingest the whole `serve/*` + simulator registry
//! without a sidecar. Mapping:
//!
//! * counter `serve/http.requests` → `sparten_serve_http_requests_total`
//! * gauge `g` → `sparten_g` (last observation) plus `_hi`/`_lo`
//!   water-mark series and an `_observations_total` counter
//! * power-of-two histogram → a native Prometheus histogram: cumulative
//!   `_bucket{le="2^i-1"}` series (bucket `i` of the source counts values
//!   in `[2^(i-1), 2^i)`, so the cumulative count through bucket `i` is
//!   exactly the samples `<= 2^i - 1`), a `+Inf` bucket, `_sum`, `_count`
//!
//! Names are sanitized to the `[a-zA-Z_:][a-zA-Z0-9_:]*` metric grammar
//! and prefixed `sparten_` so scrapes from different services never
//! collide on bare names.

use crate::metrics::{MetricValue, Snapshot, HISTOGRAM_BUCKETS};
use std::fmt::Write as _;

/// The content type a 0.0.4 exposition is served under.
pub const PROMETHEUS_CONTENT_TYPE: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Sanitizes a repo metric name (`serve/http.requests`) into the
/// Prometheus grammar, prefixed with `sparten_`.
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 8);
    out.push_str("sparten_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            out.push(c);
        } else {
            out.push('_');
        }
    }
    out
}

/// Escapes a label value per the exposition format.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way the exposition format expects.
fn fmt_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else if v.is_nan() {
        "NaN".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a snapshot (plus the recorder's drop tally) as Prometheus
/// text exposition 0.0.4.
pub fn prometheus_report(snapshot: &Snapshot, dropped_events: u64) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.entries {
        let base = sanitize_metric_name(name);
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "# TYPE {base}_total counter");
                let _ = writeln!(out, "{base}_total {v}");
            }
            MetricValue::Gauge { hi, lo, last, count } => {
                let _ = writeln!(out, "# TYPE {base} gauge");
                let _ = writeln!(out, "{base} {}", fmt_f64(*last));
                let _ = writeln!(out, "# TYPE {base}_hi gauge");
                let _ = writeln!(out, "{base}_hi {}", fmt_f64(*hi));
                let _ = writeln!(out, "# TYPE {base}_lo gauge");
                let _ = writeln!(out, "{base}_lo {}", fmt_f64(*lo));
                let _ = writeln!(out, "# TYPE {base}_observations_total counter");
                let _ = writeln!(out, "{base}_observations_total {count}");
            }
            MetricValue::Histogram { buckets, sum } => {
                let _ = writeln!(out, "# TYPE {base} histogram");
                let mut cumulative = 0u64;
                for (i, count) in buckets.iter().enumerate().take(HISTOGRAM_BUCKETS - 1) {
                    cumulative += count;
                    let le = (1u64 << i) - 1;
                    let _ = writeln!(out, "{base}_bucket{{le=\"{le}\"}} {cumulative}");
                }
                cumulative += buckets[HISTOGRAM_BUCKETS - 1];
                let _ = writeln!(out, "{base}_bucket{{le=\"+Inf\"}} {cumulative}");
                let _ = writeln!(out, "{base}_sum {sum}");
                let _ = writeln!(out, "{base}_count {cumulative}");
            }
        }
    }
    let _ = writeln!(out, "# TYPE sparten_trace_dropped_events_total counter");
    let _ = writeln!(out, "sparten_trace_dropped_events_total {dropped_events}");
    out
}

/// The `build_info`-style identity block appended to scrapes: a constant
/// `1`-valued series labeled with the binary version and the job-registry
/// fingerprint, plus an uptime gauge.
pub fn build_info(version: &str, registry_fp: u64, uptime_seconds: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TYPE sparten_build_info gauge");
    let _ = writeln!(
        out,
        "sparten_build_info{{version=\"{}\",registry=\"{registry_fp:016x}\"}} 1",
        escape_label(version)
    );
    let _ = writeln!(out, "# TYPE sparten_serve_uptime_seconds gauge");
    let _ = writeln!(out, "sparten_serve_uptime_seconds {uptime_seconds}");
    out
}

/// Structural well-formedness check used by tests and the CI smoke: every
/// non-comment line is `name{labels} value` with a grammar-conforming
/// name, every series name is introduced by a preceding `# TYPE` line,
/// and histogram `_bucket` series are cumulative. Returns the first
/// violation found.
pub fn validate_exposition(text: &str) -> Result<(), String> {
    let mut typed: Vec<String> = Vec::new();
    let mut last_bucket: Option<(String, u64)> = None;
    for (idx, line) in text.lines().enumerate() {
        let lineno = idx + 1;
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().ok_or(format!("line {lineno}: TYPE without name"))?;
            let kind = parts.next().ok_or(format!("line {lineno}: TYPE without kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {lineno}: unknown TYPE kind `{kind}`"));
            }
            typed.push(name.to_string());
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or(format!("line {lineno}: no value: `{line}`"))?;
        let name = series.split('{').next().unwrap_or(series);
        let valid_name = !name.is_empty()
            && !name.starts_with(|c: char| c.is_ascii_digit())
            && name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':');
        if !valid_name {
            return Err(format!("line {lineno}: bad metric name `{name}`"));
        }
        if value != "+Inf" && value != "-Inf" && value != "NaN" && value.parse::<f64>().is_err() {
            return Err(format!("line {lineno}: bad value `{value}`"));
        }
        // Histogram child series (_bucket/_sum/_count) are declared by
        // their parent's TYPE line.
        let declared = typed.iter().any(|t| {
            name == t
                || (name.strip_suffix("_bucket") == Some(t))
                || (name.strip_suffix("_sum") == Some(t))
                || (name.strip_suffix("_count") == Some(t))
        });
        if !declared {
            return Err(format!("line {lineno}: series `{name}` has no TYPE"));
        }
        if name.ends_with("_bucket") {
            let count: u64 = value
                .parse()
                .map_err(|_| format!("line {lineno}: non-integer bucket count"))?;
            match &last_bucket {
                Some((prev, prev_count)) if prev == name && count < *prev_count => {
                    return Err(format!("line {lineno}: non-cumulative bucket in `{name}`"));
                }
                _ => {}
            }
            last_bucket = Some((name.to_string(), count));
        } else {
            last_bucket = None;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn names_are_sanitized_into_the_grammar() {
        assert_eq!(
            sanitize_metric_name("serve/http.requests"),
            "sparten_serve_http_requests"
        );
        assert_eq!(
            sanitize_metric_name("SparTen/stall.intra.x"),
            "sparten_SparTen_stall_intra_x"
        );
    }

    #[test]
    fn counters_gauges_and_histograms_expose() {
        let r = Registry::new();
        r.counter("serve/http.requests").add(7);
        let g = r.gauge("serve/sessions.inflight");
        g.observe(2.0);
        g.observe(5.0);
        let h = r.histogram("serve/queue.wait_us");
        h.record(0);
        h.record(1);
        h.record(3);
        h.record(1000);

        let text = prometheus_report(&r.snapshot(), 4);
        assert!(text.contains("# TYPE sparten_serve_http_requests_total counter"));
        assert!(text.contains("sparten_serve_http_requests_total 7"));
        assert!(text.contains("sparten_serve_sessions_inflight 5"));
        assert!(text.contains("sparten_serve_sessions_inflight_hi 5"));
        assert!(text.contains("sparten_serve_sessions_inflight_lo 2"));
        assert!(text.contains("sparten_serve_sessions_inflight_observations_total 2"));
        // Cumulative buckets: le=0 → 1 sample, le=1 → 2, le=3 → 3,
        // le=1023 → 4 (the 1000 lands in bucket 10: [512, 1024)).
        assert!(text.contains("sparten_serve_queue_wait_us_bucket{le=\"0\"} 1"));
        assert!(text.contains("sparten_serve_queue_wait_us_bucket{le=\"1\"} 2"));
        assert!(text.contains("sparten_serve_queue_wait_us_bucket{le=\"3\"} 3"));
        assert!(text.contains("sparten_serve_queue_wait_us_bucket{le=\"1023\"} 4"));
        assert!(text.contains("sparten_serve_queue_wait_us_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("sparten_serve_queue_wait_us_sum 1004"));
        assert!(text.contains("sparten_serve_queue_wait_us_count 4"));
        assert!(text.contains("sparten_trace_dropped_events_total 4"));
        validate_exposition(&text).expect("well-formed exposition");
    }

    #[test]
    fn build_info_is_well_formed_and_labeled() {
        let text = build_info("0.1.0", 0xdead_beef, 42);
        assert!(text.contains("sparten_build_info{version=\"0.1.0\",registry=\"00000000deadbeef\"} 1"));
        assert!(text.contains("sparten_serve_uptime_seconds 42"));
        validate_exposition(&text).expect("well-formed build info");
    }

    #[test]
    fn validator_rejects_malformed_expositions() {
        assert!(validate_exposition("no_type_series 1\n").is_err());
        assert!(validate_exposition("# TYPE x counter\nx notanumber\n").is_err());
        assert!(validate_exposition("# TYPE 9bad counter\n9bad 1\n").is_err());
        let noncumulative = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"3\"} 2\n";
        assert!(validate_exposition(noncumulative).is_err());
    }
}
