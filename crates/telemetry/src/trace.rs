//! Trace-context propagation: correlating one request (or one CLI run)
//! across the serve gate, the executor's workers, and the simulator
//! telemetry sessions they produce.
//!
//! A [`TraceContext`] is a `(trace_id, span_id, parent_span)` triple in
//! the style of distributed tracing. The ids are plain `u64`s so they fit
//! the recorder's integer argument slots ([`crate::recorder::TraceEvent`])
//! and serialize into Chrome-trace args, journal records, and the
//! structured event log without any new encoding machinery. A root
//! context is minted per serve request / CLI run; children derive
//! deterministically from their parent, so two resumed replays of the
//! same run produce the same span tree shape (only the root differs).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// The causal identity carried by one unit of work.
///
/// `Copy` on purpose: contexts are threaded through closures, worker
/// threads, and channel payloads, and a small copy is cheaper than any
/// sharing discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Identifies the whole causal chain (request → ... → chunk span).
    pub trace_id: u64,
    /// Identifies this node in the chain.
    pub span_id: u64,
    /// The span this one descends from (`None` for roots).
    pub parent_span: Option<u64>,
    /// The absolute instant this unit of work must finish by (`None` for
    /// unbounded work). Set once at the request edge and inherited by
    /// every child span, so queue time, executor dispatch, and per-point
    /// compute all draw down the same budget.
    pub deadline: Option<Instant>,
}

/// Monotonic disambiguator so two roots minted in the same nanosecond
/// (or under a coarse clock) still differ.
static MINT_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The `splitmix64` finalizer: cheap, dependency-free, and good enough
/// to spread clock/pid/counter entropy across all 64 bits.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

impl TraceContext {
    /// Mints a fresh root context with a unique, non-zero trace id.
    pub fn root() -> TraceContext {
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        let seq = MINT_COUNTER.fetch_add(1, Ordering::Relaxed);
        let seed = nanos ^ (u64::from(std::process::id()) << 32) ^ seq.rotate_left(17);
        let mut trace_id = mix(seed);
        if trace_id == 0 {
            trace_id = 1; // 0 is reserved for "no trace"
        }
        TraceContext {
            trace_id,
            span_id: mix(trace_id),
            parent_span: None,
            deadline: None,
        }
    }

    /// Reconstructs a context from raw ids (e.g. parsed back out of a
    /// journal record or an event-log line).
    pub fn from_ids(trace_id: u64, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id,
            span_id,
            parent_span: None,
            deadline: None,
        }
    }

    /// This context with a completion deadline attached. Children derived
    /// via [`TraceContext::child`] inherit it.
    pub fn with_deadline(mut self, deadline: Instant) -> TraceContext {
        self.deadline = Some(deadline);
        self
    }

    /// True once the attached deadline has passed (always false without
    /// one).
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Budget left before the deadline: `None` when unbounded,
    /// `Some(ZERO)` once expired.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Derives a child span deterministically from this span and a label
    /// plus index (`"point"`, 3). Same parent + same label + same index
    /// always yields the same child span id.
    pub fn child(&self, label: &str, index: u64) -> TraceContext {
        let mut h = self.span_id ^ 0xcbf29ce484222325;
        for b in label.bytes() {
            h = mix(h ^ u64::from(b));
        }
        TraceContext {
            trace_id: self.trace_id,
            span_id: mix(h ^ index),
            parent_span: Some(self.span_id),
            deadline: self.deadline,
        }
    }

    /// The context as recorder args: `trace_id`, `span_id`, and (when
    /// present) `parent_span` — the schema every correlated Chrome-trace
    /// event in the repo uses.
    pub fn args(&self) -> Vec<(&'static str, u64)> {
        let mut args = vec![("trace_id", self.trace_id), ("span_id", self.span_id)];
        if let Some(parent) = self.parent_span {
            args.push(("parent_span", parent));
        }
        args
    }

    /// The trace id as a fixed-width lowercase hex string, the external
    /// spelling used in NDJSON events and `harness events --trace`.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace_id)
    }

    /// Parses a hex trace id as produced by [`TraceContext::trace_hex`].
    pub fn parse_hex(s: &str) -> Option<u64> {
        let s = s.trim().trim_start_matches("0x");
        if s.is_empty() || s.len() > 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roots_are_unique_and_nonzero() {
        let a = TraceContext::root();
        let b = TraceContext::root();
        assert_ne!(a.trace_id, 0);
        assert_ne!(a.trace_id, b.trace_id);
        assert!(a.parent_span.is_none());
    }

    #[test]
    fn children_share_the_trace_and_link_to_the_parent() {
        let root = TraceContext::root();
        let c = root.child("point", 3);
        assert_eq!(c.trace_id, root.trace_id);
        assert_eq!(c.parent_span, Some(root.span_id));
        assert_ne!(c.span_id, root.span_id);
        // Deterministic: same derivation, same id.
        assert_eq!(c, root.child("point", 3));
        // Distinct labels/indices give distinct spans.
        assert_ne!(c.span_id, root.child("point", 4).span_id);
        assert_ne!(c.span_id, root.child("gate", 3).span_id);
    }

    #[test]
    fn args_carry_the_schema() {
        let root = TraceContext::from_ids(7, 9);
        assert_eq!(root.args(), vec![("trace_id", 7), ("span_id", 9)]);
        let child = root.child("x", 0);
        assert!(child.args().contains(&("parent_span", 9)));
    }

    #[test]
    fn deadlines_attach_and_inherit() {
        let root = TraceContext::root();
        assert!(root.deadline.is_none());
        assert!(!root.deadline_expired());
        assert_eq!(root.remaining(), None);

        let soon = Instant::now() + Duration::from_secs(3600);
        let bounded = root.with_deadline(soon);
        assert_eq!(bounded.deadline, Some(soon));
        assert!(!bounded.deadline_expired());
        assert!(bounded.remaining().unwrap() > Duration::from_secs(3500));
        // Children draw down the same budget.
        assert_eq!(bounded.child("point", 0).deadline, Some(soon));

        let expired = root.with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(expired.deadline_expired());
        assert_eq!(expired.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn hex_round_trips() {
        let root = TraceContext::root();
        let hex = root.trace_hex();
        assert_eq!(hex.len(), 16);
        assert_eq!(TraceContext::parse_hex(&hex), Some(root.trace_id));
        assert_eq!(TraceContext::parse_hex("0x2a"), Some(42));
        assert_eq!(TraceContext::parse_hex("not hex"), None);
        assert_eq!(TraceContext::parse_hex(""), None);
    }
}
